// retra_bench — the bench-suite runner behind the BENCH_*.json artifacts.
//
// Runs a named suite of simulated builds and writes one retra-bench-v1
// artifact (see docs/METRICS.md).  The "smoke" suite is small enough for
// CI, where its artifact is cross-checked against bench_t3_comm run with
// the same configuration: both go through simulate_build() and the shared
// emitters in bench/bench_common.hpp, so the level arrays must agree
// exactly.  --validate re-parses any artifact and checks it against the
// schema without running anything.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace retra;
using namespace retra::bench;

struct Suite {
  const char* name;
  const char* help;
  int max_level;
  int ranks;
  std::size_t combine_bytes;
  int worker_threads;
};

constexpr Suite kSuites[] = {
    {"smoke", "CI-sized build (level 7, 4 ranks, 4 KB combining)", 7, 4,
     4096, 1},
    {"t3", "the T3 table's configuration (level 10, 16 ranks)", 10, 16,
     4096, 1},
    {"p1", "the P1 end-to-end configuration (level 8, 4 ranks x 2 workers)",
     8, 4, 4096, 2},
};

const Suite* find_suite(const std::string& name) {
  for (const Suite& suite : kSuites) {
    if (name == suite.name) return &suite;
  }
  return nullptr;
}

std::string read_file(const std::string& path, bool& ok) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ok = f != nullptr;
  if (!f) return text;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.describe(
      "Bench-suite runner: builds awari levels under the cluster "
      "simulator and writes a retra-bench-v1 JSON artifact (see "
      "docs/METRICS.md).");
  add_model_flags(cli);
  cli.flag("suite", "smoke", "suite to run (--list shows all)");
  cli.flag("json", "", "artifact path (default BENCH_<suite>.json)");
  cli.flag("validate", "",
           "validate an existing artifact against the schema and exit");
  cli.flag("list", "false", "list the available suites and exit");
  cli.parse(argc, argv);

  if (cli.boolean("list")) {
    for (const Suite& suite : kSuites) {
      std::printf("%-8s %s\n", suite.name, suite.help);
    }
    return 0;
  }

  if (const std::string path = cli.str("validate"); !path.empty()) {
    bool readable = false;
    const std::string text = read_file(path, readable);
    if (!readable) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    std::string error;
    if (!validate_bench_artifact(text, &error)) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("%s: valid %s\n", path.c_str(), kBenchSchema);
    return 0;
  }

  const std::string suite_name = cli.str("suite");
  const Suite* suite = find_suite(suite_name);
  if (!suite) {
    std::fprintf(stderr, "unknown suite \"%s\" (--list shows all)\n",
                 suite_name.c_str());
    return 2;
  }
  sim::ClusterModel model = model_from(cli);
  model.machine.worker_threads = suite->worker_threads;
  std::string path = cli.str("json");
  if (path.empty()) path = "BENCH_" + suite_name + ".json";

  std::printf("suite %s: level %d, %d ranks x %d workers, %zu-byte "
              "combining\n",
              suite->name, suite->max_level, suite->ranks,
              suite->worker_threads, suite->combine_bytes);
  print_model(model);

  const obs::Snapshot before = obs::snapshot();
  const auto run = simulate_build(suite->max_level, suite->ranks,
                                  suite->combine_bytes, model,
                                  para::PartitionScheme::kCyclic,
                                  /*replicate_lower=*/false,
                                  suite->worker_threads);
  const obs::Snapshot delta = obs::snapshot() - before;

  BenchRunMeta meta;
  meta.suite = suite_name;
  meta.bench = "retra_bench";
  meta.max_level = suite->max_level;
  meta.ranks = suite->ranks;
  meta.combine_bytes = suite->combine_bytes;
  const std::string json = bench_artifact_json(meta, model, run, delta);
  std::string error;
  if (!validate_bench_artifact(json, &error)) {
    std::fprintf(stderr, "internal error: artifact fails validation: %s\n",
                 error.c_str());
    return 1;
  }
  if (!write_text_file(path, json)) return 1;

  const para::LevelRunInfo& top = run.levels.back();
  std::printf(
      "built %zu levels, %.3f s virtual; top level: %llu positions, "
      "%llu messages, %.1f records/msg\n",
      run.levels.size(), run.total_time_s(),
      static_cast<unsigned long long>(top.size),
      static_cast<unsigned long long>(top.total.messages_sent),
      top.total.records_per_message());
  std::printf("wrote %s (%s)\n", path.c_str(), kBenchSchema);
  return 0;
}

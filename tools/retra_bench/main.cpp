// retra_bench — the bench-suite runner behind the BENCH_*.json artifacts.
//
// Runs a named suite of simulated builds and writes one retra-bench-v1
// artifact (see docs/METRICS.md).  The "smoke" suite is small enough for
// CI, where its artifact is cross-checked against bench_t3_comm run with
// the same configuration: both go through simulate_build() and the shared
// emitters in bench/bench_common.hpp, so the level arrays must agree
// exactly.  --validate re-parses any artifact and checks it against the
// schema without running anything.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_net_common.hpp"
#include "retra/net/server.hpp"
#include "retra/ra/builder.hpp"

namespace {

using namespace retra;
using namespace retra::bench;

struct Suite {
  const char* name;
  const char* help;
  int max_level;
  int ranks;
  std::size_t combine_bytes;
  int worker_threads;
  // Per-phase thread splits and the modelled sweep width (P2); zeros
  // inherit worker_threads, 1 lane models the paper's scalar nodes.
  int scan_threads = 0;
  int drain_threads = 0;
  int vector_lanes = 1;
};

constexpr Suite kSuites[] = {
    {"smoke", "CI-sized build (level 7, 4 ranks, 4 KB combining)", 7, 4,
     4096, 1},
    {"t3", "the T3 table's configuration (level 10, 16 ranks)", 10, 16,
     4096, 1},
    {"p1", "the P1 end-to-end configuration (level 8, 4 ranks x 2 workers)",
     8, 4, 4096, 2},
    {"p2",
     "the P2 kernel configuration (level 8, 4 ranks, 2/1 phase split, "
     "16-lane sweeps)",
     8, 4, 4096, 1, 2, 1, 16},
};

/// The "q2" suite is not a simulated build: it packs a small database,
/// serves it over loopback through the in-process retra-net-v1 server,
/// and runs one CI-sized closed-loop plus pipelined load
/// (bench_net_common.hpp — the same core bench_q2_server sweeps with a
/// full CLI).  Its artifact is a micro artifact: empty levels, the net.*
/// and serve.* obs delta in `metrics`.
int run_q2_suite(const std::string& json_path) {
  constexpr int kMaxLevel = 6;
  const db::Database database =
      ra::build_database(game::AwariFamily{}, kMaxLevel);
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "retra_bench_q2.db")
          .string();
  db::save(database, scratch, db::Format{.version = 2});

  net::ServerConfig config;
  config.workers = 2;
  auto opened = net::Server::open(scratch, config);
  if (!opened.ok) {
    std::fprintf(stderr, "cannot serve %s: %s\n", scratch.c_str(),
                 opened.error.c_str());
    return 1;
  }
  net::Server& server = *opened.server;
  std::printf("suite q2: levels 0..%d over 127.0.0.1:%u, %d workers\n",
              kMaxLevel, static_cast<unsigned>(server.port()),
              config.workers);

  NetLoadConfig load;
  load.connections = 2;
  load.requests_per_connection = 400;
  const obs::Snapshot before = obs::snapshot();
  for (const std::size_t pipeline : {std::size_t{1}, std::size_t{4}}) {
    load.pipeline = pipeline;
    const NetLoadResult result = run_net_load(
        "127.0.0.1", server.port(), server.store().level_sizes(), load);
    if (!result.ok) {
      std::fprintf(stderr, "q2 load failed: %s\n", result.error.c_str());
      return 1;
    }
    std::printf(
        "  pipeline %zu: %zu round trips, p50 %.1f us, p99 %.1f us, "
        "%.1f klookups/s\n",
        pipeline, result.latencies_us.size(), result.percentile(0.50),
        result.percentile(0.99), result.lookups_per_second() / 1e3);
  }
  const obs::Snapshot delta = obs::snapshot() - before;
  server.stop();
  std::remove(scratch.c_str());

  BenchRunMeta meta;
  meta.suite = "q2";
  meta.bench = "retra_bench";
  meta.max_level = kMaxLevel;
  meta.ranks = 1;
  meta.combine_bytes = 0;
  std::string path = json_path;
  if (path.empty()) path = "BENCH_q2.json";
  return write_micro_artifact(path, meta, delta) ? 0 : 1;
}

const Suite* find_suite(const std::string& name) {
  for (const Suite& suite : kSuites) {
    if (name == suite.name) return &suite;
  }
  return nullptr;
}

std::string read_file(const std::string& path, bool& ok) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ok = f != nullptr;
  if (!f) return text;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.describe(
      "Bench-suite runner: builds awari levels under the cluster "
      "simulator and writes a retra-bench-v1 JSON artifact (see "
      "docs/METRICS.md).");
  add_model_flags(cli);
  cli.flag("suite", "smoke", "suite to run (--list shows all)");
  cli.flag("json", "", "artifact path (default BENCH_<suite>.json)");
  cli.flag("validate", "",
           "validate an existing artifact against the schema and exit");
  cli.flag("list", "false", "list the available suites and exit");
  cli.parse(argc, argv);

  if (cli.boolean("list")) {
    for (const Suite& suite : kSuites) {
      std::printf("%-8s %s\n", suite.name, suite.help);
    }
    std::printf("%-8s %s\n", "q2",
                "loopback network serving load (level 6, 2 connections)");
    return 0;
  }

  if (const std::string path = cli.str("validate"); !path.empty()) {
    bool readable = false;
    const std::string text = read_file(path, readable);
    if (!readable) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    std::string error;
    if (!validate_bench_artifact(text, &error)) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("%s: valid %s\n", path.c_str(), kBenchSchema);
    return 0;
  }

  const std::string suite_name = cli.str("suite");
  if (suite_name == "q2") return run_q2_suite(cli.str("json"));
  const Suite* suite = find_suite(suite_name);
  if (!suite) {
    std::fprintf(stderr, "unknown suite \"%s\" (--list shows all)\n",
                 suite_name.c_str());
    return 2;
  }
  sim::ClusterModel model = model_from(cli);
  model.machine.worker_threads = suite->worker_threads;
  model.machine.scan_threads = suite->scan_threads;
  model.machine.drain_threads = suite->drain_threads;
  model.machine.vector_lanes = suite->vector_lanes;
  std::string path = cli.str("json");
  if (path.empty()) path = "BENCH_" + suite_name + ".json";

  std::printf("suite %s: level %d, %d ranks x %d workers, %zu-byte "
              "combining\n",
              suite->name, suite->max_level, suite->ranks,
              suite->worker_threads, suite->combine_bytes);
  print_model(model);

  const obs::Snapshot before = obs::snapshot();
  const auto run = simulate_build(suite->max_level, suite->ranks,
                                  suite->combine_bytes, model,
                                  para::PartitionScheme::kCyclic,
                                  /*replicate_lower=*/false,
                                  suite->worker_threads,
                                  suite->scan_threads,
                                  suite->drain_threads);
  const obs::Snapshot delta = obs::snapshot() - before;

  BenchRunMeta meta;
  meta.suite = suite_name;
  meta.bench = "retra_bench";
  meta.max_level = suite->max_level;
  meta.ranks = suite->ranks;
  meta.combine_bytes = suite->combine_bytes;
  const std::string json = bench_artifact_json(meta, model, run, delta);
  std::string error;
  if (!validate_bench_artifact(json, &error)) {
    std::fprintf(stderr, "internal error: artifact fails validation: %s\n",
                 error.c_str());
    return 1;
  }
  if (!write_text_file(path, json)) return 1;

  const para::LevelRunInfo& top = run.levels.back();
  std::printf(
      "built %zu levels, %.3f s virtual; top level: %llu positions, "
      "%llu messages, %.1f records/msg\n",
      run.levels.size(), run.total_time_s(),
      static_cast<unsigned long long>(top.size),
      static_cast<unsigned long long>(top.total.messages_sent),
      top.total.records_per_message());
  std::printf("wrote %s (%s)\n", path.c_str(), kBenchSchema);
  return 0;
}

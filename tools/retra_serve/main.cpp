// retra_serve — inspect and serve an RTRADB database file.
//
// Three things, composable in one invocation:
//
//   * inspect: with no boards and no --selfcheck, print the file's level
//     directory (format version, per-level packing, payload bytes) from a
//     header scan that never materialises a payload;
//   * answer: each positional argument is a board ("1 2 0 0 1 0  0 1 0 2
//     0 1", mover's pits first) answered through the budgeted
//     QueryService — value and best moves;
//   * --selfcheck=N: rebuild the database in memory and compare N random
//     (level, index) samples against the served answers, exit 1 on any
//     mismatch.  CI's serve_smoke job runs this under a deliberately tiny
//     --budget-kb so every sample exercises fault + evict paths.
//
// With --connect=host:port the same answer/selfcheck paths run against a
// remote retra_server instead of a local file: lookups travel as
// retra-net-v1 frames through net::ClientValueSource (kBusy sheds are
// retried), so the selfcheck proves the whole network stack returns the
// same bytes the in-memory rebuild does.
//
//   $ retra_serve --db=/tmp/awari8.db
//   $ retra_serve --db=/tmp/awari8.db --budget-kb=16 --selfcheck=5000
//   $ retra_serve --db=/tmp/awari8.db "1 2 0 0 1 0  0 1 0 2 0 1"
//   $ retra_serve --connect=127.0.0.1:7411 --selfcheck=2000
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "retra/game/awari_level.hpp"
#include "retra/net/client.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/oracle.hpp"
#include "retra/serve/query_service.hpp"
#include "retra/support/cli.hpp"
#include "retra/support/rng.hpp"
#include "retra/support/table.hpp"

namespace {

using namespace retra;

/// "raw:3 rle:1 freq:12" — how many blocks of the level landed on each
/// compression scheme.
std::string scheme_histogram(const db::LevelLocation& location) {
  int counts[db::kBlockSchemeCount] = {};
  for (const db::BlockLocation& block : location.blocks) {
    ++counts[static_cast<int>(block.scheme)];
  }
  std::string text;
  static constexpr const char* kNames[db::kBlockSchemeCount] = {"raw", "rle",
                                                                "freq"};
  for (int s = 0; s < db::kBlockSchemeCount; ++s) {
    if (counts[s] == 0) continue;
    if (!text.empty()) text += ' ';
    text += kNames[s];
    text += ':';
    text += std::to_string(counts[s]);
  }
  return text.empty() ? "-" : text;
}

void print_index(const std::string& path, const db::FileIndex& index) {
  std::printf("%s: RTRADB%02d, %zu levels\n\n", path.c_str(), index.version,
              index.levels.size());
  const bool blocked = index.version == 3;
  std::vector<std::string> headers = {"level", "positions", "bits", "offset",
                                      "payload bytes"};
  if (blocked) {
    headers.insert(headers.end(), {"blocks", "ratio", "schemes"});
  }
  support::Table table(headers);
  for (const db::LevelLocation& location : index.levels) {
    auto& row = table.row();
    row.add(location.level)
        .add(support::with_thousands(location.size))
        .add(location.raw ? std::to_string(location.bits) + " raw"
                          : std::to_string(location.bits))
        .add(static_cast<std::int64_t>(location.offset))
        .add(support::with_thousands(location.payload_bytes));
    if (blocked) {
      const double ratio =
          location.payload_bytes == 0
              ? 1.0
              : static_cast<double>(location.decoded_bytes()) /
                    static_cast<double>(location.payload_bytes);
      row.add(location.block_count())
          .add(ratio)
          .add(scheme_histogram(location));
    }
  }
  table.print();
  std::printf("\ntotal payload: %s bytes\n",
              support::with_thousands(index.total_payload_bytes()).c_str());
  if (blocked) {
    std::printf("total decoded: %s bytes (overall ratio %.2f)\n",
                support::with_thousands(index.total_decoded_bytes()).c_str(),
                index.total_payload_bytes() == 0
                    ? 1.0
                    : static_cast<double>(index.total_decoded_bytes()) /
                          static_cast<double>(index.total_payload_bytes()));
  }
}

void answer(serve::ValueSource& source, const game::Board& board) {
  std::printf("%s\n", game::board_to_string(board).c_str());
  if (game::is_terminal(board)) {
    std::printf("  terminal: mover nets %d\n", game::terminal_reward(board));
    return;
  }
  if (const int stones = idx::stones_on(board); !source.covers(stones)) {
    std::printf("  not covered: %d stones on board, database stops at %d\n",
                stones, source.num_levels() - 1);
    return;
  }
  std::printf("  value: %+d stones net for the player to move\n",
              static_cast<int>(ra::position_value(source, board)));
  for (const auto& eval : ra::evaluate_moves(source, board)) {
    std::printf("  pit %d -> %+d%s\n", eval.pit,
                static_cast<int>(eval.value),
                eval.captured
                    ? (" (captures " + std::to_string(eval.captured) + ")")
                          .c_str()
                    : "");
  }
}

/// Compares `samples` random served values against a fresh in-memory
/// rebuild; returns the number of mismatches (each printed).
int selfcheck(serve::ValueSource& source, int samples, std::uint64_t seed) {
  const int top = source.num_levels() - 1;
  std::printf("selfcheck: rebuilding levels 0..%d in memory...\n", top);
  const db::Database database =
      ra::build_database(game::AwariFamily{}, top);
  support::Xoshiro256 rng(seed);
  int mismatches = 0;
  for (int s = 0; s < samples; ++s) {
    const int level =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(top + 1)));
    const idx::Index index = rng.below(source.level_size(level));
    const db::Value served = source.value(level, index);
    const db::Value built = database.value(level, index);
    if (served != built) {
      ++mismatches;
      std::printf(
          "  MISMATCH level %d index %llu: served %d, rebuilt %d\n", level,
          static_cast<unsigned long long>(index), static_cast<int>(served),
          static_cast<int>(built));
    }
  }
  std::printf("selfcheck: %d samples, %d mismatches\n", samples, mismatches);
  return mismatches;
}

void print_remote_index(const std::string& target,
                        const serve::ValueSource& source) {
  std::printf("%s: %d served levels\n\n", target.c_str(),
              source.num_levels());
  support::Table table({"level", "positions"});
  for (int level = 0; level < source.num_levels(); ++level) {
    table.row().add(level).add(
        support::with_thousands(source.level_size(level)));
  }
  table.print();
}

void print_remote_stats(const net::StatsReply& stats) {
  std::printf(
      "\nserver: %llu connections, %llu requests, %llu errors (%llu "
      "shed), %llu hot hits; service: %llu lookups, %llu faults, %llu "
      "evictions, %llu bytes resident\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.errors),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.hot_hits),
      static_cast<unsigned long long>(stats.lookups),
      static_cast<unsigned long long>(stats.level_faults),
      static_cast<unsigned long long>(stats.level_evictions),
      static_cast<unsigned long long>(stats.resident_bytes));
}

/// The whole --connect mode: dial, adapt, and run the same inspect /
/// answer / selfcheck paths the local mode runs.
int run_connected(const std::string& target, const support::Cli& cli) {
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants host:port, got %s\n",
                 target.c_str());
    return 1;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "--connect: bad port in %s\n", target.c_str());
    return 1;
  }
  auto connected =
      net::Client::connect(host, static_cast<std::uint16_t>(port));
  if (!connected.ok) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", target.c_str(),
                 connected.error.c_str());
    return 1;
  }
  auto adapted = net::ClientValueSource::open(*connected.client);
  if (!adapted.ok) {
    std::fprintf(stderr, "handshake with %s failed: %s\n", target.c_str(),
                 adapted.error.c_str());
    return 1;
  }
  serve::ValueSource& source = *adapted.source;

  const int samples = static_cast<int>(cli.integer("selfcheck"));
  if (cli.positional().empty() && samples == 0) {
    print_remote_index(target, source);
    return 0;
  }
  for (const std::string& text : cli.positional()) {
    answer(source, game::board_from_string(text.c_str()));
  }
  int mismatches = 0;
  if (samples > 0) {
    mismatches = selfcheck(source, samples,
                           static_cast<std::uint64_t>(cli.integer("seed")));
  }
  if (cli.boolean("stats")) {
    net::StatsReply stats;
    if (connected.client->stats(stats).ok()) print_remote_stats(stats);
  }
  return mismatches == 0 ? 0 : 1;
}

void print_stats(const serve::QueryService& service) {
  const auto& stats = service.stats();
  if (service.blocked()) {
    std::printf(
        "\nserving: %llu lookups in %llu batches; block cache: %llu hits, "
        "%llu faults, %llu evictions, %llu bytes resident\n",
        static_cast<unsigned long long>(stats.lookups),
        static_cast<unsigned long long>(stats.batches),
        static_cast<unsigned long long>(stats.block_hits),
        static_cast<unsigned long long>(stats.block_faults),
        static_cast<unsigned long long>(stats.block_evictions),
        static_cast<unsigned long long>(stats.resident_bytes));
    return;
  }
  std::printf(
      "\nserving: %llu lookups in %llu batches, %llu level faults, "
      "%llu evictions, %llu bytes resident\n",
      static_cast<unsigned long long>(stats.lookups),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.faults),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.resident_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.describe(
      "Inspect and serve an RTRADB database file: level directory, board "
      "queries, and a rebuild-and-compare selfcheck.");
  cli.flag("db", "", "database file to serve (required unless --connect)");
  cli.flag("connect", "",
           "host:port of a running retra_server to query instead of a "
           "local file");
  cli.flag("budget-kb", "0", "resident-level budget (0 = unlimited)");
  cli.flag("selfcheck", "0",
           "compare this many random samples against an in-memory rebuild");
  cli.flag("seed", "7", "selfcheck sampling seed");
  cli.flag("stats", "true", "print serving counters after queries");
  cli.parse(argc, argv);

  if (const std::string target = cli.str("connect"); !target.empty()) {
    if (!cli.str("db").empty()) {
      std::fprintf(stderr, "--db and --connect are mutually exclusive\n");
      return 1;
    }
    return run_connected(target, cli);
  }
  const std::string path = cli.str("db");
  if (path.empty()) {
    std::fprintf(stderr, "--db or --connect is required (see --help)\n");
    return 1;
  }
  serve::QueryServiceConfig config;
  config.budget_bytes =
      static_cast<std::uint64_t>(cli.integer("budget-kb")) * 1024;
  auto opened = serve::QueryService::open(path, config);
  if (!opened.ok) {
    std::fprintf(stderr, "cannot serve %s: %s\n", path.c_str(),
                 opened.error.c_str());
    return 1;
  }
  serve::QueryService& service = *opened.service;

  const int samples = static_cast<int>(cli.integer("selfcheck"));
  const bool inspect_only = cli.positional().empty() && samples == 0;
  if (inspect_only) {
    print_index(path, service.index());
    return 0;
  }

  for (const std::string& text : cli.positional()) {
    answer(service, game::board_from_string(text.c_str()));
  }

  int mismatches = 0;
  if (samples > 0) {
    mismatches = selfcheck(
        service, samples, static_cast<std::uint64_t>(cli.integer("seed")));
  }
  if (cli.boolean("stats")) print_stats(service);
  return mismatches == 0 ? 0 : 1;
}

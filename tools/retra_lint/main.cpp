// retra_lint — repo-invariant checker.
//
//   retra_lint <dir-or-file>...
//
// Walks the given trees, lints every .hpp/.cpp (skipping build
// directories), prints findings as `file:line: [rule] message`, and
// exits nonzero when anything fired.  The rules live in lint_rules.cpp
// so they stay unit-testable; see lint_rules.hpp for the rule list and
// the `// retra-lint: allow(<rule>)` escape.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_rules.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

bool skipped_dir(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == "build" || name == ".git" ||
         name.rfind("cmake-build", 0) == 0;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(root)) {
    if (lintable(root)) out.push_back(root);
    return;
  }
  fs::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory() && skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) {
      out.push_back(it->path());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: retra_lint <dir-or-file>...\n");
    return 2;
  }
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (!fs::exists(root)) {
      std::fprintf(stderr, "retra_lint: no such path: %s\n", argv[i]);
      return 2;
    }
    collect(root, files);
  }
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  for (const fs::path& file : files) {
    const auto findings =
        retra::lint::lint_file(file.generic_string(), read_file(file));
    for (const auto& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
    total += findings.size();
  }
  if (total != 0) {
    std::fprintf(stderr, "retra_lint: %zu finding(s) in %zu file(s)\n",
                 total, files.size());
    return 1;
  }
  std::printf("retra_lint: %zu files clean\n", files.size());
  return 0;
}

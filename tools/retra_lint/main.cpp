// retra_lint — repo-invariant checker.
//
//   retra_lint <dir-or-file>...
//
// Walks the given trees, lints every .hpp/.cpp (skipping build
// directories), prints findings as `file:line: [rule] message`, and
// exits nonzero when anything fired.  The rules live in lint_rules.cpp
// so they stay unit-testable; see lint_rules.hpp for the rule list and
// the `// retra-lint: allow(<rule>)` escape.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint_rules.hpp"
#include "source_model.hpp"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: retra_lint <dir-or-file>...\n");
    return 2;
  }
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (!fs::exists(root)) {
      std::fprintf(stderr, "retra_lint: no such path: %s\n", argv[i]);
      return 2;
    }
    retra::analyze::collect_files(root, files);
  }
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  for (const fs::path& file : files) {
    const auto findings = retra::lint::lint_file(
        file.generic_string(), retra::analyze::read_file(file));
    for (const auto& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
    total += findings.size();
  }
  if (total != 0) {
    std::fprintf(stderr, "retra_lint: %zu finding(s) in %zu file(s)\n",
                 total, files.size());
    return 1;
  }
  std::printf("retra_lint: %zu files clean\n", files.size());
  return 0;
}

#include "lint_rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstddef>

#include "tokenizer.hpp"

namespace retra::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_header(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

/// True when `path` (repo-relative or absolute) lies under `dir`
/// ("src/ra" matches ".../src/ra/src/oracle.cpp").
bool under(const std::string& path, std::string_view dir) {
  const std::string needle = std::string(dir) + "/";
  return path.find(needle) != std::string::npos ||
         starts_with(path, needle);
}

/// Replaces comments and string/character literal contents with spaces
/// (newlines preserved), so token scans cannot fire inside them.
/// Delegates to the retra_analyze lexer, which — unlike the state
/// machine this replaced — understands raw strings, encoding prefixes,
/// and digit separators, so `R"(call rand())"` or `1'000'000` cannot
/// desynchronise the stripping and produce false positives.
std::string strip_comments_and_literals(std::string_view in) {
  return analyze::strip_to_code(in);
}

std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find('\n', start);
    if (end == std::string_view::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Identifier tokens of one (already stripped) line.
std::vector<std::string_view> ident_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (is_ident_char(line[i]) &&
        std::isdigit(static_cast<unsigned char>(line[i])) == 0) {
      std::size_t j = i;
      while (j < line.size() && is_ident_char(line[j])) ++j;
      tokens.push_back(line.substr(i, j - i));
      i = j;
    } else if (is_ident_char(line[i])) {
      while (i < line.size() && is_ident_char(line[i])) ++i;  // number
    } else {
      ++i;
    }
  }
  return tokens;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

class Linter {
 public:
  Linter(const std::string& path, std::string_view content)
      : path_(path),
        raw_lines_(split_lines(content)),
        stripped_(strip_comments_and_literals(content)),
        lines_(split_lines(stripped_)) {}

  std::vector<Finding> run() {
    if (is_header(path_)) check_pragma_once();
    check_includes();
    if (under(path_, "src/ra") || under(path_, "src/para") ||
        under(path_, "src/msg") || under(path_, "src/sim")) {
      check_determinism();
    }
    if (under(path_, "src")) check_raw_alloc();
    if (under(path_, "src/para")) check_db_level_access();
    if (!under(path_, "src/exec")) check_simd_containment();
    check_wire_structs();
    return std::move(findings_);
  }

 private:
  void add(int line, const char* rule, std::string message) {
    if (allowed(line, rule)) return;
    findings_.push_back(Finding{path_, line, rule, std::move(message)});
  }

  /// `// retra-lint: allow(<rule>)` on the finding's line or the one
  /// above suppresses it.
  bool allowed(int line, const char* rule) const {
    const std::string directive =
        std::string("retra-lint: allow(") + rule + ")";
    for (int l = std::max(1, line - 1); l <= line; ++l) {
      const std::size_t i = static_cast<std::size_t>(l - 1);
      if (i < raw_lines_.size() &&
          raw_lines_[i].find(directive) != std::string_view::npos) {
        return true;
      }
    }
    return false;
  }

  void check_pragma_once() {
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string_view line = trim(lines_[i]);
      if (line.empty()) continue;
      if (line == "#pragma once") return;
      // The guard must precede any other preprocessor/code line.
      add(static_cast<int>(i) + 1, "pragma-once",
          "header must start with #pragma once");
      return;
    }
    add(1, "pragma-once", "header must start with #pragma once");
  }

  void check_includes() {
    // Raw lines: the literal-stripping pass blanks quoted include paths.
    for (std::size_t i = 0; i < raw_lines_.size(); ++i) {
      const std::string_view line = trim(raw_lines_[i]);
      if (!starts_with(line, "#include")) continue;
      const int lineno = static_cast<int>(i) + 1;
      const std::size_t open = line.find_first_of("<\"", 8);
      if (open == std::string_view::npos) continue;
      const char close = line[open] == '<' ? '>' : '"';
      const std::size_t end = line.find(close, open + 1);
      if (end == std::string_view::npos) continue;
      const std::string_view target =
          line.substr(open + 1, end - open - 1);
      if (target.find("..") != std::string_view::npos) {
        add(lineno, "include-hygiene",
            "include path must not contain '..'");
      }
      if (starts_with(target, "bits/")) {
        add(lineno, "include-hygiene",
            "<bits/...> is a libstdc++ internal; include the standard "
            "header instead");
      }
      if (line[open] == '"' && under(path_, "src") &&
          !starts_with(target, "retra/")) {
        add(lineno, "include-hygiene",
            "project includes under src/ must use the full "
            "\"retra/...\" path");
      }
    }
  }

  void check_determinism() {
    // Ambient nondeterminism: wall clocks and unseeded/global RNGs make
    // solver and protocol runs irreproducible (and untestable under the
    // discrete-event simulator, which owns the only clock).
    static constexpr std::array<std::string_view, 9> kBanned = {
        "rand",          "srand",
        "random_device", "mt19937",
        "system_clock",  "steady_clock",
        "high_resolution_clock", "gettimeofday",
        "clock_gettime",
    };
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      for (const std::string_view token : ident_tokens(lines_[i])) {
        if (std::find(kBanned.begin(), kBanned.end(), token) !=
            kBanned.end()) {
          add(static_cast<int>(i) + 1, "determinism",
              "'" + std::string(token) +
                  "' is nondeterministic; use the seeded "
                  "support::Xoshiro256 / virtual time instead");
        }
      }
    }
  }

  void check_raw_alloc() {
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string_view line = lines_[i];
      const auto tokens = ident_tokens(line);
      for (std::size_t t = 0; t < tokens.size(); ++t) {
        const std::string_view token = tokens[t];
        if (token != "new" && token != "delete") continue;
        // `= delete;` (deleted member) and `operator new/delete`
        // (allocator definitions) are declarations, not allocations.
        const std::size_t at =
            static_cast<std::size_t>(token.data() - line.data());
        std::string_view before = trim(line.substr(0, at));
        if (token == "delete" && !before.empty() && before.back() == '=') {
          continue;
        }
        if (t > 0 && tokens[t - 1] == "operator") continue;
        add(static_cast<int>(i) + 1, "raw-alloc",
            "raw '" + std::string(token) +
                "' under src/; use containers or std::make_unique");
      }
    }
  }

  void check_db_level_access() {
    // Engine code must go through para::LevelStore for completed-level
    // values: a direct db::Database::level() call hands out the dense
    // vector, bypassing the working-set budget (and the file-backed
    // store has no such vector at all).  Heuristic: a `.level(` /
    // `->level(` call whose receiver identifier names a database
    // (contains "db" or "database"), or a qualified `Database::level`.
    const auto names_database = [](std::string_view ident) {
      std::string lower(ident);
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      return lower.find("db") != std::string::npos ||
             lower.find("database") != std::string::npos;
    };
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string_view line = lines_[i];
      const int lineno = static_cast<int>(i) + 1;
      if (line.find("Database::level") != std::string_view::npos) {
        add(lineno, "db-level-residency",
            "engine code must not use db::Database::level(); read values "
            "through para::LevelStore");
        continue;
      }
      for (std::size_t at = line.find("level("); at != std::string_view::npos;
           at = line.find("level(", at + 1)) {
        // Receiver: the identifier before the `.` or `->` that precedes
        // this call.
        std::size_t before = at;
        if (before >= 1 && line[before - 1] == '.') {
          before -= 1;
        } else if (before >= 2 && line[before - 2] == '-' &&
                   line[before - 1] == '>') {
          before -= 2;
        } else {
          continue;  // free function or method definition, not a call
        }
        std::size_t begin = before;
        while (begin > 0 && is_ident_char(line[begin - 1])) --begin;
        if (begin == before) continue;  // e.g. `(*x).level(` — skip
        if (!names_database(line.substr(begin, before - begin))) continue;
        add(lineno, "db-level-residency",
            "engine code must not call level() on a database; read "
            "values through para::LevelStore");
      }
    }
  }

  void check_simd_containment() {
    // Raw vector intrinsics are confined to src/exec, where exec::simd
    // wraps them behind the bit-identical kernel contract with a scalar
    // fallback.  Anywhere else they couple the code to one ISA and
    // bypass the RETRA_SIMD=OFF build.
    const auto is_intrinsic = [](std::string_view token) {
      return starts_with(token, "_mm") || starts_with(token, "__m128") ||
             starts_with(token, "__m256") || starts_with(token, "__m512") ||
             starts_with(token, "__builtin_ia32");
    };
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      for (const std::string_view token : ident_tokens(lines_[i])) {
        if (!is_intrinsic(token)) continue;
        add(static_cast<int>(i) + 1, "simd-containment",
            "raw intrinsic '" + std::string(token) +
                "' outside src/exec; use the exec::simd kernels");
      }
    }
    // Includes on raw lines: the stripping pass blanks quoted paths, and
    // angle-bracket targets are not identifier tokens.
    for (std::size_t i = 0; i < raw_lines_.size(); ++i) {
      const std::string_view line = trim(raw_lines_[i]);
      if (!starts_with(line, "#include")) continue;
      const std::size_t open = line.find_first_of("<\"", 8);
      if (open == std::string_view::npos) continue;
      const char close = line[open] == '<' ? '>' : '"';
      const std::size_t end = line.find(close, open + 1);
      if (end == std::string_view::npos) continue;
      const std::string_view target = line.substr(open + 1, end - open - 1);
      const bool intrinsics_header =
          (target.size() > 8 &&
           target.substr(target.size() - 8) == "intrin.h") ||
          target == "arm_neon.h";
      if (!intrinsics_header) continue;
      add(static_cast<int>(i) + 1, "simd-containment",
          "intrinsics header <" + std::string(target) +
              "> outside src/exec; use the exec::simd kernels");
    }
  }

  void check_wire_structs() {
    // A struct declaring `kWireSize` is a wire record: it must be
    // statically asserted trivially copyable and use only fixed-width
    // field types, so encode/decode and checksums see a stable layout.
    static constexpr std::array<std::string_view, 9> kFixedWidth = {
        "std::uint8_t",  "std::uint16_t", "std::uint32_t",
        "std::uint64_t", "std::int8_t",   "std::int16_t",
        "std::int32_t",  "std::int64_t",  "std::byte",
    };
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string_view line = trim(lines_[i]);
      if (!starts_with(line, "struct ")) continue;
      const std::string_view rest = trim(line.substr(7));
      std::size_t name_end = 0;
      while (name_end < rest.size() && is_ident_char(rest[name_end])) {
        ++name_end;
      }
      if (name_end == 0) continue;
      const std::string name(rest.substr(0, name_end));
      if (rest.find('{') == std::string_view::npos) continue;  // fwd decl

      // Body: to the matching close brace (brace counting on stripped
      // text, so braces in literals/comments cannot confuse it).
      int depth = 0;
      std::size_t body_end = i;
      for (std::size_t j = i; j < lines_.size(); ++j) {
        for (const char c : lines_[j]) {
          if (c == '{') ++depth;
          if (c == '}') --depth;
        }
        if (depth <= 0 && j > i) {
          body_end = j;
          break;
        }
        body_end = j;
      }

      bool is_wire = false;
      for (std::size_t j = i; j <= body_end; ++j) {
        for (const std::string_view token : ident_tokens(lines_[j])) {
          if (token == "kWireSize") is_wire = true;
        }
      }
      if (!is_wire) continue;

      if (stripped_.find("is_trivially_copyable_v<" + name + ">") ==
          std::string::npos) {
        add(static_cast<int>(i) + 1, "wire-format",
            "wire struct " + name +
                " needs static_assert(std::is_trivially_copyable_v<" +
                name + ">)");
      }

      int member_depth = 0;  // brace depth at the start of each line
      for (const char c : lines_[i]) {
        if (c == '{') ++member_depth;
        if (c == '}') --member_depth;
      }
      for (std::size_t j = i + 1; j < body_end; ++j) {
        const int depth_at_start = member_depth;
        for (const char c : lines_[j]) {
          if (c == '{') ++member_depth;
          if (c == '}') --member_depth;
        }
        // Members live at depth 1; deeper lines are inside the bodies of
        // encode/decode or nested types.
        if (depth_at_start != 1) continue;
        const std::string_view decl = trim(lines_[j]);
        if (decl.empty() || decl.back() != ';') continue;
        if (decl.find('(') != std::string_view::npos) continue;
        if (starts_with(decl, "static") || starts_with(decl, "using") ||
            starts_with(decl, "return") || starts_with(decl, "}")) {
          continue;
        }
        // `Type name = init;` or `Type name;` — a data member.
        const std::size_t space = decl.find(' ');
        if (space == std::string_view::npos) continue;
        const std::string_view type = decl.substr(0, space);
        if (std::find(kFixedWidth.begin(), kFixedWidth.end(), type) ==
            kFixedWidth.end()) {
          add(static_cast<int>(j) + 1, "wire-format",
              "wire struct " + name + " field '" + std::string(decl) +
                  "' must use a fixed-width type");
        }
      }
    }
  }

  std::string path_;
  std::vector<std::string_view> raw_lines_;
  std::string stripped_;
  std::vector<std::string_view> lines_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> lint_file(const std::string& path,
                               std::string_view content) {
  return Linter(path, content).run();
}

}  // namespace retra::lint

// Repo-invariant lint rules (see tools/retra_lint/README.md).
//
// The rules are pure functions over file content so they are unit-testable
// with fixture strings; the `retra_lint` binary adds the filesystem walk.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace retra::lint {

struct Finding {
  std::string file;
  int line = 1;  // 1-based
  std::string rule;
  std::string message;
};

/// Rule identifiers, usable in `// retra-lint: allow(<rule>)` directives.
///
///   pragma-once      every header starts with `#pragma once`
///   include-hygiene  project includes are `"retra/..."` (under src/),
///                    no `<bits/...>`, no `..` in include paths
///   determinism      no wall clocks or ambient RNGs in solver/message
///                    code paths (src/ra, src/para, src/msg, src/sim)
///   raw-alloc        no raw `new` / `delete` under src/ (owning
///                    containers and smart pointers only)
///   wire-format      every struct with a `kWireSize` member has a
///                    `static_assert(std::is_trivially_copyable_v<...>)`
///                    and only fixed-width fields
///   db-level-residency  engine code (src/para) must not reach into a
///                    dense database's level storage via
///                    `db::Database::level()` — para::LevelStore owns
///                    completed-level residency (the out-of-core backend
///                    has no dense vector to hand out); detected as a
///                    `.level(`/`->level(` call on a receiver whose name
///                    contains `db`/`database`, or a qualified
///                    `Database::level` mention
///   simd-containment raw vector intrinsics stay inside src/exec — an
///                    `_mm*` / `__m128`-family identifier, a
///                    `__builtin_ia32_*` builtin, or an intrinsics
///                    header include (`<immintrin.h>`, `<x86intrin.h>`,
///                    `<arm_neon.h>`, ...) anywhere else couples that
///                    code to one ISA and bypasses the exec::simd
///                    scalar fallback and its bit-identity contract
///
/// A finding on line N is suppressed by a `// retra-lint: allow(<rule>)`
/// comment on line N or N-1.
///
/// `path` should be repo-relative (rule scoping keys off `src/` prefixes);
/// `content` is the raw file text.
std::vector<Finding> lint_file(const std::string& path,
                               std::string_view content);

}  // namespace retra::lint

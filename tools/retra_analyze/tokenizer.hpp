// Lexical C++ tokenizer shared by retra_analyze and retra_lint.
//
// Not a parser: it splits source into identifier / number / string /
// char / punctuation tokens with 1-based line numbers, correctly
// skipping every kind of comment and literal the repo uses — raw
// strings (R"(...)"), encoding prefixes (u8R"..."), escape sequences,
// and digit separators (1'000'000).  Everything the analyses conclude
// is derived from these tokens, so a "rand" inside a string or a quote
// inside a raw string can never masquerade as code (the false-positive
// class the old line-based stripper in retra_lint suffered from).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace retra::analyze {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals, digit separators and suffixes included
  kString,  // string literals, prefix and quotes included
  kChar,    // character literals, quotes included
  kPunct,   // one punctuation character
};

struct Token {
  TokKind kind;
  std::string text;  // raw spelling (strings keep their quotes)
  int line = 1;      // 1-based line of the token's first character
};

/// Lexes `source`, skipping whitespace and comments.
std::vector<Token> tokenize(std::string_view source);

/// Returns `source` with comment text and string/char literal contents
/// replaced by spaces.  Line structure and byte count are preserved
/// exactly (newlines survive), and literal delimiters are kept, so
/// line-based rules can run over the result without literal or comment
/// text triggering them.
std::string strip_to_code(std::string_view source);

/// The value of a kString token: prefix and quotes removed, common
/// escape sequences (\\ \" \n \t \r \0) decoded.  Raw strings return
/// their raw contents.
std::string string_value(const Token& token);

}  // namespace retra::analyze

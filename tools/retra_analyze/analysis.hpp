// The pluggable cross-file analyses (see docs/ANALYSIS.md).
//
// Each analysis is a pure function over an AnalysisInput — loaded
// sources plus the two spec documents — returning findings.  Rules:
//
//   lock-coverage   any class with a mutex member must annotate every
//                   other non-exempt member with RETRA_GUARDED_BY /
//                   RETRA_PT_GUARDED_BY / RETRA_NOT_GUARDED, and mutex
//                   members in src/ must use the annotated
//                   support::Mutex types
//   io-blocking     no blocking calls inside RETRA_IO_THREAD_ONLY
//                   function bodies
//   layer-order     retra/... includes must respect the declared module
//                   layering (docs/ANALYSIS.md); back-edges and
//                   same-layer cross-includes are rejected
//   include-cycle   the retra/... header include graph must be acyclic
//   protocol-doc    net/protocol.hpp constants/enums must match the
//                   tables in docs/PROTOCOL.md
//   metrics-doc     the obs metric catalog must match the table in
//                   docs/METRICS.md
//   format-doc      db/format.hpp magics, limits and block schemes must
//                   match the tables in docs/FORMAT.md
//
// Suppression: `// retra-analyze: allow(<rule>)` on the finding's line
// or the line above.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "source_model.hpp"

namespace retra::analyze {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct AnalysisInput {
  std::vector<SourceFile> files;
  std::string protocol_doc;  // docs/PROTOCOL.md contents
  std::string metrics_doc;   // docs/METRICS.md contents
  std::string format_doc;    // docs/FORMAT.md contents
};

/// Lock discipline: annotation coverage of mutex-holding classes plus
/// the blocking-call check for I/O-thread-only functions.
std::vector<Finding> analyze_locks(const AnalysisInput& input);

/// Layering DAG over retra/... includes: module order + include cycles.
std::vector<Finding> analyze_layering(const AnalysisInput& input);

/// Spec consistency: protocol.hpp vs PROTOCOL.md, obs catalog vs
/// METRICS.md, db/format.hpp vs FORMAT.md.
std::vector<Finding> analyze_spec(const AnalysisInput& input);

/// Just the format-doc rule (db/format.hpp vs FORMAT.md); a subset of
/// analyze_spec for `--analysis=format-doc`.
std::vector<Finding> analyze_format(const AnalysisInput& input);

/// All analyses, findings ordered by (file, line).
std::vector<Finding> analyze_all(const AnalysisInput& input);

/// Loads a repository checkout: every analyzable file under src/,
/// tools/, tests/, bench/ and examples/ (paths made repo-relative) plus
/// the two spec documents.  Shared by the CLI and the self-test.
AnalysisInput load_repo(const std::filesystem::path& root);

}  // namespace retra::analyze

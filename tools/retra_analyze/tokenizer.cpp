#include "tokenizer.hpp"

#include <cctype>

namespace retra::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }
bool hex_digit(char c) {
  return std::isxdigit(static_cast<unsigned char>(c));
}

bool string_prefix(std::string_view s) {
  return s == "R" || s == "L" || s == "u" || s == "U" || s == "u8" ||
         s == "LR" || s == "uR" || s == "UR" || s == "u8R";
}

// One pass over the source driving both outputs: `tokens` (when
// non-null) receives the token stream, `stripped` (when non-null) has
// comment text and literal contents blanked in place.
class Lexer {
 public:
  Lexer(std::string_view src, std::vector<Token>* tokens,
        std::string* stripped)
      : src_(src), tokens_(tokens), stripped_(stripped) {}

  void run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          line_comment();
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          block_comment();
          continue;
        }
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (digit(c) || (c == '.' && pos_ + 1 < src_.size() &&
                       digit(src_[pos_ + 1]))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal(pos_, pos_, /*raw=*/false);
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      emit(TokKind::kPunct, pos_, pos_ + 1);
      ++pos_;
    }
  }

 private:
  void emit(TokKind kind, std::size_t begin, std::size_t end) {
    if (tokens_ != nullptr) {
      tokens_->push_back(
          Token{kind, std::string(src_.substr(begin, end - begin)), line_});
    }
  }

  // Replaces [begin, end) with spaces in the stripped copy, newlines
  // excepted so line numbers survive.
  void blank(std::size_t begin, std::size_t end) {
    if (stripped_ == nullptr) return;
    for (std::size_t i = begin; i < end && i < stripped_->size(); ++i) {
      if ((*stripped_)[i] != '\n') (*stripped_)[i] = ' ';
    }
  }

  void advance_counting_lines(std::size_t to) {
    for (; pos_ < to && pos_ < src_.size(); ++pos_) {
      if (src_[pos_] == '\n') ++line_;
    }
  }

  void line_comment() {
    const std::size_t begin = pos_;
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == '\n' ||
           (src_[pos_ + 1] == '\r' && pos_ + 2 < src_.size() &&
            src_[pos_ + 2] == '\n'))) {
        // Backslash-newline continues a line comment.
        pos_ += src_[pos_ + 1] == '\n' ? 2u : 3u;
        ++line_;
        continue;
      }
      if (src_[pos_] == '\n') break;
      ++pos_;
    }
    blank(begin, pos_);
  }

  void block_comment() {
    const std::size_t begin = pos_;
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    blank(begin, pos_);
  }

  void identifier() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    const std::string_view text = src_.substr(begin, pos_ - begin);
    if (pos_ < src_.size() && src_[pos_] == '"' && string_prefix(text)) {
      const bool raw = text.back() == 'R';
      string_literal(begin, pos_, raw);
      return;
    }
    emit(TokKind::kIdent, begin, pos_);
  }

  void number() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.') {
        // Exponent signs: 1e+9, 0x1p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            pos_ + 1 < src_.size() &&
            (src_[pos_ + 1] == '+' || src_[pos_ + 1] == '-')) {
          pos_ += 2;
          continue;
        }
        ++pos_;
        continue;
      }
      // Digit separator: only inside a numeric literal, only between
      // digits — never the start of a char literal.
      if (c == '\'' && pos_ + 1 < src_.size() && hex_digit(src_[pos_ + 1])) {
        ++pos_;
        continue;
      }
      break;
    }
    emit(TokKind::kNumber, begin, pos_);
  }

  // `begin` is the token start (prefix included), `quote` the position
  // of the opening double quote.
  void string_literal(std::size_t begin, std::size_t quote, bool raw) {
    const int start_line = line_;
    pos_ = quote + 1;
    if (raw) {
      // R"delim( ... )delim"
      const std::size_t delim_begin = pos_;
      while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
      const std::string_view delim =
          src_.substr(delim_begin, pos_ - delim_begin);
      const std::string closer = ")" + std::string(delim) + "\"";
      const std::size_t content_begin = pos_ < src_.size() ? pos_ + 1 : pos_;
      const std::size_t close = src_.find(closer, content_begin);
      const std::size_t end =
          close == std::string_view::npos ? src_.size()
                                          : close + closer.size();
      blank(content_begin,
            close == std::string_view::npos ? src_.size() : close);
      pos_ = content_begin;
      advance_counting_lines(end);
      if (tokens_ != nullptr) {
        tokens_->push_back(Token{TokKind::kString,
                                 std::string(src_.substr(begin, end - begin)),
                                 start_line});
      }
      return;
    }
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '"' || c == '\n') break;
      ++pos_;
    }
    const std::size_t close = pos_;
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    blank(quote + 1, close);
    if (tokens_ != nullptr) {
      tokens_->push_back(Token{TokKind::kString,
                               std::string(src_.substr(begin, pos_ - begin)),
                               start_line});
    }
  }

  void char_literal() {
    const std::size_t begin = pos_;
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '\'' || c == '\n') break;
      ++pos_;
    }
    const std::size_t close = pos_;
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    blank(begin + 1, close);
    emit(TokKind::kChar, begin, pos_);
  }

  std::string_view src_;
  std::vector<Token>* tokens_;
  std::string* stripped_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  Lexer(source, &tokens, nullptr).run();
  return tokens;
}

std::string strip_to_code(std::string_view source) {
  std::string stripped(source);
  Lexer(source, nullptr, &stripped).run();
  return stripped;
}

std::string string_value(const Token& token) {
  std::string_view text = token.text;
  // Raw string: R"delim( ... )delim" — return the raw contents.
  const std::size_t quote = text.find('"');
  if (quote == std::string_view::npos) return std::string(text);
  const bool raw = quote > 0 && text[quote - 1] == 'R';
  if (raw) {
    const std::size_t open = text.find('(', quote);
    const std::size_t close = text.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      return {};
    }
    return std::string(text.substr(open + 1, close - open - 1));
  }
  text.remove_prefix(quote + 1);
  if (!text.empty() && text.back() == '"') text.remove_suffix(1);
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out.push_back(text[i]);
      continue;
    }
    ++i;
    switch (text[i]) {
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case '0':
        out.push_back('\0');
        break;
      default:
        out.push_back(text[i]);  // \\ \" \' and everything else: literal
        break;
    }
  }
  return out;
}

}  // namespace retra::analyze

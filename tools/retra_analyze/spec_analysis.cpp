// Spec-consistency analysis (rules protocol-doc, metrics-doc and
// format-doc).
//
// Parses the machine side of each contract from tokens — the protocol
// constants/enums/StatsReply in net/protocol.hpp, the metric catalog in
// obs/metrics.hpp and the on-disk format constants in db/format.hpp —
// and the human side from the markdown tables in docs/PROTOCOL.md,
// docs/METRICS.md and docs/FORMAT.md, then diffs the two.  Prose is
// never compared; only names, numbers, kinds, units, components and
// paper-table tags.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis.hpp"
#include "tokenizer.hpp"

namespace retra::analyze {

namespace {

bool ident_is(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool punct_is(const Token& t, char c) {
  return t.kind == TokKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

// ---- numeric helpers ----------------------------------------------

// "0x314E5452u" / "1'000ull" / "20" -> value.  Returns false on
// non-numeric text.
bool parse_number(const std::string& text, std::uint64_t& out) {
  std::string digits;
  for (char c : text) {
    if (c == '\'') continue;
    digits.push_back(c);
  }
  while (!digits.empty()) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(digits.back())));
    if (c == 'u' || c == 'l' || c == 'z') {
      digits.pop_back();
      continue;
    }
    break;
  }
  if (digits.empty()) return false;
  try {
    std::size_t used = 0;
    out = std::stoull(digits, &used, 0);
    return used == digits.size();
  } catch (...) {
    return false;
  }
}

// Evaluates the initializer expression `= ... ;` starting after the
// '=': numbers combined with `+` and `<<` (the only operators the
// protocol constants use).  Returns false on anything else.
bool eval_initializer(const std::vector<Token>& toks, std::size_t i,
                      std::uint64_t& out) {
  bool have = false;
  std::uint64_t acc = 0;
  char pending = '+';
  while (i < toks.size() && !punct_is(toks[i], ';') &&
         !punct_is(toks[i], ',') && !punct_is(toks[i], '}')) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kNumber) {
      std::uint64_t v = 0;
      if (!parse_number(t.text, v)) return false;
      if (pending == '+') {
        acc += v;
      } else if (pending == '<') {
        acc <<= v;
      }
      have = true;
      ++i;
      continue;
    }
    if (punct_is(t, '+')) {
      pending = '+';
      ++i;
      continue;
    }
    if (punct_is(t, '<') && i + 1 < toks.size() &&
        punct_is(toks[i + 1], '<')) {
      pending = '<';
      i += 2;
      continue;
    }
    return false;  // identifiers, casts — out of scope
  }
  out = acc;
  return have;
}

// Finds `name = <expr>` at any position and evaluates the expression.
bool find_constant(const std::vector<Token>& toks, const char* name,
                   std::uint64_t& out, int* line = nullptr) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!ident_is(toks[i], name)) continue;
    if (!punct_is(toks[i + 1], '=')) continue;
    if (i + 2 < toks.size() && punct_is(toks[i + 2], '=')) continue;  // ==
    if (eval_initializer(toks, i + 2, out)) {
      if (line != nullptr) *line = toks[i].line;
      return true;
    }
  }
  return false;
}

// ---- enum / struct extraction -------------------------------------

struct EnumEntry {
  std::string name;
  std::uint64_t value = 0;
  int line = 0;
};

std::vector<EnumEntry> parse_enum(const std::vector<Token>& toks,
                                  const char* enum_name) {
  std::vector<EnumEntry> entries;
  std::size_t i = 0;
  for (; i < toks.size(); ++i) {
    if (!ident_is(toks[i], "enum")) continue;
    std::size_t j = i + 1;
    if (j < toks.size() &&
        (ident_is(toks[j], "class") || ident_is(toks[j], "struct"))) {
      ++j;
    }
    if (j < toks.size() && ident_is(toks[j], enum_name)) {
      i = j;
      break;
    }
  }
  if (i >= toks.size()) return entries;
  while (i < toks.size() && !punct_is(toks[i], '{')) ++i;
  ++i;
  std::uint64_t next_value = 0;
  while (i < toks.size() && !punct_is(toks[i], '}')) {
    if (toks[i].kind != TokKind::kIdent) {
      ++i;
      continue;
    }
    EnumEntry e;
    e.name = toks[i].text;
    e.line = toks[i].line;
    ++i;
    if (i < toks.size() && punct_is(toks[i], '=')) {
      std::uint64_t v = 0;
      eval_initializer(toks, i + 1, v);
      e.value = v;
      while (i < toks.size() && !punct_is(toks[i], ',') &&
             !punct_is(toks[i], '}')) {
        ++i;
      }
    } else {
      e.value = next_value;
    }
    next_value = e.value + 1;
    entries.push_back(std::move(e));
    if (i < toks.size() && punct_is(toks[i], ',')) ++i;
  }
  return entries;
}

// The uint64 scalar members of struct StatsReply, in declaration order
// (static members and the level_sizes vector excluded).
std::vector<EnumEntry> parse_stats_members(const std::vector<Token>& toks) {
  std::vector<EnumEntry> members;
  std::size_t i = 0;
  for (; i + 1 < toks.size(); ++i) {
    if (ident_is(toks[i], "struct") && ident_is(toks[i + 1], "StatsReply")) {
      break;
    }
  }
  if (i + 1 >= toks.size()) return members;
  while (i < toks.size() && !punct_is(toks[i], '{')) ++i;
  int depth = 0;
  std::vector<const Token*> segment;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (punct_is(t, '{')) {
      if (++depth > 1) continue;
      continue;
    }
    if (punct_is(t, '}')) {
      if (--depth == 0) break;
      continue;
    }
    if (depth != 1) continue;
    if (punct_is(t, ';')) {
      bool is_static = false, is_u64 = false, is_vector = false;
      const Token* name = nullptr;
      bool past_eq = false;
      for (const Token* s : segment) {
        if (s->text == "static") is_static = true;
        if (s->text == "uint64_t") is_u64 = true;
        if (s->text == "vector") is_vector = true;
        if (s->kind == TokKind::kPunct && s->text == "=") past_eq = true;
        if (s->kind == TokKind::kIdent && !past_eq) name = s;
      }
      if (!is_static && is_u64 && !is_vector && name != nullptr) {
        members.push_back({name->text, 0, name->line});
      }
      segment.clear();
      continue;
    }
    segment.push_back(&t);
  }
  return members;
}

// ---- markdown table parsing ---------------------------------------

struct DocRow {
  std::vector<std::string> cells;
  int line = 0;
};

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::string strip_backticks(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c != '`') out.push_back(c);
  }
  return out;
}

bool dashes_only(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c != '-' && c != ':' && c != ' ') return false;
  }
  return true;
}

// Data rows of every markdown table between the heading containing
// `section` and the next heading of equal-or-higher level.
std::vector<DocRow> table_rows(const std::vector<std::string>& lines,
                               const std::string& section) {
  std::vector<DocRow> rows;
  bool in_section = false;
  bool header_seen = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& raw = lines[i];
    if (raw.rfind("#", 0) == 0) {
      if (in_section) break;
      if (raw.find(section) != std::string::npos) in_section = true;
      continue;
    }
    if (!in_section) continue;
    const std::string t = trim(raw);
    if (t.empty() || t[0] != '|') {
      header_seen = false;
      continue;
    }
    std::vector<std::string> cells;
    std::size_t begin = 1;  // past leading '|'
    while (begin <= t.size()) {
      const std::size_t end = t.find('|', begin);
      if (end == std::string::npos) break;
      cells.push_back(trim(t.substr(begin, end - begin)));
      begin = end + 1;
    }
    if (cells.empty()) continue;
    if (!header_seen) {
      header_seen = true;  // first row of a table is its header
      continue;
    }
    if (dashes_only(cells[0])) continue;
    rows.push_back({std::move(cells), static_cast<int>(i) + 1});
  }
  return rows;
}

// kPing -> PING, kBatchQuery -> BATCH_QUERY
std::string upper_snake(const std::string& enum_name) {
  std::string out;
  for (std::size_t i = 1; i < enum_name.size(); ++i) {  // skip 'k'
    const char c = enum_name[i];
    if (std::isupper(static_cast<unsigned char>(c)) && !out.empty()) {
      out.push_back('_');
    }
    out.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

// kBadMagic -> bad-magic
std::string kebab(const std::string& enum_name) {
  std::string out;
  for (std::size_t i = 1; i < enum_name.size(); ++i) {
    const char c = enum_name[i];
    if (std::isupper(static_cast<unsigned char>(c)) && !out.empty()) {
      out.push_back('-');
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

const SourceFile* find_file(const AnalysisInput& input,
                            const std::string& suffix) {
  for (const SourceFile& f : input.files) {
    if (f.path.size() >= suffix.size() &&
        f.path.compare(f.path.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
      return &f;
    }
  }
  return nullptr;
}

void emit(std::vector<Finding>& findings,
          const std::vector<std::string>& lines, const std::string& file,
          int line, const char* rule, std::string message) {
  if (analyze_allowed(lines, line, rule)) return;
  findings.push_back({file, line, rule, std::move(message)});
}

// ---- protocol-doc -------------------------------------------------

void check_protocol(const AnalysisInput& input,
                    std::vector<Finding>& findings) {
  constexpr const char* kRule = "protocol-doc";
  constexpr const char* kDocPath = "docs/PROTOCOL.md";
  const SourceFile* hpp = find_file(input, "retra/net/protocol.hpp");
  if (hpp == nullptr) {
    findings.push_back({kDocPath, 1, kRule,
                        "net/protocol.hpp not found among analyzed files"});
    return;
  }
  if (input.protocol_doc.empty()) {
    findings.push_back(
        {hpp->path, 1, kRule, "docs/PROTOCOL.md is missing or empty"});
    return;
  }
  const std::vector<Token> toks = tokenize(hpp->content);
  const std::vector<std::string> hpp_lines = split_lines(hpp->content);
  const std::vector<std::string> doc_lines =
      split_lines(input.protocol_doc);

  // Headline constants, phrased exactly as the doc states them.
  std::uint64_t wire_size = 0, max_payload = 0, max_batch = 0, magic = 0;
  struct Phrase {
    bool found_const;
    std::string needle;
    const char* what;
    int line;
  };
  std::vector<Phrase> phrases;
  int line = 1;
  if (find_constant(toks, "kWireSize", wire_size, &line)) {
    phrases.push_back({true,
                       "fixed " + std::to_string(wire_size) + "-byte header",
                       "frame header size", line});
  }
  if (find_constant(toks, "kMaxPayloadBytes", max_payload, &line) &&
      max_payload % (1u << 20) == 0) {
    phrases.push_back({true,
                       std::to_string(max_payload >> 20) + " MiB",
                       "payload ceiling", line});
  }
  if (find_constant(toks, "kMaxBatchLookups", max_batch, &line)) {
    phrases.push_back({true, "**" + std::to_string(max_batch) + "**",
                       "batch-lookup ceiling", line});
  }
  if (find_constant(toks, "kMagic", magic, &line)) {
    char hex[16];
    std::snprintf(hex, sizeof hex, "0x%08llX",
                  static_cast<unsigned long long>(magic));
    phrases.push_back({true, hex, "frame magic", line});
  }
  for (const Phrase& p : phrases) {
    if (input.protocol_doc.find(p.needle) != std::string::npos) continue;
    emit(findings, hpp_lines, hpp->path, p.line, kRule,
         std::string("docs/PROTOCOL.md does not state the ") + p.what +
             " as '" + p.needle + "' (protocol.hpp changed, doc did not?)");
  }

  // Op table.
  const std::vector<EnumEntry> ops = parse_enum(toks, "Op");
  const std::vector<DocRow> op_rows = table_rows(doc_lines, "## Ops");
  std::map<std::string, const DocRow*> op_by_name;
  for (const DocRow& row : op_rows) {
    if (row.cells.size() >= 3) op_by_name[row.cells[0]] = &row;
  }
  for (const EnumEntry& op : ops) {
    const std::string doc_name = upper_snake(op.name);
    const auto it = op_by_name.find(doc_name);
    if (it == op_by_name.end()) {
      emit(findings, hpp_lines, hpp->path, op.line, kRule,
           "op " + doc_name + " (" + std::to_string(op.value) +
               ") is not in the docs/PROTOCOL.md op table");
      continue;
    }
    const DocRow& row = *it->second;
    std::uint64_t doc_value = 0;
    if (!parse_number(row.cells[1], doc_value) || doc_value != op.value) {
      emit(findings, doc_lines, kDocPath, row.line, kRule,
           "op " + doc_name + " documented as value " + row.cells[1] +
               " but protocol.hpp says " + std::to_string(op.value));
    }
    const std::string expect_dir = op.value < 65 ? "request" : "response";
    if (row.cells[2] != expect_dir) {
      emit(findings, doc_lines, kDocPath, row.line, kRule,
           "op " + doc_name + " documented as '" + row.cells[2] +
               "' but its value (" + std::to_string(op.value) +
               ") makes it a " + expect_dir);
    }
    op_by_name.erase(it);
  }
  for (const auto& [name, row] : op_by_name) {
    emit(findings, doc_lines, kDocPath, row->line, kRule,
         "op " + name + " documented but absent from enum Op");
  }

  // Error-code table.
  const std::vector<EnumEntry> errors = parse_enum(toks, "ErrorCode");
  const std::vector<DocRow> err_rows = table_rows(doc_lines, "### ERROR");
  std::map<std::uint64_t, const DocRow*> err_by_code;
  for (const DocRow& row : err_rows) {
    std::uint64_t code = 0;
    if (row.cells.size() >= 2 && parse_number(row.cells[0], code)) {
      err_by_code[code] = &row;
    }
  }
  for (const EnumEntry& err : errors) {
    if (err.name == "kNone") continue;  // success, never on the wire
    const std::string doc_name = kebab(err.name);
    const auto it = err_by_code.find(err.value);
    if (it == err_by_code.end()) {
      emit(findings, hpp_lines, hpp->path, err.line, kRule,
           "error code " + std::to_string(err.value) + " (" + doc_name +
               ") is not in the docs/PROTOCOL.md error table");
      continue;
    }
    const std::string documented = strip_backticks(it->second->cells[1]);
    if (documented != doc_name) {
      emit(findings, doc_lines, kDocPath, it->second->line, kRule,
           "error code " + std::to_string(err.value) + " documented as '" +
               documented + "' but protocol.hpp names it '" + doc_name +
               "'");
    }
    err_by_code.erase(it);
  }
  for (const auto& [code, row] : err_by_code) {
    emit(findings, doc_lines, kDocPath, row->line, kRule,
         "error code " + std::to_string(code) +
             " documented but absent from enum ErrorCode");
  }

  // STATS counter block: doc field list must equal the StatsReply
  // uint64 members, same order, and kCounterCount must agree.
  const std::vector<EnumEntry> members = parse_stats_members(toks);
  std::uint64_t counter_count = 0;
  int count_line = 1;
  if (find_constant(toks, "kCounterCount", counter_count, &count_line) &&
      counter_count != members.size()) {
    emit(findings, hpp_lines, hpp->path, count_line, kRule,
         "StatsReply::kCounterCount is " + std::to_string(counter_count) +
             " but the struct has " + std::to_string(members.size()) +
             " uint64 counters");
  }
  if (input.protocol_doc.find(std::to_string(members.size()) +
                              " u64 counters") == std::string::npos) {
    emit(findings, doc_lines, kDocPath, 1, kRule,
         "docs/PROTOCOL.md does not state the STATS_REPLY counter block "
         "as '" +
             std::to_string(members.size()) + " u64 counters'");
  }
  const std::vector<DocRow> stat_rows = table_rows(doc_lines, "### STATS");
  std::vector<std::pair<std::string, int>> doc_fields;
  for (const DocRow& row : stat_rows) {
    if (!row.cells.empty() && row.cells[0].rfind("`", 0) == 0) {
      doc_fields.emplace_back(strip_backticks(row.cells[0]), row.line);
    }
  }
  const std::size_t common = std::min(members.size(), doc_fields.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (doc_fields[i].first == members[i].name) continue;
    emit(findings, doc_lines, kDocPath, doc_fields[i].second, kRule,
         "STATS_REPLY field " + std::to_string(i) + " documented as '" +
             doc_fields[i].first + "' but StatsReply declares '" +
             members[i].name + "'");
  }
  for (std::size_t i = common; i < members.size(); ++i) {
    emit(findings, hpp_lines, hpp->path, members[i].line, kRule,
         "StatsReply counter '" + members[i].name +
             "' is not in the docs/PROTOCOL.md STATS field table");
  }
  for (std::size_t i = common; i < doc_fields.size(); ++i) {
    emit(findings, doc_lines, kDocPath, doc_fields[i].second, kRule,
         "STATS_REPLY field '" + doc_fields[i].first +
             "' documented but absent from StatsReply");
  }
}

// ---- metrics-doc --------------------------------------------------

struct CatalogEntry {
  std::string name, kind, unit, component, table;
  int line = 0;
};

const std::map<std::string, std::string> kKindNames = {
    {"kCounter", "counter"},
    {"kGauge", "gauge"},
    {"kTimer", "timer"},
    {"kHistogram", "histogram"}};

std::vector<CatalogEntry> parse_catalog(const std::vector<Token>& toks) {
  std::vector<CatalogEntry> entries;
  std::size_t i = 0;
  for (; i + 1 < toks.size(); ++i) {
    if (ident_is(toks[i], "kCatalog") && punct_is(toks[i + 1], '=')) break;
  }
  if (i + 1 >= toks.size()) return entries;
  while (i < toks.size() && !punct_is(toks[i], '{')) ++i;  // outer {
  ++i;
  if (i < toks.size() && punct_is(toks[i], '{')) ++i;  // array {
  while (i < toks.size() && punct_is(toks[i], '{')) {
    CatalogEntry e;
    e.line = toks[i].line;
    ++i;
    // Field order mirrors struct Desc: name, kind, unit, component,
    // table, help.  Adjacent string literals concatenate.
    int field = 0;
    while (i < toks.size() && !punct_is(toks[i], '}')) {
      const Token& t = toks[i];
      if (punct_is(t, ',')) {
        ++field;
        ++i;
        continue;
      }
      if (t.kind == TokKind::kString) {
        const std::string piece = string_value(t);
        switch (field) {
          case 0:
            e.name += piece;
            break;
          case 2:
            e.unit += piece;
            break;
          case 3:
            e.component += piece;
            break;
          case 4:
            e.table += piece;
            break;
          default:
            break;  // help text — never compared
        }
      } else if (t.kind == TokKind::kIdent && field == 1) {
        const auto it = kKindNames.find(t.text);
        if (it != kKindNames.end()) e.kind = it->second;
      }
      ++i;
    }
    ++i;  // past entry '}'
    if (i < toks.size() && punct_is(toks[i], ',')) ++i;
    entries.push_back(std::move(e));
  }
  return entries;
}

void check_metrics(const AnalysisInput& input,
                   std::vector<Finding>& findings) {
  constexpr const char* kRule = "metrics-doc";
  constexpr const char* kDocPath = "docs/METRICS.md";
  const SourceFile* hpp = find_file(input, "retra/obs/metrics.hpp");
  if (hpp == nullptr) {
    findings.push_back({kDocPath, 1, kRule,
                        "obs/metrics.hpp not found among analyzed files"});
    return;
  }
  if (input.metrics_doc.empty()) {
    findings.push_back(
        {hpp->path, 1, kRule, "docs/METRICS.md is missing or empty"});
    return;
  }
  const std::vector<CatalogEntry> catalog =
      parse_catalog(tokenize(hpp->content));
  const std::vector<std::string> hpp_lines = split_lines(hpp->content);
  const std::vector<std::string> doc_lines = split_lines(input.metrics_doc);
  const std::vector<DocRow> rows =
      table_rows(doc_lines, "## Metric catalog");
  std::map<std::string, const DocRow*> row_by_name;
  for (const DocRow& row : rows) {
    if (row.cells.size() >= 5) {
      row_by_name[strip_backticks(row.cells[0])] = &row;
    }
  }
  for (const CatalogEntry& e : catalog) {
    const auto it = row_by_name.find(e.name);
    if (it == row_by_name.end()) {
      emit(findings, hpp_lines, hpp->path, e.line, kRule,
           "metric '" + e.name +
               "' is not in the docs/METRICS.md catalog table");
      continue;
    }
    const DocRow& row = *it->second;
    const struct {
      const char* what;
      const std::string* expect;
      const std::string* got;
    } fields[] = {
        {"kind", &e.kind, &row.cells[1]},
        {"unit", &e.unit, &row.cells[2]},
        {"component", &e.component, &row.cells[3]},
        {"paper table", &e.table, &row.cells[4]},
    };
    for (const auto& f : fields) {
      if (*f.expect == *f.got) continue;
      emit(findings, doc_lines, kDocPath, row.line, kRule,
           "metric '" + e.name + "' " + f.what + " documented as '" +
               *f.got + "' but the catalog says '" + *f.expect + "'");
    }
    row_by_name.erase(it);
  }
  for (const auto& [name, row] : row_by_name) {
    emit(findings, doc_lines, kDocPath, row->line, kRule,
         "metric '" + name + "' documented but absent from the obs catalog");
  }
}

// ---- format-doc ---------------------------------------------------

// "2^40" for large powers of two, the decimal digits otherwise — how
// FORMAT.md states the structural limits (4096 stays decimal, the
// unwieldy allocation bounds read as powers).
std::string pow2_or_decimal(std::uint64_t value) {
  if (value != 0 && (value & (value - 1)) == 0) {
    int log2 = 0;
    while ((value >> log2) != 1) ++log2;
    if (log2 >= 20) return "2^" + std::to_string(log2);
  }
  return std::to_string(value);
}

// `kMagic01 = "RTRADB01"` string constants: name -> (value, line).
std::vector<std::pair<std::string, EnumEntry>> parse_magics(
    const std::vector<Token>& toks) {
  std::vector<std::pair<std::string, EnumEntry>> magics;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        toks[i].text.rfind("kMagic", 0) != 0) {
      continue;
    }
    if (!punct_is(toks[i + 1], '=')) continue;
    if (toks[i + 2].kind != TokKind::kString) continue;
    magics.emplace_back(string_value(toks[i + 2]),
                        EnumEntry{toks[i].text, 0, toks[i].line});
  }
  return magics;
}

void check_format(const AnalysisInput& input,
                  std::vector<Finding>& findings) {
  constexpr const char* kRule = "format-doc";
  constexpr const char* kDocPath = "docs/FORMAT.md";
  const SourceFile* hpp = find_file(input, "retra/db/format.hpp");
  // Repositories without the database format layer (test fixtures) have
  // neither side of the contract; nothing to check.
  if (hpp == nullptr && input.format_doc.empty()) return;
  if (hpp == nullptr) {
    findings.push_back({kDocPath, 1, kRule,
                        "db/format.hpp not found among analyzed files"});
    return;
  }
  if (input.format_doc.empty()) {
    findings.push_back(
        {hpp->path, 1, kRule, "docs/FORMAT.md is missing or empty"});
    return;
  }
  const std::vector<Token> toks = tokenize(hpp->content);
  const std::vector<std::string> hpp_lines = split_lines(hpp->content);
  const std::vector<std::string> doc_lines = split_lines(input.format_doc);

  // Structural limits, phrased exactly as the doc states them.
  struct Phrase {
    const char* constant;
    const char* prefix;
    const char* suffix;
    const char* what;
  };
  static constexpr Phrase kPhrases[] = {
      {"kMagicBytes", "", "-byte magic", "magic width"},
      {"kMaxLevels", "at most ", " levels", "level-count ceiling"},
      {"kMaxLevelSize", "at most ", " positions", "level-size ceiling"},
      {"kDefaultBlockPositions", "**", "**", "default block size"},
      {"kMaxBlockPositions", "at most ", " positions per block",
       "block-size ceiling"},
      {"kMaxLevelBlocks", "at most ", " blocks", "block-count ceiling"},
      {"kFreqMaxSymbols", "at most ", " distinct", "symbol-table ceiling"},
      {"kFreqMaxCodeBits", "1..", "", "code-length range"},
  };
  for (const Phrase& p : kPhrases) {
    std::uint64_t value = 0;
    int line = 1;
    if (!find_constant(toks, p.constant, value, &line)) continue;
    const std::string needle =
        p.prefix + pow2_or_decimal(value) + p.suffix;
    if (input.format_doc.find(needle) != std::string::npos) continue;
    emit(findings, hpp_lines, hpp->path, line, kRule,
         std::string("docs/FORMAT.md does not state the ") + p.what +
             " as '" + needle + "' (format.hpp changed, doc did not?)");
  }

  // Version-negotiation table: one row per magic, both directions.
  const auto magics = parse_magics(toks);
  const std::vector<DocRow> version_rows =
      table_rows(doc_lines, "## Version negotiation");
  std::map<std::string, const DocRow*> row_by_magic;
  for (const DocRow& row : version_rows) {
    if (row.cells.size() >= 2) {
      row_by_magic[strip_backticks(row.cells[0])] = &row;
    }
  }
  for (const auto& [magic, entry] : magics) {
    const auto it = row_by_magic.find(magic);
    if (it == row_by_magic.end()) {
      emit(findings, hpp_lines, hpp->path, entry.line, kRule,
           "magic '" + magic +
               "' is not in the docs/FORMAT.md version-negotiation table");
      continue;
    }
    // The magic's trailing digits are the version number the row must
    // state ("RTRADB03" -> 3).
    std::uint64_t suffix = 0, documented = 0;
    if (magic.size() >= 2 &&
        parse_number(magic.substr(magic.size() - 2), suffix) &&
        (!parse_number(it->second->cells[1], documented) ||
         documented != suffix)) {
      emit(findings, doc_lines, kDocPath, it->second->line, kRule,
           "magic '" + magic + "' documented as version " +
               it->second->cells[1] + " but its magic spells version " +
               std::to_string(suffix));
    }
    row_by_magic.erase(it);
  }
  for (const auto& [magic, row] : row_by_magic) {
    emit(findings, doc_lines, kDocPath, row->line, kRule,
         "magic '" + magic +
             "' documented but absent from db/format.hpp");
  }

  // Block-scheme table: tag + kebab name per enumerator, both
  // directions, and the count constant.
  const std::vector<EnumEntry> schemes = parse_enum(toks, "BlockScheme");
  std::uint64_t scheme_count = 0;
  int count_line = 1;
  if (find_constant(toks, "kBlockSchemeCount", scheme_count, &count_line) &&
      scheme_count != schemes.size()) {
    emit(findings, hpp_lines, hpp->path, count_line, kRule,
         "kBlockSchemeCount is " + std::to_string(scheme_count) +
             " but enum BlockScheme has " + std::to_string(schemes.size()) +
             " enumerators");
  }
  const std::vector<DocRow> scheme_rows =
      table_rows(doc_lines, "## Block schemes");
  std::map<std::uint64_t, const DocRow*> row_by_tag;
  for (const DocRow& row : scheme_rows) {
    std::uint64_t tag = 0;
    if (row.cells.size() >= 2 && parse_number(row.cells[0], tag)) {
      row_by_tag[tag] = &row;
    }
  }
  for (const EnumEntry& scheme : schemes) {
    const std::string doc_name = kebab(scheme.name);
    const auto it = row_by_tag.find(scheme.value);
    if (it == row_by_tag.end()) {
      emit(findings, hpp_lines, hpp->path, scheme.line, kRule,
           "scheme tag " + std::to_string(scheme.value) + " (" + doc_name +
               ") is not in the docs/FORMAT.md block-scheme table");
      continue;
    }
    const std::string documented = strip_backticks(it->second->cells[1]);
    if (documented != doc_name) {
      emit(findings, doc_lines, kDocPath, it->second->line, kRule,
           "scheme tag " + std::to_string(scheme.value) +
               " documented as '" + documented +
               "' but format.hpp names it '" + doc_name + "'");
    }
    row_by_tag.erase(it);
  }
  for (const auto& [tag, row] : row_by_tag) {
    emit(findings, doc_lines, kDocPath, row->line, kRule,
         "scheme tag " + std::to_string(tag) +
             " documented but absent from enum BlockScheme");
  }
}

}  // namespace

std::vector<Finding> analyze_spec(const AnalysisInput& input) {
  std::vector<Finding> findings;
  check_protocol(input, findings);
  check_metrics(input, findings);
  check_format(input, findings);
  return findings;
}

std::vector<Finding> analyze_format(const AnalysisInput& input) {
  std::vector<Finding> findings;
  check_format(input, findings);
  return findings;
}

}  // namespace retra::analyze

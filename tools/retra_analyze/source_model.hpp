// Repo-wide source model shared by retra_analyze and retra_lint: the
// filesystem walk, include-edge extraction, module classification, and
// the suppression-directive check.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace retra::analyze {

/// One loaded source file.  `path` is repo-relative with forward
/// slashes (e.g. "src/net/src/server.cpp") so analyses can classify by
/// prefix.
struct SourceFile {
  std::string path;
  std::string content;
};

/// True for the extensions the analyses understand (.hpp/.cpp).
bool analyzable_file(const std::filesystem::path& path);

/// Recursively collects analyzable files under `root`, skipping build
/// output and VCS directories.  `root` may also be a single file.
void collect_files(const std::filesystem::path& root,
                   std::vector<std::filesystem::path>& out);

/// Whole-file read (binary, no transformation).
std::string read_file(const std::filesystem::path& path);

/// Splits on '\n' (no newline translation; final unterminated line kept).
std::vector<std::string> split_lines(std::string_view content);

/// True when `lines[line-1]` or the line above carries
/// `retra-analyze: allow(rule)`.
bool analyze_allowed(const std::vector<std::string>& lines, int line,
                     std::string_view rule);

/// One `#include` directive.
struct IncludeEdge {
  std::string target;  // e.g. "retra/net/server.hpp" or "vector"
  int line = 0;
  bool angled = false;  // <...> vs "..."
};

/// Every #include of the file, in order.
std::vector<IncludeEdge> includes_of(std::string_view content);

/// Module of a repo-relative path: "support", "net", ... for files
/// under src/<module>/; "tools", "tests", "bench", "examples" for the
/// top layer; "" when unclassifiable.
std::string module_of_path(std::string_view repo_rel_path);

/// Module of an include target: "retra/net/server.hpp" -> "net";
/// "" for non-retra targets.
std::string module_of_include(std::string_view target);

}  // namespace retra::analyze

#include <algorithm>
#include <filesystem>

#include "analysis.hpp"

namespace retra::analyze {

std::vector<Finding> analyze_all(const AnalysisInput& input) {
  std::vector<Finding> findings = analyze_locks(input);
  for (auto* more : {analyze_layering, analyze_spec}) {
    std::vector<Finding> extra = more(input);
    findings.insert(findings.end(), std::make_move_iterator(extra.begin()),
                    std::make_move_iterator(extra.end()));
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

AnalysisInput load_repo(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  AnalysisInput input;
  std::vector<fs::path> paths;
  for (const char* dir : {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path sub = root / dir;
    if (fs::is_directory(sub)) collect_files(sub, paths);
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    input.files.push_back(
        {fs::relative(path, root).generic_string(), read_file(path)});
  }
  const fs::path protocol_doc = root / "docs" / "PROTOCOL.md";
  const fs::path metrics_doc = root / "docs" / "METRICS.md";
  const fs::path format_doc = root / "docs" / "FORMAT.md";
  if (fs::is_regular_file(protocol_doc)) {
    input.protocol_doc = read_file(protocol_doc);
  }
  if (fs::is_regular_file(metrics_doc)) {
    input.metrics_doc = read_file(metrics_doc);
  }
  if (fs::is_regular_file(format_doc)) {
    input.format_doc = read_file(format_doc);
  }
  return input;
}

}  // namespace retra::analyze

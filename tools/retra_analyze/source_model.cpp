#include "source_model.hpp"

#include <fstream>
#include <sstream>

namespace retra::analyze {

namespace {

bool skipped_dir(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  // "scratch" directories are out-of-core spill space (--scratch-dir):
  // RTRADB level files and drain-queue runs, never source.
  const bool scratch =
      name == "scratch" || name.rfind("retra_scratch", 0) == 0 ||
      (name.size() > 8 &&
       name.compare(name.size() - 8, 8, "_scratch") == 0);
  return name == "build" || name == ".git" ||
         name.rfind("cmake-build", 0) == 0 || scratch;
}

}  // namespace

bool analyzable_file(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

void collect_files(const std::filesystem::path& root,
                   std::vector<std::filesystem::path>& out) {
  if (std::filesystem::is_regular_file(root)) {
    if (analyzable_file(root)) out.push_back(root);
    return;
  }
  std::filesystem::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory() && skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && analyzable_file(it->path())) {
      out.push_back(it->path());
    }
  }
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> split_lines(std::string_view content) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin <= content.size()) {
    const std::size_t end = content.find('\n', begin);
    if (end == std::string_view::npos) {
      lines.emplace_back(content.substr(begin));
      break;
    }
    lines.emplace_back(content.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

bool analyze_allowed(const std::vector<std::string>& lines, int line,
                     std::string_view rule) {
  const std::string needle =
      "retra-analyze: allow(" + std::string(rule) + ")";
  for (int probe = line - 1; probe >= line - 2 && probe >= 0; --probe) {
    if (static_cast<std::size_t>(probe) >= lines.size()) continue;
    if (lines[static_cast<std::size_t>(probe)].find(needle) !=
        std::string::npos) {
      return true;
    }
  }
  return false;
}

std::vector<IncludeEdge> includes_of(std::string_view content) {
  std::vector<IncludeEdge> edges;
  const std::vector<std::string> lines = split_lines(content);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& raw = lines[i];
    std::size_t pos = raw.find_first_not_of(" \t");
    if (pos == std::string::npos || raw[pos] != '#') continue;
    pos = raw.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || raw.compare(pos, 7, "include") != 0) {
      continue;
    }
    pos = raw.find_first_not_of(" \t", pos + 7);
    if (pos == std::string::npos) continue;
    const char open = raw[pos];
    if (open != '"' && open != '<') continue;
    const char close = open == '"' ? '"' : '>';
    const std::size_t end = raw.find(close, pos + 1);
    if (end == std::string::npos) continue;
    IncludeEdge edge;
    edge.target = raw.substr(pos + 1, end - pos - 1);
    edge.line = static_cast<int>(i) + 1;
    edge.angled = open == '<';
    edges.push_back(std::move(edge));
  }
  return edges;
}

std::string module_of_path(std::string_view repo_rel_path) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (begin < repo_rel_path.size()) {
    const std::size_t end = repo_rel_path.find('/', begin);
    if (end == std::string_view::npos) {
      parts.push_back(repo_rel_path.substr(begin));
      break;
    }
    parts.push_back(repo_rel_path.substr(begin, end - begin));
    begin = end + 1;
  }
  if (parts.empty()) return {};
  if (parts[0] == "src") {
    return parts.size() > 1 ? std::string(parts[1]) : std::string{};
  }
  if (parts[0] == "tools" || parts[0] == "tests" || parts[0] == "bench" ||
      parts[0] == "examples") {
    return std::string(parts[0]);
  }
  return {};
}

std::string module_of_include(std::string_view target) {
  constexpr std::string_view kPrefix = "retra/";
  if (target.rfind(kPrefix, 0) != 0) return {};
  const std::string_view rest = target.substr(kPrefix.size());
  const std::size_t slash = rest.find('/');
  return std::string(slash == std::string_view::npos ? rest
                                                     : rest.substr(0, slash));
}

}  // namespace retra::analyze

// retra_analyze — cross-file static analysis for the retra codebase.
//
//   retra_analyze [--analysis=lock,layering,spec,format-doc] <repo-root>
//
// Walks src/, tools/, tests/, bench/ and examples/ under the repo root,
// loads docs/PROTOCOL.md, docs/METRICS.md and docs/FORMAT.md, and runs
// the selected analyses (default: all; `spec` covers all three *-doc
// rules, `format-doc` just the on-disk-format one).  Findings print as
//
//   <file>:<line>: [<rule>] <message>
//
// Exit status: 0 clean, 1 findings, 2 usage error.  See
// docs/ANALYSIS.md for the rules and the suppression syntax.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace {

namespace fs = std::filesystem;
using namespace retra::analyze;

int usage() {
  std::fprintf(stderr,
               "usage: retra_analyze "
               "[--analysis=lock,layering,spec,format-doc] <repo-root>\n");
  return 2;
}

bool parse_analyses(const std::string& list, bool& lock, bool& layering,
                    bool& spec, bool& format) {
  lock = layering = spec = format = false;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string name = list.substr(begin, end - begin);
    if (name == "lock") {
      lock = true;
    } else if (name == "layering") {
      layering = true;
    } else if (name == "spec") {
      spec = true;
    } else if (name == "format-doc") {
      format = true;
    } else if (!name.empty()) {
      std::fprintf(stderr, "retra_analyze: unknown analysis '%s'\n",
                   name.c_str());
      return false;
    }
    begin = end + 1;
  }
  return lock || layering || spec || format;
}

}  // namespace

int main(int argc, char** argv) {
  bool lock = true, layering = true, spec = true, format = false;
  const char* root_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--analysis=", 11) == 0) {
      if (!parse_analyses(arg + 11, lock, layering, spec, format)) {
        return usage();
      }
      continue;
    }
    if (arg[0] == '-') return usage();
    if (root_arg != nullptr) return usage();
    root_arg = arg;
  }
  if (root_arg == nullptr) return usage();
  const fs::path root(root_arg);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "retra_analyze: not a directory: %s\n", root_arg);
    return 2;
  }

  const AnalysisInput input = load_repo(root);

  std::vector<Finding> findings;
  if (lock && layering && spec) {
    findings = analyze_all(input);
  } else {
    if (lock) {
      auto f = analyze_locks(input);
      findings.insert(findings.end(), f.begin(), f.end());
    }
    if (layering) {
      auto f = analyze_layering(input);
      findings.insert(findings.end(), f.begin(), f.end());
    }
    if (spec) {
      auto f = analyze_spec(input);
      findings.insert(findings.end(), f.begin(), f.end());
    }
    if (format && !spec) {  // spec already ran the format-doc rule
      auto f = analyze_format(input);
      findings.insert(findings.end(), f.begin(), f.end());
    }
  }
  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("retra_analyze: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("retra_analyze: %zu files analyzed, clean\n",
              input.files.size());
  return 0;
}

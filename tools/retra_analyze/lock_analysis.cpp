// Lock-discipline analysis (rules lock-coverage and io-blocking).
//
// Lexical, token-driven class parsing: good enough to segment member
// declarations from member functions in this codebase's style, without
// a real C++ parser.  Known approximations are documented inline; the
// `// retra-analyze: allow(lock-coverage)` escape covers the rest.

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis.hpp"
#include "tokenizer.hpp"

namespace retra::analyze {

namespace {

const std::unordered_set<std::string> kStdMutexTypes = {
    "mutex",           "shared_mutex",       "timed_mutex",
    "recursive_mutex", "recursive_timed_mutex", "shared_timed_mutex"};
const std::unordered_set<std::string> kAnnotatedMutexTypes = {"Mutex",
                                                              "SharedMutex"};
const std::unordered_set<std::string> kExemptTypes = {
    "atomic",       "atomic_flag", "condition_variable",
    "condition_variable_any", "CondVar", "once_flag"};
const std::unordered_set<std::string> kMemberAnnotations = {
    "RETRA_GUARDED_BY", "RETRA_PT_GUARDED_BY", "RETRA_NOT_GUARDED"};
// Identifiers that may not appear inside a RETRA_IO_THREAD_ONLY body:
// sleeps, blocking waits and joins, synchronous multiplexing, blocking
// connection setup / name resolution, process spawning, and disk
// flushes.  epoll_wait / accept4 / nonblocking read/send are distinct
// identifiers and stay allowed.
const std::unordered_set<std::string> kBlockingCalls = {
    "sleep",       "usleep",     "nanosleep", "clock_nanosleep",
    "sleep_for",   "sleep_until", "select",    "pselect",
    "poll",        "ppoll",       "system",    "popen",
    "fork",        "connect",     "accept",    "getaddrinfo",
    "gethostbyname", "wait",      "wait_for",  "wait_until",
    "arrive_and_wait", "join",    "fsync",     "fdatasync",
    "flock",       "lockf"};

struct MemberInfo {
  std::string name;
  int line = 0;
  bool is_mutex = false;
  bool std_mutex = false;  // std:: flavoured lockable type
  bool exempt = false;     // const / atomic / condvar / once_flag
  bool annotated = false;
};

bool ident_is(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool punct_is(const Token& t, char c) {
  return t.kind == TokKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

class LockScanner {
 public:
  LockScanner(const SourceFile& file, std::vector<Finding>& findings)
      : file_(file),
        toks_(tokenize(file.content)),
        lines_(split_lines(file.content)),
        findings_(findings) {
    const std::string mod = module_of_path(file.path);
    in_src_ = file.path.rfind("src/", 0) == 0;
    in_support_ = in_src_ && mod == "support";
  }

  void run() {
    // Pass 1: type scan (lock-coverage).
    std::size_t i = 0;
    while (i < toks_.size()) {
      if (at_type_keyword(i)) {
        i = scan_type(i);
        continue;
      }
      ++i;
    }
    // Pass 2: independent linear sweep for I/O-thread markers, so
    // in-class function definitions are covered too.
    std::size_t k = 0;
    while (k < toks_.size()) {
      if (ident_is(toks_[k], "RETRA_IO_THREAD_ONLY")) {
        k = scan_io_body(k);
        continue;
      }
      ++k;
    }
  }

 private:
  bool at_type_keyword(std::size_t i) const {
    const Token& t = toks_[i];
    if (!(ident_is(t, "class") || ident_is(t, "struct") ||
          ident_is(t, "union"))) {
      return false;
    }
    // `enum class` / `enum struct` are enums, not classes.
    return i == 0 || !ident_is(toks_[i - 1], "enum");
  }

  std::size_t skip_group(std::size_t i, char open, char close) const {
    // toks_[i] is `open`; returns the index after the matching close.
    int depth = 0;
    for (; i < toks_.size(); ++i) {
      if (punct_is(toks_[i], open)) ++depth;
      if (punct_is(toks_[i], close) && --depth == 0) return i + 1;
    }
    return i;
  }

  std::size_t skip_to_semicolon(std::size_t i) const {
    // Skips to past the next `;` at brace/paren depth 0 relative to the
    // start, stepping over nested groups.
    while (i < toks_.size()) {
      if (punct_is(toks_[i], '{')) {
        i = skip_group(i, '{', '}');
        continue;
      }
      if (punct_is(toks_[i], '(')) {
        i = skip_group(i, '(', ')');
        continue;
      }
      if (punct_is(toks_[i], ';')) return i + 1;
      ++i;
    }
    return i;
  }

  std::size_t skip_template_header(std::size_t i) const {
    // toks_[i] == "template"; skips the <...> group by angle counting
    // (adequate for this repo's template headers).
    ++i;
    if (i >= toks_.size() || !punct_is(toks_[i], '<')) return i;
    int depth = 0;
    for (; i < toks_.size(); ++i) {
      if (punct_is(toks_[i], '<')) ++depth;
      if (punct_is(toks_[i], '>') && --depth == 0) return i + 1;
    }
    return i;
  }

  // Scans a class/struct/union starting at the keyword.  Parses the
  // body when one follows; returns the index after the declaration.
  std::size_t scan_type(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kIdent) {
        // Attribute-style macro (RETRA_CAPABILITY("..."), alignas(64)):
        // skip its argument group.
        if (j + 1 < toks_.size() && punct_is(toks_[j + 1], '(') &&
            (t.text.rfind("RETRA_", 0) == 0 || t.text == "alignas")) {
          j = skip_group(j + 1, '(', ')');
          continue;
        }
        if (name.empty() && t.text != "final") name = t.text;
        ++j;
        continue;
      }
      if (punct_is(t, ':') && j + 1 < toks_.size() &&
          punct_is(toks_[j + 1], ':')) {
        // Scope operator in an out-of-line name (Server::Impl).
        if (j + 2 < toks_.size() &&
            toks_[j + 2].kind == TokKind::kIdent) {
          name += "::" + toks_[j + 2].text;
        }
        j += 3;
        continue;
      }
      if (punct_is(t, '{')) {
        return name.empty() ? skip_group(j, '{', '}')
                            : parse_class_body(name, j);
      }
      if (punct_is(t, ';') || punct_is(t, '(') || punct_is(t, '=')) {
        // Forward declaration, function parameter, or alias target.
        return j + 1;
      }
      ++j;  // base clause tokens, '<' of a specialization, etc.
    }
    return j;
  }

  // Parses one class body starting at its '{'; returns the index after
  // the closing '}'.
  std::size_t parse_class_body(const std::string& name, std::size_t i) {
    const std::size_t body_end = skip_group(i, '{', '}');
    ++i;  // past '{'
    std::vector<MemberInfo> members;
    while (i < body_end - 1 && i < toks_.size()) {
      const Token& t = toks_[i];
      if (punct_is(t, ';')) {
        ++i;
        continue;
      }
      if (punct_is(t, '}') || punct_is(t, '{')) {
        // Stray nesting the segment parser already consumed.
        ++i;
        continue;
      }
      if (t.kind == TokKind::kIdent &&
          (t.text == "public" || t.text == "private" ||
           t.text == "protected") &&
          i + 1 < toks_.size() && punct_is(toks_[i + 1], ':') &&
          !(i + 2 < toks_.size() && punct_is(toks_[i + 2], ':'))) {
        i += 2;
        continue;
      }
      if (at_type_keyword(i)) {
        i = scan_type(i);
        continue;
      }
      if (ident_is(t, "enum")) {
        i = skip_to_semicolon(i);
        continue;
      }
      if (ident_is(t, "template")) {
        i = skip_template_header(i);
        continue;
      }
      if (ident_is(t, "using") || ident_is(t, "typedef") ||
          ident_is(t, "friend") || ident_is(t, "static_assert")) {
        i = skip_to_semicolon(i);
        continue;
      }
      i = parse_member_segment(i, members);
    }
    evaluate(name, members);
    return body_end;
  }

  // Parses one member declaration or member function starting at `i`;
  // appends data members to `members`.  Returns the index after the
  // segment.
  std::size_t parse_member_segment(std::size_t i,
                                   std::vector<MemberInfo>& members) {
    MemberInfo info;
    info.line = toks_[i].line;
    std::vector<const Token*> decl;
    bool is_function = false;
    bool is_static = false;
    while (i < toks_.size()) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kIdent) {
        if (kMemberAnnotations.contains(t.text)) info.annotated = true;
        if (t.text == "operator") is_function = true;
        if (t.text == "static" || t.text == "constexpr") is_static = true;
        // Annotation / attribute macro: its argument group is not a
        // function parameter list.
        if (i + 1 < toks_.size() && punct_is(toks_[i + 1], '(') &&
            (t.text.rfind("RETRA_", 0) == 0 || t.text == "alignas")) {
          decl.push_back(&t);
          i = skip_group(i + 1, '(', ')');
          continue;
        }
        decl.push_back(&t);
        ++i;
        continue;
      }
      if (punct_is(t, '(') && !is_function) {
        is_function = true;
        i = skip_group(i, '(', ')');
        continue;
      }
      if (punct_is(t, '(')) {
        i = skip_group(i, '(', ')');
        continue;
      }
      if (punct_is(t, '{')) {
        if (is_function) return skip_group(i, '{', '}');
        // Brace initializer of a data member.
        i = skip_group(i, '{', '}');
        continue;
      }
      if (punct_is(t, '=')) {
        // `= default`, `= delete`, `= 0` (pure), or a member
        // initializer: the declarator is complete either way.
        return finish_member(skip_to_semicolon(i), info, decl, is_function,
                             is_static, members);
      }
      if (punct_is(t, ';')) {
        return finish_member(i + 1, info, decl, is_function, is_static,
                             members);
      }
      ++i;  // type tokens, '<' '>' '&' '*' '[' ']' ',' '~' ':' etc.
    }
    return i;
  }

  std::size_t finish_member(std::size_t next, MemberInfo& info,
                            const std::vector<const Token*>& decl,
                            bool is_function, bool is_static,
                            std::vector<MemberInfo>& members) {
    if (is_function || is_static || decl.empty()) return next;
    // `decl` holds only identifier tokens (puncts such as the "::" pair
    // are not recorded), so "std" directly followed by a lockable type
    // name means a std:: flavoured mutex.
    for (std::size_t k = 0; k < decl.size(); ++k) {
      const std::string& text = decl[k]->text;
      const bool last = k + 1 == decl.size();
      if (text == "std" && k + 1 < decl.size() &&
          kStdMutexTypes.contains(decl[k + 1]->text)) {
        info.is_mutex = true;
        info.std_mutex = true;
      }
      if (kAnnotatedMutexTypes.contains(text)) info.is_mutex = true;
      if (!last && kStdMutexTypes.contains(text) && k > 0 &&
          decl[k - 1]->text != "std") {
        // Bare `mutex m_;` style (no std::) — still a lockable member.
        info.is_mutex = true;
        info.std_mutex = true;
      }
      if (kExemptTypes.contains(text)) info.exempt = true;
    }
    if (decl.front()->text == "const") info.exempt = true;
    // Declarator name: last identifier that is not an annotation macro.
    for (auto it = decl.rbegin(); it != decl.rend(); ++it) {
      if (!kMemberAnnotations.contains((*it)->text) &&
          (*it)->text.rfind("RETRA_", 0) != 0) {
        info.name = (*it)->text;
        break;
      }
    }
    members.push_back(info);
    return next;
  }

  void evaluate(const std::string& name,
                const std::vector<MemberInfo>& members) {
    if (!in_src_) return;  // coverage is a src/ contract
    bool has_mutex = false;
    for (const MemberInfo& m : members) has_mutex = has_mutex || m.is_mutex;
    for (const MemberInfo& m : members) {
      if (m.is_mutex && m.std_mutex && !in_support_ &&
          !analyze_allowed(lines_, m.line, "lock-coverage")) {
        findings_.push_back(
            {file_.path, m.line, "lock-coverage",
             "member '" + m.name + "' of '" + name +
                 "' uses a std:: lockable type; use "
                 "retra::support::Mutex/SharedMutex so clang "
                 "-Wthread-safety can check it"});
      }
      if (!has_mutex) continue;
      if (m.is_mutex || m.exempt || m.annotated) continue;
      if (analyze_allowed(lines_, m.line, "lock-coverage")) continue;
      findings_.push_back(
          {file_.path, m.line, "lock-coverage",
           "member '" + m.name + "' of mutex-holding class '" + name +
               "' carries no RETRA_GUARDED_BY / RETRA_PT_GUARDED_BY / "
               "RETRA_NOT_GUARDED annotation"});
    }
  }

  // toks_[i] == RETRA_IO_THREAD_ONLY.  When a `{` follows, scan the
  // body for blocking calls; otherwise (a declaration) skip the marker.
  std::size_t scan_io_body(std::size_t i) {
    if (i + 1 >= toks_.size() || !punct_is(toks_[i + 1], '{')) return i + 1;
    const std::size_t body_end = skip_group(i + 1, '{', '}');
    for (std::size_t k = i + 2; k < body_end; ++k) {
      const Token& t = toks_[k];
      if (t.kind != TokKind::kIdent || !kBlockingCalls.contains(t.text)) {
        continue;
      }
      if (analyze_allowed(lines_, t.line, "io-blocking")) continue;
      findings_.push_back(
          {file_.path, t.line, "io-blocking",
           "blocking call '" + t.text +
               "' inside a RETRA_IO_THREAD_ONLY function body"});
    }
    return body_end;
  }

  const SourceFile& file_;
  std::vector<Token> toks_;
  std::vector<std::string> lines_;
  std::vector<Finding>& findings_;
  bool in_src_ = false;
  bool in_support_ = false;
};

}  // namespace

std::vector<Finding> analyze_locks(const AnalysisInput& input) {
  std::vector<Finding> findings;
  for (const SourceFile& file : input.files) {
    LockScanner(file, findings).run();
  }
  return findings;
}

}  // namespace retra::analyze

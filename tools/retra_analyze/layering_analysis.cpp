// Layering analysis (rules layer-order and include-cycle).
//
// The module DAG is declared here and documented in docs/ANALYSIS.md.
// A retra/... include is legal when it stays inside the including
// module or points at a strictly lower layer; same-layer cross-module
// includes and back-edges are findings.  Independently, the retra/...
// header include graph must be acyclic.

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace retra::analyze {

namespace {

// Lower index = lower layer.  Modules sharing an entry may not include
// each other.  The order reflects the repo as built (see
// docs/ANALYSIS.md for the rationale): support is the base; serve sits
// below ra (solvers publish results through the serving API); exec sits
// below para (the driver schedules onto the worker pool); net is the
// outermost library since its server composes store + serve + exec.
const std::vector<std::vector<std::string>> kLayers = {
    {"support"},
    {"obs", "index", "exec"},
    {"game", "msg"},
    {"db", "sim"},
    {"serve"},
    {"ra"},
    {"net"},
    {"para"},
};

constexpr int kTopLayer = 100;  // tools / tests / bench / examples

int layer_of(const std::string& module) {
  for (std::size_t i = 0; i < kLayers.size(); ++i) {
    for (const std::string& m : kLayers[i]) {
      if (m == module) return static_cast<int>(i);
    }
  }
  if (module == "tools" || module == "tests" || module == "bench" ||
      module == "examples") {
    return kTopLayer;
  }
  return -1;
}

void check_layer_order(const AnalysisInput& input,
                       std::vector<Finding>& findings) {
  for (const SourceFile& file : input.files) {
    const std::string mod = module_of_path(file.path);
    if (mod.empty()) continue;
    const int rank = layer_of(mod);
    if (rank < 0) {
      findings.push_back({file.path, 1, "layer-order",
                          "module '" + mod +
                              "' is not in the layering table "
                              "(docs/ANALYSIS.md); add it to a layer"});
      continue;
    }
    const std::vector<std::string> lines = split_lines(file.content);
    for (const IncludeEdge& edge : includes_of(file.content)) {
      const std::string target_mod = module_of_include(edge.target);
      if (target_mod.empty() || target_mod == mod) continue;
      const int target_rank = layer_of(target_mod);
      if (target_rank < 0) {
        if (analyze_allowed(lines, edge.line, "layer-order")) continue;
        findings.push_back({file.path, edge.line, "layer-order",
                            "include of unknown module 'retra/" +
                                target_mod + "/...'"});
        continue;
      }
      if (target_rank < rank) continue;
      if (analyze_allowed(lines, edge.line, "layer-order")) continue;
      const char* why = target_rank == rank
                            ? "same-layer cross-module include"
                            : "back-edge against the layering DAG";
      findings.push_back(
          {file.path, edge.line, "layer-order",
           std::string(why) + ": module '" + mod + "' (layer " +
               std::to_string(rank) + ") includes '" + edge.target +
               "' (module '" + target_mod + "', layer " +
               std::to_string(target_rank) + ")"});
    }
  }
}

// --- include-cycle -------------------------------------------------

// Headers are keyed by their "retra/..." install identity so the edge
// targets and the on-disk include/ paths meet in one namespace.
std::string header_identity(const std::string& path) {
  const std::size_t pos = path.find("retra/");
  if (pos == std::string::npos) return {};
  if (pos != 0 && path[pos - 1] != '/') return {};
  return path.substr(pos);
}

struct HeaderNode {
  std::string file_path;  // repo-relative path, for findings
  std::vector<IncludeEdge> edges;
  std::vector<std::string> lines;
};

class CycleFinder {
 public:
  explicit CycleFinder(const AnalysisInput& input) {
    for (const SourceFile& file : input.files) {
      const std::string id = header_identity(file.path);
      if (id.empty()) continue;
      HeaderNode node;
      node.file_path = file.path;
      node.lines = split_lines(file.content);
      for (const IncludeEdge& edge : includes_of(file.content)) {
        if (edge.target.rfind("retra/", 0) == 0) node.edges.push_back(edge);
      }
      nodes_.emplace(id, std::move(node));
    }
  }

  void run(std::vector<Finding>& findings) {
    // std::map keeps iteration (and therefore reporting) deterministic.
    for (const auto& [id, node] : nodes_) {
      if (color_[id] == kWhite) dfs(id, findings);
    }
  }

 private:
  enum Color { kWhite = 0, kGray, kBlack };

  void dfs(const std::string& id, std::vector<Finding>& findings) {
    color_[id] = kGray;
    stack_.push_back(id);
    const HeaderNode& node = nodes_.at(id);
    for (const IncludeEdge& edge : node.edges) {
      const auto it = nodes_.find(edge.target);
      if (it == nodes_.end()) continue;  // not analyzed (e.g. .cpp-only)
      const Color c = color_[edge.target];
      if (c == kBlack) continue;
      if (c == kGray) {
        report_cycle(node, edge, findings);
        continue;
      }
      dfs(edge.target, findings);
    }
    stack_.pop_back();
    color_[id] = kBlack;
  }

  void report_cycle(const HeaderNode& from, const IncludeEdge& edge,
                    std::vector<Finding>& findings) {
    if (analyze_allowed(from.lines, edge.line, "include-cycle")) return;
    // Reconstruct the cycle from the DFS stack for the message.
    std::string path;
    bool in_cycle = false;
    for (const std::string& id : stack_) {
      if (id == edge.target) in_cycle = true;
      if (in_cycle) path += id + " -> ";
    }
    path += edge.target;
    findings.push_back({from.file_path, edge.line, "include-cycle",
                        "header include cycle: " + path});
  }

  std::map<std::string, HeaderNode> nodes_;
  std::map<std::string, Color> color_;
  std::vector<std::string> stack_;
};

}  // namespace

std::vector<Finding> analyze_layering(const AnalysisInput& input) {
  std::vector<Finding> findings;
  check_layer_order(input, findings);
  CycleFinder(input).run(findings);
  return findings;
}

}  // namespace retra::analyze

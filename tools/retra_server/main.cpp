// retra_server — serve an RTRADB database file over TCP (retra-net-v1).
//
// Opens the database behind a budgeted QueryService, layers the shared
// hot tier and the epoll server on top (src/net), prints the bound
// address, and runs until SIGINT/SIGTERM.  Port 0 (the default) asks the
// kernel for an ephemeral port — scripts read it from stdout or from
// --port-file, which is written atomically after the server is
// accepting.
//
//   $ retra_server --db=/tmp/awari8.db --port=7411
//   $ retra_server --db=/tmp/awari8.db --budget-kb=16 --port-file=/tmp/p
//
// docs/PROTOCOL.md documents the wire format; retra_serve --connect and
// bench_q2_server are the bundled clients.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "retra/net/server.hpp"
#include "retra/support/cli.hpp"

namespace {

using namespace retra;

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

bool write_port_file(const std::string& path, std::uint16_t port) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  return true;
}

void print_stats(const net::Server& server) {
  const net::Server::Stats stats = server.stats();
  std::printf(
      "served: %llu connections, %llu requests (%llu query, %llu batch, "
      "%llu ping, %llu stats), %llu errors (%llu shed), %llu hot hits\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.batch_queries),
      static_cast<unsigned long long>(stats.pings),
      static_cast<unsigned long long>(stats.stats_ops),
      static_cast<unsigned long long>(stats.errors),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.hot_hits));
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.describe(
      "Serve an RTRADB database file over TCP with the retra-net-v1 "
      "protocol (docs/PROTOCOL.md).");
  cli.flag("db", "", "database file to serve (required)");
  cli.flag("host", "127.0.0.1", "numeric IPv4 address to bind");
  cli.flag("port", "0", "TCP port (0 = kernel-chosen ephemeral port)");
  cli.flag("port-file", "",
           "write the bound port here once the server is accepting");
  cli.flag("workers", "2", "lookup worker threads");
  cli.flag("budget-kb", "0", "QueryService resident budget (0 = unlimited)");
  cli.flag("hot-kb", "1024", "shared hot-tier budget (0 disables the tier)");
  cli.flag("max-queue", "1024", "queued requests before BUSY shedding");
  cli.flag("shed-debt-kb", "0",
           "fault-debt shed ceiling (0 derives 8x the budget)");
  cli.parse(argc, argv);

  const std::string path = cli.str("db");
  if (path.empty()) {
    std::fprintf(stderr, "--db is required (see --help)\n");
    return 1;
  }
  net::ServerConfig config;
  config.host = cli.str("host");
  config.port = static_cast<std::uint16_t>(cli.integer("port"));
  config.workers = static_cast<int>(cli.integer("workers"));
  config.budget_bytes =
      static_cast<std::uint64_t>(cli.integer("budget-kb")) * 1024;
  config.hot_bytes = static_cast<std::uint64_t>(cli.integer("hot-kb")) * 1024;
  config.max_queue_depth =
      static_cast<std::size_t>(cli.integer("max-queue"));
  config.shed_fault_debt_bytes =
      static_cast<std::uint64_t>(cli.integer("shed-debt-kb")) * 1024;

  auto opened = net::Server::open(path, config);
  if (!opened.ok) {
    std::fprintf(stderr, "cannot serve %s: %s\n", path.c_str(),
                 opened.error.c_str());
    return 1;
  }
  net::Server& server = *opened.server;
  std::printf("retra_server: serving %s (%d levels) on %s:%u\n",
              path.c_str(), server.num_levels(), config.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (const std::string port_file = cli.str("port-file");
      !port_file.empty() && !write_port_file(port_file, server.port())) {
    std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("retra_server: stopping\n");
  server.stop();
  print_stats(server);
  return 0;
}

// Awari endgame oracle: answer value/best-move queries from a database.
//
// Boards are given as twelve pit counts, mover's pits first:
//
//   $ awari_oracle --level=8 "1 2 0 0 1 0  0 1 0 2 0 1"
//   $ awari_oracle --db=/tmp/awari10.db --line "0 0 2 1 0 0  1 0 0 0 1 1"
//   $ awari_oracle --db=/tmp/awari10.db --budget-kb=64  # capped residency
//
// With no positional arguments, reads one board per line from stdin.
// Queries go through serve::ValueSource: --db serves straight from the
// file with lazy level residency (and an optional byte budget) instead of
// loading the whole database up front.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "retra/game/awari_level.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/oracle.hpp"
#include "retra/serve/query_service.hpp"
#include "retra/support/cli.hpp"

namespace {

using namespace retra;

void answer(serve::ValueSource& source, const game::Board& board,
            bool with_line) {
  std::printf("%s\n", game::board_to_string(board).c_str());
  if (game::is_terminal(board)) {
    std::printf("  terminal: mover nets %d\n",
                game::terminal_reward(board));
    return;
  }
  std::printf("  value: %+d stones net for the player to move\n",
              static_cast<int>(ra::position_value(source, board)));
  for (const auto& eval : ra::evaluate_moves(source, board)) {
    std::printf("  pit %d -> %+d%s\n", eval.pit,
                static_cast<int>(eval.value),
                eval.captured
                    ? (" (captures " + std::to_string(eval.captured) + ")")
                          .c_str()
                    : "");
  }
  if (with_line) {
    std::printf("  optimal line:\n");
    for (const std::string& ply : ra::optimal_line(source, board, 16)) {
      std::printf("    %s\n", ply.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.describe(
      "Awari endgame oracle: values and best moves from a built or "
      "file-served database.");
  cli.flag("db", "", "serve from this database file instead of building");
  cli.flag("budget-kb", "0",
           "resident-level budget for --db serving (0 = unlimited)");
  cli.flag("level", "8", "build levels 0..n when no --db is given");
  cli.flag("line", "false", "also print the optimal line");
  cli.parse(argc, argv);

  db::Database database;
  std::unique_ptr<serve::DatabaseSource> dense;
  std::unique_ptr<serve::QueryService> service;
  serve::ValueSource* source = nullptr;
  if (const std::string path = cli.str("db"); !path.empty()) {
    serve::QueryServiceConfig config;
    config.budget_bytes =
        static_cast<std::uint64_t>(cli.integer("budget-kb")) * 1024;
    auto opened = serve::QueryService::open(path, config);
    if (!opened.ok) {
      std::fprintf(stderr, "cannot serve %s: %s\n", path.c_str(),
                   opened.error.c_str());
      return 1;
    }
    service = std::move(opened.service);
    source = service.get();
  } else {
    database = ra::build_database(game::AwariFamily{},
                                  static_cast<int>(cli.integer("level")));
    dense = std::make_unique<serve::DatabaseSource>(database);
    source = dense.get();
  }

  if (!cli.positional().empty()) {
    for (const std::string& text : cli.positional()) {
      answer(*source, game::board_from_string(text.c_str()),
             cli.boolean("line"));
    }
    return 0;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    answer(*source, game::board_from_string(line.c_str()),
           cli.boolean("line"));
  }
  return 0;
}

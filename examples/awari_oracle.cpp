// Awari endgame oracle: answer value/best-move queries from a database.
//
// Boards are given as twelve pit counts, mover's pits first:
//
//   $ awari_oracle --level=8 "1 2 0 0 1 0  0 1 0 2 0 1"
//   $ awari_oracle --db=/tmp/awari10.db --line "0 0 2 1 0 0  1 0 0 0 1 1"
//
// With no positional arguments, reads one board per line from stdin.
#include <cstdio>
#include <iostream>
#include <string>

#include "retra/db/db_io.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/oracle.hpp"
#include "retra/support/cli.hpp"

namespace {

using namespace retra;

void answer(const db::Database& database, const game::Board& board,
            bool with_line) {
  std::printf("%s\n", game::board_to_string(board).c_str());
  if (game::is_terminal(board)) {
    std::printf("  terminal: mover nets %d\n",
                game::terminal_reward(board));
    return;
  }
  std::printf("  value: %+d stones net for the player to move\n",
              static_cast<int>(ra::position_value(database, board)));
  for (const auto& eval : ra::evaluate_moves(database, board)) {
    std::printf("  pit %d -> %+d%s\n", eval.pit,
                static_cast<int>(eval.value),
                eval.captured
                    ? (" (captures " + std::to_string(eval.captured) + ")")
                          .c_str()
                    : "");
  }
  if (with_line) {
    std::printf("  optimal line:\n");
    for (const std::string& ply : ra::optimal_line(database, board, 16)) {
      std::printf("    %s\n", ply.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.flag("db", "", "load this database file instead of building");
  cli.flag("level", "8", "build levels 0..n when no --db is given");
  cli.flag("line", "false", "also print the optimal line");
  cli.parse(argc, argv);

  db::Database database;
  if (const std::string path = cli.str("db"); !path.empty()) {
    db::LoadResult loaded = db::load(path);
    if (!loaded.ok) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   loaded.error.c_str());
      return 1;
    }
    database = std::move(loaded.database);
  } else {
    database = ra::build_database(game::AwariFamily{},
                                  static_cast<int>(cli.integer("level")));
  }

  if (!cli.positional().empty()) {
    for (const std::string& text : cli.positional()) {
      answer(database, game::board_from_string(text.c_str()),
             cli.boolean("line"));
    }
    return 0;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    answer(database, game::board_from_string(line.c_str()),
           cli.boolean("line"));
  }
  return 0;
}

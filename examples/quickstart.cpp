// Quickstart: build a small awari endgame database, query a position,
// save it to disk and load it back.
//
//   $ quickstart [--level=7]
#include <cstdio>

#include "retra/db/db_io.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/oracle.hpp"
#include "retra/support/cli.hpp"
#include "retra/support/timer.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  support::Cli cli;
  cli.flag("level", "7", "largest stone count to solve");
  cli.flag("out", "/tmp/awari_quickstart.db", "database file");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));

  // 1. Build every database level up to `level`, with self-verification.
  support::Timer timer;
  ra::BuildOptions options;
  options.verify = true;
  const db::Database database =
      ra::build_database(game::AwariFamily{}, level, options);
  std::printf("built and verified levels 0..%d (%llu positions) in %.2fs\n",
              level,
              static_cast<unsigned long long>(database.total_positions()),
              timer.seconds());

  // 2. Query a position: the mover's pits are 0-5, the opponent's 6-11.
  // The oracle queries any serve::ValueSource; wrap the database once.
  serve::DatabaseSource source(database);
  const game::Board board =
      game::board_from_string("2 0 1 0 0 1  1 0 0 2 0 0");
  std::printf("\nposition %s\n", game::board_to_string(board).c_str());
  std::printf("value for the player to move: %d stones net\n",
              static_cast<int>(ra::position_value(source, board)));
  for (const auto& eval : ra::evaluate_moves(source, board)) {
    std::printf("  pit %d: captures %d, guarantees %+d\n", eval.pit,
                eval.captured, static_cast<int>(eval.value));
  }

  // 3. Follow the optimal line for a few plies.
  std::printf("\noptimal play:\n");
  for (const std::string& ply : ra::optimal_line(source, board, 10)) {
    std::printf("  %s\n", ply.c_str());
  }

  // 4. Persist and reload.
  const std::string path = cli.str("out");
  db::save(database, path);
  const db::LoadResult loaded = db::load(path);
  std::printf("\nsaved to %s and reloaded: %s\n", path.c_str(),
              loaded.ok && loaded.database == database ? "identical"
                                                       : "MISMATCH");
  return loaded.ok && loaded.database == database ? 0 : 1;
}

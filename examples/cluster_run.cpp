// Re-enact the paper's experiment: a 64-processor Ethernet cluster builds
// an awari database, with a per-level timeline and a final summary in
// 1995 virtual time.
//
//   $ cluster_run --level=10 --ranks=64
//   $ cluster_run --level=9 --ranks=16 --combine-bytes=1   # no combining
//
// With any fault flag set the run switches from the 1995 timing simulation
// to a real threaded build over a fault-injecting transport (a chaos run):
//
//   $ cluster_run --level=6 --ranks=8 --fault-seed=42 --drop=0.2
//   $ cluster_run --level=6 --ranks=8 --crash-rank=3 --crash-level=4
//                 --checkpoint=/tmp/ck     # dies mid-build ...
//   $ cluster_run --level=6 --ranks=8 --checkpoint=/tmp/ck  # ... resumes
#include <cstdio>

#include "retra/game/awari_level.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/para/sim_build.hpp"
#include "retra/support/cli.hpp"
#include "retra/support/format.hpp"
#include "retra/support/table.hpp"
#include "retra/support/timer.hpp"

namespace {

// A chaos run: the same build as the simulation solves, but executed on
// real threads over the fault-injecting transport, reporting the injected
// faults and the reliability-protocol work per level.
int run_chaos(int level, const retra::para::ParallelConfig& config) {
  using namespace retra;
  const auto& plan = config.fault_plan;
  std::printf(
      "chaos run: %d ranks, seed %llu, drop %.2f dup %.2f reorder %.2f "
      "delay %.2f corrupt %.2f",
      config.ranks, static_cast<unsigned long long>(plan.seed), plan.drop,
      plan.duplicate, plan.reorder, plan.delay, plan.corrupt);
  if (plan.crash_rank >= 0) {
    std::printf(", rank %d crashes at level %d", plan.crash_rank,
                plan.crash_level);
  }
  std::printf("\n\n");

  support::Timer real;
  const auto run = para::build_parallel(game::AwariFamily{}, level, config);

  support::Table table({"level", "positions", "rounds", "dropped", "dup",
                        "reord", "delayed", "corrupt", "retries",
                        "delivered"});
  for (const auto& info : run.levels) {
    table.row()
        .add(info.level)
        .add(info.size)
        .add(info.rounds)
        .add(info.faults.dropped)
        .add(info.faults.duplicated)
        .add(info.faults.reordered)
        .add(info.faults.delayed)
        .add(info.faults.corrupted)
        .add(info.reliability.retries)
        .add(info.reliability.delivered);
  }
  table.print();

  if (!run.completed()) {
    std::printf(
        "\nrank %d crashed while building level %d (%.2fs in).\n",
        run.crashed_rank, run.aborted_level, real.seconds());
    if (!config.checkpoint_dir.empty()) {
      std::printf(
          "levels 0..%d are checkpointed in %s; rerun without the crash "
          "flags to resume.\n",
          run.aborted_level - 1, config.checkpoint_dir.c_str());
    } else {
      std::printf("no --checkpoint directory was set; nothing to resume.\n");
    }
    return 1;
  }
  std::printf(
      "\nchaos build finished in %.2fs: %llu positions survived the faulty "
      "transport intact.\n",
      real.seconds(),
      static_cast<unsigned long long>(
          run.database->gather().total_positions()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace retra;
  support::Cli cli;
  cli.flag("level", "10", "largest stone count to solve");
  cli.flag("ranks", "64", "simulated processors");
  cli.flag("combine-bytes", "4096", "combining buffer size (1 = off)");
  cli.flag("threads-per-rank", "1",
           "worker threads inside each rank (two-level parallelism)");
  cli.flag("threads-scan", "0",
           "scan/seed/zero-fill worker threads per rank "
           "(0 = --threads-per-rank)");
  cli.flag("threads-drain", "0",
           "drain-wave worker threads per rank (0 = --threads-per-rank)");
  cli.flag("vector-lanes", "1",
           "int16 lanes the modelled CPUs sweep per op (1 = the paper's "
           "scalar SPARCs)");
  cli.flag("segments", "4", "bridged Ethernet segments");
  cli.flag("trace", "", "write a per-round CSV trace to this file");
  cli.flag("fault-seed", "0", "fault-plan seed (0 keeps the default)");
  cli.flag("drop", "0", "frame drop probability");
  cli.flag("dup", "0", "frame duplication probability");
  cli.flag("reorder", "0", "frame reorder probability");
  cli.flag("delay", "0", "frame delay probability");
  cli.flag("corrupt", "0", "frame corruption probability");
  cli.flag("crash-rank", "-1", "rank that dies mid-build (-1: nobody)");
  cli.flag("crash-level", "0", "level at which the scheduled crash fires");
  cli.flag("crash-after", "20", "sends of the crash level before dying");
  cli.flag("checkpoint", "", "checkpoint directory (written + resumed)");
  cli.flag("working-set-kb", "0",
           "per-rank byte budget for completed levels; >0 pages cold "
           "levels out to --scratch-dir and prices the disk traffic "
           "into the 1995 timeline (0 = all in memory)");
  cli.flag("scratch-dir", "",
           "directory for spilled levels and drain-queue run files");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));
  const int ranks = static_cast<int>(cli.integer("ranks"));

  para::ParallelConfig config;
  config.ranks = ranks;
  config.combine_bytes =
      static_cast<std::size_t>(cli.integer("combine-bytes"));
  config.threads_per_rank =
      static_cast<int>(cli.integer("threads-per-rank"));
  config.threads_scan = static_cast<int>(cli.integer("threads-scan"));
  config.threads_drain = static_cast<int>(cli.integer("threads-drain"));
  config.checkpoint_dir = cli.str("checkpoint");
  config.store.working_set_bytes =
      static_cast<std::uint64_t>(cli.integer("working-set-kb")) * 1024;
  config.store.scratch_dir = cli.str("scratch-dir");
  if (config.store.out_of_core() && config.store.scratch_dir.empty()) {
    std::fprintf(stderr, "--working-set-kb needs --scratch-dir\n");
    return 2;
  }

  msg::FaultPlan plan;
  if (cli.integer("fault-seed") != 0) {
    plan.seed = static_cast<std::uint64_t>(cli.integer("fault-seed"));
  }
  plan.drop = cli.number("drop");
  plan.duplicate = cli.number("dup");
  plan.reorder = cli.number("reorder");
  plan.delay = cli.number("delay");
  plan.corrupt = cli.number("corrupt");
  plan.crash_rank = static_cast<int>(cli.integer("crash-rank"));
  plan.crash_level = static_cast<int>(cli.integer("crash-level"));
  plan.crash_after_sends =
      static_cast<std::uint64_t>(cli.integer("crash-after"));
  if (plan.active() || (!config.checkpoint_dir.empty() &&
                        cli.integer("fault-seed") != 0)) {
    config.fault_plan = plan;
    config.use_threads = true;
    return run_chaos(level, config);
  }
  if (!config.checkpoint_dir.empty()) {
    // A plain resume of an aborted chaos run: same real-threaded path,
    // fault-free transport.
    config.use_threads = true;
    return run_chaos(level, config);
  }

  sim::ClusterModel model;
  model.net.segments = static_cast<int>(cli.integer("segments"));
  model.machine.worker_threads = config.threads_per_rank;
  model.machine.scan_threads = config.threads_scan;
  model.machine.drain_threads = config.threads_drain;
  model.machine.vector_lanes = static_cast<int>(cli.integer("vector-lanes"));

  std::printf(
      "simulating %d workstations x %d worker thread(s) (%d Ethernet "
      "segments, combining %s) building awari levels 0..%d\n\n",
      ranks, config.threads_per_rank, model.net.segments,
      config.combine_bytes > 1
          ? support::human_bytes(config.combine_bytes).c_str()
          : "OFF",
      level);

  support::Timer real;
  sim::TraceSink trace;
  const bool want_trace = !cli.str("trace").empty();
  const auto run = para::build_parallel_simulated(
      game::AwariFamily{}, level, config, model,
      want_trace ? &trace : nullptr);
  if (want_trace) {
    trace.write_csv(cli.str("trace"));
    std::printf("wrote %zu trace rounds to %s\n\n", trace.size(),
                cli.str("trace").c_str());
  }

  support::Table table({"level", "positions", "rounds", "virtual time",
                        "messages", "payload", "cum. virtual"});
  double cumulative = 0;
  for (std::size_t i = 0; i < run.levels.size(); ++i) {
    const auto& info = run.levels[i];
    const auto& timing = run.timings[i];
    cumulative += timing.time_s;
    table.row()
        .add(info.level)
        .add(info.size)
        .add(timing.rounds)
        .add(support::human_seconds(timing.time_s))
        .add(timing.messages)
        .add(support::human_bytes(timing.payload_bytes))
        .add(support::human_seconds(cumulative));
  }
  table.print();

  if (config.store.out_of_core()) {
    para::StoreStats store;
    for (int r = 0; r < ranks; ++r) {
      store += run.database->store(r).stats();
    }
    std::printf(
        "\nout-of-core: %llu level spills (%s) and %llu faults (%s) under "
        "a %s/rank budget; the disk traffic is priced into the timeline "
        "at %.1f MB/s + %.0f ms/op.\n",
        static_cast<unsigned long long>(store.levels_spilled),
        support::human_bytes(store.spill_bytes).c_str(),
        static_cast<unsigned long long>(store.faults),
        support::human_bytes(store.fault_bytes).c_str(),
        support::human_bytes(config.store.working_set_bytes).c_str(),
        model.machine.disk_bytes_per_second / 1e6,
        model.machine.disk_op_overhead_s * 1e3);
  }

  std::printf(
      "\ncluster finished in %s of 1995 wall-clock "
      "(simulated in %.2fs of real time); database: %llu positions, all "
      "levels retained as per-rank shards (%s per node).\n",
      support::human_seconds(run.total_time_s()).c_str(), real.seconds(),
      static_cast<unsigned long long>(run.database->gather()
                                          .total_positions()),
      support::human_bytes(run.database->bytes_on_rank(0)).c_str());
  return 0;
}

// Re-enact the paper's experiment: a 64-processor Ethernet cluster builds
// an awari database, with a per-level timeline and a final summary in
// 1995 virtual time.
//
//   $ cluster_run --level=10 --ranks=64
//   $ cluster_run --level=9 --ranks=16 --combine-bytes=1   # no combining
#include <cstdio>

#include "retra/game/awari_level.hpp"
#include "retra/para/sim_build.hpp"
#include "retra/support/cli.hpp"
#include "retra/support/format.hpp"
#include "retra/support/table.hpp"
#include "retra/support/timer.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  support::Cli cli;
  cli.flag("level", "10", "largest stone count to solve");
  cli.flag("ranks", "64", "simulated processors");
  cli.flag("combine-bytes", "4096", "combining buffer size (1 = off)");
  cli.flag("segments", "4", "bridged Ethernet segments");
  cli.flag("trace", "", "write a per-round CSV trace to this file");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));
  const int ranks = static_cast<int>(cli.integer("ranks"));

  para::ParallelConfig config;
  config.ranks = ranks;
  config.combine_bytes =
      static_cast<std::size_t>(cli.integer("combine-bytes"));
  sim::ClusterModel model;
  model.net.segments = static_cast<int>(cli.integer("segments"));

  std::printf(
      "simulating %d workstations (%d Ethernet segments, combining %s) "
      "building awari levels 0..%d\n\n",
      ranks, model.net.segments,
      config.combine_bytes > 1
          ? support::human_bytes(config.combine_bytes).c_str()
          : "OFF",
      level);

  support::Timer real;
  sim::TraceSink trace;
  const bool want_trace = !cli.str("trace").empty();
  const auto run = para::build_parallel_simulated(
      game::AwariFamily{}, level, config, model,
      want_trace ? &trace : nullptr);
  if (want_trace) {
    trace.write_csv(cli.str("trace"));
    std::printf("wrote %zu trace rounds to %s\n\n", trace.size(),
                cli.str("trace").c_str());
  }

  support::Table table({"level", "positions", "rounds", "virtual time",
                        "messages", "payload", "cum. virtual"});
  double cumulative = 0;
  for (std::size_t i = 0; i < run.levels.size(); ++i) {
    const auto& info = run.levels[i];
    const auto& timing = run.timings[i];
    cumulative += timing.time_s;
    table.row()
        .add(info.level)
        .add(info.size)
        .add(timing.rounds)
        .add(support::human_seconds(timing.time_s))
        .add(timing.messages)
        .add(support::human_bytes(timing.payload_bytes))
        .add(support::human_seconds(cumulative));
  }
  table.print();

  std::printf(
      "\ncluster finished in %s of 1995 wall-clock "
      "(simulated in %.2fs of real time); database: %llu positions, all "
      "levels retained as per-rank shards (%s per node).\n",
      support::human_seconds(run.total_time_s()).c_str(), real.seconds(),
      static_cast<unsigned long long>(run.database->gather()
                                          .total_positions()),
      support::human_bytes(run.database->bytes_on_rank(0)).c_str());
  return 0;
}

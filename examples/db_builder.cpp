// Database builder CLI: sequential or distributed (thread-backed)
// construction for awari or kalah, with verification, checkpointing,
// statistics and persistence.
//
//   $ db_builder --level=10 --ranks=8 --out=/tmp/awari10.db
//   $ db_builder --game=kalah --level=9 --sequential
//   $ db_builder --level=12 --checkpoint=/tmp/ck   # crash-safe, resumable
#include <cstdio>

#include "retra/db/db_io.hpp"
#include "retra/db/db_stats.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/game/kalah_level.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/ra/builder.hpp"
#include "retra/support/cli.hpp"
#include "retra/support/format.hpp"
#include "retra/support/table.hpp"
#include "retra/support/timer.hpp"

namespace {

using namespace retra;

template <typename Family>
int run(const Family& family, const support::Cli& cli) {
  const int level = static_cast<int>(cli.integer("level"));
  support::Timer timer;
  db::Database database;

  if (cli.boolean("sequential")) {
    ra::BuildOptions options;
    options.verify = cli.boolean("verify");
    options.on_level = [](int l, const ra::SweepStats& stats) {
      std::fprintf(stderr, "  level %2d: %llu positions, %llu updates\n", l,
                   static_cast<unsigned long long>(stats.positions),
                   static_cast<unsigned long long>(stats.updates));
    };
    database = ra::build_database(family, level, options);
    std::printf("sequential build to level %d: %.2fs\n", level,
                timer.seconds());
  } else {
    para::ParallelConfig config;
    config.ranks = static_cast<int>(cli.integer("ranks"));
    config.combine_bytes =
        static_cast<std::size_t>(cli.integer("combine-bytes"));
    config.use_threads = true;
    config.threads_per_rank =
        static_cast<int>(cli.integer("threads-per-rank"));
    config.async = cli.boolean("async");
    config.checkpoint_dir = cli.str("checkpoint");
    const std::string scheme = cli.str("scheme");
    config.scheme = scheme == "block" ? para::PartitionScheme::kBlock
                    : scheme == "block-cyclic"
                        ? para::PartitionScheme::kBlockCyclic
                        : para::PartitionScheme::kCyclic;
    const para::ParallelResult result =
        para::build_parallel(family, level, config);
    std::printf(
        "distributed build to level %d on %d ranks (%s partition, %s "
        "driver): %.2fs, %llu combined messages, %s payload\n",
        level, config.ranks, scheme.c_str(),
        config.async ? "async" : "BSP", timer.seconds(),
        static_cast<unsigned long long>(result.total_messages()),
        support::human_bytes(result.total_payload_bytes()).c_str());
    database = result.database->gather();
    if (cli.boolean("verify")) {
      for (int l = 0; l <= level; ++l) {
        decltype(auto) game = family.level(l);
        auto lower = [&database](int lv, idx::Index i) {
          return database.value(lv, i);
        };
        const auto report = ra::verify_level(game, lower, database.level(l));
        if (!report.ok) {
          std::fprintf(stderr, "verification FAILED: %s\n",
                       report.error.c_str());
          return 1;
        }
      }
      std::printf("all levels verified\n");
    }
  }

  support::Table table(
      {"level", "positions", "wins", "draws", "losses", "max"});
  for (int l = 0; l <= level; ++l) {
    const db::LevelStats stats = db::level_stats(database, l);
    table.row()
        .add(l)
        .add(stats.positions)
        .add(stats.wins)
        .add(stats.draws)
        .add(stats.losses)
        .add(static_cast<int>(stats.max_value));
  }
  table.print();

  if (const std::string out = cli.str("out"); !out.empty()) {
    db::SaveOptions options;
    options.pack = cli.boolean("pack");
    options.compress = cli.boolean("compress");
    options.block_positions =
        static_cast<std::uint32_t>(cli.integer("block-positions"));
    db::save(database, out, options);
    std::printf("wrote %s (%s)\n", out.c_str(),
                options.compress  ? "RTRADB03 block-compressed"
                : options.pack    ? "RTRADB02 packed"
                                  : "RTRADB01");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.flag("game", "awari", "awari or kalah");
  cli.flag("level", "9", "largest stone count to solve");
  cli.flag("ranks", "4", "ranks for the distributed build");
  cli.flag("threads-per-rank", "1",
           "worker threads inside each rank (two-level parallelism)");
  cli.flag("sequential", "false", "use the sequential solver instead");
  cli.flag("verify", "true", "run the self-verifier on every level");
  cli.flag("async", "false", "barrier-free distributed driver");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.flag("scheme", "cyclic", "partition scheme: block|cyclic|block-cyclic");
  cli.flag("checkpoint", "", "checkpoint directory (resume if present)");
  cli.flag("out", "", "write the database to this file");
  cli.flag("pack", "false",
           "write --out in the bit-packed RTRADB02 format (serving)");
  cli.flag("compress", "false",
           "write --out in the block-compressed RTRADB03 format "
           "(implies --pack)");
  cli.flag("block-positions", "4096",
           "positions per RTRADB03 block (even, at most 65536)");
  cli.parse(argc, argv);

  const std::string game = cli.str("game");
  if (game == "kalah") return run(game::KalahFamily{}, cli);
  if (game == "awari") return run(game::AwariFamily{}, cli);
  std::fprintf(stderr, "unknown game: %s\n", game.c_str());
  return 2;
}

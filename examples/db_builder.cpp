// Database builder CLI: sequential or distributed (thread-backed)
// construction for awari or kalah, with verification, checkpointing,
// statistics and persistence.
//
//   $ db_builder --level=10 --ranks=8 --out=/tmp/awari10.db
//   $ db_builder --game=kalah --level=9 --sequential
//   $ db_builder --level=12 --checkpoint=/tmp/ck   # crash-safe, resumable
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "retra/db/db_io.hpp"
#include "retra/db/db_stats.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/game/kalah_level.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/ra/builder.hpp"
#include "retra/support/cli.hpp"
#include "retra/support/format.hpp"
#include "retra/support/table.hpp"
#include "retra/support/timer.hpp"

namespace {

using namespace retra;

/// Resolves --format (v1|v2|v3) plus the deprecated --pack/--compress
/// aliases, which can only raise the version and print a warning.
db::Format output_format(const support::Cli& cli) {
  db::Format format;
  const std::string name = cli.str("format");
  if (name == "v1") {
    format.version = 1;
  } else if (name == "v2") {
    format.version = 2;
  } else if (name == "v3") {
    format.version = 3;
  } else {
    std::fprintf(stderr, "unknown --format=%s (want v1, v2 or v3)\n",
                 name.c_str());
    std::exit(2);
  }
  if (cli.boolean("compress")) {
    std::fprintf(stderr,
                 "warning: --compress is deprecated; use --format=v3\n");
    format.version = std::max(format.version, 3);
  } else if (cli.boolean("pack")) {
    std::fprintf(stderr, "warning: --pack is deprecated; use --format=v2\n");
    format.version = std::max(format.version, 2);
  }
  format.block_positions =
      static_cast<std::uint32_t>(cli.integer("block-positions"));
  return format;
}

template <typename Family>
int run(const Family& family, const support::Cli& cli) {
  const int level = static_cast<int>(cli.integer("level"));
  support::Timer timer;
  db::Database database;

  if (cli.boolean("sequential")) {
    ra::BuildOptions options;
    options.verify = cli.boolean("verify");
    options.on_level = [](int l, const ra::SweepStats& stats) {
      std::fprintf(stderr, "  level %2d: %llu positions, %llu updates\n", l,
                   static_cast<unsigned long long>(stats.positions),
                   static_cast<unsigned long long>(stats.updates));
    };
    database = ra::build_database(family, level, options);
    std::printf("sequential build to level %d: %.2fs\n", level,
                timer.seconds());
  } else {
    para::ParallelConfig config;
    config.ranks = static_cast<int>(cli.integer("ranks"));
    config.combine_bytes =
        static_cast<std::size_t>(cli.integer("combine-bytes"));
    config.use_threads = true;
    config.threads_per_rank =
        static_cast<int>(cli.integer("threads-per-rank"));
    config.threads_scan = static_cast<int>(cli.integer("threads-scan"));
    config.threads_drain = static_cast<int>(cli.integer("threads-drain"));
    config.async = cli.boolean("async");
    config.checkpoint_dir = cli.str("checkpoint");
    config.store.working_set_bytes =
        static_cast<std::uint64_t>(cli.integer("working-set-kb")) * 1024;
    config.store.scratch_dir = cli.str("scratch-dir");
    if (config.store.out_of_core() && config.store.scratch_dir.empty()) {
      std::fprintf(stderr, "--working-set-kb needs --scratch-dir\n");
      return 2;
    }
    const std::string scheme = cli.str("scheme");
    config.scheme = scheme == "block" ? para::PartitionScheme::kBlock
                    : scheme == "block-cyclic"
                        ? para::PartitionScheme::kBlockCyclic
                        : para::PartitionScheme::kCyclic;
    const para::ParallelResult result =
        para::build_parallel(family, level, config);
    std::printf(
        "distributed build to level %d on %d ranks (%s partition, %s "
        "driver): %.2fs, %llu combined messages, %s payload\n",
        level, config.ranks, scheme.c_str(),
        config.async ? "async" : "BSP", timer.seconds(),
        static_cast<unsigned long long>(result.total_messages()),
        support::human_bytes(result.total_payload_bytes()).c_str());
    if (config.store.out_of_core()) {
      para::StoreStats store;
      for (int r = 0; r < config.ranks; ++r) {
        store += result.database->store(r).stats();
      }
      std::printf(
          "out-of-core: %llu level spills (%s), %llu faults (%s), "
          "%llu evictions, peak resident %s/rank under a %s budget\n",
          static_cast<unsigned long long>(store.levels_spilled),
          support::human_bytes(store.spill_bytes).c_str(),
          static_cast<unsigned long long>(store.faults),
          support::human_bytes(store.fault_bytes).c_str(),
          static_cast<unsigned long long>(store.evictions),
          support::human_bytes(store.peak_resident_bytes).c_str(),
          support::human_bytes(config.store.working_set_bytes).c_str());
    }
    database = result.database->gather();
    if (cli.boolean("verify")) {
      for (int l = 0; l <= level; ++l) {
        decltype(auto) game = family.level(l);
        auto lower = [&database](int lv, idx::Index i) {
          return database.value(lv, i);
        };
        const auto report = ra::verify_level(game, lower, database.level(l));
        if (!report.ok) {
          std::fprintf(stderr, "verification FAILED: %s\n",
                       report.error.c_str());
          return 1;
        }
      }
      std::printf("all levels verified\n");
    }
  }

  support::Table table(
      {"level", "positions", "wins", "draws", "losses", "max"});
  for (int l = 0; l <= level; ++l) {
    const db::LevelStats stats = db::level_stats(database, l);
    table.row()
        .add(l)
        .add(stats.positions)
        .add(stats.wins)
        .add(stats.draws)
        .add(stats.losses)
        .add(static_cast<int>(stats.max_value));
  }
  table.print();

  if (const std::string out = cli.str("out"); !out.empty()) {
    const db::Format format = output_format(cli);
    db::save(database, out, format);
    std::printf("wrote %s (%s)\n", out.c_str(),
                format.version == 3   ? "RTRADB03 block-compressed"
                : format.version == 2 ? "RTRADB02 packed"
                                      : "RTRADB01");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.flag("game", "awari", "awari or kalah");
  cli.flag("level", "9", "largest stone count to solve");
  cli.flag("ranks", "4", "ranks for the distributed build");
  cli.flag("threads-per-rank", "1",
           "worker threads inside each rank (two-level parallelism)");
  cli.flag("threads-scan", "0",
           "scan/seed/zero-fill worker threads per rank "
           "(0 = --threads-per-rank)");
  cli.flag("threads-drain", "0",
           "drain-wave worker threads per rank (0 = --threads-per-rank)");
  cli.flag("sequential", "false", "use the sequential solver instead");
  cli.flag("verify", "true", "run the self-verifier on every level");
  cli.flag("async", "false", "barrier-free distributed driver");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.flag("scheme", "cyclic", "partition scheme: block|cyclic|block-cyclic");
  cli.flag("checkpoint", "", "checkpoint directory (resume if present)");
  cli.flag("working-set-kb", "0",
           "per-rank byte budget for completed levels; >0 pages cold "
           "levels out to --scratch-dir (0 = all in memory)");
  cli.flag("scratch-dir", "",
           "directory for spilled levels and drain-queue run files");
  cli.flag("out", "", "write the database to this file");
  cli.flag("format", "v1",
           "on-disk format of --out: v1 (raw), v2 (bit-packed RTRADB02), "
           "v3 (block-compressed RTRADB03)");
  cli.flag("pack", "false", "deprecated alias for --format=v2");
  cli.flag("compress", "false", "deprecated alias for --format=v3");
  cli.flag("block-positions", "4096",
           "positions per RTRADB03 block (even, at most 65536)");
  cli.parse(argc, argv);

  const std::string game = cli.str("game");
  if (game == "kalah") return run(game::KalahFamily{}, cli);
  if (game == "awari") return run(game::AwariFamily{}, cli);
  std::fprintf(stderr, "unknown game: %s\n", game.c_str());
  return 2;
}

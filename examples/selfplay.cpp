// Self-play validation: the database-backed perfect player against a
// greedy heuristic (maximise immediate capture), from random starting
// positions.  The perfect player's realised net result must never fall
// short of the database value of the starting position — a full
// end-to-end audit of rules, indexing and solver through actual play.
//
// The perfect player queries through serve::ValueSource, so the same
// audit runs against an in-memory build or a file-backed database served
// under a residency budget:
//
//   $ selfplay --level=8 --games=200
//   $ selfplay --db=/tmp/awari8.db --budget-kb=64 --games=200
#include <cstdio>
#include <memory>

#include "retra/game/awari_level.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/oracle.hpp"
#include "retra/serve/query_service.hpp"
#include "retra/support/cli.hpp"
#include "retra/support/rng.hpp"
#include "retra/support/table.hpp"

namespace {

using namespace retra;

game::Board random_board(int stones, support::Xoshiro256& rng) {
  game::Board board{};
  for (int s = 0; s < stones; ++s) {
    const auto pit = static_cast<std::size_t>(rng.below(game::kPits));
    board[pit] = static_cast<std::uint8_t>(board[pit] + 1);
  }
  return board;
}

/// Greedy opponent: taking the largest immediate capture, ties by pit.
int greedy_pick(const game::MoveList& moves) {
  int best = 0;
  for (int i = 1; i < moves.count; ++i) {
    if (moves.items[i].captured > moves.items[best].captured) best = i;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.describe(
      "Self-play audit: the database-perfect player (via any ValueSource "
      "backend) against a greedy-capture heuristic.");
  cli.flag("level", "8", "stones on the board at the start");
  cli.flag("games", "200", "games per pairing");
  cli.flag("max-plies", "200", "cut cycling games off after this many plies");
  cli.flag("seed", "7", "random seed for starting positions");
  cli.flag("db", "", "serve from this database file instead of building");
  cli.flag("budget-kb", "0",
           "resident-level budget for --db serving (0 = unlimited)");
  cli.parse(argc, argv);
  int level = static_cast<int>(cli.integer("level"));
  const int games = static_cast<int>(cli.integer("games"));
  const int max_plies = static_cast<int>(cli.integer("max-plies"));

  // Pick the backend: a budgeted file-backed QueryService with --db, a
  // freshly built in-memory database otherwise.
  db::Database database;
  std::unique_ptr<serve::DatabaseSource> dense;
  std::unique_ptr<serve::QueryService> service;
  serve::ValueSource* source = nullptr;
  if (const std::string path = cli.str("db"); !path.empty()) {
    serve::QueryServiceConfig config;
    config.budget_bytes =
        static_cast<std::uint64_t>(cli.integer("budget-kb")) * 1024;
    auto opened = serve::QueryService::open(path, config);
    if (!opened.ok) {
      std::fprintf(stderr, "cannot serve %s: %s\n", path.c_str(),
                   opened.error.c_str());
      return 1;
    }
    service = std::move(opened.service);
    if (!service->covers(level)) {
      level = service->num_levels() - 1;
      std::fprintf(stderr, "database covers up to %d stones; using that\n",
                   level);
    }
    source = service.get();
  } else {
    database = ra::build_database(game::AwariFamily{}, level);
    dense = std::make_unique<serve::DatabaseSource>(database);
    source = dense.get();
  }
  support::Xoshiro256 rng(static_cast<std::uint64_t>(cli.integer("seed")));

  std::printf(
      "selfplay: database-perfect player vs greedy-capture heuristic, "
      "%d random %d-stone starts\n\n",
      games, level);

  int perfect_wins = 0, draws = 0, perfect_losses = 0;
  int value_violations = 0;
  for (int g = 0; g < games; ++g) {
    game::Board board = random_board(level, rng);
    const db::Value predicted = ra::position_value(*source, board);

    // The perfect player moves on even plies (it is "the player to move"
    // at the start); net counts stones from the perfect player's view.
    int net = 0;
    int sign = +1;  // +1 while the perfect player is to move
    bool ended = false;
    for (int ply = 0; ply < max_plies; ++ply) {
      if (game::is_terminal(board)) {
        net += sign * game::terminal_reward(board);
        ended = true;
        break;
      }
      if (sign > 0) {
        const auto evals = ra::evaluate_moves(*source, board);
        net += sign * evals.front().captured;
        board = evals.front().after;
      } else {
        const game::MoveList moves = game::legal_moves(board);
        const auto& move = moves.items[greedy_pick(moves)];
        net += sign * move.captured;
        board = move.after;
      }
      sign = -sign;
    }
    // Cycling games are cut off; the invariant
    //   net-so-far + sign * v(current) >= predicted
    // holds after every ply of optimal play, so settle the residual from
    // the database when the game did not finish.
    if (!ended) {
      net += sign * ra::position_value(*source, board);
    }

    if (net > 0) {
      ++perfect_wins;
    } else if (net == 0) {
      ++draws;
    } else {
      ++perfect_losses;
    }
    // Optimal play guarantees at least the database value even against
    // any opponent; cycled games (cut off) count their captures so far,
    // which also cannot fall below the guarantee on the capture side.
    if (net < predicted) ++value_violations;
  }

  support::Table table({"result", "games"});
  table.row().add("perfect player ahead").add(std::int64_t{perfect_wins});
  table.row().add("even").add(std::int64_t{draws});
  table.row().add("perfect player behind").add(std::int64_t{perfect_losses});
  table.print();
  std::printf(
      "\n(\"behind\" games start from positions whose database value is "
      "already negative: perfection limits the damage, it cannot erase "
      "it)\n");

  if (service) {
    const auto& stats = service->stats();
    std::printf(
        "\nserving: %llu lookups, %llu level faults, %llu evictions, "
        "%llu bytes resident\n",
        static_cast<unsigned long long>(stats.lookups),
        static_cast<unsigned long long>(stats.faults),
        static_cast<unsigned long long>(stats.evictions),
        static_cast<unsigned long long>(stats.resident_bytes));
  }

  std::printf(
      "\nrealised result fell below the database guarantee in %d/%d games "
      "(must be 0)\n",
      value_violations, games);
  return value_violations == 0 ? 0 : 1;
}

#include "retra/net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <unordered_map>

#include "retra/net/socket.hpp"
#include "retra/obs/metrics.hpp"
#include "retra/support/check.hpp"
#include "retra/support/sync.hpp"
#include "retra/support/thread_annotations.hpp"
#include "retra/support/timer.hpp"

namespace retra::net {

namespace {

/// One accepted connection.  The I/O thread owns fd, input, and epoll
/// registration; `mutex` guards the response queue that workers append
/// to and the I/O thread drains.
struct Connection {
  explicit Connection(FdHandle in_fd) : fd(std::move(in_fd)) {}

  // I/O-thread-only (reset under `mutex` at teardown so workers racing
  // on `closed` observe the socket gone atomically with the flag).
  FdHandle fd RETRA_NOT_GUARDED;
  FrameBuffer input RETRA_NOT_GUARDED;

  support::Mutex mutex;
  std::deque<std::vector<std::byte>> output RETRA_GUARDED_BY(mutex);
  // bytes of output.front() already sent
  std::size_t output_offset RETRA_GUARDED_BY(mutex) = 0;
  // fd gone; workers drop responses
  bool closed RETRA_GUARDED_BY(mutex) = false;

  // I/O-thread-only: protocol error — answer, flush, close.
  bool close_after_flush RETRA_NOT_GUARDED = false;
  // I/O-thread-only: EPOLLOUT currently armed (written under `mutex`
  // because flush_output decides it mid-drain).
  bool want_write RETRA_GUARDED_BY(mutex) = false;
  std::atomic<bool> wake_queued{false};
};

/// One admitted request, fully validated by the I/O thread: workers
/// never see a bad level, index, or op.
struct Request {
  std::shared_ptr<Connection> conn;
  std::uint32_t id = 0;
  Op op = Op::kPing;
  int level = 0;                   // kQuery / kBatchQuery
  idx::Index index = 0;            // kQuery
  std::vector<idx::Index> batch;   // kBatchQuery
  std::uint64_t debt = 0;          // fault-debt bytes charged at admission
  std::uint64_t enqueue_ns = 0;
};

}  // namespace

struct Server::Impl {
  explicit Impl(Server& in_server) : server(in_server) {}

  Server& server RETRA_NOT_GUARDED;

  // start()-time setup, then I/O-thread-only (wake_fd is written from
  // any thread, which eventfd allows).
  FdHandle listen_fd RETRA_NOT_GUARDED;
  FdHandle epoll_fd RETRA_NOT_GUARDED;
  FdHandle wake_fd RETRA_NOT_GUARDED;  // workers/stop() poke the I/O thread

  std::thread io_thread RETRA_NOT_GUARDED;
  std::vector<std::thread> worker_threads RETRA_NOT_GUARDED;

  // Request queue: I/O thread produces, workers consume.
  support::Mutex queue_mutex;
  support::CondVar queue_cv;
  std::deque<Request> queue RETRA_GUARDED_BY(queue_mutex);
  bool workers_stop RETRA_GUARDED_BY(queue_mutex) = false;

  std::atomic<std::uint64_t> fault_debt{0};
  // Resolved from the config at start(), before any thread exists.
  std::uint64_t debt_limit RETRA_NOT_GUARDED = 0;

  // Connections the workers produced output for since the last wake.
  support::Mutex wake_mutex;
  std::vector<std::shared_ptr<Connection>> pending_wakes
      RETRA_GUARDED_BY(wake_mutex);

  std::atomic<bool> accepting{true};
  std::atomic<bool> io_stop{false};
  std::atomic<bool> stopped{false};

  support::Timer uptime RETRA_NOT_GUARDED;

  struct Counters {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> batch_queries{0};
    std::atomic<std::uint64_t> pings{0};
    std::atomic<std::uint64_t> stats_ops{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> hot_hits{0};
  };
  Counters counters RETRA_NOT_GUARDED;  // struct of atomics

  // I/O-thread-only state.
  std::unordered_map<int, std::shared_ptr<Connection>> connections
      RETRA_NOT_GUARDED;

  void io_loop();
  void accept_ready();
  void handle_readable(const std::shared_ptr<Connection>& conn);
  void handle_request(const std::shared_ptr<Connection>& conn,
                      const Frame& frame);
  void enqueue_request(Request request) RETRA_EXCLUDES(queue_mutex);
  void respond_error(const std::shared_ptr<Connection>& conn,
                     std::uint32_t id, ErrorCode code);
  void flush_output(const std::shared_ptr<Connection>& conn);
  void set_want_write(Connection& conn, bool want)
      RETRA_REQUIRES(conn.mutex);
  void close_connection(const std::shared_ptr<Connection>& conn);
  bool any_pending_output() const;

  void worker_loop() RETRA_EXCLUDES(queue_mutex);
  void process_batch(std::vector<Request>& batch);
  void respond(const std::shared_ptr<Connection>& conn,
               std::vector<std::byte> frame,
               std::vector<std::shared_ptr<Connection>>& woken);
  StatsReply build_stats_reply() const;
  void observe_latency(const Request& request) const;

  void wake_io() {
    const std::uint64_t one = 1;
    (void)::write(wake_fd.get(), &one, sizeof one);
  }
};

Server::OpenResult Server::open(const std::string& path,
                                const ServerConfig& config) {
  OpenResult result;
  serve::QueryServiceConfig service_config;
  service_config.budget_bytes = config.budget_bytes;
  auto opened = serve::QueryService::open(path, service_config);
  if (!opened.ok) {
    result.error = opened.error;
    return result;
  }
  auto store =
      std::make_unique<Store>(std::move(opened.service), config.hot_bytes);
  auto server =
      std::make_unique<Server>(Passkey{}, std::move(store), config);
  if (!server->start(&result.error)) return result;
  result.ok = true;
  result.server = std::move(server);
  return result;
}

Server::Server(Passkey, std::unique_ptr<Store> store,
               const ServerConfig& config)
    : config_(config),
      store_(std::move(store)),
      impl_(std::make_unique<Impl>(*this)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  RETRA_CHECK(config_.workers > 0);
  auto listened = listen_tcp(config_.host, config_.port);
  if (!listened.ok) {
    *error = listened.error;
    return false;
  }
  if (!set_nonblocking(listened.fd.get())) {
    *error = "cannot make listen socket non-blocking";
    return false;
  }
  impl_->listen_fd = std::move(listened.fd);
  port_ = listened.port;

  impl_->epoll_fd = FdHandle(::epoll_create1(0));
  impl_->wake_fd = FdHandle(::eventfd(0, EFD_NONBLOCK));
  if (!impl_->epoll_fd.valid() || !impl_->wake_fd.valid()) {
    *error = "cannot create epoll/eventfd";
    return false;
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = impl_->listen_fd.get();
  if (::epoll_ctl(impl_->epoll_fd.get(), EPOLL_CTL_ADD,
                  impl_->listen_fd.get(), &event) != 0) {
    *error = "cannot register listen socket";
    return false;
  }
  event.data.fd = impl_->wake_fd.get();
  if (::epoll_ctl(impl_->epoll_fd.get(), EPOLL_CTL_ADD, impl_->wake_fd.get(),
                  &event) != 0) {
    *error = "cannot register eventfd";
    return false;
  }

  impl_->debt_limit = config_.shed_fault_debt_bytes != 0
                          ? config_.shed_fault_debt_bytes
                          : config_.budget_bytes * 8;

  impl_->io_thread = std::thread([this] { impl_->io_loop(); });
  impl_->worker_threads.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    impl_->worker_threads.emplace_back([this] { impl_->worker_loop(); });
  }
  return true;
}

void Server::stop() {
  if (impl_->stopped.exchange(true)) return;
  // Phase 1: stop accepting and admitting; the I/O thread closes the
  // listen socket on its next wake-up.
  impl_->accepting.store(false);
  impl_->wake_io();
  // Phase 2: drain the queue — workers exit once it is empty.
  {
    const support::MutexLock lock(impl_->queue_mutex);
    impl_->workers_stop = true;
  }
  impl_->queue_cv.notify_all();
  for (std::thread& worker : impl_->worker_threads) worker.join();
  // Phase 3: flush every pending response, then tear the sockets down.
  impl_->io_stop.store(true);
  impl_->wake_io();
  if (impl_->io_thread.joinable()) impl_->io_thread.join();
}

Server::Stats Server::stats() const {
  const Impl::Counters& c = impl_->counters;
  Stats stats;
  stats.connections = c.connections.load();
  stats.requests = c.requests.load();
  stats.queries = c.queries.load();
  stats.batch_queries = c.batch_queries.load();
  stats.pings = c.pings.load();
  stats.stats_ops = c.stats_ops.load();
  stats.errors = c.errors.load();
  stats.shed = c.shed.load();
  stats.hot_hits = c.hot_hits.load();
  return stats;
}

StatsReply Server::stats_reply() const { return impl_->build_stats_reply(); }

// --------------------------------------------------------------------------
// I/O thread.

void Server::Impl::io_loop() RETRA_IO_THREAD_ONLY {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool listen_open = true;
  double stop_deadline_s = 0.0;

  for (;;) {
    if (listen_open && !accepting.load()) {
      (void)::epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, listen_fd.get(),
                        nullptr);
      listen_fd.reset();
      listen_open = false;
    }
    const bool stopping = io_stop.load();
    if (stopping) {
      if (stop_deadline_s == 0.0) stop_deadline_s = uptime.seconds() + 2.0;
      if (!any_pending_output() || uptime.seconds() > stop_deadline_s) break;
    }
    const int timeout_ms = stopping ? 20 : -1;
    const int n = ::epoll_wait(epoll_fd.get(), events, kMaxEvents,
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (listen_open && fd == listen_fd.get()) {
        accept_ready();
        continue;
      }
      if (fd == wake_fd.get()) {
        std::uint64_t drained;
        (void)::read(wake_fd.get(), &drained, sizeof drained);
        continue;
      }
      const auto it = connections.find(fd);
      if (it == connections.end()) continue;
      const std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_connection(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) handle_readable(conn);
      // flush_output re-checks `closed` under the connection lock, so
      // no unlocked pre-check here.
      if (events[i].events & EPOLLOUT) flush_output(conn);
    }
    // Flush connections the workers filled since the last pass.
    std::vector<std::shared_ptr<Connection>> woken;
    {
      const support::MutexLock lock(wake_mutex);
      woken.swap(pending_wakes);
    }
    for (const auto& conn : woken) {
      conn->wake_queued.store(false);
      flush_output(conn);
    }
  }

  for (const auto& [fd, conn] : connections) {
    const support::MutexLock lock(conn->mutex);
    conn->closed = true;
    conn->fd.reset();
  }
  connections.clear();
}

void Server::Impl::accept_ready() RETRA_IO_THREAD_ONLY {
  for (;;) {
    const int fd = ::accept4(listen_fd.get(), nullptr, nullptr,
                             SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept failure: wait for epoll
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>(FdHandle(fd));
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, fd, &event) != 0) {
      continue;  // conn drops out of scope and closes
    }
    connections.emplace(fd, std::move(conn));
    counters.connections.fetch_add(1);
    RETRA_OBS_INC(obs::Id::kNetConnections);
  }
}

void Server::Impl::handle_readable(const std::shared_ptr<Connection>& conn)
    RETRA_IO_THREAD_ONLY {
  if (conn->close_after_flush) return;  // framing lost; draining only
  std::byte buffer[65536];
  for (;;) {
    const long got = read_some(conn->fd.get(), buffer, sizeof buffer);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn);
      return;
    }
    if (got == 0) {
      close_connection(conn);
      return;
    }
    RETRA_OBS_ADD(obs::Id::kNetBytesIn, static_cast<std::uint64_t>(got));
    conn->input.append(buffer, static_cast<std::size_t>(got));
    if (static_cast<std::size_t>(got) < sizeof buffer) break;
  }

  while (!conn->close_after_flush) {
    Frame frame;
    ErrorCode error = ErrorCode::kNone;
    FrameHeader bad_header;
    const FrameBuffer::Next next =
        conn->input.next(frame, error, &bad_header);
    if (next == FrameBuffer::Next::kNeedMore) break;
    if (next == FrameBuffer::Next::kError) {
      // The stream cannot be re-framed: diagnose, flush, close.
      respond_error(conn, bad_header.request_id, error);
      conn->close_after_flush = true;
      break;
    }
    handle_request(conn, frame);
  }
  flush_output(conn);
}

void Server::Impl::handle_request(const std::shared_ptr<Connection>& conn,
                                  const Frame& frame) RETRA_IO_THREAD_ONLY {
  const std::uint32_t id = frame.header.request_id;
  if (!is_request(frame.op())) {
    respond_error(conn, id, ErrorCode::kBadOp);
    conn->close_after_flush = true;
    return;
  }
  const Store& store = *server.store_;

  Request request;
  request.conn = conn;
  request.id = id;
  request.op = frame.op();

  switch (frame.op()) {
    case Op::kPing:
    case Op::kStats:
      break;
    case Op::kQuery: {
      QueryRequest query;
      if (decode_query(frame.payload, query) != ErrorCode::kNone) {
        respond_error(conn, id, ErrorCode::kMalformed);
        return;
      }
      if (query.mode == QueryRequest::Mode::kBoard) {
        const int stones = idx::stones_on(query.board);
        if (stones >= store.num_levels()) {
          respond_error(conn, id, ErrorCode::kBadBoard);
          return;
        }
        request.level = stones;
        request.index = idx::rank_in_level(stones, query.board);
      } else {
        if (query.level >= static_cast<std::uint32_t>(store.num_levels())) {
          respond_error(conn, id, ErrorCode::kBadLevel);
          return;
        }
        request.level = static_cast<int>(query.level);
        request.index = query.index;
      }
      if (request.index >= store.level_size(request.level)) {
        respond_error(conn, id, ErrorCode::kBadIndex);
        return;
      }
      break;
    }
    case Op::kBatchQuery: {
      BatchQueryRequest batch;
      if (decode_batch_query(frame.payload, batch) != ErrorCode::kNone) {
        respond_error(conn, id, ErrorCode::kMalformed);
        return;
      }
      if (batch.level >= static_cast<std::uint32_t>(store.num_levels())) {
        respond_error(conn, id, ErrorCode::kBadLevel);
        return;
      }
      request.level = static_cast<int>(batch.level);
      const std::uint64_t size = store.level_size(request.level);
      for (const idx::Index index : batch.indices) {
        if (index >= size) {
          respond_error(conn, id, ErrorCode::kBadIndex);
          return;
        }
      }
      request.batch = std::move(batch.indices);
      break;
    }
    default:
      respond_error(conn, id, ErrorCode::kBadOp);
      return;
  }

  if ((request.op == Op::kQuery || request.op == Op::kBatchQuery) &&
      !store.is_hot(request.level)) {
    request.debt = store.level_payload_bytes(request.level);
  }
  enqueue_request(std::move(request));
}

void Server::Impl::enqueue_request(Request request) RETRA_IO_THREAD_ONLY {
  const std::uint64_t debt = request.debt;
  bool shed = false;
  {
    const support::MutexLock lock(queue_mutex);
    if (queue.size() >= server.config_.max_queue_depth ||
        (debt_limit != 0 && debt != 0 &&
         fault_debt.load() + debt > debt_limit)) {
      shed = true;
    } else {
      fault_debt.fetch_add(debt);
      request.enqueue_ns = uptime.nanoseconds();
      // Count before publishing: a worker may serialise a STATS reply
      // the instant the queue holds the request, and that reply must
      // already include it.
      counters.requests.fetch_add(1);
      RETRA_OBS_INC(obs::Id::kNetRequests);
      queue.push_back(std::move(request));
    }
  }
  if (shed) {
    counters.shed.fetch_add(1);
    RETRA_OBS_INC(obs::Id::kNetShed);
    respond_error(request.conn, request.id, ErrorCode::kBusy);
    return;
  }
  queue_cv.notify_one();
}

void Server::Impl::respond_error(const std::shared_ptr<Connection>& conn,
                                 std::uint32_t id, ErrorCode code)
    RETRA_IO_THREAD_ONLY {
  counters.errors.fetch_add(1);
  RETRA_OBS_INC(obs::Id::kNetErrors);
  std::vector<std::byte> frame = encode_error(id, code);
  const support::MutexLock lock(conn->mutex);
  if (!conn->closed) conn->output.push_back(std::move(frame));
}

void Server::Impl::set_want_write(Connection& conn, bool want)
    RETRA_IO_THREAD_ONLY {
  if (conn.want_write == want || conn.closed) return;
  epoll_event event{};
  event.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  event.data.fd = conn.fd.get();
  if (::epoll_ctl(epoll_fd.get(), EPOLL_CTL_MOD, conn.fd.get(), &event) ==
      0) {
    conn.want_write = want;
  }
}

void Server::Impl::flush_output(const std::shared_ptr<Connection>& conn)
    RETRA_IO_THREAD_ONLY {
  bool failed = false;
  {
    const support::MutexLock lock(conn->mutex);
    if (conn->closed) return;
    while (!conn->output.empty()) {
      const std::vector<std::byte>& front = conn->output.front();
      const std::size_t remaining = front.size() - conn->output_offset;
      const ssize_t sent =
          ::send(conn->fd.get(), front.data() + conn->output_offset,
                 remaining, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          set_want_write(*conn, true);
          return;
        }
        failed = true;
        break;
      }
      RETRA_OBS_ADD(obs::Id::kNetBytesOut, static_cast<std::uint64_t>(sent));
      conn->output_offset += static_cast<std::size_t>(sent);
      if (conn->output_offset == front.size()) {
        conn->output.pop_front();
        conn->output_offset = 0;
      } else {
        set_want_write(*conn, true);  // kernel buffer full mid-frame
        return;
      }
    }
    if (!failed) {
      set_want_write(*conn, false);
      if (!conn->close_after_flush) return;
    }
  }
  close_connection(conn);
}

void Server::Impl::close_connection(const std::shared_ptr<Connection>& conn)
    RETRA_IO_THREAD_ONLY {
  const support::MutexLock lock(conn->mutex);
  if (conn->closed) return;
  (void)::epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, conn->fd.get(), nullptr);
  connections.erase(conn->fd.get());
  conn->closed = true;
  conn->fd.reset();
  conn->output.clear();
}

bool Server::Impl::any_pending_output() const RETRA_IO_THREAD_ONLY {
  for (const auto& [fd, conn] : connections) {
    const support::MutexLock lock(conn->mutex);
    if (!conn->output.empty()) return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// Worker threads.

void Server::Impl::worker_loop() {
  std::vector<Request> batch;
  for (;;) {
    batch.clear();
    {
      const support::MutexLock lock(queue_mutex);
      while (!workers_stop && queue.empty()) queue_cv.wait(queue_mutex);
      if (queue.empty()) {
        if (workers_stop) return;
        continue;
      }
      while (!queue.empty() && batch.size() < server.config_.max_drain) {
        batch.push_back(std::move(queue.front()));
        queue.pop_front();
      }
    }
    process_batch(batch);
  }
}

void Server::Impl::process_batch(std::vector<Request>& batch) {
  std::vector<std::shared_ptr<Connection>> woken;

  // Coalesce the gulp's single QUERYs by level: one Store batch per
  // level regardless of which connections the lookups came from.
  std::map<int, std::vector<std::size_t>> by_level;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].op == Op::kQuery) by_level[batch[i].level].push_back(i);
  }
  std::vector<idx::Index> indices;
  std::vector<db::Value> values;
  for (const auto& [level, slots] : by_level) {
    indices.clear();
    for (const std::size_t slot : slots) {
      indices.push_back(batch[slot].index);
    }
    values.resize(indices.size());
    const std::uint64_t hot =
        server.store_->values(level, indices, values);
    counters.hot_hits.fetch_add(hot);
    RETRA_OBS_ADD(obs::Id::kNetHotHits, hot);
    RETRA_OBS_OBSERVE(obs::Id::kNetCoalescedLookups, indices.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const Request& request = batch[slots[i]];
      respond(request.conn, encode_value(request.id, values[i]), woken);
      counters.queries.fetch_add(1);
      observe_latency(request);
    }
  }

  for (const Request& request : batch) {
    switch (request.op) {
      case Op::kQuery:
        break;  // answered above
      case Op::kBatchQuery: {
        values.resize(request.batch.size());
        const std::uint64_t hot =
            server.store_->values(request.level, request.batch, values);
        counters.hot_hits.fetch_add(hot);
        RETRA_OBS_ADD(obs::Id::kNetHotHits, hot);
        RETRA_OBS_OBSERVE(obs::Id::kNetCoalescedLookups,
                          request.batch.size());
        respond(request.conn, encode_batch_values(request.id, values),
                woken);
        counters.batch_queries.fetch_add(1);
        observe_latency(request);
        break;
      }
      case Op::kPing:
        respond(request.conn, encode_pong(request.id), woken);
        counters.pings.fetch_add(1);
        observe_latency(request);
        break;
      case Op::kStats: {
        // Count first so the reply's own counters include this op.
        counters.stats_ops.fetch_add(1);
        respond(request.conn,
                encode_stats_reply(request.id, build_stats_reply()), woken);
        observe_latency(request);
        break;
      }
      default:
        break;  // admission never enqueues anything else
    }
    if (request.debt != 0) fault_debt.fetch_sub(request.debt);
  }

  if (!woken.empty()) wake_io();
}

void Server::Impl::respond(const std::shared_ptr<Connection>& conn,
                           std::vector<std::byte> frame,
                           std::vector<std::shared_ptr<Connection>>& woken) {
  {
    const support::MutexLock lock(conn->mutex);
    if (conn->closed) return;
    conn->output.push_back(std::move(frame));
  }
  if (!conn->wake_queued.exchange(true)) {
    const support::MutexLock lock(wake_mutex);
    pending_wakes.push_back(conn);
    woken.push_back(conn);
  }
}

StatsReply Server::Impl::build_stats_reply() const {
  StatsReply reply;
  reply.connections = counters.connections.load();
  reply.requests = counters.requests.load();
  reply.queries = counters.queries.load();
  reply.batch_queries = counters.batch_queries.load();
  reply.pings = counters.pings.load();
  reply.stats_ops = counters.stats_ops.load();
  reply.errors = counters.errors.load();
  reply.shed = counters.shed.load();
  reply.hot_hits = counters.hot_hits.load();
  const serve::QueryService::Stats service = server.store_->service_stats();
  reply.lookups = service.lookups;
  reply.level_faults = service.faults;
  reply.level_evictions = service.evictions;
  reply.resident_bytes = service.resident_bytes;
  reply.level_sizes = server.store_->level_sizes();
  return reply;
}

void Server::Impl::observe_latency(const Request& request) const {
  const std::uint64_t us =
      (uptime.nanoseconds() - request.enqueue_ns) / 1000;
  switch (request.op) {
    case Op::kQuery:
      RETRA_OBS_OBSERVE(obs::Id::kNetQueryMicros, us);
      break;
    case Op::kBatchQuery:
      RETRA_OBS_OBSERVE(obs::Id::kNetBatchMicros, us);
      break;
    default:
      RETRA_OBS_OBSERVE(obs::Id::kNetOtherMicros, us);
      break;
  }
}

}  // namespace retra::net

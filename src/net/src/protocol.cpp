#include "retra/net/protocol.hpp"

#include <cstring>

namespace retra::net {

namespace {

/// Allocates a frame with `payload_bytes` of payload and writes the
/// header; returns a writer positioned at the payload.
std::vector<std::byte> make_frame(Op op, std::uint32_t request_id,
                                  ErrorCode code,
                                  std::size_t payload_bytes) {
  std::vector<std::byte> frame(FrameHeader::kWireSize + payload_bytes);
  FrameHeader header;
  header.op = static_cast<std::uint8_t>(op);
  header.code = static_cast<std::uint16_t>(code);
  header.request_id = request_id;
  header.payload_bytes = static_cast<std::uint32_t>(payload_bytes);
  header.encode(frame.data());
  return frame;
}

msg::WireWriter payload_writer(std::vector<std::byte>& frame) {
  return msg::WireWriter(frame.data() + FrameHeader::kWireSize);
}

}  // namespace

std::string_view error_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return "none";
    case ErrorCode::kMalformed:
      return "malformed";
    case ErrorCode::kBadMagic:
      return "bad-magic";
    case ErrorCode::kBadVersion:
      return "bad-version";
    case ErrorCode::kBadOp:
      return "bad-op";
    case ErrorCode::kBadLevel:
      return "bad-level";
    case ErrorCode::kBadIndex:
      return "bad-index";
    case ErrorCode::kBadBoard:
      return "bad-board";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kOversizedFrame:
      return "oversized-frame";
  }
  return "?";
}

FrameBuffer::Next FrameBuffer::next(Frame& out, ErrorCode& error,
                                    FrameHeader* bad_header) {
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection never grows the buffer without bound.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  if (buffered() < FrameHeader::kWireSize) return Next::kNeedMore;

  msg::WireReader reader(buffer_.data() + consumed_);
  const FrameHeader header = FrameHeader::decode(reader);
  if (bad_header) *bad_header = header;
  if (header.magic != kMagic) {
    error = ErrorCode::kBadMagic;
    return Next::kError;
  }
  if (header.version != kVersion) {
    error = ErrorCode::kBadVersion;
    return Next::kError;
  }
  if (!is_request(static_cast<Op>(header.op)) &&
      !is_response(static_cast<Op>(header.op))) {
    error = ErrorCode::kBadOp;
    return Next::kError;
  }
  if (header.payload_bytes > kMaxPayloadBytes) {
    error = ErrorCode::kOversizedFrame;
    return Next::kError;
  }
  if (buffered() < FrameHeader::kWireSize + header.payload_bytes) {
    return Next::kNeedMore;
  }

  out.header = header;
  const std::byte* payload =
      buffer_.data() + consumed_ + FrameHeader::kWireSize;
  out.payload.assign(payload, payload + header.payload_bytes);
  consumed_ += FrameHeader::kWireSize + header.payload_bytes;
  return Next::kFrame;
}

std::vector<std::byte> encode_ping(std::uint32_t request_id) {
  return make_frame(Op::kPing, request_id, ErrorCode::kNone, 0);
}

std::vector<std::byte> encode_query(std::uint32_t request_id,
                                    std::uint32_t level, idx::Index index) {
  auto frame = make_frame(Op::kQuery, request_id, ErrorCode::kNone,
                          QueryRequest::kPayloadBytes);
  msg::WireWriter w = payload_writer(frame);
  w.u8(static_cast<std::uint8_t>(QueryRequest::Mode::kLevelIndex));
  w.u32(level);
  w.u64(index);
  return frame;
}

std::vector<std::byte> encode_board_query(std::uint32_t request_id,
                                          const idx::Board& board) {
  auto frame = make_frame(Op::kQuery, request_id, ErrorCode::kNone,
                          QueryRequest::kPayloadBytes);
  msg::WireWriter w = payload_writer(frame);
  w.u8(static_cast<std::uint8_t>(QueryRequest::Mode::kBoard));
  for (const std::uint8_t pit : board) w.u8(pit);
  return frame;
}

std::vector<std::byte> encode_batch_query(
    std::uint32_t request_id, std::uint32_t level,
    std::span<const idx::Index> indices) {
  auto frame =
      make_frame(Op::kBatchQuery, request_id, ErrorCode::kNone,
                 4 + 4 + indices.size() * 8);
  msg::WireWriter w = payload_writer(frame);
  w.u32(level);
  w.u32(static_cast<std::uint32_t>(indices.size()));
  for (const idx::Index index : indices) w.u64(index);
  return frame;
}

std::vector<std::byte> encode_stats(std::uint32_t request_id) {
  return make_frame(Op::kStats, request_id, ErrorCode::kNone, 0);
}

std::vector<std::byte> encode_pong(std::uint32_t request_id) {
  return make_frame(Op::kPong, request_id, ErrorCode::kNone, 0);
}

std::vector<std::byte> encode_value(std::uint32_t request_id,
                                    db::Value value) {
  auto frame = make_frame(Op::kValue, request_id, ErrorCode::kNone, 2);
  msg::WireWriter w = payload_writer(frame);
  w.i16(value);
  return frame;
}

std::vector<std::byte> encode_batch_values(
    std::uint32_t request_id, std::span<const db::Value> values) {
  auto frame = make_frame(Op::kBatchValues, request_id, ErrorCode::kNone,
                          4 + values.size() * 2);
  msg::WireWriter w = payload_writer(frame);
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (const db::Value value : values) w.i16(value);
  return frame;
}

std::vector<std::byte> encode_stats_reply(std::uint32_t request_id,
                                          const StatsReply& stats) {
  auto frame = make_frame(
      Op::kStatsReply, request_id, ErrorCode::kNone,
      StatsReply::kCounterCount * 8 + 4 + stats.level_sizes.size() * 8);
  msg::WireWriter w = payload_writer(frame);
  w.u64(stats.connections);
  w.u64(stats.requests);
  w.u64(stats.queries);
  w.u64(stats.batch_queries);
  w.u64(stats.pings);
  w.u64(stats.stats_ops);
  w.u64(stats.errors);
  w.u64(stats.shed);
  w.u64(stats.hot_hits);
  w.u64(stats.lookups);
  w.u64(stats.level_faults);
  w.u64(stats.level_evictions);
  w.u64(stats.resident_bytes);
  w.u32(static_cast<std::uint32_t>(stats.level_sizes.size()));
  for (const std::uint64_t size : stats.level_sizes) w.u64(size);
  return frame;
}

std::vector<std::byte> encode_error(std::uint32_t request_id,
                                    ErrorCode code) {
  return make_frame(Op::kError, request_id, code, 0);
}

ErrorCode decode_query(std::span<const std::byte> payload,
                       QueryRequest& out) {
  if (payload.size() != QueryRequest::kPayloadBytes) {
    return ErrorCode::kMalformed;
  }
  msg::WireReader r(payload.data());
  const std::uint8_t mode = r.u8();
  if (mode == static_cast<std::uint8_t>(QueryRequest::Mode::kLevelIndex)) {
    out.mode = QueryRequest::Mode::kLevelIndex;
    out.level = r.u32();
    out.index = r.u64();
    return ErrorCode::kNone;
  }
  if (mode == static_cast<std::uint8_t>(QueryRequest::Mode::kBoard)) {
    out.mode = QueryRequest::Mode::kBoard;
    for (std::uint8_t& pit : out.board) pit = r.u8();
    return ErrorCode::kNone;
  }
  return ErrorCode::kMalformed;
}

ErrorCode decode_batch_query(std::span<const std::byte> payload,
                             BatchQueryRequest& out) {
  if (payload.size() < 8) return ErrorCode::kMalformed;
  msg::WireReader r(payload.data());
  out.level = r.u32();
  const std::uint32_t count = r.u32();
  if (count > kMaxBatchLookups) return ErrorCode::kMalformed;
  if (payload.size() != 8 + static_cast<std::size_t>(count) * 8) {
    return ErrorCode::kMalformed;
  }
  out.indices.resize(count);
  for (idx::Index& index : out.indices) index = r.u64();
  return ErrorCode::kNone;
}

ErrorCode decode_value(std::span<const std::byte> payload, db::Value& out) {
  if (payload.size() != 2) return ErrorCode::kMalformed;
  msg::WireReader r(payload.data());
  out = r.i16();
  return ErrorCode::kNone;
}

ErrorCode decode_batch_values(std::span<const std::byte> payload,
                              std::vector<db::Value>& out) {
  if (payload.size() < 4) return ErrorCode::kMalformed;
  msg::WireReader r(payload.data());
  const std::uint32_t count = r.u32();
  if (payload.size() != 4 + static_cast<std::size_t>(count) * 2) {
    return ErrorCode::kMalformed;
  }
  out.resize(count);
  for (db::Value& value : out) value = r.i16();
  return ErrorCode::kNone;
}

ErrorCode decode_stats_reply(std::span<const std::byte> payload,
                             StatsReply& out) {
  constexpr std::size_t kFixed = StatsReply::kCounterCount * 8 + 4;
  if (payload.size() < kFixed) return ErrorCode::kMalformed;
  msg::WireReader r(payload.data());
  out.connections = r.u64();
  out.requests = r.u64();
  out.queries = r.u64();
  out.batch_queries = r.u64();
  out.pings = r.u64();
  out.stats_ops = r.u64();
  out.errors = r.u64();
  out.shed = r.u64();
  out.hot_hits = r.u64();
  out.lookups = r.u64();
  out.level_faults = r.u64();
  out.level_evictions = r.u64();
  out.resident_bytes = r.u64();
  const std::uint32_t levels = r.u32();
  if (payload.size() != kFixed + static_cast<std::size_t>(levels) * 8) {
    return ErrorCode::kMalformed;
  }
  out.level_sizes.resize(levels);
  for (std::uint64_t& size : out.level_sizes) size = r.u64();
  return ErrorCode::kNone;
}

}  // namespace retra::net

#include "retra/net/store.hpp"

#include "retra/support/check.hpp"

namespace retra::net {

Store::Store(std::unique_ptr<serve::QueryService> service,
             std::uint64_t hot_bytes)
    : service_(std::move(service)), hot_bytes_(hot_bytes) {
  RETRA_CHECK(service_ != nullptr);
  // No other thread can see this Store yet; the lock only satisfies the
  // static pt_guarded_by contract on service_.
  const support::MutexLock lock(service_mutex_);
  const db::FileIndex& index = service_->index();
  num_levels_ = static_cast<int>(index.levels.size());
  level_sizes_.reserve(index.levels.size());
  level_payload_bytes_.reserve(index.levels.size());
  level_block_positions_.reserve(index.levels.size());
  level_block_counts_.reserve(index.levels.size());
  for (const db::LevelLocation& location : index.levels) {
    level_sizes_.push_back(location.size);
    level_payload_bytes_.push_back(location.decoded_bytes());
    level_block_positions_.push_back(location.block_positions);
    level_block_counts_.push_back(location.block_count());
  }
}

std::uint64_t Store::values(int level, std::span<const idx::Index> indices,
                            std::span<db::Value> out) {
  RETRA_DCHECK(level >= 0 && level < num_levels_);
  RETRA_DCHECK(out.size() >= indices.size());

  if (indices.empty()) {
    // An empty batch still warms the level's first block, exactly as the
    // in-process service does — unless the level is already fully hot.
    if (is_hot(level)) return 0;
    const support::MutexLock lock(service_mutex_);
    service_->values(level, indices, out);
    if (hot_bytes_ != 0 &&
        level_block_counts_[static_cast<std::size_t>(level)] > 0) {
      hot_promote(level, 0, service_->resident_block(level, 0));
    }
    return 0;
  }

  // Hot pass: answer every index whose block is hot under the shared
  // lock; remember the positions that missed.
  std::vector<std::uint32_t> missed;
  std::uint64_t hot_answered = 0;
  if (hot_bytes_ != 0) {
    const support::ReaderMutexLock lock(hot_mutex_);
    int current = -1;
    const db::CompactLevel* block = nullptr;
    std::uint64_t begin = 0;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const int b = block_of(level, indices[i]);
      if (b != current) {
        current = b;
        const auto it = hot_.find(hot_key(level, b));
        block = it == hot_.end() ? nullptr : it->second.block.get();
        begin = block_begin(level, b);
      }
      if (block) {
        out[i] = block->get(indices[i] - begin);
        ++hot_answered;
      } else {
        missed.push_back(static_cast<std::uint32_t>(i));
      }
    }
    if (missed.empty()) return hot_answered;
  } else {
    missed.resize(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      missed[i] = static_cast<std::uint32_t>(i);
    }
  }

  // Miss pass: serve the cold indices through the locked service (so
  // faults, evictions and serve.* metrics move exactly as in-process
  // serving), then promote the blocks they touched.
  const support::MutexLock lock(service_mutex_);
  if (missed.size() == indices.size()) {
    service_->values(level, indices, out);
  } else {
    std::vector<idx::Index> cold_indices(missed.size());
    std::vector<db::Value> cold_out(missed.size());
    for (std::size_t j = 0; j < missed.size(); ++j) {
      cold_indices[j] = indices[missed[j]];
    }
    service_->values(level, cold_indices, cold_out);
    for (std::size_t j = 0; j < missed.size(); ++j) {
      out[missed[j]] = cold_out[j];
    }
  }
  if (hot_bytes_ != 0) {
    std::vector<int> cold_blocks;
    for (const std::uint32_t j : missed) {
      const int b = block_of(level, indices[j]);
      bool seen = false;
      for (const int known : cold_blocks) {
        if (known == b) {
          seen = true;
          break;
        }
      }
      if (!seen) cold_blocks.push_back(b);
    }
    for (const int b : cold_blocks) {
      hot_promote(level, b, service_->resident_block(level, b));
    }
  }
  return hot_answered;
}

bool Store::is_hot(int level) const {
  if (hot_bytes_ == 0) return false;
  const support::ReaderMutexLock lock(hot_mutex_);
  const auto it = hot_level_blocks_.find(level);
  return it != hot_level_blocks_.end() &&
         it->second == level_block_counts_[static_cast<std::size_t>(level)];
}

serve::QueryService::Stats Store::service_stats() const {
  const support::MutexLock lock(service_mutex_);
  return service_->stats();
}

std::vector<int> Store::hot_levels() const {
  const support::ReaderMutexLock lock(hot_mutex_);
  std::vector<int> levels;
  for (const std::uint64_t key : hot_order_) {
    const int level = key_level(key);
    bool seen = false;
    for (const int known : levels) {
      if (known == level) {
        seen = true;
        break;
      }
    }
    if (!seen) levels.push_back(level);
  }
  return levels;
}

void Store::hot_promote(int level, int block,
                        const db::CompactLevel& resident) {
  const std::uint64_t bytes = resident.memory_bytes();
  if (bytes > hot_bytes_) return;  // would evict the whole tier for one block
  const support::WriterMutexLock lock(hot_mutex_);
  const std::uint64_t key = hot_key(level, block);
  if (hot_.contains(key)) return;  // raced with another promoter
  while (!hot_order_.empty() && hot_resident_ + bytes > hot_bytes_) {
    const std::uint64_t victim = hot_order_.back();
    hot_order_.pop_back();
    const auto it = hot_.find(victim);
    RETRA_CHECK(it != hot_.end());
    hot_resident_ -= it->second.block->memory_bytes();
    const auto count = hot_level_blocks_.find(key_level(victim));
    RETRA_CHECK(count != hot_level_blocks_.end());
    if (--count->second == 0) hot_level_blocks_.erase(count);
    hot_.erase(it);
  }
  // Copy: the service may evict (and destroy) its resident block at any
  // later query; hot readers hold this shared copy instead.
  hot_order_.push_front(key);
  hot_.emplace(key,
               HotEntry{std::make_shared<const db::CompactLevel>(resident),
                        hot_order_.begin()});
  ++hot_level_blocks_[level];
  hot_resident_ += bytes;
}

}  // namespace retra::net

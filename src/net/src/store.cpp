#include "retra/net/store.hpp"

#include "retra/support/check.hpp"

namespace retra::net {

Store::Store(std::unique_ptr<serve::QueryService> service,
             std::uint64_t hot_bytes)
    : service_(std::move(service)), hot_bytes_(hot_bytes) {
  RETRA_CHECK(service_ != nullptr);
  // No other thread can see this Store yet; the lock only satisfies the
  // static pt_guarded_by contract on service_.
  const support::MutexLock lock(service_mutex_);
  num_levels_ = service_->num_levels();
  level_sizes_.reserve(static_cast<std::size_t>(num_levels_));
  level_payload_bytes_.reserve(static_cast<std::size_t>(num_levels_));
  for (int level = 0; level < num_levels_; ++level) {
    level_sizes_.push_back(service_->level_size(level));
    level_payload_bytes_.push_back(
        service_->index().levels[static_cast<std::size_t>(level)]
            .payload_bytes);
  }
}

std::shared_ptr<const db::CompactLevel> Store::hot_find(int level) const {
  if (hot_bytes_ == 0) return nullptr;
  const support::ReaderMutexLock lock(hot_mutex_);
  const auto it = hot_.find(level);
  return it == hot_.end() ? nullptr : it->second.level;
}

void Store::hot_promote(int level, const db::CompactLevel& resident) {
  const std::uint64_t bytes = resident.memory_bytes();
  if (bytes > hot_bytes_) return;  // would evict the whole tier for one level
  const support::WriterMutexLock lock(hot_mutex_);
  if (hot_.contains(level)) return;  // raced with another promoter
  while (hot_resident_ + bytes > hot_bytes_) {
    const int victim = hot_order_.back();
    hot_order_.pop_back();
    const auto it = hot_.find(victim);
    hot_resident_ -= it->second.level->memory_bytes();
    hot_.erase(it);
  }
  // Copy: the service may evict (and destroy) its resident level at any
  // later query; hot readers hold this shared copy instead.
  auto copy = std::make_shared<const db::CompactLevel>(resident);
  hot_order_.push_front(level);
  hot_.emplace(level, HotEntry{std::move(copy), hot_order_.begin()});
  hot_resident_ += bytes;
}

std::uint64_t Store::values(int level, std::span<const idx::Index> indices,
                            std::span<db::Value> out) {
  RETRA_DCHECK(level >= 0 && level < num_levels_);
  RETRA_DCHECK(out.size() >= indices.size());
  if (const auto hot = hot_find(level)) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      out[i] = hot->get(indices[i]);
    }
    return indices.size();
  }
  const support::MutexLock lock(service_mutex_);
  service_->values(level, indices, out);
  hot_promote(level, service_->resident_level(level));
  return 0;
}

bool Store::is_hot(int level) const { return hot_find(level) != nullptr; }

serve::QueryService::Stats Store::service_stats() const {
  const support::MutexLock lock(service_mutex_);
  return service_->stats();
}

std::vector<int> Store::hot_levels() const {
  const support::ReaderMutexLock lock(hot_mutex_);
  return {hot_order_.begin(), hot_order_.end()};
}

}  // namespace retra::net

#include "retra/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace retra::net {

namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool parse_addr(const std::string& host, std::uint16_t port,
                sockaddr_in& addr, std::string* error) {
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "not a numeric IPv4 address: " + host;
    return false;
  }
  return true;
}

}  // namespace

void FdHandle::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenResult listen_tcp(const std::string& host, std::uint16_t port,
                        int backlog) {
  ListenResult result;
  sockaddr_in addr;
  if (!parse_addr(host, port, addr, &result.error)) return result;

  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    result.error = errno_message("socket");
    return result;
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    result.error = errno_message("bind");
    return result;
  }
  if (::listen(fd.get(), backlog) != 0) {
    result.error = errno_message("listen");
    return result;
  }
  sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    result.error = errno_message("getsockname");
    return result;
  }
  result.ok = true;
  result.port = ntohs(bound.sin_port);
  result.fd = std::move(fd);
  return result;
}

ConnectResult connect_tcp(const std::string& host, std::uint16_t port) {
  ConnectResult result;
  sockaddr_in addr;
  if (!parse_addr(host, port, addr, &result.error)) return result;

  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    result.error = errno_message("socket");
    return result;
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    result.error = errno_message("connect");
    return result;
  }
  // Lookup frames are tiny; answering them promptly matters more than
  // coalescing them into full segments.
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  result.ok = true;
  result.fd = std::move(fd);
  return result;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool write_full(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer closing mid-write must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (written == 0) return false;
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  return true;
}

bool read_full(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

long read_some(int fd, void* data, std::size_t n) {
  ssize_t got;
  do {
    got = ::read(fd, data, n);
  } while (got < 0 && errno == EINTR);
  return got;
}

}  // namespace retra::net

#include "retra/net/client.hpp"

#include <chrono>
#include <thread>
#include <unordered_map>

#include "retra/support/check.hpp"

namespace retra::net {

Client::ConnectResult Client::connect(const std::string& host,
                                      std::uint16_t port) {
  ConnectResult result;
  auto connected = connect_tcp(host, port);
  if (!connected.ok) {
    result.error = connected.error;
    return result;
  }
  result.ok = true;
  result.client =
      std::make_unique<Client>(Passkey{}, std::move(connected.fd));
  return result;
}

Client::Status Client::send_frame(const std::vector<std::byte>& frame) {
  Status status;
  if (!fd_.valid()) {
    status.transport = "connection closed";
    return status;
  }
  if (!write_full(fd_.get(), frame.data(), frame.size())) {
    fd_.reset();
    status.transport = "short write";
  }
  return status;
}

Client::Status Client::read_frame(Frame& out) {
  Status status;
  if (!fd_.valid()) {
    status.transport = "connection closed";
    return status;
  }
  std::byte header_bytes[FrameHeader::kWireSize];
  if (!read_full(fd_.get(), header_bytes, sizeof header_bytes)) {
    fd_.reset();
    status.transport = "connection closed mid-frame";
    return status;
  }
  msg::WireReader reader(header_bytes);
  out.header = FrameHeader::decode(reader);
  if (out.header.magic != kMagic || out.header.version != kVersion ||
      !is_response(static_cast<Op>(out.header.op)) ||
      out.header.payload_bytes > kMaxPayloadBytes) {
    fd_.reset();
    status.transport = "garbled response header";
    return status;
  }
  out.payload.resize(out.header.payload_bytes);
  if (out.header.payload_bytes != 0 &&
      !read_full(fd_.get(), out.payload.data(), out.payload.size())) {
    fd_.reset();
    status.transport = "connection closed mid-frame";
    return status;
  }
  return status;
}

Client::Status Client::round_trip(const std::vector<std::byte>& request,
                                  std::uint32_t request_id, Op expected,
                                  Frame& response) {
  Status status = send_frame(request);
  if (!status.ok()) return status;
  status = read_frame(response);
  if (!status.ok()) return status;
  if (response.header.request_id != request_id) {
    fd_.reset();
    status.transport = "response for a different request";
    return status;
  }
  if (response.op() == Op::kError) {
    status.code = static_cast<ErrorCode>(response.header.code);
    if (status.code == ErrorCode::kNone) status.code = ErrorCode::kMalformed;
    return status;
  }
  if (response.op() != expected) {
    fd_.reset();
    status.transport = "unexpected response op";
  }
  return status;
}

Client::Status Client::ping() {
  const std::uint32_t id = next_id();
  Frame response;
  return round_trip(encode_ping(id), id, Op::kPong, response);
}

Client::Status Client::query(std::uint32_t level, idx::Index index,
                             db::Value& out) {
  const std::uint32_t id = next_id();
  Frame response;
  Status status =
      round_trip(encode_query(id, level, index), id, Op::kValue, response);
  if (!status.ok()) return status;
  if (decode_value(response.payload, out) != ErrorCode::kNone) {
    fd_.reset();
    status.transport = "garbled VALUE payload";
  }
  return status;
}

Client::Status Client::query_board(const idx::Board& board, db::Value& out) {
  const std::uint32_t id = next_id();
  Frame response;
  Status status =
      round_trip(encode_board_query(id, board), id, Op::kValue, response);
  if (!status.ok()) return status;
  if (decode_value(response.payload, out) != ErrorCode::kNone) {
    fd_.reset();
    status.transport = "garbled VALUE payload";
  }
  return status;
}

Client::Status Client::batch_query(std::uint32_t level,
                                   std::span<const idx::Index> indices,
                                   std::vector<db::Value>& out) {
  const std::uint32_t id = next_id();
  Frame response;
  Status status = round_trip(encode_batch_query(id, level, indices), id,
                             Op::kBatchValues, response);
  if (!status.ok()) return status;
  if (decode_batch_values(response.payload, out) != ErrorCode::kNone ||
      out.size() != indices.size()) {
    fd_.reset();
    status.transport = "garbled BATCH_VALUES payload";
  }
  return status;
}

Client::Status Client::stats(StatsReply& out) {
  const std::uint32_t id = next_id();
  Frame response;
  Status status =
      round_trip(encode_stats(id), id, Op::kStatsReply, response);
  if (!status.ok()) return status;
  if (decode_stats_reply(response.payload, out) != ErrorCode::kNone) {
    fd_.reset();
    status.transport = "garbled STATS_REPLY payload";
  }
  return status;
}

Client::Status Client::pipelined_queries(std::uint32_t level,
                                         std::span<const idx::Index> indices,
                                         std::span<db::Value> out,
                                         std::vector<ErrorCode>* per_query) {
  RETRA_CHECK(out.size() >= indices.size());
  Status status;
  if (per_query != nullptr) {
    per_query->assign(indices.size(), ErrorCode::kNone);
  }
  std::unordered_map<std::uint32_t, std::size_t> slot_of_id;
  slot_of_id.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::uint32_t id = next_id();
    slot_of_id.emplace(id, i);
    status = send_frame(encode_query(id, level, indices[i]));
    if (!status.ok()) return status;
  }
  ErrorCode first_error = ErrorCode::kNone;
  for (std::size_t n = 0; n < indices.size(); ++n) {
    Frame response;
    status = read_frame(response);
    if (!status.ok()) return status;
    const auto it = slot_of_id.find(response.header.request_id);
    if (it == slot_of_id.end()) {
      fd_.reset();
      status.transport = "response for an unknown request";
      return status;
    }
    const std::size_t slot = it->second;
    slot_of_id.erase(it);
    if (response.op() == Op::kError) {
      ErrorCode code = static_cast<ErrorCode>(response.header.code);
      if (code == ErrorCode::kNone) code = ErrorCode::kMalformed;
      if (per_query != nullptr) {
        (*per_query)[slot] = code;
      } else if (first_error == ErrorCode::kNone) {
        first_error = code;
      }
      continue;
    }
    if (response.op() != Op::kValue ||
        decode_value(response.payload, out[slot]) != ErrorCode::kNone) {
      fd_.reset();
      status.transport = "unexpected response op";
      return status;
    }
  }
  status.code = first_error;
  return status;
}

// --------------------------------------------------------------------------
// ClientValueSource.

namespace {

/// Runs `op` until it succeeds, retrying kBusy sheds with a short
/// backoff.  Aborts (loudly) on transport errors or exhausted retries:
/// ValueSource has no error channel, and the tools that use this
/// adapter prefer a diagnosis over a silent wrong answer.
template <typename Operation>
void with_busy_retry(int busy_retries, Operation&& op) {
  for (int attempt = 0;; ++attempt) {
    const Client::Status status = op();
    if (status.ok()) return;
    RETRA_CHECK_MSG(status.transport.empty(),
                    "net transport error: " + status.transport);
    RETRA_CHECK_MSG(status.code == ErrorCode::kBusy,
                    "server error: " + std::string(error_name(status.code)));
    RETRA_CHECK_MSG(attempt < busy_retries, "server still BUSY after retries");
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + attempt / 8));
  }
}

}  // namespace

ClientValueSource::OpenResult ClientValueSource::open(Client& client,
                                                      int busy_retries) {
  OpenResult result;
  StatsReply reply;
  const Client::Status status = client.stats(reply);
  if (!status.ok()) {
    result.error = status.transport.empty()
                       ? std::string(error_name(status.code))
                       : status.transport;
    return result;
  }
  result.ok = true;
  result.source = std::make_unique<ClientValueSource>(
      Passkey{}, client, std::move(reply.level_sizes), busy_retries);
  return result;
}

serve::Value ClientValueSource::value(int level, idx::Index index) {
  RETRA_CHECK(covers(level));
  db::Value out = 0;
  with_busy_retry(busy_retries_, [&] {
    return client_->query(static_cast<std::uint32_t>(level), index, out);
  });
  return out;
}

void ClientValueSource::values(int level, std::span<const idx::Index> indices,
                               std::span<serve::Value> out) {
  RETRA_CHECK(covers(level));
  RETRA_CHECK(out.size() >= indices.size());
  std::vector<db::Value> chunk_values;
  for (std::size_t begin = 0; begin < indices.size();
       begin += kMaxBatchLookups) {
    const std::size_t count =
        std::min<std::size_t>(kMaxBatchLookups, indices.size() - begin);
    const auto chunk = indices.subspan(begin, count);
    with_busy_retry(busy_retries_, [&] {
      return client_->batch_query(static_cast<std::uint32_t>(level), chunk,
                                  chunk_values);
    });
    for (std::size_t i = 0; i < count; ++i) out[begin + i] = chunk_values[i];
  }
}

}  // namespace retra::net

// The retra-net-v1 client: a blocking TCP connection speaking the
// protocol in protocol.hpp.
//
// Two usage shapes:
//   * sync ops — ping/query/batch_query/stats, one round trip each;
//   * pipelined_queries — writes every QUERY frame back-to-back before
//     reading any response, then matches responses to slots by the
//     echoed request_id (the server does not promise per-connection
//     ordering when it coalesces lookups across connections).
//
// Every op returns a Status: `code` carries the server's typed error
// (kBusy is the retryable admission shed), `transport` is non-empty
// when the connection itself failed.  ClientValueSource adapts a Client
// to the serve::ValueSource interface — with a bounded kBusy retry loop
// — so retra_serve --connect can reuse the in-process answer/selfcheck
// paths unchanged against a remote server.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "retra/net/protocol.hpp"
#include "retra/net/socket.hpp"
#include "retra/serve/value_source.hpp"

namespace retra::net {

class Client {
 public:
  struct ConnectResult {
    bool ok = false;
    std::string error;
    std::unique_ptr<Client> client;
  };
  /// Blocking TCP connect to `host:port` (numeric IPv4 host).
  static ConnectResult connect(const std::string& host, std::uint16_t port);

  /// Outcome of one op.  ok() means a well-typed success response
  /// arrived; otherwise exactly one of `code` (server-reported error)
  /// or `transport` (connection failure; the client is dead) is set.
  struct Status {
    ErrorCode code = ErrorCode::kNone;
    std::string transport;

    bool ok() const { return code == ErrorCode::kNone && transport.empty(); }
  };

  Status ping();
  Status query(std::uint32_t level, idx::Index index, db::Value& out);
  Status query_board(const idx::Board& board, db::Value& out);
  Status batch_query(std::uint32_t level, std::span<const idx::Index> indices,
                     std::vector<db::Value>& out);
  Status stats(StatsReply& out);

  /// Pipelines one QUERY frame per index: all writes first, then all
  /// reads, matched by request_id.  out[i] is valid where
  /// (*per_query)[i] == kNone; with `per_query` null, the first
  /// per-request error is returned as the overall Status instead.
  Status pipelined_queries(std::uint32_t level,
                           std::span<const idx::Index> indices,
                           std::span<db::Value> out,
                           std::vector<ErrorCode>* per_query = nullptr);

  /// True until a transport error or EOF kills the connection.
  bool connected() const { return fd_.valid(); }

 private:
  struct Passkey {};

 public:
  Client(Passkey, FdHandle fd) : fd_(std::move(fd)) {}

 private:
  Status send_frame(const std::vector<std::byte>& frame);
  Status read_frame(Frame& out);
  /// One request, one response; checks the echoed id and expected op.
  Status round_trip(const std::vector<std::byte>& request,
                    std::uint32_t request_id, Op expected, Frame& response);
  std::uint32_t next_id() { return next_id_++; }

  FdHandle fd_;
  std::uint32_t next_id_ = 1;
};

/// serve::ValueSource over a remote server: every lookup is a network
/// round trip (values() batches through BATCH_QUERY in protocol-sized
/// chunks).  kBusy sheds are retried with a short backoff up to
/// `busy_retries` times; transport errors and exhausted retries abort —
/// this adapter exists for tools and tests, which want loud failure.
class ClientValueSource final : public serve::ValueSource {
 public:
  struct OpenResult {
    bool ok = false;
    std::string error;
    std::unique_ptr<ClientValueSource> source;
  };
  /// Fetches the server's level directory (one STATS round trip).
  static OpenResult open(Client& client, int busy_retries = 64);

  int num_levels() const override {
    return static_cast<int>(level_sizes_.size());
  }
  std::uint64_t level_size(int level) const override {
    return level_sizes_[static_cast<std::size_t>(level)];
  }
  serve::Value value(int level, idx::Index index) override;
  void values(int level, std::span<const idx::Index> indices,
              std::span<serve::Value> out) override;

 private:
  struct Passkey {};

 public:
  ClientValueSource(Passkey, Client& client,
                    std::vector<std::uint64_t> level_sizes, int busy_retries)
      : client_(&client),
        level_sizes_(std::move(level_sizes)),
        busy_retries_(busy_retries) {}

 private:
  Client* client_;
  std::vector<std::uint64_t> level_sizes_;
  int busy_retries_;
};

}  // namespace retra::net

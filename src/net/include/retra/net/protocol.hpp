// The retra-net-v1 wire protocol (docs/PROTOCOL.md is the byte-level
// reference).
//
// Every frame is a fixed 16-byte little-endian header followed by an
// op-specific payload.  The codec here is pure — no sockets, no I/O —
// so the fuzz suite (tests/test_net_protocol.cpp) can drive it with
// arbitrary bytes: malformed input always yields a typed ErrorCode,
// never a crash, a hang, or an unbounded allocation.  FrameBuffer is the
// incremental decoder the server and client both feed from their socket
// reads; the encode_* helpers build complete frames ready to write.
//
// Requests carry a client-chosen request_id that the matching response
// echoes, so a pipelined client can match out-of-order responses without
// any ordering contract beyond "one response per request".
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/index/board_index.hpp"
#include "retra/msg/wire.hpp"

namespace retra::net {

/// "RTN1" as the first four bytes of every frame.
inline constexpr std::uint32_t kMagic = 0x314E5452u;
inline constexpr std::uint8_t kVersion = 1;

/// Hard ceiling on one frame's payload; larger announcements are a
/// protocol error (the peer is garbage or hostile), never an allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

/// Most lookups one BATCH_QUERY frame may carry (fits kMaxPayloadBytes).
inline constexpr std::uint32_t kMaxBatchLookups = 1u << 16;

enum class Op : std::uint8_t {
  // Requests.
  kPing = 1,
  kQuery = 2,
  kBatchQuery = 3,
  kStats = 4,
  // Responses.
  kPong = 65,
  kValue = 66,
  kBatchValues = 67,
  kStatsReply = 68,
  kError = 69,
};

constexpr bool is_request(Op op) {
  return op == Op::kPing || op == Op::kQuery || op == Op::kBatchQuery ||
         op == Op::kStats;
}
constexpr bool is_response(Op op) {
  return op == Op::kPong || op == Op::kValue || op == Op::kBatchValues ||
         op == Op::kStatsReply || op == Op::kError;
}

/// Typed protocol errors, carried in the header's `code` field of an
/// ERROR response.  kBusy is the admission-control shed signal: the
/// request was well-formed but the server refused it under load.
enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kMalformed = 1,       // payload truncated or inconsistent with its op
  kBadMagic = 2,        // frame did not start with kMagic
  kBadVersion = 3,      // unknown protocol version
  kBadOp = 4,           // unknown or unexpected op
  kBadLevel = 5,        // level outside the served database
  kBadIndex = 6,        // index outside its level
  kBadBoard = 7,        // board addressing a level outside the database
  kBusy = 8,            // shed by admission control; retry later
  kOversizedFrame = 9,  // announced payload exceeds kMaxPayloadBytes
};

std::string_view error_name(ErrorCode code);

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t version = kVersion;
  std::uint8_t op = 0;
  std::uint16_t code = 0;  // ErrorCode on kError responses, else 0
  std::uint32_t request_id = 0;
  std::uint32_t payload_bytes = 0;

  static constexpr std::size_t kWireSize = 4 + 1 + 1 + 2 + 4 + 4;

  void encode(std::byte* out) const {
    msg::WireWriter w(out);
    w.u32(magic);
    w.u8(version);
    w.u8(op);
    w.i16(static_cast<std::int16_t>(code));
    w.u32(request_id);
    w.u32(payload_bytes);
  }
  static FrameHeader decode(msg::WireReader& r) {
    FrameHeader h;
    h.magic = r.u32();
    h.version = r.u8();
    h.op = r.u8();
    h.code = static_cast<std::uint16_t>(r.i16());
    h.request_id = r.u32();
    h.payload_bytes = r.u32();
    return h;
  }
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);
static_assert(sizeof(std::uint32_t) + sizeof(std::uint8_t) +
                  sizeof(std::uint8_t) + sizeof(std::uint16_t) +
                  sizeof(std::uint32_t) + sizeof(std::uint32_t) ==
              FrameHeader::kWireSize);

/// One decoded frame: validated header plus raw payload bytes.
struct Frame {
  FrameHeader header;
  std::vector<std::byte> payload;

  Op op() const { return static_cast<Op>(header.op); }
};

/// Incremental frame decoder over a byte stream.  append() raw socket
/// reads, then call next() until it stops returning kFrame.  A kError
/// result poisons the stream (framing is lost); the connection must be
/// closed after sending the diagnostic.
class FrameBuffer {
 public:
  enum class Next { kFrame, kNeedMore, kError };

  void append(const std::byte* data, std::size_t n) {
    buffer_.insert(buffer_.end(), data, data + n);
  }
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  /// Extracts the next complete frame.  On kError, `error` holds the
  /// typed diagnosis and `bad_header` the offending header (for the
  /// request_id to echo in the ERROR response, when recoverable).
  Next next(Frame& out, ErrorCode& error, FrameHeader* bad_header = nullptr);

 private:
  std::vector<std::byte> buffer_;
  std::size_t consumed_ = 0;
};

// --------------------------------------------------------------------------
// Request payloads.

/// QUERY addressing: by (level, index) or by packed board, 13 bytes
/// either way.  Board addressing lets a client that knows only the
/// position ask without carrying the indexing tables; the server ranks
/// the board and answers exactly as if (stones_on, rank) had been sent.
struct QueryRequest {
  enum class Mode : std::uint8_t { kLevelIndex = 0, kBoard = 1 };

  Mode mode = Mode::kLevelIndex;
  std::uint32_t level = 0;  // kLevelIndex only
  idx::Index index = 0;     // kLevelIndex only
  idx::Board board{};       // kBoard only

  static constexpr std::size_t kPayloadBytes = 1 + 4 + 8;
};
static_assert(idx::kPits == 12,
              "QUERY board payload is defined as 12 one-byte pits");

struct BatchQueryRequest {
  std::uint32_t level = 0;
  std::vector<idx::Index> indices;
};

/// Counters a STATS_REPLY carries, mirroring the server's view at reply
/// time: its own net-facing counters plus the QueryService residency
/// state underneath.  `level_sizes` doubles as the served directory, so
/// a remote client can sample or sweep without any other metadata op.
struct StatsReply {
  std::uint64_t connections = 0;   // connections accepted since start
  std::uint64_t requests = 0;      // request frames admitted
  std::uint64_t queries = 0;       // QUERY frames answered
  std::uint64_t batch_queries = 0; // BATCH_QUERY frames answered
  std::uint64_t pings = 0;         // PING frames answered
  std::uint64_t stats_ops = 0;     // STATS frames answered (incl. this)
  std::uint64_t errors = 0;        // ERROR responses sent
  std::uint64_t shed = 0;          // of which kBusy admission sheds
  std::uint64_t hot_hits = 0;      // lookups answered by the hot tier
  std::uint64_t lookups = 0;       // QueryService lookups (hot misses)
  std::uint64_t level_faults = 0;  // QueryService levels faulted
  std::uint64_t level_evictions = 0;  // QueryService levels evicted
  std::uint64_t resident_bytes = 0;   // QueryService resident payload
  std::vector<std::uint64_t> level_sizes;  // positions per served level

  /// The fixed counter block that precedes the level directory.
  static constexpr std::size_t kCounterCount = 13;
};

// --------------------------------------------------------------------------
// Frame encoders.  Each returns a complete frame (header + payload).

std::vector<std::byte> encode_ping(std::uint32_t request_id);
std::vector<std::byte> encode_query(std::uint32_t request_id,
                                    std::uint32_t level, idx::Index index);
std::vector<std::byte> encode_board_query(std::uint32_t request_id,
                                          const idx::Board& board);
std::vector<std::byte> encode_batch_query(std::uint32_t request_id,
                                          std::uint32_t level,
                                          std::span<const idx::Index> indices);
std::vector<std::byte> encode_stats(std::uint32_t request_id);

std::vector<std::byte> encode_pong(std::uint32_t request_id);
std::vector<std::byte> encode_value(std::uint32_t request_id, db::Value value);
std::vector<std::byte> encode_batch_values(std::uint32_t request_id,
                                           std::span<const db::Value> values);
std::vector<std::byte> encode_stats_reply(std::uint32_t request_id,
                                          const StatsReply& stats);
std::vector<std::byte> encode_error(std::uint32_t request_id, ErrorCode code);

// --------------------------------------------------------------------------
// Payload decoders.  All return kNone on success; any structural problem
// (short payload, trailing bytes, counts that disagree with the byte
// count) is kMalformed.

ErrorCode decode_query(std::span<const std::byte> payload, QueryRequest& out);
ErrorCode decode_batch_query(std::span<const std::byte> payload,
                             BatchQueryRequest& out);
ErrorCode decode_value(std::span<const std::byte> payload, db::Value& out);
ErrorCode decode_batch_values(std::span<const std::byte> payload,
                              std::vector<db::Value>& out);
ErrorCode decode_stats_reply(std::span<const std::byte> payload,
                             StatsReply& out);

}  // namespace retra::net

// The retra-net-v1 TCP server over a QueryService.
//
// One epoll I/O thread owns every socket: it accepts connections, feeds
// raw reads through each connection's FrameBuffer, validates and admits
// requests, and flushes response bytes.  A pool of worker threads drains
// the shared request queue in gulps: all single QUERYs in a gulp that
// address the same level — regardless of which connection sent them —
// are coalesced into one Store::values() batch, so concurrent clients
// asking about the same level cost one residency touch, not N.  Workers
// never touch sockets; they enqueue encoded response frames on the
// owning connection and wake the I/O thread through an eventfd.
//
// Admission control sheds load with a typed BUSY error instead of
// queueing without bound: a request is refused when the queue is at
// max_queue_depth, or when the fault debt — packed bytes of the
// non-hot levels already queued — exceeds its ceiling, which defaults
// to 8x the service's resident-byte budget.  A shed request costs the
// client one round trip and a retry, never a wedged server.
//
// Every observable event is published twice: through the net.* obs
// metrics and through the atomic Stats mirror that the STATS op
// serialises, so a remote client, the local registry, and a bench
// artifact can be reconciled exactly (tests/test_net_server.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "retra/net/protocol.hpp"
#include "retra/net/store.hpp"

namespace retra::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; Server::port() reports it
  int workers = 2;
  /// QueryService resident-byte budget (0 = unlimited).
  std::uint64_t budget_bytes = 0;
  /// Hot-tier byte budget above the service (0 disables the tier).
  std::uint64_t hot_bytes = 1u << 20;
  /// Requests queued ahead of the workers before BUSY shedding.
  std::size_t max_queue_depth = 1024;
  /// Fault-debt ceiling in bytes; 0 derives 8x budget_bytes (and
  /// disables the debt check entirely when the budget is unlimited).
  std::uint64_t shed_fault_debt_bytes = 0;
  /// Most requests one worker wake-up drains (the coalescing window).
  std::size_t max_drain = 256;
};

class Server {
 public:
  struct OpenResult {
    bool ok = false;
    std::string error;
    std::unique_ptr<Server> server;
  };
  /// Opens `path` as a QueryService, binds, and starts serving.
  static OpenResult open(const std::string& path, const ServerConfig& config);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (the kernel's choice under config.port == 0).
  std::uint16_t port() const { return port_; }
  const ServerConfig& config() const { return config_; }
  int num_levels() const { return store_->num_levels(); }
  const Store& store() const { return *store_; }

  /// Stops accepting, answers everything already admitted, flushes, and
  /// joins all threads.  Idempotent; the destructor calls it.
  void stop();

  /// Plain-data copy of the server-side counters (the STATS op adds the
  /// QueryService residency fields and the level directory).
  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t queries = 0;
    std::uint64_t batch_queries = 0;
    std::uint64_t pings = 0;
    std::uint64_t stats_ops = 0;
    std::uint64_t errors = 0;
    std::uint64_t shed = 0;
    std::uint64_t hot_hits = 0;
  };
  Stats stats() const;

  /// The full STATS-op payload, as a network client would receive it.
  StatsReply stats_reply() const;

 private:
  struct Passkey {};

 public:
  Server(Passkey, std::unique_ptr<Store> store, const ServerConfig& config);

 private:
  struct Impl;

  bool start(std::string* error);

  ServerConfig config_;
  std::unique_ptr<Store> store_;
  std::uint16_t port_ = 0;
  std::unique_ptr<Impl> impl_;
};

}  // namespace retra::net

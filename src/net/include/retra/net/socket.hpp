// Thin RAII wrappers over POSIX TCP sockets.
//
// Everything the server and client need and nothing more: an owning fd
// handle, bind/listen with ephemeral-port discovery (port 0 binds, then
// getsockname reports what the kernel chose — how every loopback test
// avoids port collisions), a blocking connect, and full-buffer
// read/write loops that hide EINTR.  Failures are returned as
// {ok, error} results, never exceptions: callers are servers and tools
// that want to print a diagnosis and move on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace retra::net {

/// Owning file descriptor; closes on destruction.  Move-only.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int get() const { return fd_; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

struct ListenResult {
  bool ok = false;
  std::string error;
  FdHandle fd;
  std::uint16_t port = 0;  // the bound port (kernel-chosen when asked for 0)
};

/// Binds and listens on `host:port` (TCP, SO_REUSEADDR).  Port 0 asks
/// the kernel for an ephemeral port; the result reports the choice.
ListenResult listen_tcp(const std::string& host, std::uint16_t port,
                        int backlog = 64);

struct ConnectResult {
  bool ok = false;
  std::string error;
  FdHandle fd;
};

/// Blocking TCP connect to `host:port` (numeric IPv4 host).
ConnectResult connect_tcp(const std::string& host, std::uint16_t port);

/// Puts `fd` in non-blocking mode; returns false on fcntl failure.
bool set_nonblocking(int fd);

/// Writes all `n` bytes (restarting on EINTR); false on error or a
/// closed peer.
bool write_full(int fd, const void* data, std::size_t n);

/// Reads exactly `n` bytes; false on error or EOF before `n`.
bool read_full(int fd, void* data, std::size_t n);

/// One read() of at most `n` bytes.  Returns bytes read, 0 on orderly
/// EOF, -1 on error (EINTR restarted).
long read_some(int fd, void* data, std::size_t n);

}  // namespace retra::net

// The server-side lookup store: a thread-safe facade over QueryService
// with a shared read-mostly hot tier of decoded blocks.
//
// QueryService is single-threaded by design (one residency list, one
// LRU).  A network server has many worker threads answering lookups
// concurrently, so Store layers two paths over one service:
//
//   * hot path — a small tier of bit-packed block copies under its own
//     byte budget, guarded by a shared_mutex taken shared: any number
//     of workers answer hot blocks in parallel without touching the
//     service or its residency state.  For RTRADB01/02 files a level is
//     one block; for RTRADB03 each fixed-size block is promoted
//     independently, so a compressed level can be partially hot — a
//     batch answers its hot blocks shared and takes the miss path only
//     for the rest;
//   * miss path — the service itself behind a plain mutex: the missing
//     blocks are faulted/touched/answered exactly as in-process serving
//     does (serve.* metrics included), then promoted into the hot tier
//     if they fit.
//
// Hot-tier eviction is promotion-order FIFO, not LRU: reordering on
// every hit would turn the shared lock exclusive and serialise the very
// path the tier exists to parallelise.  Promotion copies the decoded
// block, so a hot block survives the service evicting its original.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "retra/serve/query_service.hpp"
#include "retra/support/sync.hpp"
#include "retra/support/thread_annotations.hpp"

namespace retra::net {

class Store {
 public:
  /// `hot_bytes` caps the decoded payload the hot tier may copy; 0
  /// disables the tier (every lookup takes the locked miss path).
  Store(std::unique_ptr<serve::QueryService> service,
        std::uint64_t hot_bytes);

  int num_levels() const { return num_levels_; }
  std::uint64_t level_size(int level) const { return level_sizes_[static_cast<std::size_t>(level)]; }
  const std::vector<std::uint64_t>& level_sizes() const {
    return level_sizes_;
  }
  /// Decoded bytes serving all of `level` costs (from the file index) —
  /// the fault debt a cold query against it can incur.
  std::uint64_t level_payload_bytes(int level) const {
    return level_payload_bytes_[static_cast<std::size_t>(level)];
  }

  /// Answers out[i] = value(level, indices[i]).  `level` must be
  /// covered and every index in range (the server validates before
  /// calling).  Returns the number of lookups answered by the hot tier
  /// (indices whose block was hot; the rest took the miss path).
  std::uint64_t values(int level, std::span<const idx::Index> indices,
                       std::span<db::Value> out)
      RETRA_EXCLUDES(service_mutex_, hot_mutex_);

  /// True when every block of `level` is answerable without touching
  /// the service.
  bool is_hot(int level) const RETRA_EXCLUDES(hot_mutex_);

  /// Point-in-time copy of the underlying service's counters.
  serve::QueryService::Stats service_stats() const
      RETRA_EXCLUDES(service_mutex_);

  /// Levels with at least one hot block, most recently promoted first
  /// (tests, introspection).
  std::vector<int> hot_levels() const RETRA_EXCLUDES(hot_mutex_);

 private:
  /// Hot-tier key: one block of one level (block 0 for RTRADB01/02).
  static std::uint64_t hot_key(int level, int block) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(level))
            << 32) |
           static_cast<std::uint32_t>(block);
  }
  static int key_level(std::uint64_t key) {
    return static_cast<int>(key >> 32);
  }

  int block_of(int level, idx::Index index) const {
    const std::uint32_t positions =
        level_block_positions_[static_cast<std::size_t>(level)];
    return positions == 0 ? 0 : static_cast<int>(index / positions);
  }
  std::uint64_t block_begin(int level, int block) const {
    return static_cast<std::uint64_t>(block) *
           level_block_positions_[static_cast<std::size_t>(level)];
  }

  void hot_promote(int level, int block, const db::CompactLevel& resident)
      RETRA_EXCLUDES(hot_mutex_);

  // QueryService is single-threaded by design; the pointer is set once
  // in the constructor, the pointee is only touched under service_mutex_.
  std::unique_ptr<serve::QueryService> service_
      RETRA_PT_GUARDED_BY(service_mutex_);
  mutable support::Mutex service_mutex_;

  const std::uint64_t hot_bytes_;
  // Level geometry: filled in the constructor, immutable afterwards.
  int num_levels_ RETRA_NOT_GUARDED = 0;
  std::vector<std::uint64_t> level_sizes_ RETRA_NOT_GUARDED;
  std::vector<std::uint64_t> level_payload_bytes_ RETRA_NOT_GUARDED;
  std::vector<std::uint32_t> level_block_positions_ RETRA_NOT_GUARDED;
  std::vector<int> level_block_counts_ RETRA_NOT_GUARDED;

  mutable support::SharedMutex hot_mutex_;
  struct HotEntry {
    std::shared_ptr<const db::CompactLevel> block;
    std::list<std::uint64_t>::iterator order;  // position in hot_order_
  };
  std::unordered_map<std::uint64_t, HotEntry> hot_
      RETRA_GUARDED_BY(hot_mutex_);
  // front = most recently promoted
  std::list<std::uint64_t> hot_order_ RETRA_GUARDED_BY(hot_mutex_);
  // hot blocks per level, for the all-blocks-hot test behind is_hot()
  std::unordered_map<int, int> hot_level_blocks_
      RETRA_GUARDED_BY(hot_mutex_);
  std::uint64_t hot_resident_ RETRA_GUARDED_BY(hot_mutex_) = 0;
};

}  // namespace retra::net

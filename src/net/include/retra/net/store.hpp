// The server-side lookup store: a thread-safe facade over QueryService
// with a shared read-mostly hot-level tier.
//
// QueryService is single-threaded by design (one residency list, one
// LRU).  A network server has many worker threads answering lookups
// concurrently, so Store layers two paths over one service:
//
//   * hot path — a small tier of bit-packed level copies under its own
//     byte budget, guarded by a shared_mutex taken shared: any number
//     of workers answer hot levels in parallel without touching the
//     service or its residency state;
//   * miss path — the service itself behind a plain mutex: the level is
//     faulted/touched/answered exactly as in-process serving does
//     (serve.* metrics included), then promoted into the hot tier if it
//     fits.
//
// Hot-tier eviction is promotion-order FIFO, not LRU: reordering on
// every hit would turn the shared lock exclusive and serialise the very
// path the tier exists to parallelise.  Promotion copies the packed
// payload, so a hot level survives the service evicting its original.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "retra/serve/query_service.hpp"
#include "retra/support/sync.hpp"
#include "retra/support/thread_annotations.hpp"

namespace retra::net {

class Store {
 public:
  /// `hot_bytes` caps the packed payload the hot tier may copy; 0
  /// disables the tier (every lookup takes the locked miss path).
  Store(std::unique_ptr<serve::QueryService> service,
        std::uint64_t hot_bytes);

  int num_levels() const { return num_levels_; }
  std::uint64_t level_size(int level) const { return level_sizes_[static_cast<std::size_t>(level)]; }
  const std::vector<std::uint64_t>& level_sizes() const {
    return level_sizes_;
  }
  /// Packed payload bytes serving `level` costs (from the file index).
  std::uint64_t level_payload_bytes(int level) const {
    return level_payload_bytes_[static_cast<std::size_t>(level)];
  }

  /// Answers out[i] = value(level, indices[i]).  `level` must be
  /// covered and every index in range (the server validates before
  /// calling).  Returns the number of lookups answered by the hot tier
  /// (0 on the miss path, indices.size() on a hit).
  std::uint64_t values(int level, std::span<const idx::Index> indices,
                       std::span<db::Value> out)
      RETRA_EXCLUDES(service_mutex_, hot_mutex_);

  /// True when `level` is answerable without touching the service.
  bool is_hot(int level) const RETRA_EXCLUDES(hot_mutex_);

  /// Point-in-time copy of the underlying service's counters.
  serve::QueryService::Stats service_stats() const
      RETRA_EXCLUDES(service_mutex_);

  /// Levels currently in the hot tier, most recently promoted first
  /// (tests, introspection).
  std::vector<int> hot_levels() const RETRA_EXCLUDES(hot_mutex_);

 private:
  std::shared_ptr<const db::CompactLevel> hot_find(int level) const
      RETRA_EXCLUDES(hot_mutex_);
  void hot_promote(int level, const db::CompactLevel& resident)
      RETRA_EXCLUDES(hot_mutex_);

  // QueryService is single-threaded by design; the pointer is set once
  // in the constructor, the pointee is only touched under service_mutex_.
  std::unique_ptr<serve::QueryService> service_
      RETRA_PT_GUARDED_BY(service_mutex_);
  mutable support::Mutex service_mutex_;

  const std::uint64_t hot_bytes_;
  // Level geometry: filled in the constructor, immutable afterwards.
  int num_levels_ RETRA_NOT_GUARDED = 0;
  std::vector<std::uint64_t> level_sizes_ RETRA_NOT_GUARDED;
  std::vector<std::uint64_t> level_payload_bytes_ RETRA_NOT_GUARDED;

  mutable support::SharedMutex hot_mutex_;
  struct HotEntry {
    std::shared_ptr<const db::CompactLevel> level;
    std::list<int>::iterator order;  // position in hot_order_
  };
  std::unordered_map<int, HotEntry> hot_ RETRA_GUARDED_BY(hot_mutex_);
  // front = most recently promoted
  std::list<int> hot_order_ RETRA_GUARDED_BY(hot_mutex_);
  std::uint64_t hot_resident_ RETRA_GUARDED_BY(hot_mutex_) = 0;
};

}  // namespace retra::net

#include "retra/sim/sim_world.hpp"

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::sim {

class SimWorld::Endpoint : public msg::Comm {
 public:
  Endpoint(int rank, SimWorld& world) : rank_(rank), world_(world) {}

  int rank() const override { return rank_; }
  int size() const override { return world_.size(); }

  void send(int dest, std::uint8_t tag,
            std::vector<std::byte> payload) override {
    RETRA_CHECK(dest >= 0 && dest < size());
    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
    world_.outbox_.push_back(
        OutMessage{rank_, dest, msg::Message{rank_, tag, std::move(payload)}});
  }

  bool try_recv(msg::Message& out) override {
    auto& inbox = world_.inboxes_[support::to_size(rank_)];
    if (inbox.empty()) return false;
    out = std::move(inbox.front());
    inbox.pop_front();
    ++stats_.messages_received;
    stats_.bytes_received += out.payload.size();
    return true;
  }

 private:
  int rank_;
  SimWorld& world_;
};

SimWorld::SimWorld(int ranks) : inboxes_(support::to_size(ranks)) {
  RETRA_CHECK(ranks >= 1);
  endpoints_.reserve(support::to_size(ranks));
  for (int r = 0; r < ranks; ++r) {
    endpoints_.push_back(std::make_unique<Endpoint>(r, *this));
  }
}

SimWorld::~SimWorld() = default;

msg::Comm& SimWorld::endpoint(int rank) {
  RETRA_CHECK(rank >= 0 && rank < size());
  return *endpoints_[support::to_size(rank)];
}

std::vector<SimWorld::OutMessage> SimWorld::take_outbox() {
  std::vector<OutMessage> out;
  out.swap(outbox_);
  return out;
}

void SimWorld::deliver(int dest, msg::Message message) {
  inboxes_[support::to_size(dest)].push_back(std::move(message));
}

}  // namespace retra::sim

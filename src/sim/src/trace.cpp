#include "retra/sim/trace.hpp"

#include <cstdio>
#include <memory>

#include "retra/support/check.hpp"

namespace retra::sim {

void TraceSink::write_csv(const std::string& path) const {
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> file(
      std::fopen(path.c_str(), "w"));
  RETRA_CHECK_MSG(file != nullptr, "cannot write trace: " + path);
  std::FILE* f = file.get();
  std::fputs("round,start_s,end_s,messages,payload_bytes,network_busy_s",
             f);
  const std::size_t ranks =
      rows_.empty() ? 0 : rows_.front().rank_busy_s.size();
  for (std::size_t r = 0; r < ranks; ++r) {
    std::fprintf(f, ",busy_rank%zu_s", r);
  }
  std::fputc('\n', f);
  for (const RoundTrace& row : rows_) {
    std::fprintf(f, "%llu,%.9f,%.9f,%llu,%llu,%.9f",
                 static_cast<unsigned long long>(row.round), row.start_s,
                 row.end_s, static_cast<unsigned long long>(row.messages),
                 static_cast<unsigned long long>(row.payload_bytes),
                 row.network_busy_s);
    for (const double busy : row.rank_busy_s) {
      std::fprintf(f, ",%.9f", busy);
    }
    std::fputc('\n', f);
  }
  RETRA_CHECK(std::fflush(f) == 0);
}

}  // namespace retra::sim

// Anchor translation unit for the header-only cluster model.
#include "retra/sim/cluster_model.hpp"

namespace retra::sim {}

// Discrete-event bulk-synchronous driver.
//
// Runs the identical engine supersteps as the real drivers, but on one
// thread and against virtual time: each round,
//   1. every rank's superstep executes; its WorkMeter delta is priced by
//      the machine model (plus the receive overhead of the messages it
//      just drained);
//   2. the round's messages are played over the shared-medium Ethernet
//      model in send order — the medium serialises, so contention emerges
//      by construction;
//   3. the closing barrier/allreduce is priced and the round ends at the
//      latest of all ranks and deliveries.
// The result carries the virtual wall-clock plus a per-rank
// compute / send / receive / idle breakdown (figure F3) — all fully
// deterministic, which is what lets a single-core container reproduce the
// shape of a 64-node 1995 cluster run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "retra/msg/work_meter.hpp"
#include "retra/sim/cluster_model.hpp"
#include "retra/sim/sim_world.hpp"
#include "retra/sim/trace.hpp"
#include "retra/support/access_check.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::sim {

struct RankBreakdown {
  double compute_s = 0;  // priced algorithmic work
  double send_s = 0;     // per-message sender software overhead
  double recv_s = 0;     // per-message receiver software overhead
  double idle_s = 0;     // waiting at barriers for stragglers/network

  double busy_s() const { return compute_s + send_s + recv_s; }
};

struct SimRunResult {
  double time_s = 0;  // virtual wall clock of the whole run
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;
  double network_busy_s = 0;  // shared-medium occupancy
  double barrier_s = 0;       // summed barrier cost
  std::vector<RankBreakdown> per_rank;

  void accumulate(const SimRunResult& other) {
    time_s += other.time_s;
    rounds += other.rounds;
    messages += other.messages;
    payload_bytes += other.payload_bytes;
    network_busy_s += other.network_busy_s;
    barrier_s += other.barrier_s;
    if (per_rank.size() < other.per_rank.size()) {
      per_rank.resize(other.per_rank.size());
    }
    for (std::size_t r = 0; r < other.per_rank.size(); ++r) {
      per_rank[r].compute_s += other.per_rank[r].compute_s;
      per_rank[r].send_s += other.per_rank[r].send_s;
      per_rank[r].recv_s += other.per_rank[r].recv_s;
      per_rank[r].idle_s += other.per_rank[r].idle_s;
    }
  }
};

inline constexpr std::uint64_t kSimRoundLimit = 100'000'000;

template <typename Engine>
SimRunResult run_bsp_simulated(std::vector<std::unique_ptr<Engine>>& engines,
                               SimWorld& world, const ClusterModel& model,
                               TraceSink* trace = nullptr) {
  const support::ScopedPhase bsp_phase(support::BspPhase::kCompute);
  const int ranks = static_cast<int>(engines.size());
  RETRA_CHECK(ranks == world.size());
  const std::size_t nranks = engines.size();
  SimRunResult result;
  result.per_rank.resize(nranks);

  std::vector<double> pending_recv(nranks, 0.0);
  std::vector<msg::WorkMeter> meter_before(nranks);
  for (int r = 0; r < ranks; ++r) {
    meter_before[support::to_size(r)] = world.endpoint(r).meter();
  }

  std::uint64_t cum_sent = 0;
  std::uint64_t cum_received = 0;
  double now = 0.0;  // round start, virtual seconds
  std::uint64_t trace_messages_before = 0;
  std::uint64_t trace_payload_before = 0;
  double trace_network_before = 0.0;

  while (true) {
    ++result.rounds;
    RETRA_CHECK_MSG(result.rounds < kSimRoundLimit,
                    "simulated round limit exceeded");

    // 1. Supersteps: price each rank's work.
    std::vector<double> rank_clock(nranks);  // when each rank goes idle
    bool all_ready = true;
    std::uint64_t round_sent = 0, round_received = 0, round_work = 0;
    for (int r = 0; r < ranks; ++r) {
      const std::size_t ri = support::to_size(r);
      const support::ScopedActor actor(r);
      const auto step = engines[ri]->superstep();
      all_ready = all_ready && step.ready;
      round_sent += step.records_sent;
      round_received += step.records_received;
      round_work += step.work;

      msg::WorkMeter delta = world.endpoint(r).meter();
      for (std::size_t k = 0; k < msg::kWorkKinds; ++k) {
        delta.counts[k] -= meter_before[ri].counts[k];
      }
      meter_before[ri] = world.endpoint(r).meter();
      const double compute = model.machine.cpu_seconds(delta);
      result.per_rank[ri].compute_s += compute;
      result.per_rank[ri].recv_s += pending_recv[ri];
      rank_clock[ri] = now + compute + pending_recv[ri];
      pending_recv[ri] = 0.0;
    }
    cum_sent += round_sent;
    cum_received += round_received;

    // 2. Network: bridged shared segments, messages in send order.  The
    // sender pays its software overhead before the frame can contend for
    // its segment; the receiver's overhead is charged to its next
    // superstep.
    std::vector<double> medium_free(support::to_size(model.net.segments), now);
    double last_delivery = now;
    for (auto& out : world.take_outbox()) {
      const int src = out.source;
      const std::size_t si = support::to_size(src);
      rank_clock[si] += model.machine.send_overhead_s;
      result.per_rank[si].send_s += model.machine.send_overhead_s;
      const double medium_time =
          model.net.medium_seconds(out.message.payload.size());
      double& segment_free =
          medium_free[support::to_size(model.net.segment_of(src))];
      const double start = std::max(segment_free, rank_clock[si]);
      segment_free = start + medium_time;
      result.network_busy_s += medium_time;
      last_delivery = std::max(last_delivery, segment_free);
      pending_recv[support::to_size(out.dest)] += model.machine.recv_overhead_s;
      ++result.messages;
      result.payload_bytes += out.message.payload.size();
      world.deliver(out.dest, std::move(out.message));
    }

    // 3. Barrier closes the round.
    const double barrier = model.barrier_seconds(ranks);
    result.barrier_s += barrier;
    double round_end = last_delivery;
    for (std::size_t r = 0; r < nranks; ++r) {
      round_end = std::max(round_end, rank_clock[r]);
    }
    for (std::size_t r = 0; r < nranks; ++r) {
      result.per_rank[r].idle_s += round_end - rank_clock[r];
    }
    if (trace) {
      RoundTrace row;
      row.round = result.rounds;
      row.start_s = now;
      row.end_s = round_end + barrier;
      row.rank_busy_s.reserve(nranks);
      for (std::size_t r = 0; r < nranks; ++r) {
        row.rank_busy_s.push_back(rank_clock[r] - now);
      }
      row.messages = result.messages - trace_messages_before;
      row.payload_bytes = result.payload_bytes - trace_payload_before;
      row.network_busy_s = result.network_busy_s - trace_network_before;
      trace->add(std::move(row));
    }
    trace_messages_before = result.messages;
    trace_payload_before = result.payload_bytes;
    trace_network_before = result.network_busy_s;
    now = round_end + barrier;

    const bool quiescent = all_ready && round_work == 0 &&
                           round_sent == 0 && cum_sent == cum_received;
    if (!quiescent) continue;
    if (engines.front()->done()) break;
    for (std::size_t r = 0; r < nranks; ++r) {
      const support::ScopedActor actor(static_cast<int>(r));
      engines[r]->advance();
    }
  }
  result.time_s = now;
  return result;
}

}  // namespace retra::sim

// Round-level trace of a simulated run.
//
// One row per BSP round: virtual start/end, each rank's busy time, the
// round's message count and medium occupancy.  cluster_run --trace dumps
// it as CSV — the raw material for a gantt of the 1995 cluster.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace retra::sim {

struct RoundTrace {
  std::uint64_t round = 0;
  double start_s = 0;
  double end_s = 0;
  std::vector<double> rank_busy_s;  // compute + overheads per rank
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;
  double network_busy_s = 0;
};

class TraceSink {
 public:
  void add(RoundTrace row) { rows_.push_back(std::move(row)); }
  const std::vector<RoundTrace>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }

  /// Writes "round,start,end,messages,payload,network,busy0,busy1,…".
  /// Aborts on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<RoundTrace> rows_;
};

}  // namespace retra::sim

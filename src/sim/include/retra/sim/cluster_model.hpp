// Cost model of the paper's platform: SPARC-class workstations on a
// shared 10 Mbit/s Ethernet with millisecond-scale RPC software overheads.
//
// Absolute 1995 numbers cannot be measured here, so the model prices the
// engine's *abstract work units* (WorkMeter) and its messages; every
// default below is stated with its rationale and can be overridden by the
// bench binaries.  The reproduced claims are ratios — speedups, combining
// factors, crossover points — which depend on the cost *ratios*, not on
// any absolute constant.
#pragma once

#include <array>
#include <cstdint>

#include "retra/msg/work_meter.hpp"

namespace retra::sim {

struct MachineModel {
  /// Mid-90s workstation issuing useful work at ~10 M simple ops/s once
  /// memory stalls are folded in (SPARCclassic ≈ 26 MHz microSPARC).
  double cpu_ops_per_second = 10e6;

  /// Cost, in machine ops, of one unit of each abstract work kind.  The
  /// ratios follow the real instruction mix of this codebase: unmove
  /// generation with forward verification (kPredEdge) is the most
  /// expensive step, record handling the cheapest.  At awari densities
  /// these come to roughly half a millisecond per position on the 10 MHz
  /// budget — consistent with the abstract's tens-of-CPU-hours databases.
  std::array<double, msg::kWorkKinds> op_cost = [] {
    std::array<double, msg::kWorkKinds> cost{};
    cost[static_cast<std::size_t>(msg::WorkKind::kScanPosition)] = 200;
    cost[static_cast<std::size_t>(msg::WorkKind::kExitOption)] = 450;
    cost[static_cast<std::size_t>(msg::WorkKind::kLevelEdge)] = 350;
    cost[static_cast<std::size_t>(msg::WorkKind::kAssign)] = 80;
    cost[static_cast<std::size_t>(msg::WorkKind::kPredEdge)] = 800;
    cost[static_cast<std::size_t>(msg::WorkKind::kUpdateApply)] = 60;
    // One load + compare + (rare) branch per position examined by the
    // seed/zero-fill value sweeps; the cheapest kind, and the only one
    // the vector-width term divides.
    cost[static_cast<std::size_t>(msg::WorkKind::kSweepPosition)] = 15;
    cost[static_cast<std::size_t>(msg::WorkKind::kRecordPack)] = 30;
    cost[static_cast<std::size_t>(msg::WorkKind::kRecordUnpack)] = 30;
    return cost;
  }();

  /// Per-message software overhead on the sender / receiver (protocol
  /// stack, context switch): ~1 ms, the Amoeba/SunOS RPC ballpark the
  /// paper's combining argument hinges on.
  double send_overhead_s = 1.0e-3;
  double recv_overhead_s = 1.0e-3;

  /// Worker threads inside each rank (two-level parallelism, P×T).  The
  /// engines' chunk-parallel phases — the Init scan with its option
  /// pricing — divide across the workers; queue propagation, update
  /// application and message handling stay on the rank thread, exactly
  /// as in para::RankEngine.  1 models the paper's single-threaded
  /// nodes.
  int worker_threads = 1;

  /// Per-phase overrides mirroring EngineConfig::threads_scan /
  /// threads_drain: the scan-side sweeps and the drain waves saturate at
  /// different widths, so their kinds can be priced with different
  /// divisors.  0 inherits worker_threads.
  int scan_threads = 0;
  int drain_threads = 0;

  /// std::int16_t lanes the sweep kernels process per operation (the
  /// exec::simd backend width).  Only kSweepPosition divides by it: the
  /// seed/zero-fill sweeps are the data-parallel compare/select loops;
  /// everything else is per-edge work with game callbacks.  1 models the
  /// paper's scalar SPARCs; benches set the host's width for the
  /// model-vs-host panels.
  int vector_lanes = 1;

  int threads_scan() const {
    const int t = scan_threads > 0 ? scan_threads : worker_threads;
    return t > 1 ? t : 1;
  }
  int threads_drain() const {
    const int t = drain_threads > 0 ? drain_threads : worker_threads;
    return t > 1 ? t : 1;
  }

  /// Work kinds charged by the chunk-parallel phases, each divided by its
  /// phase's thread count when pricing: the Init scan's kinds (and the
  /// sweeps' kSweepPosition) by threads_scan(), the drain waves'
  /// kPredEdge by threads_drain().  kAssign is excluded even though the
  /// seeding sweep is chunked too: most assignments happen while
  /// applying staged updates on the rank thread and the meter does not
  /// distinguish them.  kUpdateApply and record pack/unpack stay serial,
  /// exactly as in para::RankEngine.
  static constexpr bool chunk_parallel_kind(msg::WorkKind kind) {
    return kind == msg::WorkKind::kScanPosition ||
           kind == msg::WorkKind::kExitOption ||
           kind == msg::WorkKind::kLevelEdge ||
           kind == msg::WorkKind::kSweepPosition ||
           kind == msg::WorkKind::kPredEdge;
  }

  /// Local-disk pricing for out-of-core builds: mid-90s SCSI drives
  /// stream at a few MB/s and pay roughly a seek plus rotational latency
  /// per discrete transfer.  Spill/fault traffic is sequential block I/O,
  /// so it is priced as ops × overhead + bytes / bandwidth.
  double disk_bytes_per_second = 5e6;
  double disk_op_overhead_s = 0.012;

  /// Seconds of disk time for `ops` discrete transfers moving `bytes`.
  double io_seconds(std::uint64_t ops, std::uint64_t bytes) const {
    return static_cast<double>(ops) * disk_op_overhead_s +
           static_cast<double>(bytes) / disk_bytes_per_second;
  }

  /// Seconds of CPU for a meter full of work.
  double cpu_seconds(const msg::WorkMeter& meter) const {
    double ops = 0.0;
    for (std::size_t k = 0; k < msg::kWorkKinds; ++k) {
      const auto kind = static_cast<msg::WorkKind>(k);
      double cost = op_cost[k] * static_cast<double>(meter.counts[k]);
      if (chunk_parallel_kind(kind)) {
        cost /= kind == msg::WorkKind::kPredEdge ? threads_drain()
                                                 : threads_scan();
      }
      if (kind == msg::WorkKind::kSweepPosition && vector_lanes > 1) {
        cost /= vector_lanes;
      }
      ops += cost;
    }
    return ops / cpu_ops_per_second;
  }
};

struct EthernetModel {
  /// Classic shared 10BASE Ethernet.
  double bandwidth_bps = 10e6;
  /// Preamble + MAC + IP/UDP-ish headers per frame.
  std::uint32_t frame_overhead_bytes = 58;
  /// Minimum payload occupancy (Ethernet minimum frame).
  std::uint32_t min_frame_bytes = 64;
  /// Bridged segments.  A 64-station 10BASE network cannot be one
  /// collision domain (the spec caps stations per segment), so the
  /// cluster is modelled as `segments` bridged Ethernets; a frame
  /// occupies its sender's segment.  Aggregate bandwidth therefore
  /// scales with segments, not with P — the term that bends the speedup
  /// curve.
  int segments = 4;

  /// Medium occupancy of one message of `payload` bytes on its segment.
  double medium_seconds(std::uint64_t payload) const {
    const std::uint64_t frame =
        payload + frame_overhead_bytes < min_frame_bytes
            ? min_frame_bytes
            : payload + frame_overhead_bytes;
    return static_cast<double>(frame) * 8.0 / bandwidth_bps;
  }

  int segment_of(int rank) const { return rank % segments; }
};

struct ClusterModel {
  MachineModel machine;
  EthernetModel net;

  /// Barrier + counter allreduce closing every superstep: a linear
  /// gather to rank 0 plus a broadcast — on a bus there is no tree
  /// speedup, so this costs P small messages and is one of the terms
  /// that bends the speedup curve at high P.
  double barrier_seconds(int ranks) const {
    const double per_message =
        machine.send_overhead_s + net.medium_seconds(32);
    return static_cast<double>(ranks + 1) * per_message;
  }
};

}  // namespace retra::sim

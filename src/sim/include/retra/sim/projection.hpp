// Analytic projection of a level build at paper scale.
//
// The discrete-event driver replays real engine executions, which is
// exact but needs the level to fit this container.  The paper's headline
// databases (40 CPU-hours, >600 MB) do not, so those rows are *projected*:
// the measured per-position workload densities of a feasible level are
// combined with the same cluster cost model in closed form.  The formula
// is the BSP cost model of the simulator with the round structure
// collapsed: per-rank compute + per-rank message overheads, a shared-
// medium bandwidth term that does not scale with P, and the barrier term
// that grows with P.  EXPERIMENTS.md flags every projected row.
#pragma once

#include <algorithm>
#include <cstdint>

#include "retra/sim/cluster_model.hpp"

namespace retra::sim {

/// Per-position workload densities of one level build, measured from a
/// real run (para::profile_of) or synthesised for a what-if.
struct LevelProfile {
  std::uint64_t positions = 0;
  double exits_pp = 0;    // exit options per position
  double edges_pp = 0;    // same-level successor edges per position
  double preds_pp = 0;    // predecessor edges generated per position
  double assigns_pp = 0;  // finalisations per position (<= 1)
  double updates_pp = 0;  // contributions applied per position
  double lookups_pp = 0;  // capture exits needing a lower-level value
  double sweeps_pp = 0;   // seed/zero-fill sweep visits per position
                          // (≈ seeding magnitudes + 1)
  /// BSP rounds of the measured run (propagation depth × magnitudes).
  std::uint64_t rounds = 0;

  /// Scales the profile to a level with `new_positions` positions and a
  /// value bound `bound_ratio` times larger (rounds track the magnitude
  /// count); densities are preserved.
  LevelProfile scaled(std::uint64_t new_positions, double bound_ratio) const {
    LevelProfile out = *this;
    out.positions = new_positions;
    out.rounds = static_cast<std::uint64_t>(
        static_cast<double>(rounds) * bound_ratio);
    return out;
  }
};

struct Projection {
  double time_s = 0;
  double compute_s = 0;   // per-rank compute share
  double overhead_s = 0;  // per-rank message software overheads
  double network_s = 0;   // shared-medium occupancy (global)
  double barrier_s = 0;
  std::uint64_t records = 0;   // remote records
  std::uint64_t messages = 0;  // after combining
};

/// Projects one level build on `ranks` processors with a combining buffer
/// of `combine_bytes` (1 = combining off).  `record_bytes` is the wire
/// size of an update record; `remote_fraction` the share of records that
/// cross rank boundaries (≈ (P−1)/P for scattering partitions).
inline Projection project_level(const LevelProfile& profile, int ranks,
                                const ClusterModel& model,
                                std::size_t combine_bytes,
                                std::size_t record_bytes = 10,
                                double remote_fraction = -1.0) {
  Projection out;
  const double P = static_cast<double>(ranks);
  if (remote_fraction < 0) remote_fraction = (P - 1.0) / P;
  const double positions = static_cast<double>(profile.positions);

  const auto cost = [&](msg::WorkKind kind) {
    return model.machine.op_cost[static_cast<std::size_t>(kind)];
  };

  // Remote traffic: updates to remote predecessors, lookups to remote
  // lower-level owners and their replies.
  const double remote_updates =
      positions * profile.updates_pp * remote_fraction;
  const double remote_lookups =
      positions * profile.lookups_pp * remote_fraction;
  const double remote_records = remote_updates + 2.0 * remote_lookups;
  out.records = static_cast<std::uint64_t>(remote_records);

  // Compute: every position is scanned, its options priced, its
  // predecessors generated on finalisation; remote records additionally
  // pay pack+unpack.  The scan and sweep terms divide across each rank's
  // scan-phase workers, predecessor generation across the drain-phase
  // workers (two-level parallelism, per-phase widths); the sweeps also
  // divide by the vector width.  Update application and record handling
  // stay on the rank thread, as in the engine.
  const double scan_t = model.machine.threads_scan();
  const double drain_t = model.machine.threads_drain();
  const double lanes =
      model.machine.vector_lanes > 1 ? model.machine.vector_lanes : 1;
  double scan_ops = 0;
  scan_ops += positions * cost(msg::WorkKind::kScanPosition);
  scan_ops +=
      positions * profile.exits_pp * cost(msg::WorkKind::kExitOption);
  scan_ops +=
      positions * profile.edges_pp * cost(msg::WorkKind::kLevelEdge);
  scan_ops += positions * profile.sweeps_pp *
              cost(msg::WorkKind::kSweepPosition) / lanes;
  double ops = scan_ops / scan_t;
  ops += positions * profile.preds_pp * cost(msg::WorkKind::kPredEdge) /
         drain_t;
  ops += positions * profile.assigns_pp * cost(msg::WorkKind::kAssign);
  ops += positions * profile.updates_pp * cost(msg::WorkKind::kUpdateApply);
  ops += remote_records * (cost(msg::WorkKind::kRecordPack) +
                           cost(msg::WorkKind::kRecordUnpack));
  out.compute_s = ops / model.machine.cpu_ops_per_second / P;

  // Combining: how many records share one message.
  const double per_message = std::max<double>(
      1.0, static_cast<double>(combine_bytes / record_bytes));
  const double messages = remote_records / per_message;
  out.messages = static_cast<std::uint64_t>(messages);
  const double payload = per_message * static_cast<double>(record_bytes);

  // Sender + receiver software overheads, divided across ranks.
  out.overhead_s = messages *
                   (model.machine.send_overhead_s +
                    model.machine.recv_overhead_s) /
                   P;
  // Bridged segments: aggregate bandwidth scales with segment count (a
  // fixed wiring property), never with P.
  out.network_s = messages *
                  model.net.medium_seconds(
                      static_cast<std::uint64_t>(payload)) /
                  model.net.segments;
  out.barrier_s =
      static_cast<double>(profile.rounds) * model.barrier_seconds(ranks);

  // A rank overlaps nothing in the BSP model; the medium is the only
  // shared resource, so the run is bounded by the busier of the two.
  out.time_s = std::max(out.compute_s + out.overhead_s, out.network_s) +
               out.barrier_s;
  return out;
}

}  // namespace retra::sim

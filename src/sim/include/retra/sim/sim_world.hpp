// Simulated message-passing world.
//
// Endpoints implement msg::Comm; the engine code cannot tell it from the
// thread world.  The difference is who moves the messages: here the
// discrete-event driver collects each round's outgoing messages, plays
// them over the shared-medium Ethernet model, and delivers them into the
// inboxes of the next round, advancing virtual time as it goes.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "retra/msg/comm.hpp"

namespace retra::sim {

class SimWorld {
 public:
  struct OutMessage {
    int source = 0;
    int dest = 0;
    msg::Message message;
  };

  explicit SimWorld(int ranks);
  ~SimWorld();

  int size() const { return static_cast<int>(endpoints_.size()); }
  msg::Comm& endpoint(int rank);

  /// Messages sent during the current round, in send order (driver use).
  std::vector<OutMessage> take_outbox();
  /// Delivers a message into a rank's inbox for the next round.
  void deliver(int dest, msg::Message message);

 private:
  class Endpoint;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::deque<msg::Message>> inboxes_;
  std::vector<OutMessage> outbox_;
};

}  // namespace retra::sim

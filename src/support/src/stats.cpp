#include "retra/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "retra/support/check.hpp"

namespace retra::support {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

IntHistogram::IntHistogram(int lo, int hi) : lo_(lo), hi_(hi) {
  RETRA_CHECK(lo <= hi);
  buckets_.assign(static_cast<std::size_t>(hi - lo) + 1, 0);
}

void IntHistogram::add(int value, std::uint64_t weight) {
  const int clamped = std::clamp(value, lo_, hi_);
  buckets_[static_cast<std::size_t>(clamped - lo_)] += weight;
  total_ += weight;
}

std::uint64_t IntHistogram::count_at(int value) const {
  if (value < lo_ || value > hi_) return 0;
  return buckets_[static_cast<std::size_t>(value - lo_)];
}

std::uint64_t IntHistogram::positive() const {
  std::uint64_t sum = 0;
  for (int v = std::max(1, lo_); v <= hi_; ++v) sum += count_at(v);
  return sum;
}

std::uint64_t IntHistogram::negative() const {
  std::uint64_t sum = 0;
  for (int v = lo_; v <= std::min(-1, hi_); ++v) sum += count_at(v);
  return sum;
}

void IntHistogram::merge(const IntHistogram& other) {
  RETRA_CHECK(lo_ == other.lo_ && hi_ == other.hi_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

namespace {

template <typename T>
Balance balance_impl(const std::vector<T>& per_rank) {
  Balance b;
  if (per_rank.empty()) return b;
  double sum = 0.0;
  b.min = static_cast<double>(per_rank.front());
  b.max = static_cast<double>(per_rank.front());
  for (const T& v : per_rank) {
    const double x = static_cast<double>(v);
    sum += x;
    b.min = std::min(b.min, x);
    b.max = std::max(b.max, x);
  }
  b.mean = sum / static_cast<double>(per_rank.size());
  b.imbalance = b.mean > 0.0 ? b.max / b.mean : 1.0;
  return b;
}

}  // namespace

Balance balance_of(const std::vector<double>& per_rank) {
  return balance_impl(per_rank);
}

Balance balance_of(const std::vector<std::uint64_t>& per_rank) {
  return balance_impl(per_rank);
}

}  // namespace retra::support

#include "retra/support/timer.hpp"

// Header-only for now; this translation unit anchors the library.
namespace retra::support {}

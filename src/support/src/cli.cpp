#include "retra/support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "retra/support/check.hpp"

namespace retra::support {

namespace {

bool boolean_literal(const std::string& value) {
  return value == "true" || value == "false";
}

}  // namespace

void Cli::flag(const std::string& name, const std::string& default_value,
               const std::string& help) {
  entries_[name] = Entry{default_value, help, boolean_literal(default_value)};
}

void Cli::parse(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage().c_str());
      std::exit(2);
    }
    if (!has_value) {
      if (it->second.is_boolean) {
        // Bare --flag means boolean true; boolean flags never swallow the
        // argument after them.
        value = "true";
      } else if (i + 1 < argc) {
        // Value flags accept both --flag=value and --flag value.
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n%s", name.c_str(),
                     usage().c_str());
        std::exit(2);
      }
    }
    it->second.value = std::move(value);
  }
}

std::string Cli::str(const std::string& name) const {
  auto it = entries_.find(name);
  RETRA_CHECK_MSG(it != entries_.end(), "flag not declared: " + name);
  return it->second.value;
}

std::int64_t Cli::integer(const std::string& name) const {
  return std::strtoll(str(name).c_str(), nullptr, 10);
}

double Cli::number(const std::string& name) const {
  return std::strtod(str(name).c_str(), nullptr);
}

bool Cli::boolean(const std::string& name) const {
  const std::string v = str(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Cli::usage() const {
  std::ostringstream out;
  if (!description_.empty()) {
    out << description_ << "\n\n";
  }
  out << "usage: " << program_ << " [flags]\n";
  for (const auto& [name, entry] : entries_) {
    out << "  --" << name << " (default: "
        << (entry.value.empty() ? "\"\"" : entry.value) << ")\n      "
        << entry.help << "\n";
  }
  return out.str();
}

}  // namespace retra::support

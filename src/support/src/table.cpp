#include "retra/support/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "retra/support/check.hpp"

namespace retra::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RETRA_CHECK(!headers_.empty());
}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  RETRA_CHECK_MSG(!cells_.empty(), "call row() before add()");
  RETRA_CHECK_MSG(cells_.back().size() < headers_.size(),
                  "row has more cells than headers");
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::uint64_t v) { return add(with_thousands(v)); }

Table& Table::add(std::int64_t v) {
  if (v < 0) return add("-" + with_thousands(static_cast<std::uint64_t>(-v)));
  return add(with_thousands(static_cast<std::uint64_t>(v)));
}

Table& Table::add(int v) { return add(static_cast<std::int64_t>(v)); }

Table& Table::add(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return add(std::string(buf));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      // Right-align everything; benches print mostly numbers.
      out << std::string(widths[c] - cell.size(), ' ') << cell;
      out << (c + 1 == headers_.size() ? "\n" : "  ");
    }
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c], '-')
        << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : cells_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& os) const { os << render(); }

void Table::print() const { std::cout << render() << std::flush; }

std::string with_thousands(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out += ' ';
    out += digits[i];
  }
  return out;
}

}  // namespace retra::support

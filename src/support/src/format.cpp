#include "retra/support/format.hpp"

#include <cmath>
#include <cstdio>

namespace retra::support {

std::string human_bytes(std::uint64_t bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, units[unit]);
  }
  return buf;
}

std::string human_seconds(double seconds) {
  char buf[64];
  if (seconds < 0) {
    return "-" + human_seconds(-seconds);
  }
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.0f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof buf, "%dm%02ds",
                  static_cast<int>(seconds) / 60,
                  static_cast<int>(seconds) % 60);
  } else {
    const int total = static_cast<int>(std::llround(seconds));
    std::snprintf(buf, sizeof buf, "%dh%02dm%02ds", total / 3600,
                  (total % 3600) / 60, total % 60);
  }
  return buf;
}

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace retra::support

#include "retra/support/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace retra::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

void vlog(const char* prefix, const char* fmt, va_list args) {
  std::fputs(prefix, stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_info(const char* fmt, ...) {
  if (log_level() < LogLevel::kInfo) return;
  va_list args;
  va_start(args, fmt);
  vlog("[retra] ", fmt, args);
  va_end(args);
}

void log_debug(const char* fmt, ...) {
  if (log_level() < LogLevel::kDebug) return;
  va_list args;
  va_start(args, fmt);
  vlog("[retra:debug] ", fmt, args);
  va_end(args);
}

}  // namespace retra::support

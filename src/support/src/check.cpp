#include "retra/support/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace retra::support {

void check_failed(const char* expr, const char* file, int line,
                  std::string_view message) {
  std::fprintf(stderr, "RETRA_CHECK failed: %s at %s:%d", expr, file, line);
  if (!message.empty()) {
    std::fprintf(stderr, " — %.*s", static_cast<int>(message.size()),
                 message.data());
  }
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace retra::support

// Minimal command-line flag parsing for example and bench binaries.
//
// Flags are --name=value or --name value; a bare flag declared with a
// boolean default sets true (and never consumes the next argument).
// Unknown flags are an error so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace retra::support {

class Cli {
 public:
  /// One-line description of what the binary does; printed first by
  /// usage() (and therefore by --help).
  void describe(const std::string& text) { description_ = text; }

  /// Declares a flag with a default and a help string before parse().
  void flag(const std::string& name, const std::string& default_value,
            const std::string& help);

  /// Parses argv; exits with usage on error or --help.
  void parse(int argc, char** argv);

  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double number(const std::string& name) const;
  bool boolean(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Entry {
    std::string value;
    std::string help;
    /// Declared with a boolean default: bare --flag sets true instead of
    /// consuming the next argument.
    bool is_boolean = false;
  };
  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
  std::string program_;
  std::string description_;
};

}  // namespace retra::support

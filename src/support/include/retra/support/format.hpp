// Human-readable formatting of byte counts and durations.
#pragma once

#include <cstdint>
#include <string>

namespace retra::support {

/// 1536 -> "1.5 KB"; binary units (KiB-style factors, conventional labels).
std::string human_bytes(std::uint64_t bytes);

/// 0.00213 -> "2.13 ms", 5025 -> "1h23m45s".
std::string human_seconds(double seconds);

/// Percentage with one decimal, e.g. 0.4823 -> "48.2%".
std::string percent(double fraction);

}  // namespace retra::support

// Deterministic shard-ownership / BSP-phase checker.
//
// The distributed engine's memory discipline is simple to state and easy
// to violate silently: during a compute phase every rank-owned array
// (engine shards, the distributed database's stores) may be touched only
// by its owner rank; store-level restructuring (push_level_*) happens
// only in the serial windows between driver runs; during an exchange
// window shards are read-only.  TSan can only catch violations that
// happen to race at runtime — this checker makes the discipline itself
// an assertion, so a violation aborts deterministically on the first
// offending access, with the actor rank, owner rank, phase, and site in
// the message.
//
// Enabled by -DRETRA_CHECK_ACCESS=ON (CMake; defines RETRA_CHECK_ACCESS).
// When disabled every hook is an empty inline function and the scoped
// tags are empty objects, so annotated code compiles identically.
//
// Model:
//   * a process-wide BspPhase tag (kSerial outside driver runs; drivers
//     set kCompute for the duration of a run; kExchange marks read-only
//     windows such as the threaded driver's round-completion callback);
//   * a thread-local actor rank (-1 = driver / no rank), set by the
//     drivers around each engine call via ScopedActor.
//
// Checks (all no-ops when the checker is off):
//   check_owned(owner, site)    an actor may touch only its own arrays
//   check_mutable(owner, site)  check_owned + writes forbidden in
//                               kExchange
//   check_serial(site)          store restructuring only in kSerial with
//                               no actor tag active
//   check_chunk(local, site)    inside a worker-pool chunk (ScopedChunk),
//                               a thread may write only its own local
//                               index slice
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace retra::support {

enum class BspPhase { kSerial, kCompute, kExchange };

#if defined(RETRA_CHECK_ACCESS)

namespace access_detail {
inline std::atomic<BspPhase> g_phase{BspPhase::kSerial};
inline thread_local int t_actor = -1;
}  // namespace access_detail

inline const char* phase_name(BspPhase phase) {
  switch (phase) {
    case BspPhase::kSerial:
      return "serial";
    case BspPhase::kCompute:
      return "compute";
    case BspPhase::kExchange:
      return "exchange";
  }
  return "?";
}

inline BspPhase current_phase() {
  return access_detail::g_phase.load(std::memory_order_relaxed);
}
inline int current_actor() { return access_detail::t_actor; }

/// Tags the process with the drivers' current BSP phase (RAII).
class ScopedPhase {
 public:
  explicit ScopedPhase(BspPhase phase)
      : previous_(access_detail::g_phase.exchange(
            phase, std::memory_order_relaxed)) {}
  ~ScopedPhase() {
    access_detail::g_phase.store(previous_, std::memory_order_relaxed);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  BspPhase previous_;
};

/// Tags the calling thread as acting on behalf of `rank` (RAII).
class ScopedActor {
 public:
  explicit ScopedActor(int rank) : previous_(access_detail::t_actor) {
    access_detail::t_actor = rank;
  }
  ~ScopedActor() { access_detail::t_actor = previous_; }
  ScopedActor(const ScopedActor&) = delete;
  ScopedActor& operator=(const ScopedActor&) = delete;

 private:
  int previous_;
};

[[noreturn]] inline void access_failed(const char* site, const char* what,
                                       int owner, int level) {
  std::fprintf(stderr,
               "RETRA_CHECK_ACCESS: %s at %s (owner rank %d, actor rank "
               "%d, phase %s, level %d)\n",
               what, site, owner, current_actor(),
               phase_name(current_phase()), level);
  std::abort();
}

/// Rank-owned data: only the owning actor may touch it (the driver,
/// actor -1, may — it orchestrates serially between runs).
inline void check_owned(int owner, const char* site, int level = -1) {
  const int actor = current_actor();
  if (actor != -1 && actor != owner) {
    access_failed(site, "cross-rank access to rank-owned data", owner,
                  level);
  }
}

/// Rank-owned data, write access: additionally forbidden while the
/// drivers hold shards read-only (exchange windows).
inline void check_mutable(int owner, const char* site, int level = -1) {
  if (current_phase() == BspPhase::kExchange) {
    access_failed(site, "write to read-only data in an exchange window",
                  owner, level);
  }
  check_owned(owner, site, level);
}

/// Store restructuring: only between driver runs, with no actor tag.
inline void check_serial(const char* site, int level = -1) {
  if (current_phase() != BspPhase::kSerial || current_actor() != -1) {
    access_failed(site, "store restructuring outside the serial window",
                  /*owner=*/-1, level);
  }
}

namespace access_detail {
inline thread_local bool t_chunk_active = false;
inline thread_local std::uint64_t t_chunk_begin = 0;
inline thread_local std::uint64_t t_chunk_end = 0;
}  // namespace access_detail

/// Tags the calling thread as owning the local index slice [begin, end)
/// of the current fork-join chunk (RAII).  While active, check_chunk
/// aborts on writes outside the slice — the per-thread counterpart of
/// rank ownership.
class ScopedChunk {
 public:
  ScopedChunk(std::uint64_t begin, std::uint64_t end)
      : prev_active_(access_detail::t_chunk_active),
        prev_begin_(access_detail::t_chunk_begin),
        prev_end_(access_detail::t_chunk_end) {
    access_detail::t_chunk_active = true;
    access_detail::t_chunk_begin = begin;
    access_detail::t_chunk_end = end;
  }
  ~ScopedChunk() {
    access_detail::t_chunk_active = prev_active_;
    access_detail::t_chunk_begin = prev_begin_;
    access_detail::t_chunk_end = prev_end_;
  }
  ScopedChunk(const ScopedChunk&) = delete;
  ScopedChunk& operator=(const ScopedChunk&) = delete;

 private:
  bool prev_active_;
  std::uint64_t prev_begin_;
  std::uint64_t prev_end_;
};

/// Chunk-owned data: while a ScopedChunk is active on this thread, the
/// thread may write only local indices inside its slice.  Outside any
/// chunk the check passes (single-threaded phases own the whole range).
inline void check_chunk(std::uint64_t local, const char* site) {
  if (!access_detail::t_chunk_active) return;
  if (local < access_detail::t_chunk_begin ||
      local >= access_detail::t_chunk_end) {
    std::fprintf(stderr,
                 "RETRA_CHECK_ACCESS: write outside the thread's chunk at "
                 "%s (local %llu, chunk [%llu, %llu), actor rank %d)\n",
                 site, static_cast<unsigned long long>(local),
                 static_cast<unsigned long long>(
                     access_detail::t_chunk_begin),
                 static_cast<unsigned long long>(access_detail::t_chunk_end),
                 current_actor());
    std::abort();
  }
}

#else  // !RETRA_CHECK_ACCESS — zero-cost stubs

class ScopedPhase {
 public:
  explicit ScopedPhase(BspPhase) {}
};
class ScopedActor {
 public:
  explicit ScopedActor(int) {}
};
class ScopedChunk {
 public:
  ScopedChunk(std::uint64_t, std::uint64_t) {}
};

inline void check_owned(int, const char*, int = -1) {}
inline void check_mutable(int, const char*, int = -1) {}
inline void check_serial(const char*, int = -1) {}
inline void check_chunk(std::uint64_t, const char*) {}

#endif  // RETRA_CHECK_ACCESS

}  // namespace retra::support

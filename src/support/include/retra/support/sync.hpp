#pragma once

// Annotated synchronisation primitives (see docs/ANALYSIS.md).
//
// Thin wrappers over the std primitives that carry Clang thread-safety
// capability attributes.  libstdc++'s std::mutex has no such
// attributes, so clang cannot check `RETRA_GUARDED_BY(some_std_mutex)`;
// these types make the annotations in src/net, src/exec and src/msg
// checkable under -Wthread-safety while compiling to the identical code
// under GCC.
//
// CondVar keeps a plain std::condition_variable underneath: wait()
// adopts the already-held Mutex into a std::unique_lock for the
// duration of the wait and releases it back afterwards, so there is no
// extra state and no second lock.  Clang's analysis does not look into
// lambda bodies, so there is deliberately no predicate overload — write
// the `while (!cond) cv.wait(m);` loop at the call site.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "retra/support/thread_annotations.hpp"

namespace retra::support {

class CondVar;

// Exclusive mutex with the `capability` attribute.
class RETRA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RETRA_ACQUIRE() { m_.lock(); }
  void unlock() RETRA_RELEASE() { m_.unlock(); }
  bool try_lock() RETRA_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

// Reader/writer mutex with the `capability` attribute.
class RETRA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() RETRA_ACQUIRE() { m_.lock(); }
  void unlock() RETRA_RELEASE() { m_.unlock(); }
  void lock_shared() RETRA_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() RETRA_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

// RAII exclusive lock over Mutex.
class RETRA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) RETRA_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() RETRA_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

// RAII shared (reader) lock over SharedMutex.
class RETRA_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& m) RETRA_ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  ~ReaderMutexLock() RETRA_RELEASE() { m_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& m_;
};

// RAII exclusive (writer) lock over SharedMutex.
class RETRA_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& m) RETRA_ACQUIRE(m) : m_(m) {
    m_.lock();
  }
  ~WriterMutexLock() RETRA_RELEASE() { m_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& m_;
};

// Condition variable usable with Mutex while the caller keeps holding
// the annotated capability across the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `m`, waits, and reacquires `m` before
  // returning.  Spurious wakeups happen; always wait in a loop.
  void wait(Mutex& m) RETRA_REQUIRES(m) {
    std::unique_lock<std::mutex> lock(m.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace retra::support

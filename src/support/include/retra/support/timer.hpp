// Wall-clock timing helpers for benchmarks and progress reporting.
#pragma once

#include <chrono>
#include <cstdint>

namespace retra::support {

/// Monotonic stopwatch.  Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals, e.g. to separate
/// compute time from communication time inside a solver.
class SplitTimer {
 public:
  void start() { timer_.reset(); }
  void stop() { total_ += timer_.seconds(); }
  double total_seconds() const { return total_; }
  void clear() { total_ = 0.0; }

 private:
  Timer timer_;
  double total_ = 0.0;
};

}  // namespace retra::support

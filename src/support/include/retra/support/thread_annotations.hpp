#pragma once

// Clang thread-safety annotation macros (see docs/ANALYSIS.md).
//
// Under clang with -Wthread-safety these expand to the capability
// attributes that let the compiler prove lock discipline statically; on
// every other compiler they expand to nothing.  `retra_analyze` reads
// the same spellings lexically, so the coverage rule (every member of a
// mutex-holding class must be annotated) holds even in GCC-only builds.
//
// The macros follow the Abseil/LLVM naming for the underlying
// attributes.  Use them with the annotated types in
// retra/support/sync.hpp — bare std::mutex carries no capability
// attribute, so clang cannot check expressions that name one.

#if defined(__clang__) && defined(__has_attribute)
#define RETRA_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define RETRA_THREAD_ANNOTATION_IMPL(x)  // no-op outside clang
#endif

// Type annotations: a class that represents a lockable capability, and
// an RAII class whose lifetime acquires/releases one.
#define RETRA_CAPABILITY(name) RETRA_THREAD_ANNOTATION_IMPL(capability(name))
#define RETRA_SCOPED_CAPABILITY RETRA_THREAD_ANNOTATION_IMPL(scoped_lockable)

// Data-member annotations.
#define RETRA_GUARDED_BY(x) RETRA_THREAD_ANNOTATION_IMPL(guarded_by(x))
#define RETRA_PT_GUARDED_BY(x) RETRA_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

// Function annotations: locks the caller must hold / must not hold.
#define RETRA_REQUIRES(...) \
  RETRA_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))
#define RETRA_REQUIRES_SHARED(...) \
  RETRA_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))
#define RETRA_EXCLUDES(...) \
  RETRA_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

// Function annotations for lock implementations (sync.hpp).
#define RETRA_ACQUIRE(...) \
  RETRA_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#define RETRA_ACQUIRE_SHARED(...) \
  RETRA_THREAD_ANNOTATION_IMPL(acquire_shared_capability(__VA_ARGS__))
#define RETRA_RELEASE(...) \
  RETRA_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
#define RETRA_RELEASE_SHARED(...) \
  RETRA_THREAD_ANNOTATION_IMPL(release_shared_capability(__VA_ARGS__))
#define RETRA_TRY_ACQUIRE(...) \
  RETRA_THREAD_ANNOTATION_IMPL(try_acquire_capability(__VA_ARGS__))
#define RETRA_ASSERT_CAPABILITY(x) \
  RETRA_THREAD_ANNOTATION_IMPL(assert_capability(x))
#define RETRA_RETURN_CAPABILITY(x) \
  RETRA_THREAD_ANNOTATION_IMPL(lock_returned(x))

// Escape hatch for code the analysis cannot model (use sparingly, with
// a comment saying why).
#define RETRA_NO_THREAD_SAFETY_ANALYSIS \
  RETRA_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

// Markers read only by retra_analyze; both expand to nothing under
// every compiler.
//
// RETRA_NOT_GUARDED documents that a member of a mutex-holding class is
// deliberately outside the lock's footprint (single-thread-owned,
// const-after-construction, or a struct of atomics).  The lock-coverage
// rule requires every non-exempt member to carry either a
// RETRA_GUARDED_BY-family annotation or this marker.
#define RETRA_NOT_GUARDED

// RETRA_IO_THREAD_ONLY tags a function definition (between the `)` of
// the parameter list and the `{` of the body) as running on an event
// (epoll) thread.  retra_analyze rejects blocking calls — the sleep
// family, blocking waits, select/poll, thread joins — inside such
// bodies.
#define RETRA_IO_THREAD_ONLY

// Explicit, checked integer casts.
//
// The build runs with -Wconversion -Wsign-conversion, so every narrowing or
// sign-changing conversion must be spelled out.  These helpers keep the
// common cases readable and add a debug-build non-negativity check where an
// implicit cast would silently wrap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "retra/support/check.hpp"

namespace retra::support {

/// Container-subscript cast: a naturally-int quantity (rank, level, pit)
/// used as an index.  Debug builds assert it is non-negative before
/// widening to size_t.
template <typename T>
constexpr std::size_t to_size(T v) {
  static_assert(std::is_integral_v<T>);
  if constexpr (std::is_signed_v<T>) {
    RETRA_DCHECK(v >= 0);
  }
  return static_cast<std::size_t>(v);
}

/// Unsigned 64-bit cast with the same debug non-negativity check.
template <typename T>
constexpr std::uint64_t to_u64(T v) {
  static_assert(std::is_integral_v<T>);
  if constexpr (std::is_signed_v<T>) {
    RETRA_DCHECK(v >= 0);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace retra::support

// Small statistics accumulators used by benchmarks and run reports.
#pragma once

#include <cstdint>
#include <vector>

namespace retra::support {

/// Streaming min / max / mean / variance (Welford) over double samples.
class Accumulator {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Sample variance (n − 1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over integer values in [lo, hi]; out-of-range
/// values clamp to the end buckets.  Used for database value distributions.
class IntHistogram {
 public:
  IntHistogram(int lo, int hi);

  void add(int value, std::uint64_t weight = 1);

  int lo() const { return lo_; }
  int hi() const { return hi_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t count_at(int value) const;
  /// Sum of counts for values strictly greater than zero, equal, and less.
  std::uint64_t positive() const;
  std::uint64_t zero() const { return count_at(0); }
  std::uint64_t negative() const;

  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Merges another histogram with identical bounds.
  void merge(const IntHistogram& other);

 private:
  int lo_;
  int hi_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> buckets_;
};

/// Load-balance summary over per-rank quantities: max/mean ratio etc.
struct Balance {
  double mean = 0.0;
  double max = 0.0;
  double min = 0.0;
  /// max / mean; 1.0 is perfect balance.
  double imbalance = 1.0;
};

Balance balance_of(const std::vector<double>& per_rank);
Balance balance_of(const std::vector<std::uint64_t>& per_rank);

}  // namespace retra::support

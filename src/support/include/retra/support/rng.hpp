// Deterministic, fast pseudo-random generators.
//
// All randomised components of the library (synthetic games, partition
// hashing, property tests) use these generators so that every run is
// reproducible from a single seed.
#pragma once

#include <cstdint>

namespace retra::support {

/// SplitMix64: used for seeding and for stateless hashing of indices.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** — a small, fast, high-quality PRNG.  Satisfies the
/// UniformRandomBitGenerator requirements, so it plugs into <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x42ULL) {
    // Seed the four words through SplitMix64 per the reference
    // implementation's recommendation; guarantees a nonzero state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias for the bound sizes
  /// used here (Lemire's multiply-shift reduction).
  constexpr std::uint64_t below(std::uint64_t bound) {
    const auto x = (*this)();
    // 128-bit multiply keeps the reduction unbiased enough for our use
    // (bound << 2^64 everywhere in this codebase).
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(x) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace retra::support

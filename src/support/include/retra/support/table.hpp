// Plain-text table rendering for benchmark output.
//
// The bench binaries print paper-style tables; this formatter keeps them
// aligned and consistent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace retra::support {

/// Column-aligned ASCII table.  Cells are strings; convenience overloads
/// format numerics.  Rendered with a header rule, e.g.:
///
///   level  positions   bytes
///   -----  ----------  --------
///       8     75 582    75.6 KB
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(std::string cell);
  Table& add(const char* cell);
  Table& add(std::uint64_t v);
  Table& add(std::int64_t v);
  Table& add(int v);
  /// Fixed-precision double.
  Table& add(double v, int precision = 2);

  std::size_t rows() const { return cells_.size(); }

  /// Renders the table; every column is as wide as its widest cell.
  std::string render() const;
  void print(std::ostream& os) const;
  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats an integer with thousands separators: 1234567 -> "1 234 567".
std::string with_thousands(std::uint64_t v);

}  // namespace retra::support

// Lightweight leveled logging to stderr.
//
// Used sparingly: progress lines from long-running builders and warnings
// from the simulator.  Verbosity is a process-wide setting so examples can
// expose a --verbose flag.
#pragma once

#include <string>

namespace retra::support {

enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; compiled calls are cheap when filtered out.
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace retra::support

// Runtime invariant checking.
//
// RETRA_CHECK is always on (it guards algorithmic invariants whose violation
// would silently corrupt a database); RETRA_DCHECK compiles out in release
// builds and is used on hot paths.
#pragma once

#include <string_view>

namespace retra::support {

/// Aborts the process with a diagnostic message.  Out-of-line so the check
/// macros stay tiny at call sites.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               std::string_view message);

}  // namespace retra::support

#define RETRA_CHECK(expr)                                                    \
  do {                                                                       \
    if (!(expr)) [[unlikely]] {                                              \
      ::retra::support::check_failed(#expr, __FILE__, __LINE__, {});         \
    }                                                                        \
  } while (false)

#define RETRA_CHECK_MSG(expr, msg)                                           \
  do {                                                                       \
    if (!(expr)) [[unlikely]] {                                              \
      ::retra::support::check_failed(#expr, __FILE__, __LINE__, (msg));      \
    }                                                                        \
  } while (false)

#ifdef NDEBUG
#define RETRA_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define RETRA_DCHECK(expr) RETRA_CHECK(expr)
#endif

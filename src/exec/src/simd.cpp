// Sweep-kernel backends.  The only file in the tree allowed to touch raw
// vector intrinsics (retra_lint rule `simd-containment`); everything else
// goes through the retra/exec/simd.hpp wrappers.
//
// Each kernel has a scalar reference implementation plus SSE2 and AVX2
// specialisations compiled with per-function target attributes, so one
// binary carries every backend and dispatches on the host's cpuid at
// startup.  All vector loads/stores are unaligned and every kernel
// finishes with the scalar tail, so results are bit-identical to the
// reference for any pointer alignment and length.
//
// The match masks come from _mm_movemask_epi8: a matching std::int16_t
// lane contributes two adjacent set bits, so lane indices are bit / 2
// and a lane's bits clear with two `m &= m - 1` steps.

#include "retra/exec/simd.hpp"

#include <atomic>

#if defined(__x86_64__) && RETRA_SIMD_ENABLED
#define RETRA_SIMD_X86 1
#include <immintrin.h>
#else
#define RETRA_SIMD_X86 0
#endif

namespace retra::exec::simd {

namespace {

// ---- scalar reference ------------------------------------------------

std::uint64_t replace_scalar(std::int16_t* data, std::size_t n,
                             std::int16_t match, std::int16_t replacement) {
  std::uint64_t replaced = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] == match) {
      data[i] = replacement;
      ++replaced;
    }
  }
  return replaced;
}

std::size_t collect_eq2_scalar(const std::int16_t* a, std::int16_t va,
                               const std::int16_t* b, std::int16_t vb,
                               std::size_t begin, std::size_t end,
                               std::uint32_t* out, std::size_t k) {
  for (std::size_t i = begin; i < end; ++i) {
    if (a[i] == va && b[i] == vb) out[k++] = static_cast<std::uint32_t>(i);
  }
  return k;
}

std::size_t collect_seed_scalar(const std::int16_t* values,
                                std::int16_t unknown,
                                const std::uint16_t* cnt,
                                const std::int16_t* best, std::int16_t mag,
                                std::size_t begin, std::size_t end,
                                std::uint32_t* out, std::size_t k) {
  for (std::size_t i = begin; i < end; ++i) {
    if (values[i] == unknown && (cnt[i] == 0 || best[i] == mag)) {
      out[k++] = static_cast<std::uint32_t>(i);
    }
  }
  return k;
}

#if RETRA_SIMD_X86

// ---- SSE2 (x86-64 baseline, 8 lanes) ---------------------------------

std::uint64_t replace_sse2(std::int16_t* data, std::size_t n,
                           std::int16_t match, std::int16_t replacement) {
  const __m128i vmatch = _mm_set1_epi16(match);
  const __m128i vrepl = _mm_set1_epi16(replacement);
  std::uint64_t replaced = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i* const p = reinterpret_cast<__m128i*>(data + i);
    const __m128i v = _mm_loadu_si128(p);
    const __m128i eq = _mm_cmpeq_epi16(v, vmatch);
    const auto mask = static_cast<unsigned>(_mm_movemask_epi8(eq));
    if (mask == 0) continue;  // fast path: nothing unknown in this word
    const __m128i blended =
        _mm_or_si128(_mm_and_si128(eq, vrepl), _mm_andnot_si128(eq, v));
    _mm_storeu_si128(p, blended);
    replaced += static_cast<unsigned>(__builtin_popcount(mask)) / 2;
  }
  return replaced + replace_scalar(data + i, n - i, match, replacement);
}

std::size_t collect_eq2_sse2(const std::int16_t* a, std::int16_t va,
                             const std::int16_t* b, std::int16_t vb,
                             std::size_t n, std::uint32_t* out) {
  const __m128i wa = _mm_set1_epi16(va);
  const __m128i wb = _mm_set1_epi16(vb);
  std::size_t k = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i ea = _mm_cmpeq_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), wa);
    const __m128i eb = _mm_cmpeq_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)), wb);
    auto mask =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_and_si128(ea, eb)));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out[k++] = static_cast<std::uint32_t>(i + bit / 2);
      mask &= mask - 1;
      mask &= mask - 1;
    }
  }
  return collect_eq2_scalar(a, va, b, vb, i, n, out, k);
}

std::size_t collect_seed_sse2(const std::int16_t* values,
                              std::int16_t unknown,
                              const std::uint16_t* cnt,
                              const std::int16_t* best, std::int16_t mag,
                              std::size_t n, std::uint32_t* out) {
  const __m128i wunknown = _mm_set1_epi16(unknown);
  const __m128i wmag = _mm_set1_epi16(mag);
  const __m128i wzero = _mm_setzero_si128();
  std::size_t k = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i eu = _mm_cmpeq_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i)),
        wunknown);
    const __m128i ec = _mm_cmpeq_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cnt + i)), wzero);
    const __m128i em = _mm_cmpeq_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(best + i)), wmag);
    auto mask = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_and_si128(eu, _mm_or_si128(ec, em))));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out[k++] = static_cast<std::uint32_t>(i + bit / 2);
      mask &= mask - 1;
      mask &= mask - 1;
    }
  }
  return collect_seed_scalar(values, unknown, cnt, best, mag, i, n, out, k);
}

// ---- AVX2 (16 lanes, runtime-dispatched) -----------------------------

__attribute__((target("avx2"))) std::uint64_t replace_avx2(
    std::int16_t* data, std::size_t n, std::int16_t match,
    std::int16_t replacement) {
  const __m256i vmatch = _mm256_set1_epi16(match);
  const __m256i vrepl = _mm256_set1_epi16(replacement);
  std::uint64_t replaced = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i* const p = reinterpret_cast<__m256i*>(data + i);
    const __m256i v = _mm256_loadu_si256(p);
    const __m256i eq = _mm256_cmpeq_epi16(v, vmatch);
    const auto mask = static_cast<unsigned>(_mm256_movemask_epi8(eq));
    if (mask == 0) continue;
    _mm256_storeu_si256(p, _mm256_blendv_epi8(v, vrepl, eq));
    replaced += static_cast<unsigned>(__builtin_popcount(mask)) / 2;
  }
  return replaced + replace_scalar(data + i, n - i, match, replacement);
}

__attribute__((target("avx2"))) std::size_t collect_eq2_avx2(
    const std::int16_t* a, std::int16_t va, const std::int16_t* b,
    std::int16_t vb, std::size_t n, std::uint32_t* out) {
  const __m256i wa = _mm256_set1_epi16(va);
  const __m256i wb = _mm256_set1_epi16(vb);
  std::size_t k = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i ea = _mm256_cmpeq_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), wa);
    const __m256i eb = _mm256_cmpeq_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), wb);
    auto mask = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_and_si256(ea, eb)));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out[k++] = static_cast<std::uint32_t>(i + bit / 2);
      mask &= mask - 1;
      mask &= mask - 1;
    }
  }
  return collect_eq2_scalar(a, va, b, vb, i, n, out, k);
}

__attribute__((target("avx2"))) std::size_t collect_seed_avx2(
    const std::int16_t* values, std::int16_t unknown,
    const std::uint16_t* cnt, const std::int16_t* best, std::int16_t mag,
    std::size_t n, std::uint32_t* out) {
  const __m256i wunknown = _mm256_set1_epi16(unknown);
  const __m256i wmag = _mm256_set1_epi16(mag);
  const __m256i wzero = _mm256_setzero_si256();
  std::size_t k = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i eu = _mm256_cmpeq_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),
        wunknown);
    const __m256i ec = _mm256_cmpeq_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cnt + i)),
        wzero);
    const __m256i em = _mm256_cmpeq_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(best + i)),
        wmag);
    auto mask = static_cast<unsigned>(_mm256_movemask_epi8(
        _mm256_and_si256(eu, _mm256_or_si256(ec, em))));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out[k++] = static_cast<std::uint32_t>(i + bit / 2);
      mask &= mask - 1;
      mask &= mask - 1;
    }
  }
  return collect_seed_scalar(values, unknown, cnt, best, mag, i, n, out, k);
}

#endif  // RETRA_SIMD_X86

/// The dispatch state; relaxed atomics because set_active() is a test
/// hook called between runs, never concurrently with kernels.
std::atomic<int>& active_state() {
  static std::atomic<int> state{static_cast<int>(widest_available())};
  return state;
}

}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

int lanes(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return 1;
    case Backend::kSse2:
      return 8;
    case Backend::kAvx2:
      return 16;
  }
  return 1;
}

Backend widest_available() {
#if RETRA_SIMD_X86
  static const Backend widest = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") ? Backend::kAvx2 : Backend::kSse2;
  }();
  return widest;
#else
  return Backend::kScalar;
#endif
}

Backend active() {
  return static_cast<Backend>(active_state().load(std::memory_order_relaxed));
}

int active_lanes() { return lanes(active()); }

Backend set_active(Backend backend) {
  const Backend widest = widest_available();
  if (static_cast<int>(backend) > static_cast<int>(widest)) backend = widest;
  active_state().store(static_cast<int>(backend),
                       std::memory_order_relaxed);
  return backend;
}

std::uint64_t replace_matching(std::int16_t* data, std::size_t n,
                               std::int16_t match,
                               std::int16_t replacement) {
  switch (active()) {
#if RETRA_SIMD_X86
    case Backend::kAvx2:
      return replace_avx2(data, n, match, replacement);
    case Backend::kSse2:
      return replace_sse2(data, n, match, replacement);
#endif
    default:
      return replace_scalar(data, n, match, replacement);
  }
}

std::size_t collect_eq2(const std::int16_t* a, std::int16_t va,
                        const std::int16_t* b, std::int16_t vb,
                        std::size_t n, std::uint32_t* out) {
  switch (active()) {
#if RETRA_SIMD_X86
    case Backend::kAvx2:
      return collect_eq2_avx2(a, va, b, vb, n, out);
    case Backend::kSse2:
      return collect_eq2_sse2(a, va, b, vb, n, out);
#endif
    default:
      return collect_eq2_scalar(a, va, b, vb, 0, n, out, 0);
  }
}

std::size_t collect_seed_candidates(const std::int16_t* values,
                                    std::int16_t unknown,
                                    const std::uint16_t* cnt,
                                    const std::int16_t* best,
                                    std::int16_t mag, std::size_t n,
                                    std::uint32_t* out) {
  switch (active()) {
#if RETRA_SIMD_X86
    case Backend::kAvx2:
      return collect_seed_avx2(values, unknown, cnt, best, mag, n, out);
    case Backend::kSse2:
      return collect_seed_sse2(values, unknown, cnt, best, mag, n, out);
#endif
    default:
      return collect_seed_scalar(values, unknown, cnt, best, mag, 0, n, out,
                                 0);
  }
}

}  // namespace retra::exec::simd

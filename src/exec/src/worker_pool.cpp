#include "retra/exec/worker_pool.hpp"

#include "retra/support/check.hpp"

namespace retra::exec {

WorkerPool::WorkerPool(unsigned threads) {
  RETRA_CHECK(threads >= 1);
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const support::MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::run(const std::function<void(unsigned)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    const support::MutexLock lock(mutex_);
    job_ = &fn;
    unfinished_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is slot 0.  If it throws, still join the workers first —
  // they may be touching caller-owned chunk state.
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::exception_ptr worker_error;
  {
    const support::MutexLock lock(mutex_);
    while (unfinished_ != 0) done_cv_.wait(mutex_);
    job_ = nullptr;
    worker_error = first_error_;
    first_error_ = nullptr;
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

void WorkerPool::worker_loop(unsigned slot) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      const support::MutexLock lock(mutex_);
      while (!stopping_ && generation_ == seen) work_cv_.wait(mutex_);
      if (stopping_) return;
      seen = generation_;
      job = job_;
    }
    std::exception_ptr error;
    try {
      (*job)(slot);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const support::MutexLock lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --unfinished_;
      if (unfinished_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace retra::exec

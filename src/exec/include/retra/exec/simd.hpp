// Portable vector kernels for the engines' packed-value sweeps.
//
// The per-level sweeps — magnitude seeding, zero-fill, and the seed scan
// over the packed std::int16_t value words — are pure compare/select
// loops, exactly the shape SIMD accelerates.  This layer wraps them as
// three kernels with a scalar reference implementation and 128-bit
// (SSE2) / 256-bit (AVX2) specialisations:
//
//   * replace_matching       the zero-fill word sweep (compare, blend,
//                            count),
//   * collect_eq2            the packed seed scan (values == kUnknown
//                            && best == magnitude -> ascending indices),
//   * collect_seed_candidates the first magnitude's combined sweep
//                            (unknown && (cnt == 0 || best == mag)).
//
// Contract: every backend returns bit-identical results — the same
// counts and the same ascending index sequences — as the scalar
// reference, for any alignment (all loads are unaligned) and any length
// (vector body plus scalar tail).  Callers therefore never observe
// which backend ran; the engines' bit-identity guarantees are untouched.
//
// Backend selection: the widest backend the build *and* the host support
// is picked at startup (compile-time scalar fallback via the RETRA_SIMD
// CMake option, runtime dispatch via cpuid on x86-64); tests and benches
// can pin a narrower backend with set_active().  Raw intrinsics are
// confined to src/exec/src/simd.cpp — the retra_lint `simd-containment`
// rule keeps them out of the rest of the tree.
#pragma once

#include <cstddef>
#include <cstdint>

namespace retra::exec {

/// Hints the prefetcher that `address` will be read soon.  The engines
/// issue these a fixed distance ahead of the drain wave's random
/// values_ reads and the merge loop's update applies; a no-op on
/// compilers without the builtin.
inline void prefetch_read(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

namespace simd {

/// Kernel implementations, narrowest to widest.  kSse2/kAvx2 exist only
/// on x86-64 builds with RETRA_SIMD on; elsewhere the scalar reference
/// is the sole backend.
enum class Backend : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* backend_name(Backend backend);

/// std::int16_t lanes one operation of `backend` processes (1 / 8 / 16).
int lanes(Backend backend);

/// The widest backend this build and this host both support.
Backend widest_available();

/// The backend the kernels dispatch to; defaults to widest_available().
Backend active();
int active_lanes();

/// Pins the dispatch backend (clamped to widest_available()); returns
/// what is now active.  For tests and benches comparing backends.
Backend set_active(Backend backend);

/// Positions one engine sweep tile spans; sized so a tile's index buffer
/// (collect_* output) lives comfortably on a worker stack while the
/// input words still amortise the dispatch.
inline constexpr std::size_t kSweepTile = 4096;

/// Replaces every element of data[0, n) equal to `match` with
/// `replacement`; returns how many were replaced.  The zero-fill sweep.
std::uint64_t replace_matching(std::int16_t* data, std::size_t n,
                               std::int16_t match,
                               std::int16_t replacement);

/// Writes the ascending indices i in [0, n) with a[i] == va &&
/// b[i] == vb into `out` (capacity >= n, indices fit 32 bits); returns
/// how many matched.  The packed seed scan.
std::size_t collect_eq2(const std::int16_t* a, std::int16_t va,
                        const std::int16_t* b, std::int16_t vb,
                        std::size_t n, std::uint32_t* out);

/// Writes the ascending indices i in [0, n) with values[i] == unknown
/// && (cnt[i] == 0 || best[i] == mag) into `out` (capacity >= n);
/// returns how many matched.  The first magnitude's combined sweep,
/// which also finalises positions whose options were all exits.
std::size_t collect_seed_candidates(const std::int16_t* values,
                                    std::int16_t unknown,
                                    const std::uint16_t* cnt,
                                    const std::int16_t* best,
                                    std::int16_t mag, std::size_t n,
                                    std::uint32_t* out);

}  // namespace simd
}  // namespace retra::exec

// A small reusable worker pool for intra-rank parallelism.
//
// The rank engines' embarrassingly-parallel phases (Init scan, magnitude
// seeding, zero-fill) split the rank's local index range into contiguous
// chunks and run one chunk per pool slot.  The pool is deliberately
// minimal: persistent threads, one job at a time, the caller participates
// as slot 0 so a T-thread configuration spawns only T − 1 OS threads and a
// T = 1 pool spawns none.
//
// Determinism contract: the pool decides only *where* a chunk runs, never
// what it observes — chunk boundaries come from chunk_range(), which
// depends on (total, chunks) alone, so the same configuration always
// produces the same chunk decomposition regardless of scheduling.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "retra/support/sync.hpp"
#include "retra/support/thread_annotations.hpp"

namespace retra::exec {

/// Contiguous slice [begin, end) of a [0, total) index range.
struct ChunkRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// Deterministic contiguous chunking of [0, total) into `chunks` slices,
/// balanced to within one element, earlier chunks taking the remainder.
/// Depends only on its arguments — never on thread count or scheduling —
/// so chunk decompositions are reproducible across machines.
inline ChunkRange chunk_range(std::uint64_t total, unsigned chunks,
                              unsigned chunk) {
  const std::uint64_t base = total / chunks;
  const std::uint64_t rem = total % chunks;
  const std::uint64_t extra = chunk < rem ? chunk : rem;
  ChunkRange range;
  range.begin = chunk * base + extra;
  range.end = range.begin + base + (chunk < rem ? 1 : 0);
  return range;
}

/// Persistent thread team executing one fork-join job at a time.
///
/// run(fn) calls fn(slot) once for every slot in [0, threads()); slot 0
/// runs on the calling thread.  run() returns after every slot finished
/// (mutex/condvar join, so writes made by the slots happen-before the
/// return).  If any slot throws, run() rethrows the first exception after
/// the join; the pool stays usable.
class WorkerPool {
 public:
  /// A pool presenting `threads` slots (>= 1); spawns `threads - 1` OS
  /// threads.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  void run(const std::function<void(unsigned)>& fn) RETRA_EXCLUDES(mutex_);

 private:
  void worker_loop(unsigned slot) RETRA_EXCLUDES(mutex_);

  // Sized in the constructor before any worker runs, joined in the
  // destructor after all of them stop.
  std::vector<std::thread> workers_ RETRA_NOT_GUARDED;

  support::Mutex mutex_;
  support::CondVar work_cv_;
  support::CondVar done_cv_;
  const std::function<void(unsigned)>* job_ RETRA_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ RETRA_GUARDED_BY(mutex_) = 0;
  unsigned unfinished_ RETRA_GUARDED_BY(mutex_) = 0;
  bool stopping_ RETRA_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ RETRA_GUARDED_BY(mutex_);
};

}  // namespace retra::exec

#include "retra/para/dist_db.hpp"

#include "retra/obs/metrics.hpp"
#include "retra/support/access_check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::para {

using support::to_size;

void DistributedDatabase::push_level_shards(
    int level, std::uint64_t size, std::vector<std::vector<db::Value>> shards) {
  support::check_serial("dist_db.push_level_shards", level);
  RETRA_CHECK_MSG(!replicated_, "use push_level_full in replicated mode");
  RETRA_CHECK(level == num_levels());
  RETRA_CHECK(static_cast<int>(shards.size()) == ranks_);
  Partition partition = make_partition(size);
  for (int r = 0; r < ranks_; ++r) {
    RETRA_CHECK(shards[to_size(r)].size() == partition.local_size(r));
  }
  partitions_.push_back(partition);
  for (int r = 0; r < ranks_; ++r) {
    stores_[to_size(r)]->push_shard(std::move(shards[to_size(r)]));
  }
}

void DistributedDatabase::push_level_full(
    int level, std::vector<std::vector<db::Value>> per_rank_full) {
  support::check_serial("dist_db.push_level_full", level);
  RETRA_CHECK_MSG(replicated_, "use push_level_shards in partitioned mode");
  RETRA_CHECK(level == num_levels());
  RETRA_CHECK(static_cast<int>(per_rank_full.size()) == ranks_);
  const std::uint64_t size = per_rank_full.front().size();
  for (const auto& copy : per_rank_full) {
    RETRA_CHECK_MSG(copy.size() == size, "replica size mismatch");
  }
  partitions_.push_back(make_partition(size));
  for (int r = 0; r < ranks_; ++r) {
    LevelStore& store = *stores_[to_size(r)];
    if (store.building()) store.discard_build();
    store.push_shard(std::move(per_rank_full[to_size(r)]));
  }
}

void DistributedDatabase::seal_level_from_builds(int level,
                                                 std::uint64_t size) {
  support::check_serial("dist_db.seal_level_from_builds", level);
  RETRA_CHECK_MSG(!replicated_, "use push_level_full in replicated mode");
  RETRA_CHECK(level == num_levels());
  Partition partition = make_partition(size);
  for (int r = 0; r < ranks_; ++r) {
    RETRA_CHECK_MSG(
        stores_[to_size(r)]->build().values.size() == partition.local_size(r),
        "active build does not match the level partition");
  }
  partitions_.push_back(partition);
  for (int r = 0; r < ranks_; ++r) {
    stores_[to_size(r)]->seal_build();
  }
}

db::Value DistributedDatabase::value_local(int rank, int level,
                                           idx::Index global) const {
  support::check_owned(rank, "dist_db.value_local", level);
  RETRA_CHECK(level >= 0 && level < num_levels());
  RETRA_OBS_INC(obs::Id::kDistDbLocalReads);
  if (replicated_) {
    return stores_[to_size(rank)]->value(level, global);
  }
  const Partition& partition = partitions_[to_size(level)];
  const int owner_rank = partition.owner(global);
  RETRA_CHECK_MSG(owner_rank == rank,
                  "partitioned lower-level read from a non-owner rank");
  return stores_[to_size(rank)]->value(level, partition.to_local(global));
}

db::Database DistributedDatabase::gather() const {
  db::Database database;
  for (int level = 0; level < num_levels(); ++level) {
    const Partition& partition = partitions_[to_size(level)];
    if (replicated_) {
      std::vector<db::Value> values;
      stores_[0]->visit_shard(level, [&values](std::span<const db::Value> v) {
        values.assign(v.begin(), v.end());
      });
      database.push_level(level, std::move(values));
      continue;
    }
    std::vector<db::Value> values(partition.size());
    for (int r = 0; r < ranks_; ++r) {
      stores_[to_size(r)]->visit_shard(
          level, [&](std::span<const db::Value> shard) {
            for (std::uint64_t local = 0; local < shard.size(); ++local) {
              values[partition.to_global(r, local)] = shard[local];
            }
          });
    }
    database.push_level(level, std::move(values));
  }
  return database;
}

std::uint64_t DistributedDatabase::bytes_on_rank(int rank) const {
  return stores_[to_size(rank)]->stored_bytes();
}

std::vector<db::Value> DistributedDatabase::read_rank_shard(int level,
                                                            int rank) const {
  std::vector<db::Value> values;
  stores_[to_size(rank)]->visit_shard(
      level, [&values](std::span<const db::Value> shard) {
        values.assign(shard.begin(), shard.end());
      });
  return values;
}

}  // namespace retra::para

#include "retra/para/dist_db.hpp"

#include "retra/obs/metrics.hpp"
#include "retra/support/access_check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::para {

using support::to_size;

void DistributedDatabase::push_level_shards(
    int level, std::uint64_t size, std::vector<std::vector<db::Value>> shards) {
  support::check_serial("dist_db.push_level_shards", level);
  RETRA_CHECK_MSG(!replicated_, "use push_level_full in replicated mode");
  RETRA_CHECK(level == num_levels());
  RETRA_CHECK(static_cast<int>(shards.size()) == ranks_);
  Partition partition = make_partition(size);
  for (int r = 0; r < ranks_; ++r) {
    RETRA_CHECK(shards[to_size(r)].size() == partition.local_size(r));
  }
  partitions_.push_back(partition);
  store_.push_back(std::move(shards));
}

void DistributedDatabase::push_level_full(
    int level, std::vector<std::vector<db::Value>> per_rank_full) {
  support::check_serial("dist_db.push_level_full", level);
  RETRA_CHECK_MSG(replicated_, "use push_level_shards in partitioned mode");
  RETRA_CHECK(level == num_levels());
  RETRA_CHECK(static_cast<int>(per_rank_full.size()) == ranks_);
  const std::uint64_t size = per_rank_full.front().size();
  for (const auto& copy : per_rank_full) {
    RETRA_CHECK_MSG(copy.size() == size, "replica size mismatch");
  }
  partitions_.push_back(make_partition(size));
  store_.push_back(std::move(per_rank_full));
}

db::Value DistributedDatabase::value_local(int rank, int level,
                                           idx::Index global) const {
  support::check_owned(rank, "dist_db.value_local", level);
  RETRA_CHECK(level >= 0 && level < num_levels());
  RETRA_OBS_INC(obs::Id::kDistDbLocalReads);
  if (replicated_) {
    return store_[to_size(level)][to_size(rank)][global];
  }
  const Partition& partition = partitions_[to_size(level)];
  const int owner_rank = partition.owner(global);
  RETRA_CHECK_MSG(owner_rank == rank,
                  "partitioned lower-level read from a non-owner rank");
  return store_[to_size(level)][to_size(rank)][partition.to_local(global)];
}

db::Database DistributedDatabase::gather() const {
  db::Database database;
  for (int level = 0; level < num_levels(); ++level) {
    const Partition& partition = partitions_[to_size(level)];
    if (replicated_) {
      database.push_level(level, store_[to_size(level)][0]);
      continue;
    }
    std::vector<db::Value> values(partition.size());
    for (int r = 0; r < ranks_; ++r) {
      const auto& shard = store_[to_size(level)][to_size(r)];
      for (std::uint64_t local = 0; local < shard.size(); ++local) {
        values[partition.to_global(r, local)] = shard[local];
      }
    }
    database.push_level(level, std::move(values));
  }
  return database;
}

std::uint64_t DistributedDatabase::bytes_on_rank(int rank) const {
  std::uint64_t bytes = 0;
  for (int level = 0; level < num_levels(); ++level) {
    bytes += store_[to_size(level)][to_size(rank)].size() * sizeof(db::Value);
  }
  return bytes;
}

}  // namespace retra::para

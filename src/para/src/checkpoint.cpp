#include "retra/para/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "retra/db/db_io.hpp"  // fnv1a
#include "retra/obs/metrics.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::para {

namespace {

constexpr char kManifestName[] = "manifest.txt";
constexpr std::uint32_t kLevelMagic = 0x52435031;  // "RCP1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

std::string level_path(const std::string& directory, int level) {
  return directory + "/level_" + std::to_string(level) + ".ck";
}

const char* scheme_token(PartitionScheme scheme) {
  return scheme_name(scheme);  // "block" / "cyclic" / "block-cyclic"
}

bool parse_scheme(const std::string& token, PartitionScheme& out) {
  if (token == "block") {
    out = PartitionScheme::kBlock;
  } else if (token == "cyclic") {
    out = PartitionScheme::kCyclic;
  } else if (token == "block-cyclic") {
    out = PartitionScheme::kBlockCyclic;
  } else {
    return false;
  }
  return true;
}

void write_bytes(std::FILE* f, const void* data, std::size_t size) {
  if (size == 0) {
    return;  // an empty shard has data() == nullptr; fwrite requires non-null
  }
  RETRA_CHECK_MSG(std::fwrite(data, 1, size, f) == size,
                  "checkpoint short write");
}

template <typename T>
void write_pod(std::FILE* f, T value) {
  write_bytes(f, &value, sizeof value);
}

bool read_bytes(std::FILE* f, void* data, std::size_t size) {
  if (size == 0) {
    return true;  // matching write_bytes: never hand fread a null buffer
  }
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool read_pod(std::FILE* f, T& value) {
  return read_bytes(f, &value, sizeof value);
}

}  // namespace

void checkpoint_save_level(const DistributedDatabase& ddb, int level,
                           const std::string& directory,
                           std::size_t combine_bytes) {
  RETRA_CHECK(level >= 0 && level < ddb.num_levels());
  RETRA_OBS_SCOPED_TIMER(save_timer, obs::Id::kCheckpointSaveSeconds);
  std::filesystem::create_directories(directory);

  std::uint64_t written = sizeof kLevelMagic + sizeof(std::uint32_t);
  {
    File file(std::fopen(level_path(directory, level).c_str(), "wb"));
    RETRA_CHECK_MSG(file != nullptr, "cannot write checkpoint level file");
    std::FILE* f = file.get();
    write_pod(f, kLevelMagic);
    write_pod(f, static_cast<std::uint32_t>(ddb.ranks()));
    for (int rank = 0; rank < ddb.ranks(); ++rank) {
      // One decoded shard at a time — an out-of-core checkpoint never
      // materialises the whole level in RAM.
      const std::vector<db::Value> shard = ddb.read_rank_shard(level, rank);
      write_pod(f, static_cast<std::uint64_t>(shard.size()));
      const std::size_t bytes = shard.size() * sizeof(db::Value);
      write_bytes(f, shard.data(), bytes);
      write_pod(f, db::fnv1a(shard.data(), bytes));
      written += sizeof(std::uint64_t) + bytes + sizeof(std::uint64_t);
    }
    RETRA_CHECK_MSG(std::fflush(f) == 0, "checkpoint flush failed");
  }
  RETRA_OBS_ADD(obs::Id::kCheckpointBytesWritten, written);

  // Manifest last: a crash between the two leaves the previous manifest,
  // so a torn level file is never referenced.
  File manifest(
      std::fopen((directory + "/" + kManifestName).c_str(), "w"));
  RETRA_CHECK_MSG(manifest != nullptr, "cannot write checkpoint manifest");
  std::fprintf(manifest.get(),
               "retra-checkpoint 2\nranks %d\nscheme %s\nblock %" PRIu64
               "\nreplicated %d\nlevels %d\ncombine %" PRIu64 "\n",
               ddb.ranks(), scheme_token(ddb.scheme()),
               ddb.block_size(), ddb.replicated() ? 1 : 0, level + 1,
               static_cast<std::uint64_t>(combine_bytes));
  RETRA_CHECK(std::fflush(manifest.get()) == 0);
}

CheckpointLoad checkpoint_load(const std::string& directory,
                               const StoreConfig& store_config) {
  CheckpointLoad result;
  RETRA_OBS_SCOPED_TIMER(load_timer, obs::Id::kCheckpointLoadSeconds);
  File manifest(
      std::fopen((directory + "/" + kManifestName).c_str(), "r"));
  if (!manifest) {
    result.error = "no manifest in " + directory;
    return result;
  }
  char scheme_buf[32] = {};
  int version = 0, replicated = 0;
  std::uint64_t block = 0;
  if (std::fscanf(manifest.get(),
                  "retra-checkpoint %d\nranks %d\nscheme %31s\nblock "
                  "%" SCNu64 "\nreplicated %d\nlevels %d\n",
                  &version, &result.meta.ranks, scheme_buf, &block,
                  &replicated, &result.meta.levels) != 6 ||
      version < 1 || version > 2) {
    result.error = "malformed manifest";
    return result;
  }
  if (version >= 2) {
    // v2 additionally records the combining buffer size (diagnostic only;
    // it never participates in the compatibility decision).
    std::uint64_t combine = 0;
    if (std::fscanf(manifest.get(), "combine %" SCNu64 "\n", &combine) !=
        1) {
      result.error = "malformed manifest";
      return result;
    }
    result.meta.combine_bytes = combine;
  }
  result.meta.block_size = block;
  result.meta.replicated = replicated != 0;
  if (!parse_scheme(scheme_buf, result.meta.scheme)) {
    result.error = "unknown partition scheme in manifest";
    return result;
  }
  if (result.meta.ranks < 1 || result.meta.levels < 0) {
    result.error = "implausible manifest values";
    return result;
  }

  auto database = std::make_unique<DistributedDatabase>(
      result.meta.scheme, std::max<std::uint64_t>(result.meta.block_size, 1),
      result.meta.ranks, result.meta.replicated, store_config);

  for (int level = 0; level < result.meta.levels; ++level) {
    const std::string path = level_path(directory, level);
    File file(std::fopen(path.c_str(), "rb"));
    if (!file) {
      result.error = "missing level file " + std::to_string(level);
      return result;
    }
    std::error_code ec;
    const std::uint64_t file_bytes = std::filesystem::file_size(path, ec);
    if (!ec) RETRA_OBS_ADD(obs::Id::kCheckpointBytesRead, file_bytes);
    std::FILE* f = file.get();
    std::uint32_t magic = 0, ranks = 0;
    if (!read_pod(f, magic) || magic != kLevelMagic ||
        !read_pod(f, ranks) ||
        ranks != static_cast<std::uint32_t>(result.meta.ranks)) {
      result.error = "bad level header in level " + std::to_string(level);
      return result;
    }
    std::vector<std::vector<db::Value>> storage(
        support::to_size(result.meta.ranks));
    std::uint64_t total = 0;
    for (auto& shard : storage) {
      std::uint64_t size = 0;
      if (!read_pod(f, size)) {
        result.error = "truncated level " + std::to_string(level);
        return result;
      }
      // A corrupted size field must not drive a huge allocation: no shard
      // can hold more values than the whole file has bytes for.
      if (ec || size > file_bytes / sizeof(db::Value)) {
        result.error = "implausible shard size in level " +
                       std::to_string(level);
        return result;
      }
      shard.resize(size);
      const std::size_t bytes = size * sizeof(db::Value);
      std::uint64_t checksum = 0;
      if (!read_bytes(f, shard.data(), bytes) || !read_pod(f, checksum)) {
        result.error = "truncated level " + std::to_string(level);
        return result;
      }
      if (checksum != db::fnv1a(shard.data(), bytes)) {
        result.error = "checksum mismatch in level " + std::to_string(level);
        return result;
      }
      total += size;
    }
    if (result.meta.replicated) {
      database->push_level_full(level, std::move(storage));
    } else {
      // Shard sizes must reassemble into a consistent level.
      database->push_level_shards(level, total, std::move(storage));
    }
  }
  result.database = std::move(database);
  result.ok = true;
  return result;
}

bool checkpoint_compatible(const CheckpointMeta& meta, int ranks,
                           PartitionScheme scheme, std::uint64_t block_size,
                           bool replicated) {
  if (meta.ranks != ranks || meta.scheme != scheme ||
      meta.replicated != replicated) {
    return false;
  }
  // Block size only matters for block-cyclic layouts.
  if (scheme == PartitionScheme::kBlockCyclic &&
      meta.block_size != block_size) {
    return false;
  }
  return true;
}

}  // namespace retra::para

#include "retra/para/partition.hpp"

#include <algorithm>

#include "retra/support/check.hpp"

namespace retra::para {

const char* scheme_name(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kBlock:
      return "block";
    case PartitionScheme::kCyclic:
      return "cyclic";
    case PartitionScheme::kBlockCyclic:
      return "block-cyclic";
  }
  return "?";
}

Partition::Partition(PartitionScheme scheme, std::uint64_t size, int ranks,
                     std::uint64_t block_size)
    : scheme_(scheme), size_(size), ranks_(ranks), block_size_(block_size) {
  RETRA_CHECK(ranks >= 1);
  RETRA_CHECK(block_size >= 1);
  if (scheme_ == PartitionScheme::kBlock) {
    // Uniform slab width; the last rank's slab may be short (or empty when
    // there are more ranks than positions).
    block_size_ = (size_ + uranks() - 1) / uranks();
    if (block_size_ == 0) block_size_ = 1;
  }
}

int Partition::owner(idx::Index index) const {
  RETRA_DCHECK(index < size_);
  switch (scheme_) {
    case PartitionScheme::kBlock:
      return static_cast<int>(index / block_size_);
    case PartitionScheme::kCyclic:
      return static_cast<int>(index % uranks());
    case PartitionScheme::kBlockCyclic:
      return static_cast<int>((index / block_size_) % uranks());
  }
  return 0;
}

std::uint64_t Partition::to_local(idx::Index index) const {
  RETRA_DCHECK(index < size_);
  switch (scheme_) {
    case PartitionScheme::kBlock:
      return index % block_size_;
    case PartitionScheme::kCyclic:
      return index / uranks();
    case PartitionScheme::kBlockCyclic:
      return (index / (block_size_ * uranks())) * block_size_ +
             index % block_size_;
  }
  return 0;
}

idx::Index Partition::to_global(int rank, std::uint64_t local) const {
  switch (scheme_) {
    case PartitionScheme::kBlock:
      return static_cast<idx::Index>(rank) * block_size_ + local;
    case PartitionScheme::kCyclic:
      return local * uranks() + static_cast<std::uint64_t>(rank);
    case PartitionScheme::kBlockCyclic: {
      const std::uint64_t super = local / block_size_;  // round number
      const std::uint64_t offset = local % block_size_;
      return (super * uranks() + static_cast<std::uint64_t>(rank)) *
                 block_size_ +
             offset;
    }
  }
  return 0;
}

std::uint64_t Partition::local_size(int rank) const {
  switch (scheme_) {
    case PartitionScheme::kBlock: {
      const std::uint64_t begin =
          std::min(static_cast<std::uint64_t>(rank) * block_size_, size_);
      const std::uint64_t end = std::min(begin + block_size_, size_);
      return end - begin;
    }
    case PartitionScheme::kCyclic: {
      const std::uint64_t r = static_cast<std::uint64_t>(rank);
      return size_ / uranks() + (r < size_ % uranks() ? 1 : 0);
    }
    case PartitionScheme::kBlockCyclic: {
      // Count full and partial blocks owned by `rank`.
      const std::uint64_t stride = block_size_ * uranks();
      const std::uint64_t full_rounds = size_ / stride;
      std::uint64_t owned = full_rounds * block_size_;
      const std::uint64_t rest = size_ % stride;
      const std::uint64_t r = static_cast<std::uint64_t>(rank);
      const std::uint64_t rest_begin =
          std::min(rest, r * block_size_);
      const std::uint64_t rest_end =
          std::min(rest, (r + 1) * block_size_);
      owned += rest_end - rest_begin;
      return owned;
    }
  }
  return 0;
}

}  // namespace retra::para

#include "retra/para/level_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "retra/db/db_io.hpp"
#include "retra/support/numeric.hpp"

namespace retra::para {

// --------------------------------------------------------------- FileLevelStore

FileLevelStore::FileLevelStore(const StoreConfig& config, int rank)
    : config_(config), rank_(rank) {
  RETRA_CHECK_MSG(config_.out_of_core(),
                  "FileLevelStore needs a nonzero working-set budget");
  RETRA_CHECK_MSG(!config_.scratch_dir.empty(),
                  "out-of-core build needs --scratch-dir");
  std::filesystem::create_directories(config_.scratch_dir);
}

FileLevelStore::~FileLevelStore() {
  support::MutexLock lock(mutex_);
  for (SpilledLevel& level : levels_) {
    level.source.reset();  // closes the scratch file
    if (!level.path.empty()) std::remove(level.path.c_str());
  }
}

std::string FileLevelStore::level_path(int level) const {
  return config_.scratch_dir + "/rank" + std::to_string(rank_) + "_level" +
         std::to_string(level) + ".rtradb";
}

void FileLevelStore::store_shard(std::vector<db::Value> shard) {
  const int level = num_levels() - 1;  // push_shard recorded the size already
  SpilledLevel spilled;
  if (!shard.empty()) {
    // The shard becomes a one-level RTRADB03 file — inside the scratch
    // file it is always level 0, whatever build level it holds.
    spilled.path = level_path(level);
    db::Database holder;
    holder.push_level(0, std::move(shard));
    db::save(holder, spilled.path,
             db::Format{.version = 3,
                        .block_positions = config_.block_positions});
    serve::FileSource::OpenResult opened =
        serve::FileSource::open(spilled.path);
    RETRA_CHECK_MSG(opened.ok, "cannot reopen spilled level");
    spilled.source = std::move(opened.source);
  }
  support::MutexLock lock(mutex_);
  if (spilled.source != nullptr) {
    stats_.levels_spilled += 1;
    stats_.spill_bytes += spilled.source->index().total_payload_bytes();
  }
  levels_.push_back(std::move(spilled));
}

const db::CompactLevel& FileLevelStore::touch(int level, int block) const {
  serve::FileSource& source = *levels_[support::to_size(level)].source;
  const BlockKey key{level, block};
  if (source.is_block_resident(0, block)) {
    const auto it = std::find(lru_.begin(), lru_.end(), key);
    lru_.splice(lru_.begin(), lru_, it);  // mark most recently used
    return source.ensure_block(0, block);
  }
  // Make room first, coldest-first, using the scan-time size estimate of
  // the incoming block, so true residency never overshoots the budget
  // while the new block decodes.  An oversized block is still served —
  // the cache just ends up holding only it (the QueryService rule:
  // degrade to thrashing, never to a wrong answer).
  const auto evict_victim = [this] {
    const BlockKey victim = lru_.back();
    lru_.pop_back();
    serve::FileSource& victim_source =
        *levels_[support::to_size(victim.level)].source;
    stats_.resident_bytes -= victim_source.block_bytes(0, victim.block);
    victim_source.drop_block(0, victim.block);
    stats_.evictions += 1;
  };
  const std::uint64_t incoming = source.block_bytes(0, block);
  while (!lru_.empty() &&
         stats_.resident_bytes + incoming > config_.working_set_bytes) {
    evict_victim();
  }
  const db::CompactLevel& data = source.ensure_block(0, block);
  stats_.faults += 1;
  stats_.fault_bytes += data.memory_bytes();
  stats_.resident_bytes += data.memory_bytes();
  lru_.push_front(key);
  // The estimate and the decoded size agree for RTRADB03, but trim again
  // defensively (never the just-touched block).
  while (stats_.resident_bytes > config_.working_set_bytes &&
         lru_.size() > 1) {
    evict_victim();
  }
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  return data;
}

db::Value FileLevelStore::value(int level, std::uint64_t local) const {
  support::MutexLock lock(mutex_);
  const serve::FileSource& source = *levels_[support::to_size(level)].source;
  const int block = source.block_of(0, local);
  const db::CompactLevel& data = touch(level, block);
  return data.get(local - source.block_begin(0, block));
}

void FileLevelStore::visit_shard(int level, const ShardVisitor& fn) const {
  RETRA_CHECK(level >= 0 && level < num_levels());
  if (shard_size(level) == 0) {
    fn(std::span<const db::Value>{});
    return;
  }
  // A fresh read of the scratch file, independent of the working-set
  // cache: whole-shard visits (gather, checkpoint) must not disturb the
  // fault/evict counters the tests pin down.
  std::string path;
  {
    support::MutexLock lock(mutex_);
    path = levels_[support::to_size(level)].path;
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  RETRA_CHECK_MSG(file != nullptr, "cannot reopen spilled level");
  const db::FileIndex index = db::scan(file);
  RETRA_CHECK_MSG(index.ok && index.levels.size() == 1,
                  "spilled level failed to scan");
  const db::LevelReadResult read = db::read_level(file, index.levels[0]);
  std::fclose(file);
  RETRA_CHECK_MSG(read.ok, "spilled level failed to read");
  const std::vector<db::Value> values = read.level.expand();
  fn(std::span<const db::Value>(values));
}

StoreStats FileLevelStore::stats() const {
  support::MutexLock lock(mutex_);
  StoreStats stats = stats_;
  stats.queue_spilled_records = queue_spilled();
  return stats;
}

std::unique_ptr<LevelStore> make_level_store(const StoreConfig& config,
                                             int rank) {
  if (!config.out_of_core()) return std::make_unique<MemoryLevelStore>();
  return std::make_unique<FileLevelStore>(config, rank);
}

// ------------------------------------------------------------------ SpillQueue

SpillQueue::~SpillQueue() {
  if (run_ != nullptr) {
    std::fclose(run_);
    std::remove((use_b_ ? path_b_ : path_a_).c_str());
  }
}

void SpillQueue::enable(const std::string& path_base,
                        std::uint64_t mem_entries, LevelStore* store) {
  RETRA_CHECK_MSG(mem_entries > 0, "queue budget must hold at least 1 entry");
  path_a_ = path_base + ".a.run";
  path_b_ = path_base + ".b.run";
  mem_entries_ = mem_entries;
  store_ = store;
}

void SpillQueue::spill_tail() {
  if (run_ == nullptr) {
    const std::string& path = use_b_ ? path_b_ : path_a_;
    run_ = std::fopen(path.c_str(), "wb+");
    RETRA_CHECK_MSG(run_ != nullptr, "cannot open drain-queue run file");
  }
  const std::size_t count = tail_.size();
  RETRA_CHECK_MSG(
      std::fwrite(tail_.data(), sizeof(std::uint64_t), count, run_) == count,
      "short write to drain-queue run file");
  run_records_ += count;
  if (store_ != nullptr) store_->note_queue_spill(count);
  tail_.clear();
}

void SpillQueue::begin_replay(std::FILE* run) {
  RETRA_CHECK_MSG(std::fseek(run, 0, SEEK_SET) == 0,
                  "cannot rewind drain-queue run file");
}

void SpillQueue::read_segment(std::FILE* run, std::vector<std::uint64_t>& out,
                              std::uint64_t count) {
  out.resize(support::to_size(count));
  RETRA_CHECK_MSG(std::fread(out.data(), sizeof(std::uint64_t),
                             out.size(), run) == out.size(),
                  "short read from drain-queue run file");
}

void SpillQueue::end_replay(std::FILE* run, const std::string& path) {
  std::fclose(run);
  std::remove(path.c_str());
}

}  // namespace retra::para

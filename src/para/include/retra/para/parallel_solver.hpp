// Top-level parallel database construction.
//
// build_parallel() is the distributed counterpart of ra::build_database():
// it solves levels bottom-up across P ranks, keeping every solved level
// partitioned (or replicated) and collecting per-level run statistics —
// rounds, record and message counts, communication volume, per-rank work —
// that the paper-style tables are printed from.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "retra/msg/fault_comm.hpp"
#include "retra/msg/reliable_comm.hpp"
#include "retra/msg/thread_comm.hpp"
#include "retra/obs/metrics.hpp"
#include "retra/para/checkpoint.hpp"
#include "retra/para/dist_db.hpp"
#include "retra/para/drivers.hpp"
#include "retra/para/rank_engine.hpp"
#include "retra/para/shard_exchange.hpp"
#include "retra/support/log.hpp"
#include "retra/support/numeric.hpp"
#include "retra/support/timer.hpp"

namespace retra::para {

struct ParallelConfig {
  int ranks = 4;
  PartitionScheme scheme = PartitionScheme::kCyclic;
  std::uint64_t block_size = 1024;  // block-cyclic block width
  /// Combining buffer size in bytes; 1 disables combining.
  std::size_t combine_bytes = 4096;
  /// Replicate solved levels on every rank instead of partitioning them.
  bool replicate_lower = false;
  /// Execute ranks on real OS threads (otherwise deterministic
  /// round-robin in the calling thread).
  bool use_threads = false;
  /// Worker threads inside each rank for the engines' parallel phases
  /// (Init scan, magnitude seeding, zero-fill).  The produced database and
  /// every message/record count are bit-identical for any value; only wall
  /// clock changes.  Capped against the hardware concurrency (ranks ×
  /// threads must not silently oversubscribe) unless `oversubscribe`.
  int threads_per_rank = 1;
  /// Per-phase overrides of threads_per_rank: the scan-side sweeps (Init
  /// scan, seeding, zero-fill) and the drain waves saturate at different
  /// widths, so each can run its own T.  0 inherits threads_per_rank.
  /// Bit-identity holds across every combination, same as above.
  int threads_scan = 0;
  int threads_drain = 0;
  /// Skip the hardware-concurrency cap on threads_per_rank.  Correctness
  /// tests use this to force T > cores and T > chunk-count configurations.
  bool oversubscribe = false;
  /// With use_threads: drop the per-round barrier and run fully
  /// asynchronously (message-driven, coordinator-based termination
  /// detection) — ablation A2.
  bool async = false;
  /// When set, a checkpoint is written after every completed level and a
  /// compatible existing checkpoint is resumed from (see
  /// retra/para/checkpoint.hpp).
  std::string checkpoint_dir;
  /// When active, every endpoint is wrapped in a fault-injecting transport
  /// plus the reliability sublayer (see retra/msg/fault_comm.hpp): frames
  /// are dropped/duplicated/reordered/delayed/corrupted per the seeded
  /// plan, and a scheduled rank crash aborts the build cleanly so it can
  /// be resumed from `checkpoint_dir`.
  msg::FaultPlan fault_plan;
  /// Retry/backoff tuning of the reliability sublayer (used only when
  /// `fault_plan` is active).
  msg::ReliableConfig reliable;
  /// Level-storage backend selection: a nonzero working-set budget turns
  /// the build out-of-core (completed levels spill to store.scratch_dir
  /// in RTRADB03 form and fault back on demand).  The produced database
  /// is bit-identical either way.
  StoreConfig store;
};

/// Statistics of one level build across all ranks.
struct LevelRunInfo {
  int level = 0;
  std::uint64_t size = 0;
  std::uint64_t rounds = 0;
  double build_seconds = 0.0;            // host wall time of the level build
  EngineStats total;                     // summed over ranks
  std::vector<EngineStats> per_rank;     // for load-balance analysis
  msg::WorkMeter work_total;             // summed abstract work
  std::vector<msg::WorkMeter> work_per_rank;
  std::vector<std::uint64_t> working_bytes;  // per-rank build working set
  /// Level-store activity while building this level: counters are summed
  /// over ranks, the residency gauges report the busiest rank (what the
  /// per-rank working-set budget is compared against).  All zeros except
  /// residency for an in-memory build.
  StoreStats store_total;
  std::vector<StoreStats> store_per_rank;
  /// Faults injected / reliability-protocol work while building this
  /// level, summed over ranks.  All zeros in a fault-free run.
  msg::FaultStats faults;
  msg::ReliableStats reliability;
};

/// Sums the per-rank engine stats and work meters into the level totals
/// and publishes the level to the obs registry.  The single place these
/// numbers are produced: build_parallel, build_parallel_simulated, and
/// through them every bench table and BENCH_*.json artifact read the same
/// counters (see docs/METRICS.md).
inline void finalize_level_info(LevelRunInfo& info) {
  for (const EngineStats& stats : info.per_rank) info.total += stats;
  for (const msg::WorkMeter& meter : info.work_per_rank) {
    info.work_total += meter;
  }
  for (const StoreStats& stats : info.store_per_rank) {
    info.store_total += stats;
  }
  RETRA_OBS_ADD(obs::Id::kEngineUpdatesLocal, info.total.updates_local);
  RETRA_OBS_ADD(obs::Id::kEngineUpdatesRemote, info.total.updates_remote);
  RETRA_OBS_ADD(obs::Id::kEngineLookupsLocal, info.total.lookups_local);
  RETRA_OBS_ADD(obs::Id::kEngineLookupsRemote, info.total.lookups_remote);
  RETRA_OBS_ADD(obs::Id::kEngineRepliesSent, info.total.replies_sent);
  RETRA_OBS_ADD(obs::Id::kEngineAssignments, info.total.assignments);
  RETRA_OBS_ADD(obs::Id::kEngineZeroFilled, info.total.zero_filled);
  RETRA_OBS_ADD(obs::Id::kEngineMessagesSent, info.total.messages_sent);
  RETRA_OBS_ADD(obs::Id::kEnginePayloadBytes, info.total.payload_bytes);
  // Store activity is published here in bulk, from the per-level deltas:
  // the file backend itself makes no obs calls, so fault/evict ordering
  // under T > 1 can never leak into the published counters.
  RETRA_OBS_ADD(obs::Id::kEngineStoreLevelsSpilled,
                info.store_total.levels_spilled);
  RETRA_OBS_ADD(obs::Id::kEngineStoreSpillBytes, info.store_total.spill_bytes);
  RETRA_OBS_ADD(obs::Id::kEngineStoreFaults, info.store_total.faults);
  RETRA_OBS_ADD(obs::Id::kEngineStoreFaultBytes, info.store_total.fault_bytes);
  RETRA_OBS_ADD(obs::Id::kEngineStoreEvictions, info.store_total.evictions);
  RETRA_OBS_ADD(obs::Id::kEngineStoreQueueSpilledRecords,
                info.store_total.queue_spilled_records);
  RETRA_OBS_SET(obs::Id::kEngineStoreResidentBytes,
                info.store_total.resident_bytes);
  RETRA_OBS_SET(obs::Id::kEngineStorePeakResidentBytes,
                info.store_total.peak_resident_bytes);
  RETRA_OBS_INC(obs::Id::kDriverLevelsBuilt);
  RETRA_OBS_ADD(obs::Id::kDriverPositions, info.size);
  RETRA_OBS_ADD(obs::Id::kDriverRounds, info.rounds);
  RETRA_OBS_TIME_NS(obs::Id::kDriverLevelSeconds,
                    static_cast<std::uint64_t>(info.build_seconds * 1e9));
}

struct ParallelResult {
  std::unique_ptr<DistributedDatabase> database;
  std::vector<LevelRunInfo> levels;
  /// A scheduled rank crash aborted the build while this level was being
  /// built (-1: the build ran to completion).  Levels before it are
  /// checkpointed (when checkpoint_dir is set) and a follow-up invocation
  /// resumes from them.
  int aborted_level = -1;
  int crashed_rank = -1;

  bool completed() const { return aborted_level < 0; }

  /// Total combined messages / payload across all levels.
  std::uint64_t total_messages() const {
    std::uint64_t sum = 0;
    for (const auto& info : levels) sum += info.total.messages_sent;
    return sum;
  }
  std::uint64_t total_payload_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& info : levels) sum += info.total.payload_bytes;
    return sum;
  }
};

template <typename Family>
ParallelResult build_parallel(const Family& family, int max_level,
                              const ParallelConfig& config) {
  const std::size_t nranks = support::to_size(config.ranks);
  RETRA_OBS_SET(obs::Id::kDriverRanks,
                static_cast<std::uint64_t>(config.ranks));
  ParallelResult result;
  int first_level = 0;
  if (!config.checkpoint_dir.empty()) {
    CheckpointLoad loaded = checkpoint_load(config.checkpoint_dir,
                                            config.store);
    if (loaded.ok &&
        checkpoint_compatible(loaded.meta, config.ranks, config.scheme,
                              config.block_size, config.replicate_lower)) {
      result.database = std::move(loaded.database);
      first_level = loaded.meta.levels;
      support::log_info("resuming from checkpoint: levels 0..%d done",
                        first_level - 1);
    } else if (loaded.ok) {
      support::log_info(
          "checkpoint in %s has a different configuration; starting fresh",
          config.checkpoint_dir.c_str());
    } else if (loaded.error.rfind("no manifest", 0) != 0) {
      // An absent checkpoint is the normal first run; anything else (a
      // corrupted or truncated one) must be diagnosed, never silently
      // discarded.
      support::log_info("checkpoint in %s is unusable (%s); starting fresh",
                        config.checkpoint_dir.c_str(),
                        loaded.error.c_str());
    }
  }
  if (!result.database) {
    result.database = std::make_unique<DistributedDatabase>(
        config.scheme, config.block_size, config.ranks,
        config.replicate_lower, config.store);
  }
  DistributedDatabase& ddb = *result.database;
  msg::ThreadWorld world(config.ranks);
  const int threads_per_rank =
      effective_threads_per_rank(config.threads_per_rank, config.ranks,
                                 config.use_threads, config.oversubscribe);
  const int threads_scan = effective_phase_threads(
      config.threads_scan, threads_per_rank, config.ranks, config.use_threads,
      config.oversubscribe);
  const int threads_drain = effective_phase_threads(
      config.threads_drain, threads_per_rank, config.ranks,
      config.use_threads, config.oversubscribe);

  // With an active fault plan the engines run on FaultyComm + ReliableComm
  // stacks.  The stacks live for the whole build (not per level) so that
  // late acknowledgements and retransmissions crossing a level boundary
  // stay consistent with the sequence-number state.
  std::unique_ptr<msg::FaultWorld> faults;
  if (config.fault_plan.active()) {
    faults = std::make_unique<msg::FaultWorld>(world, config.fault_plan,
                                               config.reliable);
  }
  auto endpoint = [&](int rank) -> msg::Comm& {
    return faults ? faults->endpoint(rank) : world.endpoint(rank);
  };

  for (int level = first_level; level <= max_level; ++level) {
    decltype(auto) game = family.level(level);
    using Game = std::remove_cvref_t<decltype(game)>;
    const Partition partition = ddb.make_partition(game.size());
    if (faults) faults->set_level(level);

    EngineConfig engine_config;
    engine_config.combine_bytes = config.combine_bytes;
    engine_config.threads_per_rank = threads_per_rank;
    engine_config.threads_scan = threads_scan;
    engine_config.threads_drain = threads_drain;

    std::vector<std::unique_ptr<RankEngine<Game>>> engines;
    engines.reserve(nranks);
    for (int rank = 0; rank < config.ranks; ++rank) {
      engines.push_back(std::make_unique<RankEngine<Game>>(
          game, partition, endpoint(rank), ddb, engine_config));
    }

    // Meters and fault counters accumulate across levels on the shared
    // endpoints; keep pre-level snapshots so the level's work is reported
    // as a delta.
    std::vector<msg::WorkMeter> meters_before;
    meters_before.reserve(nranks);
    for (int rank = 0; rank < config.ranks; ++rank) {
      meters_before.push_back(endpoint(rank).meter());
    }
    std::vector<msg::FaultStats> faults_before(nranks);
    std::vector<msg::ReliableStats> reliability_before(nranks);
    if (faults) {
      for (int rank = 0; rank < config.ranks; ++rank) {
        const std::size_t i = support::to_size(rank);
        faults_before[i] = faults->faulty(rank).fault_stats();
        reliability_before[i] = faults->reliable(rank).reliable_stats();
      }
    }
    std::vector<StoreStats> store_before;
    store_before.reserve(nranks);
    for (int rank = 0; rank < config.ranks; ++rank) {
      store_before.push_back(ddb.store(rank).stats());
    }

    LevelRunInfo info;
    info.level = level;
    info.size = game.size();
    const support::Timer level_timer;
    try {
      info.rounds = config.use_threads
                        ? (config.async ? run_async_threads(engines)
                                        : run_bsp_threads(engines))
                        : run_bsp_sequential(engines);
    } catch (const msg::RankCrash& crash) {
      result.aborted_level = level;
      result.crashed_rank = crash.rank;
      if (config.checkpoint_dir.empty()) {
        support::log_info("rank %d crashed while building level %d; aborting",
                          crash.rank, level);
      } else {
        support::log_info(
            "rank %d crashed while building level %d; aborting (levels "
            "0..%d are checkpointed)",
            crash.rank, level, level - 1);
      }
      return result;
    }

    for (std::size_t i = 0; i < nranks; ++i) {
      info.per_rank.push_back(engines[i]->stats());
      info.working_bytes.push_back(engines[i]->working_bytes());
    }
    engines.clear();  // the solved shards stay behind as the stores' builds
    for (int rank = 0; rank < config.ranks; ++rank) {
      msg::WorkMeter delta = endpoint(rank).meter();
      for (std::size_t k = 0; k < msg::kWorkKinds; ++k) {
        delta.counts[k] -= meters_before[support::to_size(rank)].counts[k];
      }
      info.work_per_rank.push_back(delta);
    }

    if (config.replicate_lower) {
      // Broadcast every shard so each rank holds a private full copy; the
      // exchange reads straight out of the stores' still-active builds.
      std::vector<std::vector<db::Value>> full(nranks);
      std::vector<std::unique_ptr<ShardExchange>> exchange;
      exchange.reserve(nranks);
      for (int rank = 0; rank < config.ranks; ++rank) {
        const std::size_t i = support::to_size(rank);
        exchange.push_back(std::make_unique<ShardExchange>(
            partition, endpoint(rank), ddb.store(rank).build().values,
            full[i], config.combine_bytes));
      }
      try {
        info.rounds += config.use_threads
                           ? (config.async ? run_async_threads(exchange)
                                           : run_bsp_threads(exchange))
                           : run_bsp_sequential(exchange);
      } catch (const msg::RankCrash& crash) {
        result.aborted_level = level;
        result.crashed_rank = crash.rank;
        support::log_info(
            "rank %d crashed while replicating level %d; aborting",
            crash.rank, level);
        return result;
      }
      ddb.push_level_full(level, std::move(full));
    } else {
      ddb.seal_level_from_builds(level, game.size());
    }
    for (int rank = 0; rank < config.ranks; ++rank) {
      info.store_per_rank.push_back(ddb.store(rank).stats() -
                                    store_before[support::to_size(rank)]);
    }
    if (faults) {
      for (int rank = 0; rank < config.ranks; ++rank) {
        const std::size_t i = support::to_size(rank);
        info.faults += faults->faulty(rank).fault_stats() - faults_before[i];
        info.reliability +=
            faults->reliable(rank).reliable_stats() - reliability_before[i];
      }
    }
    if (!config.checkpoint_dir.empty()) {
      checkpoint_save_level(ddb, level, config.checkpoint_dir,
                            config.combine_bytes);
    }
    info.build_seconds = level_timer.seconds();
    finalize_level_info(info);
    result.levels.push_back(std::move(info));
  }
  return result;
}

}  // namespace retra::para

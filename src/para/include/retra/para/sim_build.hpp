// Simulated parallel database construction.
//
// Same orchestration as build_parallel(), but the ranks run under the
// discrete-event cluster (sim::run_bsp_simulated), so the result carries
// virtual 1995-cluster timings alongside the usual statistics.  The
// values produced are still real — tests compare them against the
// sequential solver — only the clock is modelled.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "retra/para/dist_db.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/para/rank_engine.hpp"
#include "retra/para/shard_exchange.hpp"
#include "retra/sim/cluster_model.hpp"
#include "retra/sim/projection.hpp"
#include "retra/sim/sim_driver.hpp"
#include "retra/sim/sim_world.hpp"

namespace retra::para {

struct SimBuildResult {
  std::unique_ptr<DistributedDatabase> database;
  std::vector<LevelRunInfo> levels;
  std::vector<sim::SimRunResult> timings;  // one per level

  double total_time_s() const {
    double total = 0;
    for (const auto& t : timings) total += t.time_s;
    return total;
  }
};

/// Extracts the per-position workload densities of a finished level run
/// (the input of paper-scale projections).
inline sim::LevelProfile profile_of(const LevelRunInfo& info) {
  sim::LevelProfile profile;
  profile.positions = info.size;
  const double positions = static_cast<double>(info.size);
  if (info.size == 0) return profile;
  const auto meter_count = [&](msg::WorkKind kind) {
    return static_cast<double>(info.work_total.count(kind));
  };
  profile.exits_pp = meter_count(msg::WorkKind::kExitOption) / positions;
  profile.edges_pp = meter_count(msg::WorkKind::kLevelEdge) / positions;
  profile.preds_pp = meter_count(msg::WorkKind::kPredEdge) / positions;
  profile.updates_pp = meter_count(msg::WorkKind::kUpdateApply) / positions;
  profile.sweeps_pp = meter_count(msg::WorkKind::kSweepPosition) / positions;
  profile.assigns_pp =
      static_cast<double>(info.total.assignments) / positions;
  profile.lookups_pp =
      static_cast<double>(info.total.lookups_local +
                          info.total.lookups_remote) /
      positions;
  profile.rounds = info.rounds;
  return profile;
}

template <typename Family>
SimBuildResult build_parallel_simulated(const Family& family, int max_level,
                                        const ParallelConfig& config,
                                        const sim::ClusterModel& model,
                                        sim::TraceSink* trace = nullptr) {
  const std::size_t nranks = support::to_size(config.ranks);
  RETRA_OBS_SET(obs::Id::kDriverRanks,
                static_cast<std::uint64_t>(config.ranks));
  SimBuildResult result;
  result.database = std::make_unique<DistributedDatabase>(
      config.scheme, config.block_size, config.ranks,
      config.replicate_lower, config.store);
  DistributedDatabase& ddb = *result.database;
  sim::SimWorld world(config.ranks);

  for (int level = 0; level <= max_level; ++level) {
    decltype(auto) game = family.level(level);
    using Game = std::remove_cvref_t<decltype(game)>;
    const Partition partition = ddb.make_partition(game.size());

    EngineConfig engine_config;
    engine_config.combine_bytes = config.combine_bytes;
    // The simulated cluster executes its ranks one at a time on the host,
    // so only that single rank's pool is ever active.
    engine_config.threads_per_rank = effective_threads_per_rank(
        config.threads_per_rank, config.ranks, /*use_threads=*/false,
        config.oversubscribe);
    engine_config.threads_scan = effective_phase_threads(
        config.threads_scan, engine_config.threads_per_rank, config.ranks,
        /*use_threads=*/false, config.oversubscribe);
    engine_config.threads_drain = effective_phase_threads(
        config.threads_drain, engine_config.threads_per_rank, config.ranks,
        /*use_threads=*/false, config.oversubscribe);

    std::vector<std::unique_ptr<RankEngine<Game>>> engines;
    engines.reserve(nranks);
    for (int rank = 0; rank < config.ranks; ++rank) {
      engines.push_back(std::make_unique<RankEngine<Game>>(
          game, partition, world.endpoint(rank), ddb, engine_config));
    }

    std::vector<msg::WorkMeter> meters_before;
    meters_before.reserve(nranks);
    for (int rank = 0; rank < config.ranks; ++rank) {
      meters_before.push_back(world.endpoint(rank).meter());
    }
    std::vector<StoreStats> store_before;
    store_before.reserve(nranks);
    for (int rank = 0; rank < config.ranks; ++rank) {
      store_before.push_back(ddb.store(rank).stats());
    }

    sim::SimRunResult timing =
        sim::run_bsp_simulated(engines, world, model, trace);

    LevelRunInfo info;
    info.level = level;
    info.size = game.size();
    info.rounds = timing.rounds;

    for (std::size_t i = 0; i < nranks; ++i) {
      info.per_rank.push_back(engines[i]->stats());
      info.working_bytes.push_back(engines[i]->working_bytes());
    }
    engines.clear();  // the solved shards stay behind as the stores' builds

    if (config.replicate_lower) {
      std::vector<std::vector<db::Value>> full(nranks);
      std::vector<std::unique_ptr<ShardExchange>> exchange;
      exchange.reserve(nranks);
      for (int rank = 0; rank < config.ranks; ++rank) {
        const std::size_t i = support::to_size(rank);
        exchange.push_back(std::make_unique<ShardExchange>(
            partition, world.endpoint(rank), ddb.store(rank).build().values,
            full[i], config.combine_bytes));
      }
      timing.accumulate(sim::run_bsp_simulated(exchange, world, model));
      ddb.push_level_full(level, std::move(full));
    } else {
      ddb.seal_level_from_builds(level, game.size());
    }

    for (int rank = 0; rank < config.ranks; ++rank) {
      msg::WorkMeter delta = world.endpoint(rank).meter();
      for (std::size_t k = 0; k < msg::kWorkKinds; ++k) {
        delta.counts[k] -= meters_before[support::to_size(rank)].counts[k];
      }
      info.work_per_rank.push_back(delta);
    }
    // Price the level's spill/fault traffic on the model's disks: ranks
    // overlap with each other but not with their own I/O, so the level
    // stretches by the busiest rank's disk time (BSP supersteps already
    // serialise compute against the barrier).
    double io_max_s = 0.0;
    for (int rank = 0; rank < config.ranks; ++rank) {
      const std::size_t i = support::to_size(rank);
      const StoreStats delta = ddb.store(rank).stats() - store_before[i];
      info.store_per_rank.push_back(delta);
      const double io_s = model.machine.io_seconds(
          delta.faults + delta.levels_spilled,
          delta.fault_bytes + delta.spill_bytes);
      if (i < timing.per_rank.size()) timing.per_rank[i].compute_s += io_s;
      if (io_s > io_max_s) io_max_s = io_s;
    }
    timing.time_s += io_max_s;
    info.build_seconds = timing.time_s;  // virtual cluster time
    finalize_level_info(info);

    result.levels.push_back(std::move(info));
    result.timings.push_back(std::move(timing));
  }
  return result;
}

}  // namespace retra::para

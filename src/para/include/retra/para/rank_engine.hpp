// The per-rank distributed retrograde-analysis engine.
//
// One RankEngine builds one rank's shard of the level being solved and
// talks to the other ranks exclusively through its msg::Comm endpoint.
// The shard's storage is owned by the rank's para::LevelStore (the
// engine's value/best/cnt arrays are the store's active BuildArrays, and
// lower-level reads go through the store as well), so the same engine
// code runs fully in-RAM or out-of-core depending on the store backend
// the DistributedDatabase was configured with.  The
// engine is written as bulk-synchronous supersteps (see
// retra/para/drivers.hpp) so the identical code runs under real threads
// and under the discrete-event cluster simulator.
//
// Life of a level on P ranks:
//
//   Init        every rank scans its local positions once: counts
//               same-level successor edges (cnt), evaluates terminal exits
//               and locally-resolvable capture exits into `best`, and
//               ships a combined Lookup batch to the owners of remote
//               lower-level positions.  Owners answer with combined Reply
//               batches; replies fold into `best`.  The phase ends at
//               global quiescence (nothing in flight, nothing to do).
//   Magnitude u every rank seeds positions with best == u (value +u) and
//   = bound..1  drains its queue: finalising a position generates its
//               same-level predecessors (unmoves); local predecessors are
//               updated in place, remote ones become combined Update
//               records.  Updates decrement cnt / raise best and may
//               cascade.  Each magnitude ends at global quiescence; the
//               first one also finalises positions whose cnt was 0 after
//               initialisation.
//   Zero-fill   surviving positions can cycle forever: value 0.
//
// Two-level parallelism: with worker threads the embarrassingly parallel
// phases — the Init scan, each magnitude's seeding sweep, and the
// zero-fill — split the rank's local range into one contiguous chunk per
// thread (exec::chunk_range) and run on a persistent exec::WorkerPool;
// the scan-side phases and the drain waves can use different widths
// (EngineConfig::threads_scan / threads_drain) since they saturate
// differently.  Chunks write only their own slice of values_/best_/cnt_;
// everything with global order — outgoing records, queue pushes, stats,
// work-meter charges — is staged per chunk (records in lock-free
// per-destination CombinerBanks) and merged *in chunk order* after the
// join.  Since the merged sequence equals, per destination, what a
// single-threaded sweep would have produced, the database bits, the
// message framing, and every published count are independent of every
// thread-count choice.
//
// The seeding and zero-fill sweeps themselves run on the exec::simd
// kernels — data-parallel compare/select over the packed std::int16_t
// value words with a scalar tail — whose every backend returns the same
// ascending match sequence, so vectorisation is invisible to all of the
// identities above.
//
// The queue drain parallelises the same way in *waves*: the queue is
// snapshotted, predecessor generation (the most expensive kernel) runs
// chunk-parallel over the snapshot with updates staged per chunk, and the
// staged updates are applied serially in chunk order — newly finalised
// positions form the next wave.  Every queued position is popped exactly
// once, so the update multiset — and with it the final values and all
// counters — is the same as a LIFO drain's, and the chunk-order merge
// makes the record stream identical for every T.
//
// This mirrors the sequential sweep solver exactly; tests require the
// gathered distributed database to be bit-identical to the sequential one.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/exec/simd.hpp"
#include "retra/exec/worker_pool.hpp"
#include "retra/game/level_game.hpp"
#include "retra/msg/combiner.hpp"
#include "retra/msg/comm.hpp"
#include "retra/obs/metrics.hpp"
#include "retra/para/dist_db.hpp"
#include "retra/para/partition.hpp"
#include "retra/para/records.hpp"
#include "retra/ra/sweep_solver.hpp"
#include "retra/support/access_check.hpp"
#include "retra/support/check.hpp"

namespace retra::para {

/// What one superstep did; the driver reduces these across ranks to detect
/// phase quiescence.
struct StepReport {
  std::uint64_t records_sent = 0;
  std::uint64_t records_received = 0;
  std::uint64_t work = 0;  // local state transitions this step
  bool ready = false;      // rank finished its local phase obligations

  /// The identity of the += reduction.  A default-constructed report has
  /// ready = false (a rank that did not report is not ready), which makes
  /// it an absorbing element, not an identity — folding into it yields
  /// ready == false forever.  Reductions must start from this seed.
  static StepReport reduction_identity() {
    StepReport identity;
    identity.ready = true;
    return identity;
  }

  StepReport& operator+=(const StepReport& other) {
    records_sent += other.records_sent;
    records_received += other.records_received;
    work += other.work;
    ready = ready && other.ready;
    return *this;
  }
};

/// Engine tuning knobs.
struct EngineConfig {
  /// Combining buffer size in bytes; 1 disables combining (one record per
  /// message — the paper's naive baseline).
  std::size_t combine_bytes = 4096;
  /// Worker threads for the intra-rank parallel phases; 1 runs everything
  /// on the rank's own thread.  Results are bit-identical for every value.
  int threads_per_rank = 1;
  /// Per-phase overrides: the scan-side sweeps (Init scan, magnitude
  /// seeding, zero-fill) and the drain waves saturate at different
  /// widths, so their chunk counts are tunable independently.  0 inherits
  /// threads_per_rank; the pool is sized for the wider phase.  The
  /// produced database and every published count are bit-identical for
  /// every combination.
  int threads_scan = 0;
  int threads_drain = 0;
};

/// Per-engine cumulative statistics for the communication tables.
struct EngineStats {
  std::uint64_t updates_remote = 0;  // update records sent to other ranks
  std::uint64_t updates_local = 0;   // applied in place, no message
  std::uint64_t lookups_remote = 0;
  std::uint64_t lookups_local = 0;   // exits resolved against local shards
  std::uint64_t replies_sent = 0;
  std::uint64_t assignments = 0;
  std::uint64_t zero_filled = 0;
  std::uint64_t messages_sent = 0;  // combined messages (all tags)
  std::uint64_t payload_bytes = 0;

  EngineStats& operator+=(const EngineStats& other) {
    updates_remote += other.updates_remote;
    updates_local += other.updates_local;
    lookups_remote += other.lookups_remote;
    lookups_local += other.lookups_local;
    replies_sent += other.replies_sent;
    assignments += other.assignments;
    zero_filled += other.zero_filled;
    messages_sent += other.messages_sent;
    payload_bytes += other.payload_bytes;
    return *this;
  }

  /// Records that crossed rank boundaries — the numerator of the paper's
  /// combining factor (T3).
  std::uint64_t remote_records() const {
    return updates_remote + lookups_remote + replies_sent;
  }

  /// Achieved combining factor (records per combined message, T3/F2).
  double records_per_message() const {
    return messages_sent ? static_cast<double>(remote_records()) /
                               static_cast<double>(messages_sent)
                         : 0.0;
  }
};

template <typename Game>
class RankEngine {
 public:
  RankEngine(const Game& game, const Partition& partition, msg::Comm& comm,
             DistributedDatabase& lower, const EngineConfig& config)
      : game_(game),
        partition_(partition),
        comm_(comm),
        lower_(lower),
        bound_(game.max_value()),
        threads_scan_(phase_threads(config.threads_scan, config)),
        threads_drain_(phase_threads(config.threads_drain, config)),
        threads_(threads_scan_ > threads_drain_ ? threads_scan_
                                                : threads_drain_),
        store_(lower.store(comm.rank())),
        build_(store_.begin_build(partition.local_size(comm.rank()))),
        values_(build_.values),
        best_(build_.best),
        cnt_(build_.cnt),
        lookup_combiner_(comm, kTagLookup, config.combine_bytes),
        reply_combiner_(comm, kTagReply, config.combine_bytes),
        update_combiner_(comm, kTagUpdate, config.combine_bytes) {
    const std::uint64_t local = partition_.local_size(comm_.rank());
    best_.assign(local, ra::kNoOption);
    const StoreConfig& store_config = lower_.store_config();
    if (store_config.out_of_core()) {
      queue_.enable(store_config.scratch_dir + "/rank" +
                        std::to_string(comm_.rank()) + "_queue",
                    store_config.queue_mem_entries, &store_);
    }
    if (threads_ > 1) {
      pool_ = std::make_unique<exec::WorkerPool>(
          static_cast<unsigned>(threads_));
    }
    RETRA_OBS_SET(obs::Id::kEngineScanThreads,
                  static_cast<std::uint64_t>(threads_scan_));
    RETRA_OBS_SET(obs::Id::kEngineDrainThreads,
                  static_cast<std::uint64_t>(threads_drain_));
    RETRA_OBS_SET(obs::Id::kEngineKernelLanes,
                  static_cast<std::uint64_t>(exec::simd::active_lanes()));
  }

  /// One bulk-synchronous superstep; see the file comment for the phase
  /// structure.  Drains the inbox, performs the phase's local work,
  /// flushes all combining buffers.
  StepReport superstep() {
    StepReport step;
    drain_inbox(step);
    switch (phase_) {
      case Phase::kInit:
        if (!scan_done_) {
          scan_local(step);
          scan_done_ = true;
        }
        step.ready = true;
        break;
      case Phase::kMagnitude:
        if (!seeded_) {
          seed_magnitude(step);
          seeded_ = true;
        }
        process_queue(step);
        step.ready = true;
        break;
      case Phase::kZeroFill:
        if (!zero_filled_) {
          zero_fill(step);
          zero_filled_ = true;
        }
        step.ready = true;
        break;
      case Phase::kDone:
        step.ready = true;
        break;
    }
    flush_combiners();
    return step;
  }

  /// Global phase transition; the driver calls it on every engine when the
  /// current phase is quiescent on all ranks.
  void advance() {
    switch (phase_) {
      case Phase::kInit:
        magnitude_ = bound_;
        finalize_init_ = true;
        phase_ = magnitude_ >= 1 ? Phase::kMagnitude : Phase::kZeroFill;
        seeded_ = false;
        break;
      case Phase::kMagnitude:
        RETRA_CHECK_MSG(queue_.empty(), "advance with unprocessed queue");
        --magnitude_;
        seeded_ = false;
        if (magnitude_ < 1) phase_ = Phase::kZeroFill;
        break;
      case Phase::kZeroFill:
        phase_ = Phase::kDone;
        break;
      case Phase::kDone:
        break;
    }
  }

  bool done() const { return phase_ == Phase::kDone; }

  const EngineStats& stats() const { return stats_; }

  /// Value bytes this rank holds for the level under construction
  /// (values + best + cnt): the T4 working-set accounting.
  std::uint64_t working_bytes() const {
    return values_.size() * (sizeof(db::Value) * 2 + sizeof(std::uint16_t));
  }

 private:
  enum class Phase { kInit, kMagnitude, kZeroFill, kDone };

  /// Cacheline distance the drain wave and the apply merge prefetch
  /// ahead: the wave's values_ reads and the applies' values_/cnt_ reads
  /// are data-dependent random accesses the hardware prefetcher cannot
  /// predict, while the upcoming *indices* sit in sequential arrays it
  /// can.  Eight iterations ≈ the latency of one predecessor generation.
  static constexpr std::uint64_t kPrefetchAhead = 8;

  static int phase_threads(int requested, const EngineConfig& config) {
    const int t = requested > 0 ? requested : config.threads_per_rank;
    return t > 1 ? t : 1;
  }

  int rank() const { return comm_.rank(); }

  // ------------------------------------------------------------------
  // Chunked fork-join execution of the embarrassingly parallel phases.

  /// A local predecessor update generated by a drain chunk, applied on the
  /// rank's own thread during the merge.
  struct LocalUpdate {
    std::uint64_t local;
    db::Value contribution;
  };

  /// Everything a chunk produces besides its own slice of the value
  /// arrays.  Merged into the engine strictly in chunk order so the global
  /// sequence of records, queue pushes, stats, and meter charges matches
  /// the single-threaded sweep bit for bit.
  struct ChunkOut {
    EngineStats stats;
    msg::WorkMeter meter;
    /// Lock-free per-destination staging (scan: lookups; drain: update
    /// records); drained destination-ascending after the join.
    msg::CombinerBank staged;
    std::vector<std::uint64_t> seeded;  // locals assigned, ascending
    std::vector<LocalUpdate> applies;   // drain: local updates, edge order
    std::uint64_t work = 0;
  };

  /// Runs body(range, out) for every one of `chunks` chunks of
  /// [0, total) — the scan-side phases use threads_scan_ chunks, the
  /// drain waves threads_drain_.  The pool is sized for the wider phase;
  /// surplus slots return immediately.  With one chunk the rank's own
  /// thread runs it inline through the same code path.  Each chunk's
  /// staging bank is reset here for `record_size`-byte records.
  template <typename Body>
  void run_chunked(std::uint64_t total, int phase_chunks,
                   std::size_t record_size, std::vector<ChunkOut>& outs,
                   Body&& body) {
    const auto chunks = static_cast<unsigned>(phase_chunks);
    outs.clear();
    outs.resize(chunks);
    for (ChunkOut& out : outs) out.staged.reset(comm_.size(), record_size);
    auto run_one = [&](unsigned c) {
      if (c >= chunks) return;  // pool slot beyond this phase's width
      // Worker threads act on behalf of this rank and own exactly their
      // chunk's local slice; both tags make the access checker enforce it.
      const support::ScopedActor actor(rank());
      const exec::ChunkRange range = exec::chunk_range(total, chunks, c);
      const support::ScopedChunk chunk(range.begin, range.end);
      body(range, outs[c]);
    };
    if (pool_ && chunks > 1) {
      pool_->run(run_one);
    } else {
      run_one(0);
    }
    RETRA_OBS_ADD(obs::Id::kEngineScanChunks, chunks);
  }

  /// Deterministic merge — chunk order, never completion order.  Staged
  /// records drain into `combiner` (lookups for the scan, updates for the
  /// drain); staged local updates are applied here, on the rank's thread.
  void merge_chunks(std::vector<ChunkOut>& outs, StepReport& step,
                    msg::Combiner& combiner) {
    for (ChunkOut& out : outs) {
      stats_ += out.stats;
      comm_.meter() += out.meter;
      step.work += out.work;
      step.records_sent += out.staged.records();
      // Draining per destination reproduces the T = 1 per-destination
      // record streams — and with them every flush boundary, message
      // frame, and kRecordPack charge — in one bulk append per
      // destination instead of a per-record replay (see CombinerBank).
      out.staged.replay_into(combiner);
      for (const std::uint64_t local : out.seeded) queue_.push(local);
      const std::size_t applies = out.applies.size();
      for (std::size_t i = 0; i < applies; ++i) {
        if (i + kPrefetchAhead < applies) {
          const std::uint64_t ahead = out.applies[i + kPrefetchAhead].local;
          exec::prefetch_read(values_.data() + ahead);
          exec::prefetch_read(cnt_.data() + ahead);
        }
        apply_update(out.applies[i].local, out.applies[i].contribution,
                     step);
      }
    }
  }

  // ------------------------------------------------------------------
  // Initialisation scan.

  void scan_local(StepReport& step) {
    support::check_mutable(rank(), "engine.scan_local");
    RETRA_OBS_SCOPED_TIMER(timer, obs::Id::kEngineScanSeconds);
    const std::uint64_t local_size = partition_.local_size(rank());
    std::vector<ChunkOut> outs;
    run_chunked(
        local_size, threads_scan_, LookupRecord::kWireSize, outs,
        [&](const exec::ChunkRange& range, ChunkOut& out) {
          // The cursor walks boards incrementally: to_global is monotonic
          // in `local` under every partition scheme, so successive seeks
          // are short forward hops instead of full unranks.
          auto cursor = game_.option_cursor();
          for (std::uint64_t local = range.begin; local < range.end;
               ++local) {
            support::check_chunk(local, "engine.scan_chunk");
            const idx::Index global = partition_.to_global(rank(), local);
            out.meter.charge(msg::WorkKind::kScanPosition);
            db::Value b = ra::kNoOption;
            std::uint32_t edges = 0;
            cursor.visit_options(
                global,
                [&](const game::Exit& exit) {
                  out.meter.charge(msg::WorkKind::kExitOption);
                  if (exit.is_terminal()) {
                    if (exit.reward > b) b = exit.reward;
                    return;
                  }
                  if (lower_.is_local(rank(), exit.lower_level,
                                      exit.lower_index)) {
                    ++out.stats.lookups_local;
                    const db::Value value = game::exit_value(
                        exit, [&](int level, idx::Index index) {
                          return lower_.value_local(rank(), level, index);
                        });
                    if (value > b) b = value;
                    return;
                  }
                  // Remote lower-level position: stage a combined lookup
                  // for its owner; the reply folds into best_ when it
                  // arrives.
                  ++out.stats.lookups_remote;
                  LookupRecord record;
                  record.target = exit.lower_index;
                  record.requester = global;
                  record.reward = exit.reward;
                  record.level = static_cast<std::uint8_t>(exit.lower_level);
                  record.same_mover = exit.same_mover ? 1 : 0;
                  stage(out.staged,
                        lower_.owner(exit.lower_level, exit.lower_index),
                        record);
                },
                [&](idx::Index) {
                  out.meter.charge(msg::WorkKind::kLevelEdge);
                  ++edges;
                });
            RETRA_CHECK_MSG(edges <= UINT16_MAX,
                            "successor edge count overflow");
            best_[local] = b;
            cnt_[local] = static_cast<std::uint16_t>(edges);
            ++out.work;
          }
        });
    merge_chunks(outs, step, lookup_combiner_);
    RETRA_OBS_ADD(obs::Id::kEngineScanPositions, local_size);
  }

  // ------------------------------------------------------------------
  // Message handling.

  void drain_inbox(StepReport& step) {
    msg::Message message;
    while (comm_.try_recv(message)) {
      switch (message.tag) {
        case kTagLookup:
          handle_lookups(message, step);
          break;
        case kTagReply:
          handle_replies(message, step);
          break;
        case kTagUpdate:
          handle_updates(message, step);
          break;
        default:
          RETRA_CHECK_MSG(false, "unexpected message tag");
      }
    }
  }

  void handle_lookups(const msg::Message& message, StepReport& step) {
    msg::WireReader reader(message.payload.data());
    const std::size_t count = message.payload.size() / LookupRecord::kWireSize;
    RETRA_CHECK(count * LookupRecord::kWireSize == message.payload.size());
    for (std::size_t i = 0; i < count; ++i) {
      const LookupRecord lookup = LookupRecord::decode(reader);
      comm_.meter().charge(msg::WorkKind::kRecordUnpack);
      ++step.records_received;
      const db::Value target_value =
          lower_.value_local(rank(), lookup.level, lookup.target);
      ReplyRecord reply;
      reply.requester = lookup.requester;
      reply.value = static_cast<db::Value>(
          lookup.same_mover ? lookup.reward + target_value
                            : lookup.reward - target_value);
      ++stats_.replies_sent;
      append(reply_combiner_, message.source, reply, step);
      ++step.work;
    }
  }

  void handle_replies(const msg::Message& message, StepReport& step) {
    support::check_mutable(rank(), "engine.handle_replies");
    msg::WireReader reader(message.payload.data());
    const std::size_t count = message.payload.size() / ReplyRecord::kWireSize;
    RETRA_CHECK(count * ReplyRecord::kWireSize == message.payload.size());
    for (std::size_t i = 0; i < count; ++i) {
      const ReplyRecord reply = ReplyRecord::decode(reader);
      comm_.meter().charge(msg::WorkKind::kRecordUnpack);
      ++step.records_received;
      const std::uint64_t local = partition_.to_local(reply.requester);
      RETRA_CHECK(partition_.owner(reply.requester) == rank());
      if (reply.value > best_[local]) best_[local] = reply.value;
      ++step.work;
    }
  }

  void handle_updates(const msg::Message& message, StepReport& step) {
    msg::WireReader reader(message.payload.data());
    const std::size_t count = message.payload.size() / UpdateRecord::kWireSize;
    RETRA_CHECK(count * UpdateRecord::kWireSize == message.payload.size());
    for (std::size_t i = 0; i < count; ++i) {
      const UpdateRecord update = UpdateRecord::decode(reader);
      comm_.meter().charge(msg::WorkKind::kRecordUnpack);
      ++step.records_received;
      apply_update(partition_.to_local(update.target), update.contribution,
                   step);
    }
  }

  // ------------------------------------------------------------------
  // Propagation.

  void seed_magnitude(StepReport& step) {
    support::check_mutable(rank(), "engine.seed_magnitude");
    RETRA_OBS_SCOPED_TIMER(timer, obs::Id::kEngineSeedSeconds);
    const auto mag = static_cast<db::Value>(magnitude_);
    const bool finalize_init = finalize_init_;
    std::vector<ChunkOut> outs;
    // The sweep runs on the exec::simd kernels: each tile's matching
    // positions (unknown value, seedable best/cnt) come back as ascending
    // indices, so the assignment sequence — and through the chunk-order
    // merge the queue and the record stream — is exactly the scalar
    // sweep's, for every backend.  kSweepPosition is charged in bulk per
    // chunk so the meter, too, is backend- and T-invariant.
    run_chunked(
        values_.size(), threads_scan_, LookupRecord::kWireSize, outs,
        [&](const exec::ChunkRange& range, ChunkOut& out) {
          out.meter.charge(msg::WorkKind::kSweepPosition, range.size());
          std::array<std::uint32_t, exec::simd::kSweepTile> hits;
          for (std::uint64_t base = range.begin; base < range.end;
               base += hits.size()) {
            const std::size_t n = static_cast<std::size_t>(
                std::min<std::uint64_t>(hits.size(), range.end - base));
            std::size_t found;
            if (finalize_init) {
              found = exec::simd::collect_seed_candidates(
                  values_.data() + base, db::kUnknown, cnt_.data() + base,
                  best_.data() + base, mag, n, hits.data());
            } else {
              found = exec::simd::collect_eq2(values_.data() + base,
                                              db::kUnknown,
                                              best_.data() + base, mag, n,
                                              hits.data());
            }
            for (std::size_t h = 0; h < found; ++h) {
              const std::uint64_t local = base + hits[h];
              if (finalize_init && cnt_[local] == 0) {
                // All options were exits; the position is exact already.
                RETRA_CHECK(best_[local] != ra::kNoOption);
                chunk_assign(local, best_[local], out);
                continue;
              }
              RETRA_DCHECK(best_[local] == mag);
              chunk_assign(local, mag, out);
            }
          }
        });
    // Chunks stage their assignments in ascending local order and merge in
    // chunk order, so the queue matches the sequential sweep exactly.
    merge_chunks(outs, step, lookup_combiner_);
    std::uint64_t seeds = 0;
    for (const ChunkOut& out : outs) seeds += out.seeded.size();
    RETRA_OBS_ADD(obs::Id::kEngineKernelSweepPositions, values_.size());
    RETRA_OBS_ADD(obs::Id::kEngineKernelSweepMatches, seeds);
    finalize_init_ = false;
  }

  /// assign() for the chunked seeding sweep: the value write is chunk-local
  /// (disjoint slices); the queue push and the counters are staged.
  void chunk_assign(std::uint64_t local, db::Value value, ChunkOut& out) {
    support::check_chunk(local, "engine.seed_assign");
    RETRA_DCHECK(values_[local] == db::kUnknown);
    values_[local] = value;
    out.seeded.push_back(local);
    ++out.stats.assignments;
    ++out.work;
    out.meter.charge(msg::WorkKind::kAssign);
  }

  void assign(std::uint64_t local, db::Value value, StepReport& step) {
    support::check_mutable(rank(), "engine.assign");
    RETRA_DCHECK(values_[local] == db::kUnknown);
    values_[local] = value;
    queue_.push(local);
    ++stats_.assignments;
    ++step.work;
    comm_.meter().charge(msg::WorkKind::kAssign);
  }

  void apply_update(std::uint64_t local, db::Value contribution,
                    StepReport& step) {
    support::check_mutable(rank(), "engine.apply_update");
    RETRA_CHECK_MSG(phase_ == Phase::kMagnitude,
                    "update outside a magnitude phase");
    comm_.meter().charge(msg::WorkKind::kUpdateApply);
    if (values_[local] != db::kUnknown) return;
    ++step.work;
    RETRA_CHECK_MSG(cnt_[local] > 0, "more contributions than counted edges");
    --cnt_[local];
    if (contribution > best_[local]) best_[local] = contribution;
    const auto mag = static_cast<db::Value>(magnitude_);
    RETRA_CHECK_MSG(best_[local] <= mag,
                    "contribution above the current magnitude");
    if (best_[local] == mag) {
      assign(local, mag, step);
    } else if (cnt_[local] == 0) {
      RETRA_CHECK(best_[local] != ra::kNoOption);
      assign(local, best_[local], step);
    }
  }

  void process_queue(StepReport& step) {
    if (queue_.empty()) return;
    RETRA_OBS_SCOPED_TIMER(timer, obs::Id::kEngineDrainSeconds);
    // Wave drain: predecessor generation — the dominant kernel — runs
    // chunk-parallel over a snapshot of the queue; the staged updates are
    // applied in chunk order on this thread and refill the queue with the
    // next wave.  Each position is popped exactly once, so the update
    // multiset (and every counter) matches a LIFO drain; the chunk-order
    // merge makes the record stream identical for every T.
    //
    // Out-of-core builds hand the wave over in bounded segments replayed
    // from the queue's run files.  Segmentation cannot change the result:
    // the merged record/apply sequence is wave-position order either way,
    // generation reads only values_ of already-finalised wave members
    // (which applies never touch — they assign only kUnknown positions,
    // and those are never queued), and positions seeded during a segment's
    // applies join the *next* wave exactly as before.
    while (!queue_.empty()) {
      std::vector<ChunkOut> outs;
      queue_.drain([&](std::span<const std::uint64_t> wave) {
        run_chunked(
            wave.size(), threads_drain_, UpdateRecord::kWireSize, outs,
            [&](const exec::ChunkRange& range, ChunkOut& out) {
              for (std::uint64_t i = range.begin; i < range.end; ++i) {
                // The wave array is sequential but the values_ it indexes
                // are not; fetch the cacheline of the position a few
                // iterations ahead while this one's predecessors generate.
                if (i + kPrefetchAhead < range.end) {
                  exec::prefetch_read(values_.data() +
                                      wave[i + kPrefetchAhead]);
                }
                const std::uint64_t local = wave[i];
                const auto contribution =
                    static_cast<db::Value>(-values_[local]);
                const idx::Index global = partition_.to_global(rank(), local);
                game_.visit_predecessors(global, [&](idx::Index pred) {
                  out.meter.charge(msg::WorkKind::kPredEdge);
                  const int owner = partition_.owner(pred);
                  if (owner == rank()) {
                    ++out.stats.updates_local;
                    out.applies.push_back(
                        LocalUpdate{partition_.to_local(pred), contribution});
                  } else {
                    ++out.stats.updates_remote;
                    UpdateRecord record;
                    record.target = pred;
                    record.contribution = contribution;
                    stage(out.staged, owner, record);
                  }
                });
              }
            });
        merge_chunks(outs, step, update_combiner_);
      });
    }
  }

  void zero_fill(StepReport& step) {
    support::check_mutable(rank(), "engine.zero_fill");
    RETRA_OBS_SCOPED_TIMER(timer, obs::Id::kEngineZeroFillSeconds);
    std::vector<ChunkOut> outs;
    // One replace_matching kernel call per chunk: every surviving
    // kUnknown becomes 0 and the count feeds the stats/meter in bulk —
    // all writes are the same value, so no per-position order exists to
    // preserve.  The chunk-boundary check_chunk calls pin the whole
    // written range to the chunk's slice.
    run_chunked(
        values_.size(), threads_scan_, LookupRecord::kWireSize, outs,
        [&](const exec::ChunkRange& range, ChunkOut& out) {
          if (range.empty()) return;
          support::check_chunk(range.begin, "engine.zero_fill_chunk");
          support::check_chunk(range.end - 1, "engine.zero_fill_chunk");
          out.meter.charge(msg::WorkKind::kSweepPosition, range.size());
          const std::uint64_t filled = exec::simd::replace_matching(
              values_.data() + range.begin, range.size(), db::kUnknown, 0);
          out.stats.zero_filled += filled;
          out.work += filled;
          out.meter.charge(msg::WorkKind::kAssign, filled);
        });
    merge_chunks(outs, step, lookup_combiner_);
    RETRA_OBS_ADD(obs::Id::kEngineKernelSweepPositions, values_.size());
    RETRA_OBS_ADD(obs::Id::kEngineKernelSweepMatches, stats_.zero_filled);
  }

  // ------------------------------------------------------------------
  // Combining.

  template <typename Record>
  void append(msg::Combiner& combiner, int dest, const Record& record,
              StepReport& step) {
    std::byte buffer[32];
    static_assert(Record::kWireSize <= sizeof(buffer));
    record.encode(buffer);
    combiner.append(dest, buffer, Record::kWireSize);
    ++step.records_sent;
  }

  /// Stages a record into a chunk's CombinerBank (worker-thread safe: the
  /// bank is chunk-private — lock-free by ownership — and drained later
  /// on the rank's own thread).  The bank was reset by run_chunked for
  /// exactly this record size.
  template <typename Record>
  static void stage(msg::CombinerBank& staged, int dest,
                    const Record& record) {
    std::byte buffer[32];
    static_assert(Record::kWireSize <= sizeof(buffer));
    record.encode(buffer);
    staged.append(dest, buffer);
  }

  void flush_combiners() {
    lookup_combiner_.flush_all();
    reply_combiner_.flush_all();
    update_combiner_.flush_all();
    stats_.messages_sent = lookup_combiner_.stats().messages +
                           reply_combiner_.stats().messages +
                           update_combiner_.stats().messages;
    stats_.payload_bytes = lookup_combiner_.stats().payload_bytes +
                           reply_combiner_.stats().payload_bytes +
                           update_combiner_.stats().payload_bytes;
  }

  const Game& game_;
  const Partition& partition_;
  msg::Comm& comm_;
  const DistributedDatabase& lower_;
  const int bound_;
  const int threads_scan_;   // chunks for Init scan / seeding / zero-fill
  const int threads_drain_;  // chunks for the drain waves
  const int threads_;        // pool width: max of the phase widths

  // The rank's level storage and the active build inside it: values_/
  // best_/cnt_ alias the store-owned BuildArrays (pinned in RAM for the
  // duration of the build), so sealing the level is a move, not a copy.
  LevelStore& store_;
  BuildArrays& build_;
  std::vector<db::Value>& values_;
  std::vector<db::Value>& best_;
  std::vector<std::uint16_t>& cnt_;

  Phase phase_ = Phase::kInit;
  bool scan_done_ = false;
  bool seeded_ = false;
  bool finalize_init_ = false;
  bool zero_filled_ = false;
  int magnitude_ = 0;

  SpillQueue queue_;  // local offsets awaiting propagation

  std::unique_ptr<exec::WorkerPool> pool_;  // only when threads_ > 1

  msg::Combiner lookup_combiner_;
  msg::Combiner reply_combiner_;
  msg::Combiner update_combiner_;
  EngineStats stats_;
};

}  // namespace retra::para

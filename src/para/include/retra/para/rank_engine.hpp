// The per-rank distributed retrograde-analysis engine.
//
// One RankEngine owns one rank's shard of the level being solved and talks
// to the other ranks exclusively through its msg::Comm endpoint.  The
// engine is written as bulk-synchronous supersteps (see
// retra/para/drivers.hpp) so the identical code runs under real threads
// and under the discrete-event cluster simulator.
//
// Life of a level on P ranks:
//
//   Init        every rank scans its local positions once: counts
//               same-level successor edges (cnt), evaluates terminal exits
//               and locally-resolvable capture exits into `best`, and
//               ships a combined Lookup batch to the owners of remote
//               lower-level positions.  Owners answer with combined Reply
//               batches; replies fold into `best`.  The phase ends at
//               global quiescence (nothing in flight, nothing to do).
//   Magnitude u every rank seeds positions with best == u (value +u) and
//   = bound..1  drains its queue: finalising a position generates its
//               same-level predecessors (unmoves); local predecessors are
//               updated in place, remote ones become combined Update
//               records.  Updates decrement cnt / raise best and may
//               cascade.  Each magnitude ends at global quiescence; the
//               first one also finalises positions whose cnt was 0 after
//               initialisation.
//   Zero-fill   surviving positions can cycle forever: value 0.
//
// This mirrors the sequential sweep solver exactly; tests require the
// gathered distributed database to be bit-identical to the sequential one.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/game/level_game.hpp"
#include "retra/msg/combiner.hpp"
#include "retra/msg/comm.hpp"
#include "retra/para/dist_db.hpp"
#include "retra/para/partition.hpp"
#include "retra/para/records.hpp"
#include "retra/ra/sweep_solver.hpp"
#include "retra/support/access_check.hpp"
#include "retra/support/check.hpp"

namespace retra::para {

/// What one superstep did; the driver reduces these across ranks to detect
/// phase quiescence.
struct StepReport {
  std::uint64_t records_sent = 0;
  std::uint64_t records_received = 0;
  std::uint64_t work = 0;  // local state transitions this step
  bool ready = false;      // rank finished its local phase obligations

  StepReport& operator+=(const StepReport& other) {
    records_sent += other.records_sent;
    records_received += other.records_received;
    work += other.work;
    ready = ready && other.ready;
    return *this;
  }
};

/// Engine tuning knobs.
struct EngineConfig {
  /// Combining buffer size in bytes; 1 disables combining (one record per
  /// message — the paper's naive baseline).
  std::size_t combine_bytes = 4096;
};

/// Per-engine cumulative statistics for the communication tables.
struct EngineStats {
  std::uint64_t updates_remote = 0;  // update records sent to other ranks
  std::uint64_t updates_local = 0;   // applied in place, no message
  std::uint64_t lookups_remote = 0;
  std::uint64_t lookups_local = 0;   // exits resolved against local shards
  std::uint64_t replies_sent = 0;
  std::uint64_t assignments = 0;
  std::uint64_t zero_filled = 0;
  std::uint64_t messages_sent = 0;  // combined messages (all tags)
  std::uint64_t payload_bytes = 0;

  EngineStats& operator+=(const EngineStats& other) {
    updates_remote += other.updates_remote;
    updates_local += other.updates_local;
    lookups_remote += other.lookups_remote;
    lookups_local += other.lookups_local;
    replies_sent += other.replies_sent;
    assignments += other.assignments;
    zero_filled += other.zero_filled;
    messages_sent += other.messages_sent;
    payload_bytes += other.payload_bytes;
    return *this;
  }

  /// Records that crossed rank boundaries — the numerator of the paper's
  /// combining factor (T3).
  std::uint64_t remote_records() const {
    return updates_remote + lookups_remote + replies_sent;
  }

  /// Achieved combining factor (records per combined message, T3/F2).
  double records_per_message() const {
    return messages_sent ? static_cast<double>(remote_records()) /
                               static_cast<double>(messages_sent)
                         : 0.0;
  }
};

template <typename Game>
class RankEngine {
 public:
  RankEngine(const Game& game, const Partition& partition, msg::Comm& comm,
             const DistributedDatabase& lower, const EngineConfig& config)
      : game_(game),
        partition_(partition),
        comm_(comm),
        lower_(lower),
        bound_(game.max_value()),
        lookup_combiner_(comm, kTagLookup, config.combine_bytes),
        reply_combiner_(comm, kTagReply, config.combine_bytes),
        update_combiner_(comm, kTagUpdate, config.combine_bytes) {
    const std::uint64_t local = partition_.local_size(comm_.rank());
    values_.assign(local, db::kUnknown);
    best_.assign(local, ra::kNoOption);
    cnt_.assign(local, 0);
  }

  /// One bulk-synchronous superstep; see the file comment for the phase
  /// structure.  Drains the inbox, performs the phase's local work,
  /// flushes all combining buffers.
  StepReport superstep() {
    StepReport step;
    drain_inbox(step);
    switch (phase_) {
      case Phase::kInit:
        if (!scan_done_) {
          scan_local(step);
          scan_done_ = true;
        }
        step.ready = true;
        break;
      case Phase::kMagnitude:
        if (!seeded_) {
          seed_magnitude(step);
          seeded_ = true;
        }
        process_queue(step);
        step.ready = true;
        break;
      case Phase::kZeroFill:
        if (!zero_filled_) {
          zero_fill(step);
          zero_filled_ = true;
        }
        step.ready = true;
        break;
      case Phase::kDone:
        step.ready = true;
        break;
    }
    flush_combiners();
    return step;
  }

  /// Global phase transition; the driver calls it on every engine when the
  /// current phase is quiescent on all ranks.
  void advance() {
    switch (phase_) {
      case Phase::kInit:
        magnitude_ = bound_;
        finalize_init_ = true;
        phase_ = magnitude_ >= 1 ? Phase::kMagnitude : Phase::kZeroFill;
        seeded_ = false;
        break;
      case Phase::kMagnitude:
        RETRA_CHECK_MSG(queue_.empty(), "advance with unprocessed queue");
        --magnitude_;
        seeded_ = false;
        if (magnitude_ < 1) phase_ = Phase::kZeroFill;
        break;
      case Phase::kZeroFill:
        phase_ = Phase::kDone;
        break;
      case Phase::kDone:
        break;
    }
  }

  bool done() const { return phase_ == Phase::kDone; }

  /// The rank's solved shard (valid once done()).
  std::vector<db::Value>& shard() {
    support::check_owned(rank(), "engine.shard");
    return values_;
  }
  const EngineStats& stats() const { return stats_; }

  /// Value bytes this rank holds for the level under construction
  /// (values + best + cnt): the T4 working-set accounting.
  std::uint64_t working_bytes() const {
    return values_.size() * (sizeof(db::Value) * 2 + sizeof(std::uint16_t));
  }

 private:
  enum class Phase { kInit, kMagnitude, kZeroFill, kDone };

  int rank() const { return comm_.rank(); }

  // ------------------------------------------------------------------
  // Initialisation scan.

  void scan_local(StepReport& step) {
    support::check_mutable(rank(), "engine.scan_local");
    const std::uint64_t local_size = partition_.local_size(rank());
    for (std::uint64_t local = 0; local < local_size; ++local) {
      const idx::Index global = partition_.to_global(rank(), local);
      comm_.meter().charge(msg::WorkKind::kScanPosition);
      db::Value b = ra::kNoOption;
      std::uint32_t edges = 0;
      game_.visit_options(
          global,
          [&](const game::Exit& exit) {
            comm_.meter().charge(msg::WorkKind::kExitOption);
            if (exit.is_terminal()) {
              if (exit.reward > b) b = exit.reward;
              return;
            }
            if (lower_.is_local(rank(), exit.lower_level, exit.lower_index)) {
              ++stats_.lookups_local;
              const db::Value value = game::exit_value(
                  exit, [&](int level, idx::Index index) {
                    return lower_.value_local(rank(), level, index);
                  });
              if (value > b) b = value;
              return;
            }
            // Remote lower-level position: ship a combined lookup to its
            // owner; the reply folds into best_ when it arrives.
            ++stats_.lookups_remote;
            LookupRecord record;
            record.target = exit.lower_index;
            record.requester = global;
            record.reward = exit.reward;
            record.level = static_cast<std::uint8_t>(exit.lower_level);
            record.same_mover = exit.same_mover ? 1 : 0;
            append(lookup_combiner_,
                   lower_.owner(exit.lower_level, exit.lower_index), record,
                   step);
          },
          [&](idx::Index) {
            comm_.meter().charge(msg::WorkKind::kLevelEdge);
            ++edges;
          });
      RETRA_CHECK_MSG(edges <= UINT16_MAX, "successor edge count overflow");
      best_[local] = b;
      cnt_[local] = static_cast<std::uint16_t>(edges);
      ++step.work;
    }
  }

  // ------------------------------------------------------------------
  // Message handling.

  void drain_inbox(StepReport& step) {
    msg::Message message;
    while (comm_.try_recv(message)) {
      switch (message.tag) {
        case kTagLookup:
          handle_lookups(message, step);
          break;
        case kTagReply:
          handle_replies(message, step);
          break;
        case kTagUpdate:
          handle_updates(message, step);
          break;
        default:
          RETRA_CHECK_MSG(false, "unexpected message tag");
      }
    }
  }

  void handle_lookups(const msg::Message& message, StepReport& step) {
    msg::WireReader reader(message.payload.data());
    const std::size_t count = message.payload.size() / LookupRecord::kWireSize;
    RETRA_CHECK(count * LookupRecord::kWireSize == message.payload.size());
    for (std::size_t i = 0; i < count; ++i) {
      const LookupRecord lookup = LookupRecord::decode(reader);
      comm_.meter().charge(msg::WorkKind::kRecordUnpack);
      ++step.records_received;
      const db::Value target_value =
          lower_.value_local(rank(), lookup.level, lookup.target);
      ReplyRecord reply;
      reply.requester = lookup.requester;
      reply.value = static_cast<db::Value>(
          lookup.same_mover ? lookup.reward + target_value
                            : lookup.reward - target_value);
      ++stats_.replies_sent;
      append(reply_combiner_, message.source, reply, step);
      ++step.work;
    }
  }

  void handle_replies(const msg::Message& message, StepReport& step) {
    support::check_mutable(rank(), "engine.handle_replies");
    msg::WireReader reader(message.payload.data());
    const std::size_t count = message.payload.size() / ReplyRecord::kWireSize;
    RETRA_CHECK(count * ReplyRecord::kWireSize == message.payload.size());
    for (std::size_t i = 0; i < count; ++i) {
      const ReplyRecord reply = ReplyRecord::decode(reader);
      comm_.meter().charge(msg::WorkKind::kRecordUnpack);
      ++step.records_received;
      const std::uint64_t local = partition_.to_local(reply.requester);
      RETRA_CHECK(partition_.owner(reply.requester) == rank());
      if (reply.value > best_[local]) best_[local] = reply.value;
      ++step.work;
    }
  }

  void handle_updates(const msg::Message& message, StepReport& step) {
    msg::WireReader reader(message.payload.data());
    const std::size_t count = message.payload.size() / UpdateRecord::kWireSize;
    RETRA_CHECK(count * UpdateRecord::kWireSize == message.payload.size());
    for (std::size_t i = 0; i < count; ++i) {
      const UpdateRecord update = UpdateRecord::decode(reader);
      comm_.meter().charge(msg::WorkKind::kRecordUnpack);
      ++step.records_received;
      apply_update(partition_.to_local(update.target), update.contribution,
                   step);
    }
  }

  // ------------------------------------------------------------------
  // Propagation.

  void seed_magnitude(StepReport& step) {
    support::check_mutable(rank(), "engine.seed_magnitude");
    const auto mag = static_cast<db::Value>(magnitude_);
    const std::uint64_t local_size = values_.size();
    for (std::uint64_t local = 0; local < local_size; ++local) {
      if (values_[local] != db::kUnknown) continue;
      if (finalize_init_ && cnt_[local] == 0) {
        // All options were exits; the position is exact already.
        RETRA_CHECK(best_[local] != ra::kNoOption);
        assign(local, best_[local], step);
        continue;
      }
      RETRA_DCHECK(best_[local] <= mag);
      if (best_[local] == mag) assign(local, mag, step);
    }
    finalize_init_ = false;
  }

  void assign(std::uint64_t local, db::Value value, StepReport& step) {
    support::check_mutable(rank(), "engine.assign");
    RETRA_DCHECK(values_[local] == db::kUnknown);
    values_[local] = value;
    queue_.push_back(local);
    ++stats_.assignments;
    ++step.work;
    comm_.meter().charge(msg::WorkKind::kAssign);
  }

  void apply_update(std::uint64_t local, db::Value contribution,
                    StepReport& step) {
    support::check_mutable(rank(), "engine.apply_update");
    RETRA_CHECK_MSG(phase_ == Phase::kMagnitude,
                    "update outside a magnitude phase");
    comm_.meter().charge(msg::WorkKind::kUpdateApply);
    if (values_[local] != db::kUnknown) return;
    ++step.work;
    RETRA_CHECK_MSG(cnt_[local] > 0, "more contributions than counted edges");
    --cnt_[local];
    if (contribution > best_[local]) best_[local] = contribution;
    const auto mag = static_cast<db::Value>(magnitude_);
    RETRA_CHECK_MSG(best_[local] <= mag,
                    "contribution above the current magnitude");
    if (best_[local] == mag) {
      assign(local, mag, step);
    } else if (cnt_[local] == 0) {
      RETRA_CHECK(best_[local] != ra::kNoOption);
      assign(local, best_[local], step);
    }
  }

  void process_queue(StepReport& step) {
    while (!queue_.empty()) {
      const std::uint64_t local = queue_.back();
      queue_.pop_back();
      const auto contribution = static_cast<db::Value>(-values_[local]);
      const idx::Index global = partition_.to_global(rank(), local);
      game_.visit_predecessors(global, [&](idx::Index pred) {
        comm_.meter().charge(msg::WorkKind::kPredEdge);
        const int owner = partition_.owner(pred);
        if (owner == rank()) {
          ++stats_.updates_local;
          apply_update(partition_.to_local(pred), contribution, step);
        } else {
          ++stats_.updates_remote;
          UpdateRecord record;
          record.target = pred;
          record.contribution = contribution;
          append(update_combiner_, owner, record, step);
        }
      });
    }
  }

  void zero_fill(StepReport& step) {
    support::check_mutable(rank(), "engine.zero_fill");
    for (std::uint64_t local = 0; local < values_.size(); ++local) {
      if (values_[local] == db::kUnknown) {
        values_[local] = 0;
        ++stats_.zero_filled;
        ++step.work;
        comm_.meter().charge(msg::WorkKind::kAssign);
      }
    }
  }

  // ------------------------------------------------------------------
  // Combining.

  template <typename Record>
  void append(msg::Combiner& combiner, int dest, const Record& record,
              StepReport& step) {
    std::byte buffer[32];
    static_assert(Record::kWireSize <= sizeof(buffer));
    record.encode(buffer);
    combiner.append(dest, buffer, Record::kWireSize);
    ++step.records_sent;
  }

  void flush_combiners() {
    lookup_combiner_.flush_all();
    reply_combiner_.flush_all();
    update_combiner_.flush_all();
    stats_.messages_sent = lookup_combiner_.stats().messages +
                           reply_combiner_.stats().messages +
                           update_combiner_.stats().messages;
    stats_.payload_bytes = lookup_combiner_.stats().payload_bytes +
                           reply_combiner_.stats().payload_bytes +
                           update_combiner_.stats().payload_bytes;
  }

  const Game& game_;
  const Partition& partition_;
  msg::Comm& comm_;
  const DistributedDatabase& lower_;
  const int bound_;

  Phase phase_ = Phase::kInit;
  bool scan_done_ = false;
  bool seeded_ = false;
  bool finalize_init_ = false;
  bool zero_filled_ = false;
  int magnitude_ = 0;

  std::vector<db::Value> values_;
  std::vector<db::Value> best_;
  std::vector<std::uint16_t> cnt_;
  std::vector<std::uint64_t> queue_;  // local offsets awaiting propagation

  msg::Combiner lookup_combiner_;
  msg::Combiner reply_combiner_;
  msg::Combiner update_combiner_;
  EngineStats stats_;
};

}  // namespace retra::para

// Bulk-synchronous drivers.
//
// Engines expose three calls — superstep(), advance(), done() — and never
// block, so the same engine code runs under
//   * run_bsp_sequential: one thread executes all ranks round-robin;
//     deterministic, and the skeleton the cluster simulator extends with
//     a timing model;
//   * run_bsp_threads: one OS thread per rank with a std::barrier per
//     round — the "real" distributed execution.
//
// Phase-quiescence rule (both drivers): a round in which every rank is
// ready, nobody did local work, nobody appended a record, and the
// cumulative record counts balance (nothing in flight) ends the phase;
// the driver then calls advance() on every engine, or stops when they all
// report done().
#pragma once

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "retra/msg/fault_comm.hpp"
#include "retra/para/rank_engine.hpp"
#include "retra/support/access_check.hpp"
#include "retra/support/check.hpp"
#include "retra/support/log.hpp"
#include "retra/support/sync.hpp"

namespace retra::para {

/// Ceiling on rounds per level; hitting it means a termination-detection
/// bug, not a big workload.
inline constexpr std::uint64_t kRoundLimit = 100'000'000;

/// The thread count the engines should actually use for a requested
/// threads_per_rank.  With the threaded driver every rank runs
/// concurrently, so the active parallelism is ranks × threads; silently
/// oversubscribing the host would produce misleading speedup curves, so
/// the request is capped against the hardware concurrency and the cap is
/// logged.  `allow_oversubscribe` bypasses the cap (correctness tests run
/// T > cores deliberately — results are bit-identical either way).
inline int effective_threads_per_rank(int requested, int ranks,
                                      bool use_threads,
                                      bool allow_oversubscribe) {
  int threads = requested > 1 ? requested : 1;
  if (allow_oversubscribe || threads == 1) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return threads;  // unknown topology: trust the caller
  const int concurrent_ranks = use_threads && ranks > 1 ? ranks : 1;
  const int cap =
      static_cast<int>(hw) / concurrent_ranks > 1
          ? static_cast<int>(hw) / concurrent_ranks
          : 1;
  if (threads > cap) {
    support::log_info(
        "threads_per_rank %d x %d concurrent ranks oversubscribes %u "
        "hardware threads; capping at %d threads per rank",
        requested, concurrent_ranks, hw, cap);
    threads = cap;
  }
  return threads;
}

/// Resolves one per-phase thread knob (ParallelConfig::threads_scan /
/// threads_drain).  0 inherits the already-resolved global
/// threads_per_rank; an explicit request runs through the same
/// hardware-concurrency cap as the global knob.
inline int effective_phase_threads(int requested, int inherited, int ranks,
                                   bool use_threads,
                                   bool allow_oversubscribe) {
  if (requested <= 0) return inherited;
  return effective_threads_per_rank(requested, ranks, use_threads,
                                    allow_oversubscribe);
}

// Crash semantics (fault injection): a scheduled rank crash surfaces as a
// msg::RankCrash exception out of superstep().  The sequential driver lets
// it propagate directly; the threaded drivers capture it, stop every other
// rank at the next synchronisation point, join, and rethrow — so the
// caller always observes a clean single exception with all threads gone.

template <typename Engine>
std::uint64_t run_bsp_sequential(std::vector<std::unique_ptr<Engine>>& engines) {
  const support::ScopedPhase phase(support::BspPhase::kCompute);
  std::uint64_t cum_sent = 0;
  std::uint64_t cum_received = 0;
  std::uint64_t rounds = 0;
  while (true) {
    ++rounds;
    RETRA_CHECK_MSG(rounds < kRoundLimit, "BSP round limit exceeded");
    StepReport global = StepReport::reduction_identity();
    for (std::size_t rank = 0; rank < engines.size(); ++rank) {
      const support::ScopedActor actor(static_cast<int>(rank));
      global += engines[rank]->superstep();
    }
    cum_sent += global.records_sent;
    cum_received += global.records_received;
    const bool quiescent = global.ready && global.work == 0 &&
                           global.records_sent == 0 &&
                           cum_sent == cum_received;
    if (!quiescent) continue;
    if (engines.front()->done()) break;
    for (std::size_t rank = 0; rank < engines.size(); ++rank) {
      const support::ScopedActor actor(static_cast<int>(rank));
      engines[rank]->advance();
    }
  }
  return rounds;
}

template <typename Engine>
std::uint64_t run_bsp_threads(std::vector<std::unique_ptr<Engine>>& engines) {
  const support::ScopedPhase phase(support::BspPhase::kCompute);
  const std::size_t ranks = engines.size();
  std::vector<StepReport> reports(ranks);
  std::uint64_t cum_sent = 0;
  std::uint64_t cum_received = 0;
  std::uint64_t rounds = 0;
  enum class Decision { kContinue, kAdvance, kStop };
  Decision decision = Decision::kContinue;
  std::atomic<bool> crashed{false};
  std::exception_ptr crash;
  support::Mutex crash_mutex;

  auto on_round_complete = [&]() noexcept {
    // The completion step runs on one of the worker threads but acts as
    // the driver: engine state is read-only here.
    const support::ScopedActor actor(-1);
    const support::ScopedPhase exchange(support::BspPhase::kExchange);
    ++rounds;
    if (crashed.load(std::memory_order_acquire)) {
      decision = Decision::kStop;
      return;
    }
    StepReport global = StepReport::reduction_identity();
    for (const StepReport& report : reports) global += report;
    cum_sent += global.records_sent;
    cum_received += global.records_received;
    const bool quiescent = global.ready && global.work == 0 &&
                           global.records_sent == 0 &&
                           cum_sent == cum_received;
    if (!quiescent) {
      decision = Decision::kContinue;
    } else if (engines.front()->done()) {
      decision = Decision::kStop;
    } else {
      decision = Decision::kAdvance;
    }
  };

  std::barrier sync(static_cast<std::ptrdiff_t>(ranks), on_round_complete);

  auto body = [&](std::size_t rank) {
    const support::ScopedActor actor(static_cast<int>(rank));
    while (true) {
      RETRA_CHECK_MSG(rounds < kRoundLimit, "BSP round limit exceeded");
      try {
        reports[rank] = engines[rank]->superstep();
      } catch (const msg::RankCrash&) {
        {
          const support::MutexLock lock(crash_mutex);
          if (!crash) crash = std::current_exception();
        }
        crashed.store(true, std::memory_order_release);
        // Leave the barrier so the surviving ranks can complete the round
        // and observe the kStop decision.
        sync.arrive_and_drop();
        return;
      }
      sync.arrive_and_wait();
      // All ranks read the same decision; it is only rewritten by the next
      // round's completion step, after every rank has re-arrived.
      if (decision == Decision::kStop) return;
      if (decision == Decision::kAdvance) engines[rank]->advance();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (std::size_t rank = 0; rank < ranks; ++rank) {
    threads.emplace_back(body, rank);
  }
  for (std::thread& thread : threads) thread.join();
  if (crash) std::rethrow_exception(crash);
  return rounds;
}

/// Asynchronous driver (ablation A2): ranks run supersteps continuously
/// with no barrier — messages are processed whenever they arrive, as in a
/// message-driven implementation.  Phase boundaries still need global
/// agreement; rank 0 doubles as the coordinator and detects quiescence
/// with a two-snapshot protocol:
///
///   snapshot A of (records sent, received, per-rank activity counters)
///   with sent == received; wait until every rank has since completed two
///   further whole supersteps (each drains the entire inbox); snapshot B.
///   If nothing changed, no record is in flight and no rank has work, so
///   the phase is over — the coordinator bumps the epoch and every rank
///   advances its engine when it observes the bump.
///
/// Returns the total number of supersteps executed across all ranks.
template <typename Engine>
std::uint64_t run_async_threads(std::vector<std::unique_ptr<Engine>>& engines) {
  const support::ScopedPhase phase(support::BspPhase::kCompute);
  const std::size_t ranks = engines.size();
  std::atomic<std::uint64_t> total_sent{0};
  std::atomic<std::uint64_t> total_received{0};
  std::atomic<std::uint64_t> total_steps{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> epoch{0};
  struct alignas(64) RankState {
    std::atomic<std::uint64_t> steps{0};
    std::atomic<std::uint64_t> activity{0};
    std::atomic<std::uint64_t> applied_epoch{0};
    std::atomic<bool> ready{false};
  };
  std::vector<RankState> state(ranks);
  std::exception_ptr crash;
  support::Mutex crash_mutex;

  auto loop = [&](std::size_t rank) {
    std::uint64_t local_steps = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // Apply any pending phase transition first.
      const std::uint64_t e = epoch.load(std::memory_order_acquire);
      if (state[rank].applied_epoch.load(std::memory_order_relaxed) < e) {
        engines[rank]->advance();
        state[rank].applied_epoch.store(e, std::memory_order_release);
        continue;
      }
      const auto step = engines[rank]->superstep();
      ++local_steps;
      total_steps.fetch_add(1, std::memory_order_relaxed);
      if (step.records_sent) {
        total_sent.fetch_add(step.records_sent, std::memory_order_acq_rel);
      }
      if (step.records_received) {
        total_received.fetch_add(step.records_received,
                                 std::memory_order_acq_rel);
      }
      if (step.records_sent || step.records_received || step.work) {
        state[rank].activity.fetch_add(1, std::memory_order_acq_rel);
      }
      state[rank].ready.store(step.ready, std::memory_order_release);
      state[rank].steps.store(local_steps, std::memory_order_release);
      RETRA_CHECK_MSG(local_steps < kRoundLimit,
                      "async superstep limit exceeded");
      if (rank != 0) {
        std::this_thread::yield();
        continue;
      }

      // Coordinator: two-snapshot quiescence detection.
      const std::uint64_t sent_a = total_sent.load();
      const std::uint64_t received_a = total_received.load();
      if (sent_a != received_a) continue;
      bool all_ready = true;
      std::vector<std::uint64_t> steps_a(ranks), activity_a(ranks);
      for (std::size_t r = 0; r < ranks; ++r) {
        all_ready = all_ready && state[r].ready.load();
        steps_a[r] = state[r].steps.load();
        activity_a[r] = state[r].activity.load();
      }
      if (!all_ready) continue;
      // Wait for two fresh supersteps everywhere (the first may have been
      // in progress during snapshot A).
      for (std::size_t r = 0; r < ranks; ++r) {
        while (state[r].steps.load(std::memory_order_acquire) <
                   steps_a[r] + 2 &&
               !stop.load(std::memory_order_relaxed)) {
          if (r == 0) {
            // The coordinator must keep stepping its own engine.
            const auto own = engines[0]->superstep();
            ++local_steps;
            total_steps.fetch_add(1, std::memory_order_relaxed);
            if (own.records_sent) total_sent.fetch_add(own.records_sent);
            if (own.records_received) {
              total_received.fetch_add(own.records_received);
            }
            if (own.records_sent || own.records_received || own.work) {
              state[0].activity.fetch_add(1);
            }
            state[0].ready.store(own.ready);
            state[0].steps.store(local_steps, std::memory_order_release);
          } else {
            std::this_thread::yield();
          }
        }
      }
      bool unchanged = total_sent.load() == sent_a &&
                       total_received.load() == received_a;
      for (std::size_t r = 0; unchanged && r < ranks; ++r) {
        unchanged = state[r].activity.load() == activity_a[r] &&
                    state[r].ready.load();
      }
      if (!unchanged) continue;

      // Phase is globally quiescent.
      if (engines[0]->done()) {
        stop.store(true, std::memory_order_release);
        break;
      }
      const std::uint64_t next = epoch.load() + 1;
      epoch.store(next, std::memory_order_release);
      engines[0]->advance();
      state[0].applied_epoch.store(next, std::memory_order_release);
      // Wait until every rank has advanced before resuming detection, so
      // the next phase starts from a consistent state.
      for (std::size_t r = 1; r < ranks; ++r) {
        while (state[r].applied_epoch.load(std::memory_order_acquire) <
                   next &&
               !stop.load(std::memory_order_relaxed)) {
          std::this_thread::yield();
        }
      }
    }
  };

  auto body = [&](std::size_t rank) {
    const support::ScopedActor actor(static_cast<int>(rank));
    try {
      loop(rank);
    } catch (const msg::RankCrash&) {
      {
        const support::MutexLock lock(crash_mutex);
        if (!crash) crash = std::current_exception();
      }
      stop.store(true, std::memory_order_release);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (std::size_t rank = 0; rank < ranks; ++rank) {
    threads.emplace_back(body, rank);
  }
  for (std::thread& thread : threads) thread.join();
  if (crash) std::rethrow_exception(crash);
  return total_steps.load();
}

}  // namespace retra::para

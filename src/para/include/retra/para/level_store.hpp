// Per-rank level storage behind one interface: in-memory or out-of-core.
//
// A LevelStore owns everything one rank keeps per level: the completed
// shards of already-solved levels and the value/best/cnt arrays of the
// level under construction (BuildArrays).  RankEngine builds *into* the
// store and the store decides where bytes live:
//
//   MemoryLevelStore   today's behaviour — completed shards stay dense
//                      vectors.  Zero-copy: sealing a build moves the
//                      value vector, lookups are a plain index.
//   FileLevelStore     the out-of-core backend.  Sealing a build writes
//                      the shard to a per-(rank, level) RTRADB03 file in
//                      the scratch directory (db::save — the same block
//                      codec as persisted databases) and frees the RAM.
//                      Lower-level lookups fault single blocks back in
//                      through serve::FileSource and an LRU over
//                      (level, block) keeps decoded resident bytes under
//                      the per-rank working-set budget.  A block larger
//                      than the whole budget is still served — it is
//                      faulted in and everything else is evicted — so a
//                      tiny budget degrades to thrashing, never to wrong
//                      answers (the QueryService rule).
//
// Budget semantics: the working-set budget governs *completed-level*
// residency.  The in-progress BuildArrays and the message/combiner state
// are pinned — paging the arrays the hot loops scribble on would destroy
// the bit-identity guarantee — but their size is reported so the T4
// accounting stays honest.  The other unbounded in-progress structure,
// the drain queue, is bounded separately by SpillQueue below.
//
// Thread safety: FileLevelStore lookups mutate residency, and the chunk
// parallel Init scan reads lower levels from worker threads, so the file
// backend is internally locked (value() only; see the annotations).
// MemoryLevelStore lookups are plain const reads and need no lock.
// Everything else — begin/seal/discard, push_shard, visit_shard, stats —
// is serial-phase only, called between supersteps on the build thread.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/serve/file_source.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"
#include "retra/support/sync.hpp"
#include "retra/support/thread_annotations.hpp"

namespace retra::para {

/// Which LevelStore backend a build uses and how it is tuned.
struct StoreConfig {
  /// Per-rank working-set budget in bytes for completed-level residency;
  /// 0 selects the in-memory backend (everything resident, no scratch
  /// files).  Any nonzero value selects the file-backed backend.
  std::uint64_t working_set_bytes = 0;
  /// Scratch directory for spilled levels and queue run files; required
  /// when working_set_bytes > 0.  Created on demand; one build per
  /// directory.
  std::string scratch_dir;
  /// Positions per RTRADB03 block of spilled levels — the fault-in
  /// granularity.  Must be even and at most db::kMaxBlockPositions.
  std::uint32_t block_positions = db::kDefaultBlockPositions;
  /// Queued drain entries kept in RAM per rank before the tail spills to
  /// a run file, and the segment size when replaying one (out-of-core
  /// builds only).
  std::uint64_t queue_mem_entries = 1u << 16;

  bool out_of_core() const { return working_set_bytes > 0; }
};

/// Counters of one store (mirrored per rank into LevelRunInfo and the
/// engine.store.* metrics; see docs/METRICS.md).
struct StoreStats {
  std::uint64_t levels_spilled = 0;   // shards written to scratch files
  std::uint64_t spill_bytes = 0;      // stored (compressed) bytes written
  std::uint64_t faults = 0;           // blocks decoded back on demand
  std::uint64_t fault_bytes = 0;      // decoded bytes faulted back
  std::uint64_t evictions = 0;        // blocks dropped for the budget
  std::uint64_t queue_spilled_records = 0;  // drain entries written to runs
  std::uint64_t resident_bytes = 0;       // decoded bytes resident now
  std::uint64_t peak_resident_bytes = 0;  // lifetime peak of the above

  /// Counters add; the residency gauges take the maximum (aggregating
  /// ranks reports the busiest one, which is what a per-rank budget is
  /// compared against).
  StoreStats& operator+=(const StoreStats& other) {
    levels_spilled += other.levels_spilled;
    spill_bytes += other.spill_bytes;
    faults += other.faults;
    fault_bytes += other.fault_bytes;
    evictions += other.evictions;
    queue_spilled_records += other.queue_spilled_records;
    resident_bytes = std::max(resident_bytes, other.resident_bytes);
    peak_resident_bytes =
        std::max(peak_resident_bytes, other.peak_resident_bytes);
    return *this;
  }

  /// Interval delta: counters subtract, gauges keep this (newer) value.
  StoreStats operator-(const StoreStats& base) const {
    StoreStats delta = *this;
    delta.levels_spilled -= base.levels_spilled;
    delta.spill_bytes -= base.spill_bytes;
    delta.faults -= base.faults;
    delta.fault_bytes -= base.fault_bytes;
    delta.evictions -= base.evictions;
    delta.queue_spilled_records -= base.queue_spilled_records;
    return delta;
  }
};

/// The in-progress arrays of the level under construction; owned by the
/// store, written by the engine.
struct BuildArrays {
  std::vector<db::Value> values;
  std::vector<db::Value> best;
  std::vector<std::uint16_t> cnt;
};

/// One rank's per-level storage; see the file comment for the backends.
class LevelStore {
 public:
  LevelStore() = default;
  virtual ~LevelStore() = default;
  LevelStore(const LevelStore&) = delete;
  LevelStore& operator=(const LevelStore&) = delete;

  int num_levels() const { return static_cast<int>(sizes_.size()); }
  std::uint64_t shard_size(int level) const {
    RETRA_CHECK(level >= 0 && level < num_levels());
    return sizes_[support::to_size(level)];
  }
  /// Logical value bytes of all completed shards (the T4 accounting —
  /// independent of where the backend keeps them resident).
  std::uint64_t stored_bytes() const {
    std::uint64_t values = 0;
    for (const std::uint64_t size : sizes_) values += size;
    return values * sizeof(db::Value);
  }

  /// Starts the next level's build: sizes the arrays (values to
  /// db::kUnknown, best and cnt to 0) and returns them.  Exactly one
  /// build may be active per store.
  BuildArrays& begin_build(std::uint64_t local_size) {
    RETRA_CHECK_MSG(!building_, "level build already active on this store");
    building_ = true;
    build_.values.assign(local_size, db::kUnknown);
    build_.best.assign(local_size, 0);
    build_.cnt.assign(local_size, 0);
    return build_;
  }
  bool building() const { return building_; }
  BuildArrays& build() {
    RETRA_CHECK_MSG(building_, "no active level build on this store");
    return build_;
  }

  /// Completes the active build: the value array becomes the next
  /// completed shard (spilled to scratch by the file backend) and the
  /// auxiliary arrays are freed.
  void seal_build() {
    RETRA_CHECK_MSG(building_, "no active level build to seal");
    building_ = false;
    build_.best = {};
    build_.cnt = {};
    std::vector<db::Value> values = std::move(build_.values);
    build_.values = {};
    push_shard(std::move(values));
  }

  /// Abandons the active build (replicated mode: the full copy arrives
  /// through push_shard after the exchange instead).
  void discard_build() {
    RETRA_CHECK_MSG(building_, "no active level build to discard");
    building_ = false;
    build_ = BuildArrays{};
  }

  /// Appends the next completed level's shard directly (checkpoint
  /// resume, replicated full copies).
  void push_shard(std::vector<db::Value> shard) {
    sizes_.push_back(shard.size());
    store_shard(std::move(shard));
  }

  /// Value of one completed-level position.  The file backend may fault
  /// a block in; safe to call from a rank's worker threads.
  virtual db::Value value(int level, std::uint64_t local) const = 0;

  /// Visits the full decoded shard of a completed level (gather,
  /// checkpoint, verification).  Deliberately bypasses the working-set
  /// cache: inspecting a build must not perturb its fault/evict counters.
  using ShardVisitor = std::function<void(std::span<const db::Value>)>;
  virtual void visit_shard(int level, const ShardVisitor& fn) const = 0;

  virtual StoreStats stats() const = 0;

  /// SpillQueue accounting hook (rank thread only).
  void note_queue_spill(std::uint64_t records) { queue_spilled_ += records; }

 protected:
  virtual void store_shard(std::vector<db::Value> shard) = 0;
  std::uint64_t queue_spilled() const { return queue_spilled_; }

 private:
  std::vector<std::uint64_t> sizes_;  // completed shard sizes, by level
  BuildArrays build_;
  bool building_ = false;
  std::uint64_t queue_spilled_ = 0;
};

/// Dense in-RAM backend: completed shards are plain vectors.
class MemoryLevelStore final : public LevelStore {
 public:
  db::Value value(int level, std::uint64_t local) const override {
    return shards_[support::to_size(level)][local];
  }
  void visit_shard(int level, const ShardVisitor& fn) const override {
    RETRA_CHECK(level >= 0 && level < num_levels());
    fn(shards_[support::to_size(level)]);
  }
  StoreStats stats() const override {
    StoreStats stats;
    stats.queue_spilled_records = queue_spilled();
    stats.resident_bytes = stored_bytes();
    stats.peak_resident_bytes = stored_bytes();
    return stats;
  }

 private:
  void store_shard(std::vector<db::Value> shard) override {
    shards_.push_back(std::move(shard));
  }

  std::vector<std::vector<db::Value>> shards_;
};

/// Out-of-core backend: completed shards live in per-level RTRADB03
/// scratch files; lookups fault blocks back under the byte budget.
class FileLevelStore final : public LevelStore {
 public:
  FileLevelStore(const StoreConfig& config, int rank);
  ~FileLevelStore() override;

  db::Value value(int level, std::uint64_t local) const override;
  void visit_shard(int level, const ShardVisitor& fn) const override;
  StoreStats stats() const override;

 private:
  struct BlockKey {
    int level = 0;
    int block = 0;
    bool operator==(const BlockKey&) const = default;
  };
  struct SpilledLevel {
    std::string path;
    std::unique_ptr<serve::FileSource> source;
  };

  void store_shard(std::vector<db::Value> shard) override;
  std::string level_path(int level) const;
  /// Faults the block in if absent, marks it most recently used and
  /// evicts LRU victims (never the just-touched block) until the budget
  /// holds; returns the resident block.
  const db::CompactLevel& touch(int level, int block) const
      RETRA_REQUIRES(mutex_);

  const StoreConfig config_;
  const int rank_;
  mutable support::Mutex mutex_;
  /// Spilled levels; the FileSource residency set is the cache the LRU
  /// below manages.  Guarded: worker threads of this rank fault blocks
  /// concurrently during chunk-parallel scans.
  mutable std::vector<SpilledLevel> levels_ RETRA_GUARDED_BY(mutex_);
  mutable std::list<BlockKey> lru_ RETRA_GUARDED_BY(mutex_);  // front = MRU
  mutable StoreStats stats_ RETRA_GUARDED_BY(mutex_);
};

/// Backend selection: the file store when `config` sets a working-set
/// budget (scratch_dir required), the memory store otherwise.
std::unique_ptr<LevelStore> make_level_store(const StoreConfig& config,
                                             int rank);

/// The drain queue with an out-of-core tail.
//
// In-memory builds queue locals in a plain vector; out-of-core builds
// must bound that too (the first magnitude of a large level can queue a
// big fraction of the shard).  Beyond `queue_mem_entries` the tail is
// appended to a run file in the scratch directory; drain() replays the
// spilled records strictly in push order, in segments of at most the
// in-RAM entry budget, so the wave algorithm reads runs sequentially and
// never random-writes evicted storage.  Pushes issued while draining go
// to the *other* run file (ping-pong) and form the next drain cycle —
// exactly the next-wave semantics of the in-memory queue, so the update
// order, and with it every value and counter, is unchanged.
class SpillQueue {
 public:
  SpillQueue() = default;
  ~SpillQueue();
  SpillQueue(const SpillQueue&) = delete;
  SpillQueue& operator=(const SpillQueue&) = delete;

  /// Enables spilling: tails beyond `mem_entries` go to run files
  /// "<path_base>.a.run" / "<path_base>.b.run"; spilled record counts are
  /// reported to `store`.  Without enable() the queue is a plain vector.
  void enable(const std::string& path_base, std::uint64_t mem_entries,
              LevelStore* store);

  bool empty() const { return total_ == 0; }

  void push(std::uint64_t local) {
    tail_.push_back(local);
    ++total_;
    if (mem_entries_ != 0 && tail_.size() >= mem_entries_) spill_tail();
  }

  /// Hands every queued entry to `fn` in push order as spans of at most
  /// the in-RAM entry budget (one span of everything when spilling is
  /// disabled).  Entries pushed during `fn` belong to the next drain().
  template <typename Fn>
  void drain(Fn&& fn) {
    std::FILE* run = run_;
    const std::uint64_t run_records = run_records_;
    run_ = nullptr;
    run_records_ = 0;
    std::vector<std::uint64_t> tail = std::move(tail_);
    tail_ = {};
    total_ = 0;
    use_b_ = !use_b_;  // pushes from fn spill to the other run file
    if (run != nullptr) {
      std::vector<std::uint64_t> segment;
      std::uint64_t remaining = run_records;
      begin_replay(run);
      while (remaining > 0) {
        const std::uint64_t count = std::min(remaining, mem_entries_);
        read_segment(run, segment, count);
        fn(std::span<const std::uint64_t>(segment));
        remaining -= count;
      }
      end_replay(run, use_b_ ? path_a_ : path_b_);
    }
    const std::size_t step =
        mem_entries_ != 0 ? static_cast<std::size_t>(mem_entries_)
                          : tail.size();
    for (std::size_t begin = 0; begin < tail.size(); begin += step) {
      const std::size_t count = std::min(step, tail.size() - begin);
      fn(std::span<const std::uint64_t>(tail.data() + begin, count));
    }
  }

 private:
  void spill_tail();
  static void begin_replay(std::FILE* run);
  static void read_segment(std::FILE* run, std::vector<std::uint64_t>& out,
                           std::uint64_t count);
  static void end_replay(std::FILE* run, const std::string& path);

  std::string path_a_;
  std::string path_b_;
  std::uint64_t mem_entries_ = 0;  // 0 = spilling disabled
  LevelStore* store_ = nullptr;
  bool use_b_ = false;             // which run file new spills append to
  std::FILE* run_ = nullptr;       // open spill file for the current cycle
  std::uint64_t run_records_ = 0;  // records in run_
  std::vector<std::uint64_t> tail_;
  std::uint64_t total_ = 0;
};

}  // namespace retra::para

// Distributed databases: solved levels kept as per-rank shards.
//
// Exactly what the paper's memory argument is about — the working set of a
// level build is divided by P, so databases too large for one node's
// memory fit the aggregate memory of the cluster.  In replicated mode
// every rank instead holds a full copy of each solved level (cheaper exit
// lookups, P× the memory): ablation A3.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/index/board_index.hpp"
#include "retra/para/partition.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::para {

class DistributedDatabase {
 public:
  DistributedDatabase(PartitionScheme scheme, std::uint64_t block_size,
                      int ranks, bool replicated)
      : scheme_(scheme),
        block_size_(block_size),
        ranks_(ranks),
        replicated_(replicated) {}

  int ranks() const { return ranks_; }
  bool replicated() const { return replicated_; }
  PartitionScheme scheme() const { return scheme_; }
  std::uint64_t block_size() const { return block_size_; }
  int num_levels() const { return static_cast<int>(partitions_.size()); }

  /// Partition layout for a level of the given size (also used for the
  /// level currently being built).
  Partition make_partition(std::uint64_t size) const {
    return Partition(scheme_, size, ranks_, block_size_);
  }
  const Partition& partition(int level) const {
    RETRA_CHECK(level >= 0 && level < num_levels());
    return partitions_[support::to_size(level)];
  }

  /// Stores a solved level from per-rank shards, shards[r][local] laid out
  /// by the level's partition (partitioned mode).
  void push_level_shards(int level, std::uint64_t size,
                         std::vector<std::vector<db::Value>> shards);

  /// Stores a solved level as one full copy per rank (replicated mode,
  /// produced by the shard-exchange phase).
  void push_level_full(int level,
                       std::vector<std::vector<db::Value>> per_rank_full);

  /// May `rank` read this position without communicating?
  bool is_local(int rank, int level, idx::Index global) const {
    RETRA_CHECK(level >= 0 && level < num_levels());
    return replicated_ ||
           partitions_[support::to_size(level)].owner(global) == rank;
  }

  /// Value of a lower-level position; callable by `rank` only when
  /// is_local() — the distributed-memory discipline the engine respects.
  db::Value value_local(int rank, int level, idx::Index global) const;

  /// Owner rank of a position (lookup routing).
  int owner(int level, idx::Index global) const {
    RETRA_CHECK(level >= 0 && level < num_levels());
    return partitions_[support::to_size(level)].owner(global);
  }

  /// Assembles the full database (tests, persistence, oracle queries).
  db::Database gather() const;

  /// Bytes of value storage held by one rank across all stored levels.
  std::uint64_t bytes_on_rank(int rank) const;

  /// Raw per-rank storage of a level — shards in partitioned mode, full
  /// copies in replicated mode (checkpointing, tests).
  const std::vector<std::vector<db::Value>>& rank_storage(int level) const {
    RETRA_CHECK(level >= 0 && level < num_levels());
    return store_[support::to_size(level)];
  }

 private:
  PartitionScheme scheme_;
  std::uint64_t block_size_;
  int ranks_;
  bool replicated_;
  std::vector<Partition> partitions_;
  /// store_[level][rank]: shard (partitioned) or full copy (replicated).
  std::vector<std::vector<std::vector<db::Value>>> store_;
};

}  // namespace retra::para

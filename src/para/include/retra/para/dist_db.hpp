// Distributed databases: solved levels kept as per-rank shards.
//
// Exactly what the paper's memory argument is about — the working set of a
// level build is divided by P, so databases too large for one node's
// memory fit the aggregate memory of the cluster.  In replicated mode
// every rank instead holds a full copy of each solved level (cheaper exit
// lookups, P× the memory): ablation A3.
//
// Storage itself is delegated to one para::LevelStore per rank: the
// in-memory backend by default, or — when the StoreConfig sets a
// working-set budget — the file-backed backend that spills completed
// levels to scratch and faults blocks back on demand, which is how a
// build larger than the host's RAM stays feasible even at P=1.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/index/board_index.hpp"
#include "retra/para/level_store.hpp"
#include "retra/para/partition.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::para {

class DistributedDatabase {
 public:
  DistributedDatabase(PartitionScheme scheme, std::uint64_t block_size,
                      int ranks, bool replicated,
                      const StoreConfig& store_config = {})
      : scheme_(scheme),
        block_size_(block_size),
        ranks_(ranks),
        replicated_(replicated),
        store_config_(store_config) {
    stores_.reserve(support::to_size(ranks));
    for (int r = 0; r < ranks; ++r) {
      stores_.push_back(make_level_store(store_config_, r));
    }
  }

  int ranks() const { return ranks_; }
  bool replicated() const { return replicated_; }
  PartitionScheme scheme() const { return scheme_; }
  std::uint64_t block_size() const { return block_size_; }
  int num_levels() const { return static_cast<int>(partitions_.size()); }
  const StoreConfig& store_config() const { return store_config_; }

  /// One rank's level storage (the engine builds into it directly).
  LevelStore& store(int rank) { return *stores_[support::to_size(rank)]; }
  const LevelStore& store(int rank) const {
    return *stores_[support::to_size(rank)];
  }

  /// Partition layout for a level of the given size (also used for the
  /// level currently being built).
  Partition make_partition(std::uint64_t size) const {
    return Partition(scheme_, size, ranks_, block_size_);
  }
  const Partition& partition(int level) const {
    RETRA_CHECK(level >= 0 && level < num_levels());
    return partitions_[support::to_size(level)];
  }

  /// Stores a solved level from per-rank shards, shards[r][local] laid out
  /// by the level's partition (partitioned mode; checkpoint resume).
  void push_level_shards(int level, std::uint64_t size,
                         std::vector<std::vector<db::Value>> shards);

  /// Stores a solved level as one full copy per rank (replicated mode,
  /// produced by the shard-exchange phase).  Abandons any builds still
  /// active on the stores — the exchanged full copy supersedes them.
  void push_level_full(int level,
                       std::vector<std::vector<db::Value>> per_rank_full);

  /// Completes a level directly from the builds active on the per-rank
  /// stores (partitioned mode): checks each build against the level's
  /// partition, then seals every store — the zero-copy path, and the one
  /// that lets the file backend spill without the shards ever being
  /// gathered in RAM.
  void seal_level_from_builds(int level, std::uint64_t size);

  /// May `rank` read this position without communicating?
  bool is_local(int rank, int level, idx::Index global) const {
    RETRA_CHECK(level >= 0 && level < num_levels());
    return replicated_ ||
           partitions_[support::to_size(level)].owner(global) == rank;
  }

  /// Value of a lower-level position; callable by `rank` only when
  /// is_local() — the distributed-memory discipline the engine respects.
  /// With the file backend this may fault a block in.
  db::Value value_local(int rank, int level, idx::Index global) const;

  /// Owner rank of a position (lookup routing).
  int owner(int level, idx::Index global) const {
    RETRA_CHECK(level >= 0 && level < num_levels());
    return partitions_[support::to_size(level)].owner(global);
  }

  /// Assembles the full database (tests, persistence, oracle queries).
  db::Database gather() const;

  /// Bytes of value storage held by one rank across all stored levels
  /// (logical — the file backend may keep far less resident).
  std::uint64_t bytes_on_rank(int rank) const;

  /// One rank's stored shard of a level, decoded — shard in partitioned
  /// mode, full copy in replicated mode (checkpointing, tests).
  std::vector<db::Value> read_rank_shard(int level, int rank) const;

 private:
  PartitionScheme scheme_;
  std::uint64_t block_size_;
  int ranks_;
  bool replicated_;
  StoreConfig store_config_;
  std::vector<Partition> partitions_;
  /// Per-rank level storage: shards (partitioned) or full copies
  /// (replicated).
  std::vector<std::unique_ptr<LevelStore>> stores_;
};

}  // namespace retra::para

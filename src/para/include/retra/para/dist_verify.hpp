// Distributed database verification.
//
// Re-checks the Bellman local-consistency property of a solved level
// entirely under the distributed-memory discipline: each rank rescans its
// own positions and resolves every option value — capture exits against
// lower levels AND same-level successors — through the same combined
// lookup/reply machinery the builder uses (a successor probe is just a
// lookup with reward 0: value −v(s)).  A 64-rank verification pass thus
// exercises every communication path of the system against a completed
// database, which is how a long production run would audit a checkpoint
// without gathering 600 MB to one node.
//
// (The well-foundedness certificate for positive values needs the
// builder's assignment order and is checked by ra::verify_level in the
// sequential tests; this pass checks consistency, which is the property
// that catches transport/partition corruption.)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "retra/game/level_game.hpp"
#include "retra/msg/combiner.hpp"
#include "retra/msg/comm.hpp"
#include "retra/para/dist_db.hpp"
#include "retra/para/drivers.hpp"
#include "retra/para/records.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::para {

struct VerifySummary {
  std::uint64_t positions_checked = 0;
  std::uint64_t failures = 0;
  std::string first_error;

  bool ok() const { return failures == 0; }

  void merge(const VerifySummary& other) {
    positions_checked += other.positions_checked;
    failures += other.failures;
    if (first_error.empty()) first_error = other.first_error;
  }
};

/// Per-rank verification engine with the standard superstep API.
template <typename Game>
class VerifyEngine {
 public:
  VerifyEngine(const Game& game, int level, const DistributedDatabase& ddb,
               msg::Comm& comm, std::size_t combine_bytes)
      : game_(game),
        level_(level),
        ddb_(ddb),
        partition_(ddb.partition(level)),
        comm_(comm),
        lookup_combiner_(comm, kTagLookup, combine_bytes),
        reply_combiner_(comm, kTagReply, combine_bytes) {
    const std::uint64_t local = partition_.local_size(comm_.rank());
    best_.assign(local, INT16_MIN);
    pending_.assign(local, 0);
  }

  StepReport superstep() {
    StepReport step;
    drain(step);
    if (!scanned_) {
      scan(step);
      scanned_ = true;
    }
    lookup_combiner_.flush_all();
    reply_combiner_.flush_all();
    step.ready = true;
    return step;
  }

  void advance() {
    // Quiescence: every probe answered.  Finish the positions that were
    // waiting on remote values.
    for (std::uint64_t local = 0; local < pending_.size(); ++local) {
      RETRA_CHECK_MSG(pending_[local] == 0, "verification probe lost");
    }
    done_ = true;
  }

  bool done() const { return done_; }
  const VerifySummary& summary() const { return summary_; }

 private:
  int rank() const { return comm_.rank(); }

  db::Value my_value(std::uint64_t local) const {
    return ddb_.value_local(rank(), level_,
                            partition_.to_global(rank(), local));
  }

  void check_if_complete(std::uint64_t local) {
    if (pending_[local] != 0) return;
    ++summary_.positions_checked;
    if (best_[local] != my_value(local)) {
      ++summary_.failures;
      if (summary_.first_error.empty()) {
        summary_.first_error =
            "position " +
            std::to_string(partition_.to_global(rank(), local)) +
            " of level " + std::to_string(level_) + ": stored " +
            std::to_string(my_value(local)) + ", options max " +
            std::to_string(best_[local]);
      }
    }
  }

  void probe(std::uint64_t local, int target_level, idx::Index target,
             std::int16_t reward, bool same_mover, StepReport& step) {
    if (ddb_.is_local(rank(), target_level, target)) {
      const db::Value v =
          ddb_.value_local(rank(), target_level, target);
      const auto value = static_cast<db::Value>(
          same_mover ? reward + v : reward - v);
      if (value > best_[local]) best_[local] = value;
      return;
    }
    ++pending_[local];
    LookupRecord record;
    record.target = target;
    record.requester = partition_.to_global(rank(), local);
    record.reward = reward;
    record.level = static_cast<std::uint8_t>(target_level);
    record.same_mover = same_mover ? 1 : 0;
    std::byte buffer[LookupRecord::kWireSize];
    record.encode(buffer);
    lookup_combiner_.append(ddb_.owner(target_level, target), buffer,
                            LookupRecord::kWireSize);
    ++step.records_sent;
  }

  void scan(StepReport& step) {
    const std::uint64_t local_size = partition_.local_size(rank());
    // to_global is monotonic in `local`, so the cursor walks boards with
    // next_board() hops instead of unranking every index.
    auto cursor = game_.option_cursor();
    for (std::uint64_t local = 0; local < local_size; ++local) {
      const idx::Index global = partition_.to_global(rank(), local);
      comm_.meter().charge(msg::WorkKind::kScanPosition);
      cursor.visit_options(
          global,
          [&](const game::Exit& exit) {
            comm_.meter().charge(msg::WorkKind::kExitOption);
            if (exit.is_terminal()) {
              if (exit.reward > best_[local]) best_[local] = exit.reward;
              return;
            }
            probe(local, exit.lower_level, exit.lower_index, exit.reward,
                  exit.same_mover, step);
          },
          [&](idx::Index succ) {
            comm_.meter().charge(msg::WorkKind::kLevelEdge);
            // Successor option −v(s): a zero-reward probe into this level.
            probe(local, level_, succ, 0, false, step);
          });
      ++step.work;
      check_if_complete(local);
    }
  }

  void drain(StepReport& step) {
    msg::Message message;
    while (comm_.try_recv(message)) {
      msg::WireReader reader(message.payload.data());
      if (message.tag == kTagLookup) {
        const std::size_t count =
            message.payload.size() / LookupRecord::kWireSize;
        RETRA_CHECK(count * LookupRecord::kWireSize ==
                    message.payload.size());
        for (std::size_t i = 0; i < count; ++i) {
          const LookupRecord lookup = LookupRecord::decode(reader);
          comm_.meter().charge(msg::WorkKind::kRecordUnpack);
          ++step.records_received;
          const db::Value v =
              ddb_.value_local(rank(), lookup.level, lookup.target);
          ReplyRecord reply;
          reply.requester = lookup.requester;
          reply.value = static_cast<db::Value>(
              lookup.same_mover ? lookup.reward + v : lookup.reward - v);
          std::byte buffer[ReplyRecord::kWireSize];
          reply.encode(buffer);
          reply_combiner_.append(message.source, buffer,
                                 ReplyRecord::kWireSize);
          ++step.records_sent;
          ++step.work;
        }
      } else {
        RETRA_CHECK(message.tag == kTagReply);
        const std::size_t count =
            message.payload.size() / ReplyRecord::kWireSize;
        RETRA_CHECK(count * ReplyRecord::kWireSize ==
                    message.payload.size());
        for (std::size_t i = 0; i < count; ++i) {
          const ReplyRecord reply = ReplyRecord::decode(reader);
          comm_.meter().charge(msg::WorkKind::kRecordUnpack);
          ++step.records_received;
          const std::uint64_t local = partition_.to_local(reply.requester);
          RETRA_CHECK(partition_.owner(reply.requester) == rank());
          if (reply.value > best_[local]) best_[local] = reply.value;
          RETRA_CHECK(pending_[local] > 0);
          --pending_[local];
          ++step.work;
          check_if_complete(local);
        }
      }
    }
  }

  const Game& game_;
  int level_;
  const DistributedDatabase& ddb_;
  const Partition& partition_;
  msg::Comm& comm_;
  msg::Combiner lookup_combiner_;
  msg::Combiner reply_combiner_;

  bool scanned_ = false;
  bool done_ = false;
  std::vector<db::Value> best_;
  std::vector<std::uint32_t> pending_;
  VerifySummary summary_;
};

/// Verifies one stored level of `ddb` across `world`'s ranks; `world` may
/// be a msg::ThreadWorld or sim::SimWorld-backed endpoints.
template <typename Game, typename World>
VerifySummary verify_level_distributed(const Game& game, int level,
                                       const DistributedDatabase& ddb,
                                       World& world,
                                       std::size_t combine_bytes = 4096,
                                       bool use_threads = false) {
  std::vector<std::unique_ptr<VerifyEngine<Game>>> engines;
  engines.reserve(support::to_size(ddb.ranks()));
  for (int rank = 0; rank < ddb.ranks(); ++rank) {
    engines.push_back(std::make_unique<VerifyEngine<Game>>(
        game, level, ddb, world.endpoint(rank), combine_bytes));
  }
  if (use_threads) {
    run_bsp_threads(engines);
  } else {
    run_bsp_sequential(engines);
  }
  VerifySummary summary;
  for (const auto& engine : engines) summary.merge(engine->summary());
  return summary;
}

}  // namespace retra::para

// Shard replication engine (the A3 ablation's "replicated lower
// databases" mode).
//
// After a level is solved, every rank broadcasts its shard to every other
// rank through the normal combining path, so each rank ends the phase
// with a full private copy — at the price of size × (P − 1) records on the
// wire and P× the storage, which is precisely what the partitioned mode
// avoids.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/msg/combiner.hpp"
#include "retra/msg/comm.hpp"
#include "retra/obs/metrics.hpp"
#include "retra/para/partition.hpp"
#include "retra/para/rank_engine.hpp"
#include "retra/para/records.hpp"
#include "retra/support/access_check.hpp"
#include "retra/support/check.hpp"

namespace retra::para {

class ShardExchange {
 public:
  ShardExchange(const Partition& partition, msg::Comm& comm,
                const std::vector<db::Value>& own_shard,
                std::vector<db::Value>& full_out, std::size_t combine_bytes)
      : partition_(partition),
        comm_(comm),
        own_shard_(own_shard),
        full_out_(full_out),
        combiner_(comm, kTagShard, combine_bytes) {
    full_out_.assign(partition_.size(), db::kUnknown);
  }

  StepReport superstep() {
    StepReport step;
    drain(step);
    if (!sent_) {
      broadcast(step);
      sent_ = true;
    }
    combiner_.flush_all();
    step.ready = true;
    return step;
  }

  void advance() {
    for (const db::Value v : full_out_) {
      RETRA_CHECK_MSG(v != db::kUnknown, "replication left holes");
    }
    done_ = true;
  }

  bool done() const { return done_; }

 private:
  void broadcast(StepReport& step) {
    const int rank = comm_.rank();
    support::check_mutable(rank, "shard_exchange.broadcast");
    const std::uint64_t sent_before = step.records_sent;
    for (std::uint64_t local = 0; local < own_shard_.size(); ++local) {
      const idx::Index global = partition_.to_global(rank, local);
      full_out_[global] = own_shard_[local];
      ++step.work;
      ShardRecord record;
      record.index = global;
      record.value = own_shard_[local];
      std::byte buffer[ShardRecord::kWireSize];
      record.encode(buffer);
      for (int dest = 0; dest < comm_.size(); ++dest) {
        if (dest == rank) continue;
        combiner_.append(dest, buffer, ShardRecord::kWireSize);
        ++step.records_sent;
      }
    }
    RETRA_OBS_ADD(obs::Id::kExchangeRecordsBroadcast,
                  step.records_sent - sent_before);
  }

  void drain(StepReport& step) {
    support::check_mutable(comm_.rank(), "shard_exchange.drain");
    msg::Message message;
    while (comm_.try_recv(message)) {
      RETRA_CHECK(message.tag == kTagShard);
      msg::WireReader reader(message.payload.data());
      const std::size_t count =
          message.payload.size() / ShardRecord::kWireSize;
      RETRA_CHECK(count * ShardRecord::kWireSize == message.payload.size());
      for (std::size_t i = 0; i < count; ++i) {
        const ShardRecord record = ShardRecord::decode(reader);
        comm_.meter().charge(msg::WorkKind::kRecordUnpack);
        ++step.records_received;
        full_out_[record.index] = record.value;
        ++step.work;
      }
    }
  }

  const Partition& partition_;
  msg::Comm& comm_;
  const std::vector<db::Value>& own_shard_;
  std::vector<db::Value>& full_out_;
  msg::Combiner combiner_;
  bool sent_ = false;
  bool done_ = false;
};

}  // namespace retra::para

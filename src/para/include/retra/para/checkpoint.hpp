// Checkpoint/restart for distributed builds.
//
// The paper's production runs were multi-day affairs on 64 workstations;
// a build that cannot resume after a crash is not usable at that scale.
// A checkpoint directory holds
//
//   manifest.txt     configuration + number of completed levels
//   level_<n>.ck     every rank's storage for level n, checksummed
//
// build_parallel() with ParallelConfig::checkpoint_dir set writes a
// checkpoint after every completed level and, on start, resumes from
// whatever a previous run left behind — provided the configuration
// (ranks, partition scheme, replication mode) matches; a mismatched or
// corrupted checkpoint is reported and ignored, never silently adopted.
#pragma once

#include <memory>
#include <string>

#include "retra/para/dist_db.hpp"

namespace retra::para {

struct CheckpointMeta {
  int ranks = 0;
  PartitionScheme scheme = PartitionScheme::kCyclic;
  std::uint64_t block_size = 0;
  bool replicated = false;
  int levels = 0;  // completed levels (0..levels-1 are on disk)
  /// Combining buffer size of the run that wrote the checkpoint.
  /// Recorded for diagnostics only: it does not affect the on-disk layout,
  /// so checkpoint_compatible() deliberately ignores it — resuming with a
  /// different combining buffer is legal.
  std::uint64_t combine_bytes = 0;
};

/// Writes level `level` of `ddb` (which must already contain it) plus a
/// refreshed manifest.  Creates the directory if needed.  Aborts on I/O
/// failure — a checkpoint that cannot be written must not be ignored.
/// `combine_bytes` is recorded in the manifest for diagnostics.
void checkpoint_save_level(const DistributedDatabase& ddb, int level,
                           const std::string& directory,
                           std::size_t combine_bytes = 0);

struct CheckpointLoad {
  bool ok = false;
  std::string error;
  CheckpointMeta meta;
  std::unique_ptr<DistributedDatabase> database;
};

/// Loads a checkpoint directory; `ok == false` (with a diagnosis) for a
/// missing, malformed, corrupted or internally inconsistent checkpoint.
/// `store_config` selects the level-store backend of the loaded database:
/// with a working-set budget set, every restored level spills straight to
/// scratch, so resuming an out-of-core build never needs the whole
/// database in RAM at once.
CheckpointLoad checkpoint_load(const std::string& directory,
                               const StoreConfig& store_config = {});

/// True when the checkpoint's configuration matches, i.e. the loaded
/// database can seamlessly continue a build with these parameters.  Only
/// layout-determining fields are compared (ranks, scheme, block size where
/// it matters, replication mode); tuning knobs such as the combining
/// buffer size are layout-independent and never block a resume.
bool checkpoint_compatible(const CheckpointMeta& meta, int ranks,
                           PartitionScheme scheme, std::uint64_t block_size,
                           bool replicated);

}  // namespace retra::para

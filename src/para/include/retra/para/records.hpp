// Wire records exchanged by the distributed engine.
//
// Three record types flow during a level build:
//   Lookup  — during initialisation, a rank asks the owner of a
//             lower-level position for the value of one capture exit;
//   Reply   — the owner answers with the computed option value;
//   Update  — during propagation, a finalised position notifies a
//             remotely-owned predecessor of its contribution.
// All three are a few bytes; they only become affordable on a network
// through the Combiner.
#pragma once

#include <cstdint>
#include <type_traits>

#include "retra/db/database.hpp"
#include "retra/index/board_index.hpp"
#include "retra/msg/wire.hpp"

namespace retra::para {

/// Message tags used by the engine.
inline constexpr std::uint8_t kTagLookup = 1;
inline constexpr std::uint8_t kTagReply = 2;
inline constexpr std::uint8_t kTagUpdate = 3;
inline constexpr std::uint8_t kTagShard = 4;

struct LookupRecord {
  std::uint64_t target = 0;     // lower-level position, global index
  std::uint64_t requester = 0;  // requesting position, global index
  std::int16_t reward = 0;      // stones captured by the exit move
  std::uint8_t level = 0;       // lower level holding `target`
  std::uint8_t same_mover = 0;  // kalah extra turn: value = reward + v

  static constexpr std::size_t kWireSize = 8 + 8 + 2 + 1 + 1;

  void encode(std::byte* out) const {
    msg::WireWriter w(out);
    w.u64(target);
    w.u64(requester);
    w.i16(reward);
    w.u8(level);
    w.u8(same_mover);
  }
  static LookupRecord decode(msg::WireReader& r) {
    LookupRecord rec;
    rec.target = r.u64();
    rec.requester = r.u64();
    rec.reward = r.i16();
    rec.level = r.u8();
    rec.same_mover = r.u8();
    return rec;
  }
};

static_assert(std::is_trivially_copyable_v<LookupRecord>);
static_assert(sizeof(LookupRecord::target) + sizeof(LookupRecord::requester) +
                  sizeof(LookupRecord::reward) + sizeof(LookupRecord::level) +
                  sizeof(LookupRecord::same_mover) ==
              LookupRecord::kWireSize);

struct ReplyRecord {
  std::uint64_t requester = 0;  // position whose exit was evaluated
  std::int16_t value = 0;       // option value: reward − lower value

  static constexpr std::size_t kWireSize = 8 + 2;

  void encode(std::byte* out) const {
    msg::WireWriter w(out);
    w.u64(requester);
    w.i16(value);
  }
  static ReplyRecord decode(msg::WireReader& r) {
    ReplyRecord rec;
    rec.requester = r.u64();
    rec.value = r.i16();
    return rec;
  }
};

static_assert(std::is_trivially_copyable_v<ReplyRecord>);
static_assert(sizeof(ReplyRecord::requester) + sizeof(ReplyRecord::value) ==
              ReplyRecord::kWireSize);

struct UpdateRecord {
  std::uint64_t target = 0;      // predecessor position, global index
  std::int16_t contribution = 0;  // −(value of the finalised successor)

  static constexpr std::size_t kWireSize = 8 + 2;

  void encode(std::byte* out) const {
    msg::WireWriter w(out);
    w.u64(target);
    w.i16(contribution);
  }
  static UpdateRecord decode(msg::WireReader& r) {
    UpdateRecord rec;
    rec.target = r.u64();
    rec.contribution = r.i16();
    return rec;
  }
};

static_assert(std::is_trivially_copyable_v<UpdateRecord>);
static_assert(sizeof(UpdateRecord::target) +
                  sizeof(UpdateRecord::contribution) ==
              UpdateRecord::kWireSize);

/// Shard-replication record: one value at a global index (used by the
/// replicated-lower-database mode, table A3).
struct ShardRecord {
  std::uint64_t index = 0;
  std::int16_t value = 0;

  static constexpr std::size_t kWireSize = 8 + 2;

  void encode(std::byte* out) const {
    msg::WireWriter w(out);
    w.u64(index);
    w.i16(value);
  }
  static ShardRecord decode(msg::WireReader& r) {
    ShardRecord rec;
    rec.index = r.u64();
    rec.value = r.i16();
    return rec;
  }
};

static_assert(std::is_trivially_copyable_v<ShardRecord>);
static_assert(sizeof(ShardRecord::index) + sizeof(ShardRecord::value) ==
              ShardRecord::kWireSize);

}  // namespace retra::para

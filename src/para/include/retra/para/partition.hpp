// Distribution of a level's index space over ranks.
//
// All three schemes give O(1) owner lookup and dense, O(1)-addressable
// local shards, which the distributed value arrays require:
//
//   block         rank r owns one contiguous slab
//   cyclic        index i belongs to rank i mod P (a stride-1 "hash")
//   block-cyclic  blocks of `block_size` dealt round-robin
//
// Block partitions are cache- and scan-friendly but inherit whatever value
// locality the position ordering has (load imbalance late in a level);
// cyclic spreads hot regions evenly at the cost of scattering every scan.
// The A1 ablation quantifies the trade-off.
#pragma once

#include <cstdint>
#include <string>

#include "retra/index/board_index.hpp"

namespace retra::para {

enum class PartitionScheme { kBlock, kCyclic, kBlockCyclic };

const char* scheme_name(PartitionScheme scheme);

class Partition {
 public:
  Partition(PartitionScheme scheme, std::uint64_t size, int ranks,
            std::uint64_t block_size = 4096);

  PartitionScheme scheme() const { return scheme_; }
  std::uint64_t size() const { return size_; }
  int ranks() const { return ranks_; }

  int owner(idx::Index index) const;
  /// Offset of a global index within its owner's shard.
  std::uint64_t to_local(idx::Index index) const;
  /// Inverse of to_local for a given rank.
  idx::Index to_global(int rank, std::uint64_t local) const;
  std::uint64_t local_size(int rank) const;

 private:
  /// ranks_ as the unsigned type the index arithmetic runs in.
  std::uint64_t uranks() const { return static_cast<std::uint64_t>(ranks_); }

  PartitionScheme scheme_;
  std::uint64_t size_;
  int ranks_;
  std::uint64_t block_size_;  // block scheme: slab width; block-cyclic: block
};

}  // namespace retra::para

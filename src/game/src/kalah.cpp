#include "retra/game/kalah.hpp"

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::game::kalah {

using support::to_size;

namespace {

// Sowing walks a 13-slot cycle: slots 0–5 the mover's pits, slot 6 the
// mover's store, slots 7–12 the opponent's pits 6–11.  The opponent's
// store is simply absent from the cycle.
constexpr int kStoreSlot = 6;
constexpr int kCycle = 13;

int slot_to_pit(int slot) { return slot < kStoreSlot ? slot : slot - 1; }

int row_sum(const Board& board, int first) {
  int sum = 0;
  for (int i = first; i < first + 6; ++i) sum += board[to_size(i)];
  return sum;
}

}  // namespace

AppliedMove apply_move(const Board& board, int pit) {
  AppliedMove result;
  if (pit < 0 || pit >= 6 || board[to_size(pit)] == 0) return result;

  Board b = board;
  int stones = b[to_size(pit)];
  b[to_size(pit)] = 0;
  int slot = pit;
  int banked = 0;
  int last_slot = -1;
  while (stones > 0) {
    slot = (slot + 1) % kCycle;
    if (slot == kStoreSlot) {
      ++banked;
    } else {
      const int p = slot_to_pit(slot);
      b[to_size(p)] = static_cast<std::uint8_t>(b[to_size(p)] + 1);
    }
    --stones;
    last_slot = slot;
  }

  const bool extra_turn = last_slot == kStoreSlot;
  if (!extra_turn && last_slot < kStoreSlot) {
    // Last stone in an own pit: capture if the pit was empty (now holds
    // exactly the one stone) and the opposite pit is occupied.
    const int own = last_slot;
    const int opposite = 11 - own;
    if (b[to_size(own)] == 1 && b[to_size(opposite)] > 0) {
      banked += 1 + b[to_size(opposite)];
      b[to_size(own)] = 0;
      b[to_size(opposite)] = 0;
    }
  }

  result.legal = true;
  result.banked = banked;
  result.extra_turn = extra_turn;
  if (extra_turn) {
    result.after = b;  // same player: no rotation
  } else {
    for (int i = 0; i < kPits; ++i) {
      result.after[to_size(i)] = b[to_size((i + 6) % kPits)];
    }
  }
  return result;
}

MoveList legal_moves(const Board& board) {
  MoveList list;
  for (int pit = 0; pit < 6; ++pit) {
    AppliedMove m = apply_move(board, pit);
    if (!m.legal) continue;
    list.items[list.count++] = {pit, m.banked, m.extra_turn, m.after};
  }
  return list;
}

bool is_terminal(const Board& board) { return row_sum(board, 0) == 0; }

int terminal_reward(const Board& board) {
  RETRA_DCHECK(is_terminal(board));
  return -idx::stones_on(board);
}

void predecessors(const Board& board, std::vector<Board>& out) {
  out.clear();
  // Same-level moves bank nothing: they sow entirely inside the previous
  // mover's own row (reaching the store or the opponent means a stone
  // passed the store and left the level) and capture nothing.
  Board pp;
  for (int i = 0; i < kPits; ++i) {
    pp[to_size(i)] = board[to_size((i + 6) % kPits)];
  }

  for (int origin = 0; origin < 6; ++origin) {
    if (pp[to_size(origin)] != 0) continue;
    for (int length = 1; origin + length <= 5; ++length) {
      const int sown_pit = origin + length;
      if (pp[to_size(sown_pit)] == 0) break;  // longer sows also need this pit

      Board candidate = pp;
      for (int i = origin + 1; i <= origin + length; ++i) {
        candidate[to_size(i)] =
            static_cast<std::uint8_t>(candidate[to_size(i)] - 1);
      }
      candidate[to_size(origin)] = static_cast<std::uint8_t>(length);

      const AppliedMove forward = apply_move(candidate, origin);
      if (forward.legal && forward.banked == 0 && !forward.extra_turn &&
          forward.after == board) {
        out.push_back(candidate);
      }
    }
  }
}

}  // namespace retra::game::kalah

#include "retra/game/awari.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::game {

using support::to_size;

namespace {

/// Sows the stones of `pit` counter-clockwise, skipping the origin on every
/// lap.  Returns the pit that received the last stone.  The origin is always
/// empty afterwards.
int sow(Board& board, int pit) {
  const int stones = board[to_size(pit)];
  RETRA_DCHECK(stones > 0);
  board[to_size(pit)] = 0;
  int pos = pit;
  for (int s = 0; s < stones; ++s) {
    pos = (pos + 1) % kPits;
    if (pos == pit) pos = (pos + 1) % kPits;
    board[to_size(pos)] =
        static_cast<std::uint8_t>(board[to_size(pos)] + 1);
  }
  return pos;
}

int row_sum(const Board& board, int first) {
  int sum = 0;
  for (int i = first; i < first + 6; ++i) sum += board[to_size(i)];
  return sum;
}

}  // namespace

AppliedMove apply_move(const Board& board, int pit) {
  AppliedMove result;
  if (pit < 0 || pit >= 6 || board[to_size(pit)] == 0) return result;

  const bool opponent_starving = row_sum(board, 6) == 0;

  Board b = board;
  const int last = sow(b, pit);

  // Capture: walk backwards from the last-sown pit through the opponent's
  // row while the pits hold 2 or 3 stones.  A chain that would take the
  // whole row is a grand slam: the move stands, the capture is forfeited.
  int captured = 0;
  if (last >= 6) {
    int chain_sum = 0;
    int k = last;
    while (k >= 6 && (b[to_size(k)] == 2 || b[to_size(k)] == 3)) {
      chain_sum += b[to_size(k)];
      --k;
    }
    if (chain_sum > 0 && chain_sum < row_sum(b, 6)) {
      for (int j = k + 1; j <= last; ++j) b[to_size(j)] = 0;
      captured = chain_sum;
    }
  }

  // Must feed: when the opponent started with nothing, only moves that
  // leave them something are legal.  (If no move feeds, the position is
  // terminal and has no legal moves at all.)
  if (opponent_starving && row_sum(b, 6) == 0) return result;

  result.legal = true;
  result.captured = captured;
  for (int i = 0; i < kPits; ++i) {
    result.after[to_size(i)] = b[to_size((i + 6) % kPits)];
  }
  return result;
}

MoveList legal_moves(const Board& board) {
  MoveList list;
  for (int pit = 0; pit < 6; ++pit) {
    AppliedMove m = apply_move(board, pit);
    if (!m.legal) continue;
    list.items[list.count++] = {pit, m.captured, m.after};
  }
  return list;
}

bool is_terminal(const Board& board) {
  if (row_sum(board, 0) == 0) return true;
  return legal_moves(board).count == 0;
}

int terminal_reward(const Board& board) {
  const int total = idx::stones_on(board);
  if (row_sum(board, 0) == 0) {
    // No move at all: the opponent sweeps the board.
    return -total;
  }
  // The mover has stones but cannot feed a starving opponent: the mover
  // sweeps the board.
  RETRA_DCHECK(legal_moves(board).count == 0);
  return total;
}

void predecessors(const Board& board, std::vector<Board>& out) {
  out.clear();
  // View the board from the previous mover's side: their pits are 6–11 of
  // `board`, i.e. the un-rotated post-move board.
  Board pp;
  for (int i = 0; i < kPits; ++i) {
    pp[to_size(i)] = board[to_size((i + 6) % kPits)];
  }
  const int total = idx::stones_on(board);

  for (int origin = 0; origin < 6; ++origin) {
    // After sowing, the origin pit is always empty.
    if (pp[to_size(origin)] != 0) continue;
    // Grow the sowing length one stone at a time; stone L lands in `pos`.
    // A pit can only have received as many stones as it now holds, and
    // sown counts grow monotonically with L, so the first violation kills
    // every longer sowing from this origin too.
    Board sown{};
    int pos = origin;
    for (int length = 1; length <= total; ++length) {
      pos = (pos + 1) % kPits;
      if (pos == origin) pos = (pos + 1) % kPits;
      sown[to_size(pos)] = static_cast<std::uint8_t>(sown[to_size(pos)] + 1);
      if (sown[to_size(pos)] > pp[to_size(pos)]) break;

      Board candidate;
      for (int i = 0; i < kPits; ++i) {
        candidate[to_size(i)] =
            static_cast<std::uint8_t>(pp[to_size(i)] - sown[to_size(i)]);
      }
      candidate[to_size(origin)] = static_cast<std::uint8_t>(length);

      // Forward-verify: the candidate must reach `board` through a legal,
      // non-capturing move.  This re-checks must-feed legality and that no
      // capture (or a forfeited grand slam) occurs, so the reverse-sowing
      // enumeration above never needs to reason about those rules.
      const AppliedMove forward = apply_move(candidate, origin);
      if (forward.legal && forward.captured == 0 && forward.after == board) {
        out.push_back(candidate);
      }
    }
  }
}

Board board_from_string(const char* text) {
  Board board{};
  const char* p = text;
  for (int i = 0; i < kPits; ++i) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    RETRA_CHECK_MSG(end != p && v >= 0 && v < 256, "malformed board string");
    board[to_size(i)] = static_cast<std::uint8_t>(v);
    p = end;
  }
  return board;
}

std::string board_to_string(const Board& board) {
  std::string out = "[";
  for (int i = 0; i < kPits; ++i) {
    if (i == 6) out += "| ";
    out += std::to_string(static_cast<int>(board[to_size(i)]));
    out += i + 1 < kPits ? " " : "]";
  }
  return out;
}

}  // namespace retra::game

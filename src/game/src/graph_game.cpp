#include "retra/game/graph_game.hpp"

#include <algorithm>
#include <cmath>

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"
#include "retra/support/rng.hpp"

namespace retra::game {

using support::to_size;
using support::to_u64;

namespace {

/// Small non-negative integer with the given mean: uniform on
/// [0, 2*mean], which keeps degenerate zero-degree nodes common.
std::uint64_t small_count(support::Xoshiro256& rng, double mean) {
  const std::uint64_t bound = static_cast<std::uint64_t>(2.0 * mean) + 1;
  return rng.below(bound);
}

}  // namespace

GraphLevel GraphLevel::custom(int level,
                              std::vector<std::vector<std::uint32_t>> succs,
                              std::vector<std::vector<Exit>> exits,
                              const std::vector<int>& lower_bounds) {
  RETRA_CHECK(succs.size() == exits.size());
  GraphLevel out;
  out.level_ = level;
  out.succs_ = std::move(succs);
  out.exits_ = std::move(exits);
  out.preds_.resize(out.succs_.size());
  int bound = 0;
  for (std::uint64_t node = 0; node < out.succs_.size(); ++node) {
    RETRA_CHECK_MSG(!out.succs_[node].empty() || !out.exits_[node].empty(),
                    "custom graph node without options");
    for (const std::uint32_t s : out.succs_[node]) {
      RETRA_CHECK(s < out.succs_.size());
      out.preds_[s].push_back(static_cast<std::uint32_t>(node));
    }
    for (const Exit& exit : out.exits_[node]) {
      const int lower =
          exit.is_terminal() ? 0 : lower_bounds.at(to_size(exit.lower_level));
      bound = std::max(bound, std::abs(exit.reward) + lower);
    }
  }
  out.max_value_ = bound;
  return out;
}

GraphGame::GraphGame(const GraphGameConfig& config) {
  RETRA_CHECK(config.levels >= 1);
  RETRA_CHECK(config.size0 >= 1);
  support::Xoshiro256 rng(config.seed);

  std::vector<int> bounds;  // max |value| per level, for exit-value bounds
  levels_.resize(to_size(config.levels));

  for (int l = 0; l < config.levels; ++l) {
    GraphLevel& level = levels_[to_size(l)];
    level.level_ = l;
    const auto size = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(config.size0) * std::pow(config.growth, l)));
    level.succs_.resize(size);
    level.preds_.resize(size);
    level.exits_.resize(size);

    const auto reward_span =
        static_cast<std::uint64_t>(2 * config.reward_range + 1);
    auto random_reward = [&]() {
      return static_cast<std::int16_t>(
          static_cast<int>(rng.below(reward_span)) - config.reward_range);
    };

    int max_exit_magnitude = 0;
    for (std::uint64_t node = 0; node < size; ++node) {
      // Same-level edges (absent at level 0 with probability shaped by the
      // same distribution; duplicates and self-loops are allowed — the
      // engines must treat predecessor notifications per *edge*).
      const std::uint64_t degree = small_count(rng, config.edge_mean);
      for (std::uint64_t e = 0; e < degree; ++e) {
        level.succs_[node].push_back(
            static_cast<std::uint32_t>(rng.below(size)));
      }

      // Exits: lookups into lower levels plus optional terminals.
      if (l > 0) {
        const std::uint64_t exits = small_count(rng, config.exit_mean);
        for (std::uint64_t e = 0; e < exits; ++e) {
          const int lower = static_cast<int>(rng.below(to_u64(l)));
          const std::uint64_t lower_size = levels_[to_size(lower)].size();
          Exit exit;
          exit.reward = random_reward();
          exit.lower_level = static_cast<std::int16_t>(lower);
          exit.lower_index = rng.below(lower_size);
          exit.same_mover = rng.chance(config.same_mover_chance);
          level.exits_[node].push_back(exit);
        }
      }
      if (rng.chance(config.terminal_chance) ||
          (level.succs_[node].empty() && level.exits_[node].empty())) {
        level.exits_[node].push_back(
            Exit{random_reward(), Exit::kTerminal, 0});
      }

      for (const Exit& exit : level.exits_[node]) {
        const int lower_bound =
            exit.is_terminal() ? 0 : bounds[to_size(exit.lower_level)];
        max_exit_magnitude = std::max(
            max_exit_magnitude, std::abs(exit.reward) + lower_bound);
      }
    }

    // Invert the successor multigraph.
    for (std::uint64_t node = 0; node < size; ++node) {
      for (const std::uint32_t succ : level.succs_[node]) {
        level.preds_[succ].push_back(static_cast<std::uint32_t>(node));
      }
    }

    level.max_value_ = max_exit_magnitude;
    RETRA_CHECK_MSG(level.max_value_ <= 0x7fff, "value bound overflows int16");
    bounds.push_back(level.max_value_);
  }
}

}  // namespace retra::game

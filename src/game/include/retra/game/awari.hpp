// Awari (oware) rules, Computer-Olympiad variant.
//
// Boards are 12 pits; pits 0–5 belong to the player to move, 6–11 to the
// opponent.  Every position is normalised to the player to move, so applying
// a move rotates the result by six pits.  The rules implemented here (and
// their interaction with retrograde analysis) are spelled out in DESIGN.md:
//
//  * sowing counter-clockwise, skipping the origin pit on every lap;
//  * capture of trailing chains of 2s and 3s in the opponent's row;
//  * grand slam: a move that would capture all opponent stones is legal but
//    captures nothing;
//  * must feed: if the opponent's row is empty the move must reach it; if no
//    move does, the game ends and the mover takes every stone on the board;
//  * a player with an empty row (no move at all) loses the remaining stones
//    to the opponent.
#pragma once

#include <string>
#include <vector>

#include "retra/index/board_index.hpp"

namespace retra::game {

using idx::Board;
using idx::kPits;

/// Result of applying one move.
struct AppliedMove {
  /// False when the pit is empty or the move violates the must-feed rule.
  bool legal = false;
  /// Stones captured by the mover (0 for plain sowing and for forfeited
  /// grand slams).
  int captured = 0;
  /// Successor board, already rotated so the *new* player to move owns
  /// pits 0–5.  Only meaningful when legal.
  Board after{};
};

/// Applies the move from `pit` (0–5) with full legality checking.
AppliedMove apply_move(const Board& board, int pit);

/// All legal moves of a position.  A position has at most six.
struct MoveList {
  struct Entry {
    int pit;
    int captured;
    Board after;
  };
  Entry items[6];
  int count = 0;

  const Entry* begin() const { return items; }
  const Entry* end() const { return items + count; }
};
MoveList legal_moves(const Board& board);

/// True when the player to move has no legal move (the game is over).
bool is_terminal(const Board& board);

/// Net future capture for the mover of a terminal position: −(stones on the
/// board) when the mover's row is empty, +(stones) when the mover cannot
/// feed a starving opponent.  Only meaningful when is_terminal().
int terminal_reward(const Board& board);

/// Same-level predecessors: every board `q` (normalised to *its* mover)
/// from which some legal non-capturing move produces `board`.  Each element
/// is one predecessor *edge*; a board reaching `board` through two distinct
/// pits appears twice, which is exactly what the retrograde counters need.
/// `out` is cleared first and reused by callers to avoid allocation.
void predecessors(const Board& board, std::vector<Board>& out);

/// Parses "4 4 4 4 4 4 4 4 4 4 4 4"-style pit lists; aborts on malformed
/// input (test/example helper).
Board board_from_string(const char* text);

/// "[4 4 4 4 4 4 | 4 4 4 4 4 4]" rendering, mover's row first.
std::string board_to_string(const Board& board);

}  // namespace retra::game

// LevelGame adapter for awari: one instance per stone count.
#pragma once

#include <vector>

#include "retra/game/awari.hpp"
#include "retra/game/level_game.hpp"

namespace retra::game {

class AwariLevel {
 public:
  explicit AwariLevel(int stones)
      : stones_(stones), size_(idx::level_size(stones)) {}

  int level() const { return stones_; }
  std::uint64_t size() const { return size_; }
  /// A level-n value is a net capture of at most all n stones.
  int max_value() const { return stones_; }

  /// Board-based option visitation; engines that scan a whole level keep a
  /// running board (idx::next_board) and avoid unranking.
  template <typename ExitFn, typename SuccFn>
  void visit_options_board(const Board& board, ExitFn&& on_exit,
                           SuccFn&& on_succ) const {
    const MoveList moves = legal_moves(board);
    if (moves.count == 0) {
      on_exit(Exit{static_cast<std::int16_t>(terminal_reward(board)),
                   Exit::kTerminal, 0});
      return;
    }
    for (const auto& m : moves) {
      // The mover's stone totals are known from the level, so rank without
      // re-summing the board: captures drop to the (n − captured)-stone
      // level, plain sows stay on this one.
      if (m.captured > 0) {
        on_exit(Exit{static_cast<std::int16_t>(m.captured),
                     static_cast<std::int16_t>(stones_ - m.captured),
                     idx::rank_in_level(stones_ - m.captured, m.after)});
      } else {
        on_succ(idx::rank_in_level(stones_, m.after));
      }
    }
  }

  template <typename ExitFn, typename SuccFn>
  void visit_options(idx::Index index, ExitFn&& on_exit,
                     SuccFn&& on_succ) const {
    visit_options_board(idx::unrank(stones_, index),
                        static_cast<ExitFn&&>(on_exit),
                        static_cast<SuccFn&&>(on_succ));
  }

  /// Bulk scan used by solver initialisation: fn(index, visit) for every
  /// position in rank order, where visit(on_exit, on_succ) enumerates the
  /// position's options.  Walks the level with next_board(), so no
  /// per-position unranking happens.
  template <typename Fn>
  void scan(Fn&& fn) const {
    Board board = idx::first_board(stones_);
    for (std::uint64_t i = 0; i < size_; ++i) {
      fn(static_cast<idx::Index>(i), [&](auto&& on_exit, auto&& on_succ) {
        visit_options_board(board, on_exit, on_succ);
      });
      if (i + 1 < size_) idx::next_board(board);
    }
  }

  /// Stateful option visitor for callers that touch monotonically
  /// increasing indices (a rank's local scan under any partition scheme):
  /// bridges the index gaps with next_board() instead of unranking every
  /// position from scratch.
  class OptionCursor {
   public:
    explicit OptionCursor(const AwariLevel& game)
        : game_(game), walker_(game.level()) {}

    template <typename ExitFn, typename SuccFn>
    void visit_options(idx::Index index, ExitFn&& on_exit,
                       SuccFn&& on_succ) {
      game_.visit_options_board(walker_.seek(index),
                                static_cast<ExitFn&&>(on_exit),
                                static_cast<SuccFn&&>(on_succ));
    }

   private:
    const AwariLevel& game_;
    idx::LevelWalker walker_;
  };

  OptionCursor option_cursor() const { return OptionCursor(*this); }

  template <typename PredFn>
  void visit_predecessors_board(const Board& board, PredFn&& on_pred) const {
    static thread_local std::vector<Board> scratch;
    game::predecessors(board, scratch);
    // Predecessors stay on this level by construction, so batch-rank them
    // with the level's known stone count.
    for (const Board& q : scratch) on_pred(idx::rank_in_level(stones_, q));
  }

  template <typename PredFn>
  void visit_predecessors(idx::Index index, PredFn&& on_pred) const {
    visit_predecessors_board(idx::unrank(stones_, index),
                             static_cast<PredFn&&>(on_pred));
  }

 private:
  int stones_;
  std::uint64_t size_;
};

/// Game-family adapter: level(l) is the l-stone awari level.
struct AwariFamily {
  AwariLevel level(int stones) const { return AwariLevel(stones); }
};

}  // namespace retra::game

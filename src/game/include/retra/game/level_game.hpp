// The level-game abstraction consumed by the retrograde-analysis engines.
//
// A *level* is a set of positions closed under non-rewarding moves: moves
// either stay inside the level with reward 0 (awari: sowing without
// capture) or leave it with a known reward towards an already-solved lower
// level (awari: captures and game-end rules).  Retrograde analysis solves
// one level at a time, bottom up.
//
// A LevelGame type provides:
//   int level() const;                    — the level id (awari: stones)
//   std::uint64_t size() const;           — number of positions
//   int max_value() const;                — bound on |game value| in the level
//   template <E, S> void visit_options(Index, E on_exit, S on_succ) const;
//       on_exit(Exit) for every option leaving the level,
//       on_succ(Index) for every same-level successor edge;
//   template <P> void visit_predecessors(Index, P on_pred) const;
//       on_pred(Index) once per same-level predecessor *edge*.
//
// visit_options/visit_predecessors are templates, so the contract is
// documented rather than expressed as a C++ concept; the engines are
// templates over the game type and fail to instantiate on mismatch.
#pragma once

#include <cstdint>

#include "retra/index/board_index.hpp"

namespace retra::game {

/// An option that leaves the level.
struct Exit {
  /// Stones captured by the mover (terminal rules may make it negative).
  std::int16_t reward = 0;
  /// Level holding the successor, or kTerminal when the option ends the
  /// game and its value is `reward` outright.
  std::int16_t lower_level = kTerminal;
  /// Position index within lower_level (meaningless for terminal exits).
  idx::Index lower_index = 0;
  /// True when the *same* player moves again in the successor (kalah's
  /// extra turn): the option is then worth reward + v(successor) instead
  /// of reward − v(successor).  Only exits may keep the mover — a
  /// same-level same-mover edge would break the alternation the engines
  /// rely on, and no supported game produces one.
  bool same_mover = false;

  static constexpr std::int16_t kTerminal = -1;

  bool is_terminal() const { return lower_level == kTerminal; }
};

/// Game values.  int16 accommodates the synthetic graph games; awari values
/// fit in a byte and are narrowed when databases are persisted.
using Value = std::int16_t;

/// Value of an exit option given a lower-level value oracle
/// `lower(level, index)` — the single place the reward/sign convention
/// lives.
template <typename LowerFn>
Value exit_value(const Exit& exit, LowerFn&& lower) {
  if (exit.is_terminal()) return exit.reward;
  const Value successor = lower(exit.lower_level, exit.lower_index);
  return static_cast<Value>(exit.same_mover ? exit.reward + successor
                                            : exit.reward - successor);
}

}  // namespace retra::game

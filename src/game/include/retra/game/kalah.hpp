// Kalah (six-pit), the second mancala family shipped with the library.
//
// Kalah differs from awari in every way that stresses the engine's
// generality: sowing passes through the mover's store (each pass banks a
// stone, so the move leaves the level), landing in the store grants an
// extra turn (a same-mover exit), and captures take the opposite pit.
// Rules implemented (documented variant):
//
//  * pits 0–5 mover, 6–11 opponent, positions normalised to the mover;
//    stores are score, not state — exactly like captured stones in awari;
//  * sowing is counter-clockwise over own pits, own store, opponent pits
//    (the opponent's store is skipped; the origin pit is resown on later
//    laps);
//  * every stone sown into the own store is banked (+1 reward) and
//    removed from the board;
//  * last stone in the own store: the same player moves again;
//  * last stone in an own pit that was empty, with a non-empty opposite
//    pit (own pit i faces opponent pit 11 − i): both pits are banked;
//  * a player whose row is empty at their turn loses every stone on the
//    board to the opponent.
#pragma once

#include <string>
#include <vector>

#include "retra/index/board_index.hpp"

namespace retra::game::kalah {

using idx::Board;
using idx::kPits;

struct AppliedMove {
  bool legal = false;
  /// Stones banked by the mover: store sows plus any capture.
  int banked = 0;
  /// The same player moves again (last stone fell into the store).
  bool extra_turn = false;
  /// Successor board; rotated to the next mover unless extra_turn.
  Board after{};
};

/// Applies the move from `pit` (0–5).
AppliedMove apply_move(const Board& board, int pit);

struct MoveList {
  struct Entry {
    int pit;
    int banked;
    bool extra_turn;
    Board after;
  };
  Entry items[6];
  int count = 0;

  const Entry* begin() const { return items; }
  const Entry* end() const { return items + count; }
};
MoveList legal_moves(const Board& board);

/// True when the mover's row is empty (the game is over).
bool is_terminal(const Board& board);

/// Terminal reward: the opponent sweeps the board, so −(stones on board).
int terminal_reward(const Board& board);

/// Same-level predecessor edges: boards from which a legal move that
/// banks nothing (never touches the store, captures nothing) reaches
/// `board`.  Cleared and reused like awari's.
void predecessors(const Board& board, std::vector<Board>& out);

}  // namespace retra::game::kalah

// Synthetic multi-level graph games.
//
// Random instances of the level-game structure with the same shape as awari
// (zero-reward edges inside a level, rewarded exits to lower levels,
// terminal options) but arbitrary topology — including dense cycles and
// degenerate nodes.  The property-test suite solves thousands of these with
// three independent algorithms and demands identical values; they are also
// small enough to exercise every corner of the distributed engine.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/game/level_game.hpp"
#include "retra/support/numeric.hpp"

namespace retra::game {

struct GraphGameConfig {
  /// Levels 0..levels-1; level 0 has terminal-only nodes.
  int levels = 4;
  /// Size of level 0; level l has about size0 * growth^l nodes.
  std::uint64_t size0 = 16;
  double growth = 2.0;
  /// Mean number of same-level successor edges per node (Poisson-ish).
  double edge_mean = 2.5;
  /// Mean number of exits per node.
  double exit_mean = 1.0;
  /// Probability that a node keeps a terminal exit (in addition to or
  /// instead of lookups); nodes that would end up with no option at all
  /// always receive one so the game is well-formed.
  double terminal_chance = 0.15;
  /// Probability that a lookup exit keeps the same player to move
  /// (kalah-style extra turn): option value reward + v instead of
  /// reward − v.
  double same_mover_chance = 0.2;
  /// Exit rewards are drawn uniformly from [-reward_range, reward_range].
  int reward_range = 3;
  std::uint64_t seed = 1;
};

class GraphLevel {
 public:
  int level() const { return level_; }
  std::uint64_t size() const { return succs_.size(); }
  int max_value() const { return max_value_; }

  template <typename ExitFn, typename SuccFn>
  void visit_options(idx::Index index, ExitFn&& on_exit,
                     SuccFn&& on_succ) const {
    for (const Exit& e : exits_[index]) on_exit(e);
    for (const std::uint32_t s : succs_[index]) {
      on_succ(static_cast<idx::Index>(s));
    }
  }

  /// Index-addressed levels have no board to walk; the cursor is a plain
  /// forwarder so scanning code can use game.option_cursor() uniformly
  /// across game adapters.
  class OptionCursor {
   public:
    explicit OptionCursor(const GraphLevel& game) : game_(game) {}

    template <typename ExitFn, typename SuccFn>
    void visit_options(idx::Index index, ExitFn&& on_exit,
                       SuccFn&& on_succ) {
      game_.visit_options(index, static_cast<ExitFn&&>(on_exit),
                          static_cast<SuccFn&&>(on_succ));
    }

   private:
    const GraphLevel& game_;
  };

  OptionCursor option_cursor() const { return OptionCursor(*this); }

  /// Bulk scan counterpart of AwariLevel::scan.
  template <typename Fn>
  void scan(Fn&& fn) const {
    for (std::uint64_t i = 0; i < size(); ++i) {
      fn(static_cast<idx::Index>(i), [&](auto&& on_exit, auto&& on_succ) {
        visit_options(i, on_exit, on_succ);
      });
    }
  }

  template <typename PredFn>
  void visit_predecessors(idx::Index index, PredFn&& on_pred) const {
    for (const std::uint32_t p : preds_[index]) {
      on_pred(static_cast<idx::Index>(p));
    }
  }

  const std::vector<Exit>& exits_of(idx::Index index) const {
    return exits_[index];
  }
  const std::vector<std::uint32_t>& succs_of(idx::Index index) const {
    return succs_[index];
  }

  /// Hand-built level for tests: explicit successor lists and exits; the
  /// predecessor lists and the value bound are derived.  `lower_bounds[l]`
  /// must bound |value| of level l for every referenced lower level.
  static GraphLevel custom(int level,
                           std::vector<std::vector<std::uint32_t>> succs,
                           std::vector<std::vector<Exit>> exits,
                           const std::vector<int>& lower_bounds = {});

 private:
  friend class GraphGame;

  int level_ = 0;
  int max_value_ = 0;
  std::vector<std::vector<std::uint32_t>> succs_;
  std::vector<std::vector<std::uint32_t>> preds_;
  std::vector<std::vector<Exit>> exits_;
};

class GraphGame {
 public:
  explicit GraphGame(const GraphGameConfig& config);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const GraphLevel& level(int l) const {
    return levels_[support::to_size(l)];
  }

 private:
  std::vector<GraphLevel> levels_;
};

}  // namespace retra::game

// LevelGame adapter for kalah: one instance per stone count.
//
// Every banking move (store sow, capture, extra turn) leaves the level,
// so exits dominate; the same-level graph is the sparse set of in-row
// sows.  Extra turns surface as same-mover exits (Exit::same_mover).
#pragma once

#include <vector>

#include "retra/game/kalah.hpp"
#include "retra/game/level_game.hpp"

namespace retra::game {

class KalahLevel {
 public:
  explicit KalahLevel(int stones)
      : stones_(stones), size_(idx::level_size(stones)) {}

  int level() const { return stones_; }
  std::uint64_t size() const { return size_; }
  int max_value() const { return stones_; }

  template <typename ExitFn, typename SuccFn>
  void visit_options_board(const Board& board, ExitFn&& on_exit,
                           SuccFn&& on_succ) const {
    if (kalah::is_terminal(board)) {
      on_exit(Exit{static_cast<std::int16_t>(kalah::terminal_reward(board)),
                   Exit::kTerminal, 0, false});
      return;
    }
    for (const auto& m : kalah::legal_moves(board)) {
      // stones_ − banked is m.after's level, so rank without re-summing.
      if (m.banked == 0 && !m.extra_turn) {
        on_succ(idx::rank_in_level(stones_, m.after));
        continue;
      }
      Exit exit;
      exit.reward = static_cast<std::int16_t>(m.banked);
      exit.lower_level = static_cast<std::int16_t>(stones_ - m.banked);
      exit.lower_index = idx::rank_in_level(stones_ - m.banked, m.after);
      exit.same_mover = m.extra_turn;
      on_exit(exit);
    }
  }

  template <typename ExitFn, typename SuccFn>
  void visit_options(idx::Index index, ExitFn&& on_exit,
                     SuccFn&& on_succ) const {
    visit_options_board(idx::unrank(stones_, index),
                        static_cast<ExitFn&&>(on_exit),
                        static_cast<SuccFn&&>(on_succ));
  }

  template <typename Fn>
  void scan(Fn&& fn) const {
    Board board = idx::first_board(stones_);
    for (std::uint64_t i = 0; i < size_; ++i) {
      fn(static_cast<idx::Index>(i), [&](auto&& on_exit, auto&& on_succ) {
        visit_options_board(board, on_exit, on_succ);
      });
      if (i + 1 < size_) idx::next_board(board);
    }
  }

  /// Stateful option visitor for monotonically increasing indices; see
  /// AwariLevel::OptionCursor.
  class OptionCursor {
   public:
    explicit OptionCursor(const KalahLevel& game)
        : game_(game), walker_(game.level()) {}

    template <typename ExitFn, typename SuccFn>
    void visit_options(idx::Index index, ExitFn&& on_exit,
                       SuccFn&& on_succ) {
      game_.visit_options_board(walker_.seek(index),
                                static_cast<ExitFn&&>(on_exit),
                                static_cast<SuccFn&&>(on_succ));
    }

   private:
    const KalahLevel& game_;
    idx::LevelWalker walker_;
  };

  OptionCursor option_cursor() const { return OptionCursor(*this); }

  template <typename PredFn>
  void visit_predecessors_board(const Board& board, PredFn&& on_pred) const {
    static thread_local std::vector<Board> scratch;
    kalah::predecessors(board, scratch);
    // Same-level predecessors: rank with the known stone count.
    for (const Board& q : scratch) on_pred(idx::rank_in_level(stones_, q));
  }

  template <typename PredFn>
  void visit_predecessors(idx::Index index, PredFn&& on_pred) const {
    visit_predecessors_board(idx::unrank(stones_, index),
                             static_cast<PredFn&&>(on_pred));
  }

 private:
  int stones_;
  std::uint64_t size_;
};

/// Game-family adapter: level(l) is the l-stone kalah level.
struct KalahFamily {
  KalahLevel level(int stones) const { return KalahLevel(stones); }
};

}  // namespace retra::game

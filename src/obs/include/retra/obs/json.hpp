// Minimal JSON support for observability artifacts.
//
// The repo's bench artifacts (BENCH_*.json) and metric dumps must be
// producible and checkable without external dependencies, so this is a
// small, strict subset implementation:
//
//   * JsonWriter — streaming writer with correct string escaping and
//     comma/nesting management; numbers are emitted either as unsigned
//     integers (exact) or as shortest-round-trip doubles;
//   * JsonValue / json_parse — recursive-descent parser into a plain
//     document tree, used by `retra_bench --validate` and the round-trip
//     tests.  Integers up to 2^64-1 are preserved exactly alongside the
//     double view.
//
// Not supported (and not needed for artifacts we write): non-UTF-8 input
// validation, \u escapes outside ASCII, duplicate-key detection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace retra::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next value inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_;  // per nesting level: no element emitted yet
  bool pending_key_ = false;
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Exact value when the token was a non-negative integer that fits
  /// std::uint64_t (counters larger than 2^53 survive a round-trip).
  bool is_unsigned = false;
  std::uint64_t unsigned_value = 0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order
  std::vector<JsonValue> array;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses `text` into `out`; on failure returns false and, when `error`
/// is non-null, describes the first problem (with byte offset).
bool json_parse(std::string_view text, JsonValue& out, std::string* error);

}  // namespace retra::obs

// Observability: the structured metrics registry.
//
// Every quantity the paper's evaluation tables are built from — messages,
// records per combined message, retransmissions, lookup traffic, per-level
// build times — is declared once in the metric catalog below and emitted
// through this registry.  Design constraints, in order:
//
//   * near-zero cost when disabled: call sites use the RETRA_OBS_* macros,
//     which compile to nothing under -DRETRA_METRICS=OFF (the arguments
//     are not even evaluated);
//   * thread-safe: one rank per OS thread is the production configuration,
//     so all slots are relaxed atomics — increments never synchronise;
//   * hot-path friendly: per-record quantities are published in bulk at
//     level or flush boundaries (see para::finalize_level_info and
//     msg::Combiner::flush); only per-message and rarer events increment
//     inline;
//   * machine-readable: snapshot() captures all values as plain data and
//     dump_json() renders the "retra-metrics-v1" document documented in
//     docs/METRICS.md.  Every catalog entry must be described there —
//     enforced by tests/test_obs.cpp.
//
// The catalog is a positional array indexed by obs::Id, so metric lookup
// is an array index, uniqueness of names is a static_assert, and the docs
// coverage check is a plain loop.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

// CMake defines RETRA_METRICS_ENABLED from the RETRA_METRICS option;
// standalone inclusion defaults to enabled.
#ifndef RETRA_METRICS_ENABLED
#define RETRA_METRICS_ENABLED 1
#endif

namespace retra::obs {

enum class Kind : int { kCounter, kGauge, kTimer, kHistogram };

constexpr std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kTimer:
      return "timer";
    case Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

/// One catalog entry.  `table` names the paper table/figure the metric
/// backs ("-" when it is operational only); docs/METRICS.md mirrors all
/// fields.
struct Desc {
  std::string_view name;
  Kind kind;
  std::string_view unit;
  std::string_view component;
  std::string_view table;
  std::string_view help;
};

/// Metric identifiers; position must match the catalog below.
enum class Id : int {
  // msg.combiner — the paper's central technique.
  kCombinerRecords,
  kCombinerMessages,
  kCombinerPayloadBytes,
  kCombinerRecordsPerMessage,
  // msg.reliable — reliability sublayer over the lossy transport.
  kReliableDataSent,
  kReliableRetries,
  kReliableAcksSent,
  kReliableDelivered,
  kReliableDuplicates,
  kReliableCorruptDropped,
  kReliableOutOfOrderHeld,
  // para.engine — per-level engine totals (published in bulk).
  kEngineUpdatesLocal,
  kEngineUpdatesRemote,
  kEngineLookupsLocal,
  kEngineLookupsRemote,
  kEngineRepliesSent,
  kEngineAssignments,
  kEngineZeroFilled,
  kEngineMessagesSent,
  kEnginePayloadBytes,
  // para.engine — intra-rank parallel phase kernels (P1).
  kEngineScanPositions,
  kEngineScanChunks,
  kEngineScanThreads,
  kEngineScanSeconds,
  kEngineSeedSeconds,
  kEngineZeroFillSeconds,
  kEngineDrainSeconds,
  kEngineDrainThreads,
  // para.engine — vectorized sweep kernels (P2).
  kEngineKernelLanes,
  kEngineKernelSweepPositions,
  kEngineKernelSweepMatches,
  // para.level_store — out-of-core level storage (published in bulk).
  kEngineStoreLevelsSpilled,
  kEngineStoreSpillBytes,
  kEngineStoreFaults,
  kEngineStoreFaultBytes,
  kEngineStoreEvictions,
  kEngineStoreQueueSpilledRecords,
  kEngineStoreResidentBytes,
  kEngineStorePeakResidentBytes,
  // para.exchange — shard replication (ablation A3).
  kExchangeRecordsBroadcast,
  // para.dist_db — lower-level database reads.
  kDistDbLocalReads,
  // para.checkpoint — checkpoint/restart I/O.
  kCheckpointBytesWritten,
  kCheckpointBytesRead,
  kCheckpointSaveSeconds,
  kCheckpointLoadSeconds,
  // para.driver — level orchestration.
  kDriverRanks,
  kDriverLevelsBuilt,
  kDriverPositions,
  kDriverRounds,
  kDriverLevelSeconds,
  // db.io — RTRADB03 block compression at save time (C1).
  kDbCompressBlocksRaw,
  kDbCompressBlocksRle,
  kDbCompressBlocksFreq,
  kDbCompressBytesIn,
  kDbCompressBytesOut,
  // serve.query — the query-serving subsystem (QueryService).
  kServeLookups,
  kServeBatchSize,
  kServeLevelFaults,
  kServeLevelEvictions,
  kServeResidentBytes,
  kServeFaultSeconds,
  // serve.query — the block cache fronting RTRADB03 files (C1).
  kServeBlockHits,
  kServeBlockFaults,
  kServeBlockEvictions,
  kServeBlockResidentBytes,
  kServeBlockDecodeSeconds,
  // net.server — the retra-net-v1 TCP server.
  kNetConnections,
  kNetRequests,
  kNetErrors,
  kNetShed,
  kNetHotHits,
  kNetBytesIn,
  kNetBytesOut,
  kNetCoalescedLookups,
  kNetQueryMicros,
  kNetBatchMicros,
  kNetOtherMicros,
  kCount
};

inline constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(Id::kCount);

inline constexpr std::array<Desc, kMetricCount> kCatalog = {{
    {"combiner.records", Kind::kCounter, "records", "msg.combiner", "T3",
     "records appended to combining buffers (all tags)"},
    {"combiner.messages", Kind::kCounter, "messages", "msg.combiner", "T3/F2",
     "combined messages shipped (buffer flushes)"},
    {"combiner.payload_bytes", Kind::kCounter, "bytes", "msg.combiner",
     "T3/F2", "payload bytes shipped in combined messages"},
    {"combiner.records_per_message", Kind::kHistogram, "records",
     "msg.combiner", "T3/F2",
     "records packed into each combined message (combining factor)"},
    {"reliable.data_sent", Kind::kCounter, "frames", "msg.reliable", "-",
     "DATA frames first transmissions (not retries)"},
    {"reliable.retries", Kind::kCounter, "frames", "msg.reliable", "-",
     "DATA frames retransmitted after an ack timeout"},
    {"reliable.acks_sent", Kind::kCounter, "frames", "msg.reliable", "-",
     "cumulative ACK frames sent"},
    {"reliable.delivered", Kind::kCounter, "messages", "msg.reliable", "-",
     "logical messages delivered in order to the engine"},
    {"reliable.duplicates_suppressed", Kind::kCounter, "frames",
     "msg.reliable", "-", "duplicate DATA frames dropped by sequence number"},
    {"reliable.corrupt_dropped", Kind::kCounter, "frames", "msg.reliable",
     "-", "frames dropped on checksum mismatch"},
    {"reliable.out_of_order_held", Kind::kCounter, "frames", "msg.reliable",
     "-", "frames buffered until their sequence gap closed"},
    {"engine.updates_local", Kind::kCounter, "records", "para.rank_engine",
     "T3", "retrograde updates applied in place (no message)"},
    {"engine.updates_remote", Kind::kCounter, "records", "para.rank_engine",
     "T3", "retrograde update records sent to other ranks"},
    {"engine.lookups_local", Kind::kCounter, "records", "para.rank_engine",
     "T3/A3", "capture exits resolved against local shards"},
    {"engine.lookups_remote", Kind::kCounter, "records", "para.rank_engine",
     "T3/A3", "combined lookup records sent to owner ranks"},
    {"engine.replies_sent", Kind::kCounter, "records", "para.rank_engine",
     "T3/A3", "combined reply records answering remote lookups"},
    {"engine.assignments", Kind::kCounter, "positions", "para.rank_engine",
     "T5", "positions finalised with a nonzero-magnitude value"},
    {"engine.zero_filled", Kind::kCounter, "positions", "para.rank_engine",
     "T5", "positions zero-filled after all magnitudes"},
    {"engine.messages_sent", Kind::kCounter, "messages", "para.rank_engine",
     "T3/F2", "combined messages shipped by the engines' combiners"},
    {"engine.payload_bytes", Kind::kCounter, "bytes", "para.rank_engine",
     "T3/F2", "payload bytes shipped by the engines' combiners"},
    {"engine.scan.positions", Kind::kCounter, "positions",
     "para.rank_engine", "P1", "positions visited by Init scans"},
    {"engine.scan.chunks", Kind::kCounter, "chunks", "para.rank_engine",
     "P1", "worker-pool chunks executed by parallel engine phases"},
    {"engine.scan.threads", Kind::kGauge, "threads", "para.rank_engine",
     "P1",
     "scan-phase threads per rank of the most recently constructed engine"},
    {"engine.scan.seconds", Kind::kTimer, "seconds", "para.rank_engine",
     "P1", "host wall time in Init scans"},
    {"engine.seed.seconds", Kind::kTimer, "seconds", "para.rank_engine",
     "P1", "host wall time in magnitude seeding sweeps"},
    {"engine.zero_fill.seconds", Kind::kTimer, "seconds", "para.rank_engine",
     "P1", "host wall time in zero-fill sweeps"},
    {"engine.drain.seconds", Kind::kTimer, "seconds", "para.rank_engine",
     "P1", "host wall time draining propagation queues"},
    {"engine.drain.threads", Kind::kGauge, "threads", "para.rank_engine",
     "P1",
     "drain-phase threads per rank of the most recently constructed engine"},
    {"engine.kernel.lanes", Kind::kGauge, "lanes", "para.rank_engine", "P2",
     "int16 lanes of the active sweep-kernel backend (1 = scalar)"},
    {"engine.kernel.sweep_positions", Kind::kCounter, "positions",
     "para.rank_engine", "P2",
     "positions examined by the vectorized seed/zero-fill sweep kernels"},
    {"engine.kernel.sweep_matches", Kind::kCounter, "positions",
     "para.rank_engine", "P2",
     "positions the sweep kernels selected (seeds plus zero-fills)"},
    {"engine.store.levels_spilled", Kind::kCounter, "levels",
     "para.level_store", "OC1",
     "completed level shards written to scratch files"},
    {"engine.store.spill_bytes", Kind::kCounter, "bytes", "para.level_store",
     "OC1", "stored bytes written while spilling completed shards"},
    {"engine.store.faults", Kind::kCounter, "blocks", "para.level_store",
     "OC1", "blocks faulted back from scratch files on demand"},
    {"engine.store.fault_bytes", Kind::kCounter, "bytes", "para.level_store",
     "OC1", "decoded bytes faulted back from scratch files"},
    {"engine.store.evictions", Kind::kCounter, "blocks", "para.level_store",
     "OC1", "resident blocks dropped to respect the working-set budget"},
    {"engine.store.queue_spilled_records", Kind::kCounter, "records",
     "para.level_store", "OC1",
     "drain-queue entries spilled to append-only run files"},
    {"engine.store.resident_bytes", Kind::kGauge, "bytes",
     "para.level_store", "OC1",
     "decoded completed-level bytes resident on the busiest rank"},
    {"engine.store.peak_resident_bytes", Kind::kGauge, "bytes",
     "para.level_store", "OC1",
     "peak decoded completed-level residency of the busiest rank"},
    {"exchange.records_broadcast", Kind::kCounter, "records",
     "para.shard_exchange", "A3",
     "shard records broadcast while replicating a solved level"},
    {"dist_db.local_reads", Kind::kCounter, "lookups", "para.dist_db",
     "T3/A3", "lower-level value reads served from rank-local storage"},
    {"checkpoint.bytes_written", Kind::kCounter, "bytes", "para.checkpoint",
     "-", "bytes written by checkpoint_save_level (levels + manifests)"},
    {"checkpoint.bytes_read", Kind::kCounter, "bytes", "para.checkpoint",
     "-", "bytes read back by checkpoint_load"},
    {"checkpoint.save_seconds", Kind::kTimer, "seconds", "para.checkpoint",
     "-", "wall time spent writing checkpoints"},
    {"checkpoint.load_seconds", Kind::kTimer, "seconds", "para.checkpoint",
     "-", "wall time spent loading checkpoints"},
    {"driver.ranks", Kind::kGauge, "ranks", "para.driver", "F1",
     "processor count of the most recent build"},
    {"driver.levels_built", Kind::kCounter, "levels", "para.driver", "T2",
     "levels completed by build_parallel / build_parallel_simulated"},
    {"driver.positions", Kind::kCounter, "positions", "para.driver", "T1",
     "positions solved across completed levels"},
    {"driver.rounds", Kind::kCounter, "rounds", "para.driver", "T2",
     "BSP rounds (or async supersteps) across completed levels"},
    {"driver.level_seconds", Kind::kTimer, "seconds", "para.driver", "T2",
     "host wall time per completed level build"},
    {"db.compress.blocks_raw", Kind::kCounter, "blocks", "db.io", "C1",
     "blocks stored raw because compression did not pay"},
    {"db.compress.blocks_rle", Kind::kCounter, "blocks", "db.io", "C1",
     "blocks stored run-length coded"},
    {"db.compress.blocks_freq", Kind::kCounter, "blocks", "db.io", "C1",
     "blocks stored canonical-prefix (frequency) coded"},
    {"db.compress.bytes_in", Kind::kCounter, "bytes", "db.io", "C1",
     "bit-packed bytes presented to the block encoder"},
    {"db.compress.bytes_out", Kind::kCounter, "bytes", "db.io", "C1",
     "stored bytes written after per-block scheme choice"},
    {"serve.lookups", Kind::kCounter, "lookups", "serve.query", "-",
     "positions answered by QueryService (single and batched)"},
    {"serve.batch_size", Kind::kHistogram, "lookups", "serve.query", "-",
     "lookups per values() batch"},
    {"serve.level_faults", Kind::kCounter, "levels", "serve.query", "-",
     "levels materialised from the database file on demand"},
    {"serve.level_evictions", Kind::kCounter, "levels", "serve.query", "-",
     "resident levels evicted to stay within the byte budget"},
    {"serve.resident_bytes", Kind::kGauge, "bytes", "serve.query", "-",
     "packed level payload bytes currently resident"},
    {"serve.fault_seconds", Kind::kTimer, "seconds", "serve.query", "-",
     "wall time spent reading and unpacking faulted levels"},
    {"serve.blockcache.hits", Kind::kCounter, "touches", "serve.query", "C1",
     "block-cache touches answered by an already-resident block"},
    {"serve.blockcache.faults", Kind::kCounter, "blocks", "serve.query",
     "C1", "blocks read, decoded and made resident on demand"},
    {"serve.blockcache.evictions", Kind::kCounter, "blocks", "serve.query",
     "C1", "resident blocks evicted to stay within the byte budget"},
    {"serve.blockcache.resident_bytes", Kind::kGauge, "bytes", "serve.query",
     "C1", "decoded block bytes currently resident for blocked files"},
    {"serve.blockcache.decode_seconds", Kind::kTimer, "seconds",
     "serve.query", "C1",
     "wall time spent reading and decoding faulted blocks"},
    {"net.connections", Kind::kCounter, "connections", "net.server", "-",
     "TCP connections accepted since server start"},
    {"net.requests", Kind::kCounter, "frames", "net.server", "-",
     "request frames admitted past admission control"},
    {"net.errors", Kind::kCounter, "frames", "net.server", "-",
     "ERROR responses sent (malformed frames, bad addresses, sheds)"},
    {"net.shed", Kind::kCounter, "frames", "net.server", "-",
     "requests refused with BUSY by admission control"},
    {"net.hot_hits", Kind::kCounter, "lookups", "net.server", "-",
     "lookups answered by the shared hot-level tier"},
    {"net.bytes_in", Kind::kCounter, "bytes", "net.server", "-",
     "bytes read from client sockets"},
    {"net.bytes_out", Kind::kCounter, "bytes", "net.server", "-",
     "bytes written to client sockets"},
    {"net.coalesced_lookups", Kind::kHistogram, "lookups", "net.server", "-",
     "lookups per coalesced Store batch (cross-connection coalescing)"},
    {"net.query_us", Kind::kHistogram, "microseconds", "net.server", "-",
     "QUERY latency from admission to response enqueue"},
    {"net.batch_us", Kind::kHistogram, "microseconds", "net.server", "-",
     "BATCH_QUERY latency from admission to response enqueue"},
    {"net.other_us", Kind::kHistogram, "microseconds", "net.server", "-",
     "PING/STATS latency from admission to response enqueue"},
}};

constexpr const Desc& desc(Id id) {
  return kCatalog[static_cast<std::size_t>(id)];
}

/// Metric names must be unique — the registry, the JSON artifacts, and the
/// docs reference all key off the name.
constexpr bool catalog_names_unique() {
  for (std::size_t i = 0; i < kCatalog.size(); ++i) {
    for (std::size_t j = i + 1; j < kCatalog.size(); ++j) {
      if (kCatalog[i].name == kCatalog[j].name) return false;
    }
  }
  return true;
}
static_assert(catalog_names_unique(), "duplicate metric name in obs catalog");

/// Histogram buckets are log2-spaced: bucket b counts values v with
/// bit_width(v) == b, i.e. bucket 0 is {0}, bucket b is [2^(b-1), 2^b);
/// values at or beyond 2^(kHistogramBuckets-2) clamp into the last bucket.
inline constexpr std::size_t kHistogramBuckets = 33;

constexpr std::size_t histogram_bucket(std::uint64_t value) {
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

/// Plain-data copy of one metric's state.  `value` is the counter/gauge
/// value, or accumulated nanoseconds for timers; `count`/`sum`/`buckets`
/// are populated for timers (count) and histograms (all three).
struct MetricValue {
  std::uint64_t value = 0;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double seconds() const { return static_cast<double>(value) * 1e-9; }
  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

/// Point-in-time copy of the whole registry; subtract two snapshots to get
/// the metrics of an interval (gauges keep the newer value).
struct Snapshot {
  std::array<MetricValue, kMetricCount> metrics{};

  const MetricValue& operator[](Id id) const {
    return metrics[static_cast<std::size_t>(id)];
  }
  MetricValue& operator[](Id id) {
    return metrics[static_cast<std::size_t>(id)];
  }

  Snapshot operator-(const Snapshot& base) const;
};

class Registry {
 public:
  /// The process-wide registry the RETRA_OBS_* macros target.
  static Registry& instance();

  void add(Id id, std::uint64_t n = 1) {
    slot(id).value.fetch_add(n, std::memory_order_relaxed);
  }
  void set(Id id, std::uint64_t v) {
    slot(id).value.store(v, std::memory_order_relaxed);
  }
  void observe(Id id, std::uint64_t v) {
    Slot& s = slot(id);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  }
  void add_time_ns(Id id, std::uint64_t ns) {
    Slot& s = slot(id);
    s.value.fetch_add(ns, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
  }

  Snapshot snapshot() const;

  /// Zeroes every slot.  Test-only: not atomic with respect to concurrent
  /// increments.
  void reset();

 private:
  struct Slot {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };

  Slot& slot(Id id) { return slots_[static_cast<std::size_t>(id)]; }

  std::array<Slot, kMetricCount> slots_;
};

/// Convenience free functions over the process registry.
Snapshot snapshot();
void reset();

/// Renders a snapshot as the "retra-metrics-v1" JSON document (see
/// docs/METRICS.md).  Zero-valued metrics are included: the document shape
/// never depends on the workload.
std::string dump_json(const Snapshot& snap);

class JsonWriter;  // retra/obs/json.hpp

/// Emits the snapshot's metric array (the value of the "metrics" key of
/// the retra-metrics-v1 document) into an open writer.  dump_json() and
/// the BENCH_*.json artifacts share this, so the per-metric shape is
/// identical everywhere.
void write_metrics_array(JsonWriter& w, const Snapshot& snap);

/// RAII timer feeding a Kind::kTimer metric (nanosecond resolution).
class ScopedTimer {
 public:
  explicit ScopedTimer(Id id);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Id id_;
  std::uint64_t start_ns_;
};

}  // namespace retra::obs

// Call-site macros.  With metrics disabled they expand to a no-op that
// does not evaluate its arguments (sizeof is unevaluated), so there is no
// atomic traffic, no clock read, and no dead argument computation.
#if RETRA_METRICS_ENABLED
#define RETRA_OBS_ADD(id, n) ::retra::obs::Registry::instance().add((id), (n))
#define RETRA_OBS_INC(id) ::retra::obs::Registry::instance().add((id), 1)
#define RETRA_OBS_SET(id, v) ::retra::obs::Registry::instance().set((id), (v))
#define RETRA_OBS_OBSERVE(id, v) \
  ::retra::obs::Registry::instance().observe((id), (v))
#define RETRA_OBS_TIME_NS(id, ns) \
  ::retra::obs::Registry::instance().add_time_ns((id), (ns))
#define RETRA_OBS_SCOPED_TIMER(var, id) const ::retra::obs::ScopedTimer var(id)
#else
#define RETRA_OBS_ADD(id, n) ((void)sizeof(id), (void)sizeof(n))
#define RETRA_OBS_INC(id) ((void)sizeof(id))
#define RETRA_OBS_SET(id, v) ((void)sizeof(id), (void)sizeof(v))
#define RETRA_OBS_OBSERVE(id, v) ((void)sizeof(id), (void)sizeof(v))
#define RETRA_OBS_TIME_NS(id, ns) ((void)sizeof(id), (void)sizeof(ns))
#define RETRA_OBS_SCOPED_TIMER(var, id) ((void)sizeof(id))
#endif

#include "retra/obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "retra/support/check.hpp"

namespace retra::obs {

// ---------------------------------------------------------------------
// Writer.

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separator for this value
  }
  if (first_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RETRA_CHECK_MSG(!first_.empty(), "end_object with nothing open");
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RETRA_CHECK_MSG(!first_.empty(), "end_array with nothing open");
  first_.pop_back();
  out_ += ']';
  return *this;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  append_escaped(out_, k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  append_escaped(out_, v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[40];
  // %.17g round-trips every finite double; JSON has no inf/nan.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

// ---------------------------------------------------------------------
// Parser.

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (error_ && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out.type = JsonValue::Type::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("dangling escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // We only ever write ASCII; anything else degrades to '?'.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    errno = 0;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      pos_ = start;
      return fail("bad number");
    }
    out.type = JsonValue::Type::kNumber;
    // Preserve exact non-negative integers (large counters).
    if (token.find_first_of(".eE-") == std::string::npos) {
      errno = 0;
      char* uend = nullptr;
      const std::uint64_t u = std::strtoull(token.c_str(), &uend, 10);
      if (uend == token.c_str() + token.size() && errno != ERANGE) {
        out.is_unsigned = true;
        out.unsigned_value = u;
      }
    }
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  if (error) error->clear();
  return Parser(text, error).parse(out);
}

}  // namespace retra::obs

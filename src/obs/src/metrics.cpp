#include "retra/obs/metrics.hpp"

#include <chrono>

#include "retra/obs/json.hpp"

namespace retra::obs {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const Slot& s = slots_[i];
    MetricValue& m = snap.metrics[i];
    m.value = s.value.load(std::memory_order_relaxed);
    m.count = s.count.load(std::memory_order_relaxed);
    m.sum = s.sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      m.buckets[b] = s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Registry::reset() {
  for (Slot& s : slots_) {
    s.value.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& bucket : s.buckets) bucket.store(0, std::memory_order_relaxed);
  }
}

Snapshot Snapshot::operator-(const Snapshot& base) const {
  Snapshot delta = *this;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    if (kCatalog[i].kind == Kind::kGauge) continue;  // gauges: latest value
    MetricValue& m = delta.metrics[i];
    const MetricValue& b = base.metrics[i];
    m.value -= b.value;
    m.count -= b.count;
    m.sum -= b.sum;
    for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
      m.buckets[k] -= b.buckets[k];
    }
  }
  return delta;
}

Snapshot snapshot() { return Registry::instance().snapshot(); }

void reset() { Registry::instance().reset(); }

void write_metrics_array(JsonWriter& w, const Snapshot& snap) {
  w.begin_array();
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const Desc& d = kCatalog[i];
    const MetricValue& m = snap.metrics[i];
    w.begin_object();
    w.kv("name", d.name);
    w.kv("kind", kind_name(d.kind));
    w.kv("unit", d.unit);
    w.kv("component", d.component);
    switch (d.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        w.kv("value", m.value);
        break;
      case Kind::kTimer:
        w.kv("seconds", m.seconds());
        w.kv("count", m.count);
        break;
      case Kind::kHistogram: {
        w.kv("count", m.count);
        w.kv("sum", m.sum);
        w.kv("mean", m.mean());
        // Trailing all-zero buckets are elided; bucket b covers
        // [2^(b-1), 2^b) with bucket 0 = {0}.
        std::size_t last = 0;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          if (m.buckets[b] != 0) last = b + 1;
        }
        w.key("buckets").begin_array();
        for (std::size_t b = 0; b < last; ++b) w.value(m.buckets[b]);
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
}

std::string dump_json(const Snapshot& snap) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "retra-metrics-v1");
  w.key("metrics");
  write_metrics_array(w, snap);
  w.end_object();
  return w.str();
}

ScopedTimer::ScopedTimer(Id id)
    : id_(id),
      start_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

ScopedTimer::~ScopedTimer() {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  Registry::instance().add_time_ns(id_, now - start_ns_);
}

}  // namespace retra::obs

#include "retra/serve/file_source.hpp"

#include <utility>

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::serve {

using support::to_size;

FileSource::FileSource(Passkey, std::FILE* file, db::FileIndex index)
    : file_(file), index_(std::move(index)) {
  resident_.resize(index_.levels.size());
  for (std::size_t l = 0; l < index_.levels.size(); ++l) {
    resident_[l].resize(to_size(index_.levels[l].block_count()));
  }
}

FileSource::~FileSource() {
  if (file_) std::fclose(file_);
}

FileSource::OpenResult FileSource::open(const std::string& path) {
  OpenResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) {
    result.error = "cannot open: " + path;
    return result;
  }
  db::FileIndex index = db::scan(file);
  if (!index.ok) {
    std::fclose(file);
    result.error = index.error;
    return result;
  }
  result.ok = true;
  result.source =
      std::make_unique<FileSource>(Passkey{}, file, std::move(index));
  return result;
}

std::uint64_t FileSource::level_size(int level) const {
  RETRA_CHECK_MSG(covers(level), "level not covered by this file");
  return index_.levels[to_size(level)].size;
}

int FileSource::block_count(int level) const {
  RETRA_CHECK_MSG(covers(level), "level not covered by this file");
  return index_.levels[to_size(level)].block_count();
}

int FileSource::block_of(int level, idx::Index index) const {
  RETRA_CHECK_MSG(covers(level), "level not covered by this file");
  const db::LevelLocation& location = index_.levels[to_size(level)];
  if (location.block_positions == 0) return 0;
  return static_cast<int>(index / location.block_positions);
}

std::uint64_t FileSource::block_begin(int level, int block) const {
  RETRA_CHECK_MSG(covers(level), "level not covered by this file");
  return index_.levels[to_size(level)].block_begin(block);
}

std::uint64_t FileSource::block_bytes(int level, int block) const {
  RETRA_CHECK_MSG(covers(level), "level not covered by this file");
  if (const auto& slot = resident_[to_size(level)][to_size(block)]; slot) {
    return slot->memory_bytes();
  }
  return index_.levels[to_size(level)].block_decoded_bytes(block);
}

std::uint64_t FileSource::level_bytes(int level) const {
  RETRA_CHECK_MSG(covers(level), "level not covered by this file");
  std::uint64_t total = 0;
  for (int b = 0; b < block_count(level); ++b) {
    total += block_bytes(level, b);
  }
  return total;
}

bool FileSource::is_block_resident(int level, int block) const {
  if (!covers(level)) return false;
  return resident_[to_size(level)][to_size(block)].has_value();
}

bool FileSource::is_resident(int level) const {
  if (!covers(level)) return false;
  const auto& blocks = resident_[to_size(level)];
  for (const auto& slot : blocks) {
    if (!slot) return false;
  }
  return !blocks.empty();
}

const db::CompactLevel& FileSource::ensure_block(int level, int block) {
  RETRA_CHECK_MSG(covers(level), "level not covered by this file");
  const db::LevelLocation& location = index_.levels[to_size(level)];
  RETRA_CHECK_MSG(block >= 0 && block < location.block_count(),
                  "block not covered by this level");
  auto& slot = resident_[to_size(level)][to_size(block)];
  if (!slot) {
    db::LevelReadResult read = db::read_block(file_, location, block);
    RETRA_CHECK_MSG(read.ok, read.error);
    slot.emplace(std::move(read.level));
    resident_bytes_ += slot->memory_bytes();
    ++faults_;
  }
  return *slot;
}

const db::CompactLevel& FileSource::ensure_level(int level) {
  RETRA_CHECK_MSG(block_count(level) == 1,
                  "ensure_level on a multi-block level; use ensure_block");
  return ensure_block(level, 0);
}

void FileSource::drop_block(int level, int block) {
  if (!is_block_resident(level, block)) return;
  auto& slot = resident_[to_size(level)][to_size(block)];
  resident_bytes_ -= slot->memory_bytes();
  slot.reset();
}

void FileSource::drop_level(int level) {
  if (!covers(level)) return;
  for (int b = 0; b < block_count(level); ++b) drop_block(level, b);
}

Value FileSource::value(int level, idx::Index index) {
  const int block = block_of(level, index);
  return ensure_block(level, block).get(index - block_begin(level, block));
}

void FileSource::values(int level, std::span<const idx::Index> indices,
                        std::span<Value> out) {
  RETRA_CHECK(out.size() >= indices.size());
  int current = -1;
  const db::CompactLevel* stored = nullptr;
  std::uint64_t begin = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int block = block_of(level, indices[i]);
    if (block != current) {
      stored = &ensure_block(level, block);
      begin = block_begin(level, block);
      current = block;
    }
    out[i] = stored->get(indices[i] - begin);
  }
  if (indices.empty() && covers(level) && block_count(level) > 0) {
    ensure_block(level, 0);  // an empty batch still warms the level
  }
}

}  // namespace retra::serve

#include "retra/serve/file_source.hpp"

#include <utility>

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::serve {

using support::to_size;

FileSource::FileSource(Passkey, std::FILE* file, db::FileIndex index)
    : file_(file), index_(std::move(index)) {
  resident_.resize(index_.levels.size());
}

FileSource::~FileSource() {
  if (file_) std::fclose(file_);
}

FileSource::OpenResult FileSource::open(const std::string& path) {
  OpenResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) {
    result.error = "cannot open: " + path;
    return result;
  }
  db::FileIndex index = db::scan(file);
  if (!index.ok) {
    std::fclose(file);
    result.error = index.error;
    return result;
  }
  result.ok = true;
  result.source =
      std::make_unique<FileSource>(Passkey{}, file, std::move(index));
  return result;
}

std::uint64_t FileSource::level_size(int level) const {
  RETRA_CHECK_MSG(covers(level), "level not covered by this file");
  return index_.levels[to_size(level)].size;
}

std::uint64_t FileSource::level_bytes(int level) const {
  RETRA_CHECK_MSG(covers(level), "level not covered by this file");
  if (const auto& resident = resident_[to_size(level)]; resident) {
    return resident->memory_bytes();
  }
  return index_.levels[to_size(level)].payload_bytes;
}

bool FileSource::is_resident(int level) const {
  return covers(level) && resident_[to_size(level)].has_value();
}

const db::CompactLevel& FileSource::ensure_level(int level) {
  RETRA_CHECK_MSG(covers(level), "level not covered by this file");
  auto& slot = resident_[to_size(level)];
  if (!slot) {
    db::LevelReadResult read =
        db::read_level(file_, index_.levels[to_size(level)]);
    RETRA_CHECK_MSG(read.ok, read.error);
    slot.emplace(std::move(read.level));
    resident_bytes_ += slot->memory_bytes();
    ++faults_;
  }
  return *slot;
}

void FileSource::drop_level(int level) {
  if (!is_resident(level)) return;
  auto& slot = resident_[to_size(level)];
  resident_bytes_ -= slot->memory_bytes();
  slot.reset();
}

Value FileSource::value(int level, idx::Index index) {
  return ensure_level(level).get(index);
}

void FileSource::values(int level, std::span<const idx::Index> indices,
                        std::span<Value> out) {
  RETRA_CHECK(out.size() >= indices.size());
  const db::CompactLevel& stored = ensure_level(level);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = stored.get(indices[i]);
  }
}

}  // namespace retra::serve

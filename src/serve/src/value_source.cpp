#include "retra/serve/value_source.hpp"

#include <numeric>

#include "retra/support/check.hpp"

namespace retra::serve {

void ValueSource::values(int level, std::span<const idx::Index> indices,
                         std::span<Value> out) {
  RETRA_CHECK(out.size() >= indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = value(level, indices[i]);
  }
}

std::vector<Value> ValueSource::level_values(int level) {
  RETRA_CHECK_MSG(covers(level), "level not covered by this source");
  const std::uint64_t size = level_size(level);
  std::vector<Value> out(size);
  // Chunked so the scratch index vector stays cache-sized even for the
  // hundred-million-position levels of the paper's big builds.
  constexpr std::uint64_t kChunk = 1 << 16;
  std::vector<idx::Index> indices(static_cast<std::size_t>(
      size < kChunk ? (size ? size : 1) : kChunk));
  for (std::uint64_t begin = 0; begin < size; begin += kChunk) {
    const auto count = static_cast<std::size_t>(
        size - begin < kChunk ? size - begin : kChunk);
    std::iota(indices.begin(), indices.begin() + static_cast<std::ptrdiff_t>(count),
              begin);
    values(level, std::span<const idx::Index>(indices.data(), count),
           std::span<Value>(out.data() + begin, count));
  }
  return out;
}

void DatabaseSource::values(int level, std::span<const idx::Index> indices,
                         std::span<Value> out) {
  RETRA_CHECK(out.size() >= indices.size());
  const std::vector<Value>& stored = database_->level(level);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = stored[indices[i]];
  }
}

void CompactSource::values(int level, std::span<const idx::Index> indices,
                           std::span<Value> out) {
  RETRA_CHECK(out.size() >= indices.size());
  const db::CompactLevel& stored = database_->level(level);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = stored.get(indices[i]);
  }
}

}  // namespace retra::serve

#include "retra/serve/query_service.hpp"

#include <algorithm>
#include <utility>

#include "retra/obs/metrics.hpp"
#include "retra/support/check.hpp"

namespace retra::serve {

QueryService::QueryService(Passkey, std::unique_ptr<FileSource> file,
                           const QueryServiceConfig& config)
    : file_(std::move(file)), config_(config) {}

QueryService::OpenResult QueryService::open(const std::string& path,
                                            const QueryServiceConfig& config) {
  OpenResult result;
  FileSource::OpenResult file = FileSource::open(path);
  if (!file.ok) {
    result.error = std::move(file.error);
    return result;
  }
  result.ok = true;
  result.service = std::make_unique<QueryService>(
      Passkey{}, std::move(file.source), config);
  return result;
}

const db::CompactLevel& QueryService::touch(int level) {
  if (const auto it = std::find(lru_.begin(), lru_.end(), level);
      it != lru_.end()) {
    lru_.splice(lru_.begin(), lru_, it);
    return file_->ensure_level(level);
  }

  // Fault the level in, then shed least-recently-used levels until the
  // budget holds.  The just-touched level is never the victim, so one
  // oversized level still gets served (with everything else evicted).
  const db::CompactLevel* resident;
  {
    RETRA_OBS_SCOPED_TIMER(timer, obs::Id::kServeFaultSeconds);
    resident = &file_->ensure_level(level);
  }
  ++stats_.faults;
  RETRA_OBS_INC(obs::Id::kServeLevelFaults);
  lru_.push_front(level);
  while (config_.budget_bytes != 0 &&
         file_->resident_bytes() > config_.budget_bytes && lru_.size() > 1) {
    const int victim = lru_.back();
    lru_.pop_back();
    file_->drop_level(victim);
    ++stats_.evictions;
    RETRA_OBS_INC(obs::Id::kServeLevelEvictions);
  }
  stats_.resident_bytes = file_->resident_bytes();
  RETRA_OBS_SET(obs::Id::kServeResidentBytes, stats_.resident_bytes);
  return *resident;
}

Value QueryService::value(int level, idx::Index index) {
  const db::CompactLevel& stored = touch(level);
  ++stats_.lookups;
  RETRA_OBS_INC(obs::Id::kServeLookups);
  return stored.get(index);
}

void QueryService::values(int level, std::span<const idx::Index> indices,
                          std::span<Value> out) {
  RETRA_CHECK(out.size() >= indices.size());
  const db::CompactLevel& stored = touch(level);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = stored.get(indices[i]);
  }
  ++stats_.batches;
  stats_.lookups += indices.size();
  RETRA_OBS_ADD(obs::Id::kServeLookups, indices.size());
  RETRA_OBS_OBSERVE(obs::Id::kServeBatchSize, indices.size());
}

std::vector<int> QueryService::resident_levels() const {
  return {lru_.begin(), lru_.end()};
}

}  // namespace retra::serve

#include "retra/serve/query_service.hpp"

#include <algorithm>
#include <utility>

#include "retra/obs/metrics.hpp"
#include "retra/support/check.hpp"

namespace retra::serve {

QueryService::QueryService(Passkey, std::unique_ptr<FileSource> file,
                           const QueryServiceConfig& config)
    : file_(std::move(file)), config_(config) {}

QueryService::OpenResult QueryService::open(const std::string& path,
                                            const QueryServiceConfig& config) {
  OpenResult result;
  FileSource::OpenResult file = FileSource::open(path);
  if (!file.ok) {
    result.error = std::move(file.error);
    return result;
  }
  result.ok = true;
  result.service = std::make_unique<QueryService>(
      Passkey{}, std::move(file.source), config);
  return result;
}

const db::CompactLevel& QueryService::touch(int level, int block) {
  const BlockKey key{level, block};
  const bool blocked = file_->blocked();
  if (const auto it = std::find(lru_.begin(), lru_.end(), key);
      it != lru_.end()) {
    lru_.splice(lru_.begin(), lru_, it);
    if (blocked) {
      ++stats_.block_hits;
      RETRA_OBS_INC(obs::Id::kServeBlockHits);
    }
    return file_->ensure_block(level, block);
  }

  // Fault the unit in, then shed least-recently-used units until the
  // budget holds.  The just-touched unit is never the victim, so one
  // oversized unit still gets served (with everything else evicted).
  const db::CompactLevel* resident;
  if (blocked) {
    RETRA_OBS_SCOPED_TIMER(timer, obs::Id::kServeBlockDecodeSeconds);
    resident = &file_->ensure_block(level, block);
    ++stats_.block_faults;
    RETRA_OBS_INC(obs::Id::kServeBlockFaults);
  } else {
    RETRA_OBS_SCOPED_TIMER(timer, obs::Id::kServeFaultSeconds);
    resident = &file_->ensure_block(level, block);
    ++stats_.faults;
    RETRA_OBS_INC(obs::Id::kServeLevelFaults);
  }
  lru_.push_front(key);
  while (config_.budget_bytes != 0 &&
         file_->resident_bytes() > config_.budget_bytes && lru_.size() > 1) {
    const BlockKey victim = lru_.back();
    lru_.pop_back();
    file_->drop_block(victim.level, victim.block);
    if (blocked) {
      ++stats_.block_evictions;
      RETRA_OBS_INC(obs::Id::kServeBlockEvictions);
    } else {
      ++stats_.evictions;
      RETRA_OBS_INC(obs::Id::kServeLevelEvictions);
    }
  }
  stats_.resident_bytes = file_->resident_bytes();
  RETRA_OBS_SET(obs::Id::kServeResidentBytes, stats_.resident_bytes);
  if (blocked) {
    RETRA_OBS_SET(obs::Id::kServeBlockResidentBytes, stats_.resident_bytes);
  }
  return *resident;
}

Value QueryService::value(int level, idx::Index index) {
  const int block = file_->block_of(level, index);
  const db::CompactLevel& stored = touch(level, block);
  ++stats_.lookups;
  RETRA_OBS_INC(obs::Id::kServeLookups);
  return stored.get(index - file_->block_begin(level, block));
}

void QueryService::values(int level, std::span<const idx::Index> indices,
                          std::span<Value> out) {
  RETRA_CHECK(out.size() >= indices.size());
  int current = -1;
  const db::CompactLevel* stored = nullptr;
  std::uint64_t begin = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int block = file_->block_of(level, indices[i]);
    if (block != current) {
      stored = &touch(level, block);
      begin = file_->block_begin(level, block);
      current = block;
    }
    out[i] = stored->get(indices[i] - begin);
  }
  if (indices.empty() && file_->covers(level) &&
      file_->block_count(level) > 0) {
    touch(level, 0);  // an empty batch still warms the level
  }
  ++stats_.batches;
  stats_.lookups += indices.size();
  RETRA_OBS_ADD(obs::Id::kServeLookups, indices.size());
  RETRA_OBS_OBSERVE(obs::Id::kServeBatchSize, indices.size());
}

std::vector<int> QueryService::resident_levels() const {
  std::vector<int> levels;
  for (const BlockKey& key : lru_) {
    if (std::find(levels.begin(), levels.end(), key.level) == levels.end()) {
      levels.push_back(key.level);
    }
  }
  return levels;
}

std::vector<std::pair<int, int>> QueryService::resident_blocks() const {
  std::vector<std::pair<int, int>> blocks;
  blocks.reserve(lru_.size());
  for (const BlockKey& key : lru_) blocks.emplace_back(key.level, key.block);
  return blocks;
}

}  // namespace retra::serve

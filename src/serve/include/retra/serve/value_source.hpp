// The unified query interface over solved databases.
//
// Everything that *uses* a finished database — the oracle, self-play,
// the serving tools — talks to a ValueSource instead of a concrete
// storage class, so the same query code runs against the dense in-memory
// Database, the 2–4× smaller bit-packed CompactDatabase, or an on-disk
// RTRADB file whose levels are faulted in on demand (FileSource /
// QueryService).  Lookups are not const: file-backed sources mutate
// residency state while answering.
//
// Batching matters at serving scale: values() answers a whole span of
// same-level indices in one virtual call, which is one residency check
// and one metrics publish instead of per-lookup overhead.
#pragma once

#include <span>
#include <vector>

#include "retra/db/compact.hpp"
#include "retra/db/database.hpp"
#include "retra/index/board_index.hpp"

namespace retra::serve {

using db::Value;

class ValueSource {
 public:
  virtual ~ValueSource() = default;

  /// Stored levels are contiguous from 0, mirroring db::Database.
  virtual int num_levels() const = 0;
  bool covers(int level) const { return level >= 0 && level < num_levels(); }

  /// Number of positions in a covered level.
  virtual std::uint64_t level_size(int level) const = 0;

  /// Value of one position; aborts if the level is not covered.
  virtual Value value(int level, idx::Index index) = 0;

  /// Batched lookup: out[i] = value(level, indices[i]).  `out` must be at
  /// least as long as `indices`.  The default loops over value(); backends
  /// with per-call overhead (residency checks, metrics) override it.
  virtual void values(int level, std::span<const idx::Index> indices,
                      std::span<Value> out);

  /// Materialises a whole level as a dense vector (DTC tables,
  /// verification sweeps) by unpacking through the batched API.
  std::vector<Value> level_values(int level);
};

/// Adapter over the dense in-memory db::Database.  This is the ONLY way
/// engine-side code reaches a Database's values for querying: ra::oracle
/// takes ValueSource&, so wrap the database at the call site.
class DatabaseSource final : public ValueSource {
 public:
  explicit DatabaseSource(const db::Database& database)
      : database_(&database) {}

  int num_levels() const override { return database_->num_levels(); }
  std::uint64_t level_size(int level) const override {
    return database_->level(level).size();
  }
  Value value(int level, idx::Index index) override {
    return database_->value(level, index);
  }
  void values(int level, std::span<const idx::Index> indices,
              std::span<Value> out) override;

 private:
  const db::Database* database_;
};

/// Adapter over the bit-packed db::CompactDatabase.
class CompactSource final : public ValueSource {
 public:
  explicit CompactSource(const db::CompactDatabase& database)
      : database_(&database) {}

  int num_levels() const override { return database_->num_levels(); }
  std::uint64_t level_size(int level) const override {
    return database_->level(level).size();
  }
  Value value(int level, idx::Index index) override {
    return database_->value(level, index);
  }
  void values(int level, std::span<const idx::Index> indices,
              std::span<Value> out) override;

 private:
  const db::CompactDatabase* database_;
};

}  // namespace retra::serve

// File-backed ValueSource with lazy level residency.
//
// open() scans the RTRADB level directory (headers only — a few KB even
// for a multi-gigabyte database) and answers queries by faulting whole
// levels in on first touch: seek, read, checksum-verify, and keep the
// level resident in bit-packed CompactLevel form.  RTRADB02 payloads are
// adopted verbatim; RTRADB01 raw payloads are re-packed once at fault
// time.  Nothing is ever dropped implicitly — eviction policy lives one
// layer up, in QueryService, which drives drop_level() against a byte
// budget.
//
// Not thread-safe: one FileSource per serving thread.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "retra/db/db_io.hpp"
#include "retra/serve/value_source.hpp"

namespace retra::serve {

class FileSource final : public ValueSource {
 public:
  /// Result of open(): either a ready source or a diagnosis of why the
  /// file was rejected (missing, malformed, truncated).
  struct OpenResult {
    bool ok = false;
    std::string error;
    std::unique_ptr<FileSource> source;
  };
  static OpenResult open(const std::string& path);

  ~FileSource() override;
  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  int num_levels() const override {
    return static_cast<int>(index_.levels.size());
  }
  std::uint64_t level_size(int level) const override;
  Value value(int level, idx::Index index) override;
  void values(int level, std::span<const idx::Index> indices,
              std::span<Value> out) override;

  /// The scanned level directory (format version, offsets, sizes).
  const db::FileIndex& index() const { return index_; }

  /// Faults the level in if absent and returns it; aborts if the payload
  /// fails its checksum (open() already vetted the file's structure).
  const db::CompactLevel& ensure_level(int level);

  bool is_resident(int level) const;
  /// Releases a resident level; a later query faults it back in.
  void drop_level(int level);

  /// Packed payload bytes currently resident across all levels.
  std::uint64_t resident_bytes() const { return resident_bytes_; }
  /// Packed payload bytes level `l` costs while resident.
  std::uint64_t level_bytes(int level) const;

  /// Lifetime fault count (levels materialised from disk).
  std::uint64_t faults() const { return faults_; }

 private:
  struct Passkey {};  // lets open() use make_unique on a private-ish ctor

 public:
  FileSource(Passkey, std::FILE* file, db::FileIndex index);

 private:
  std::FILE* file_ = nullptr;
  db::FileIndex index_;
  std::vector<std::optional<db::CompactLevel>> resident_;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t faults_ = 0;
};

}  // namespace retra::serve

// File-backed ValueSource with lazy block residency.
//
// open() scans the RTRADB level directory (headers only — a few KB even
// for a multi-gigabyte database) and answers queries by faulting in the
// smallest addressable unit on first touch: the whole level for
// RTRADB01/02 (one implicit block per level) and a single fixed-size
// block for RTRADB03, so a point lookup against a compressed file reads,
// checksum-verifies and decodes exactly one block.  RTRADB02 payloads
// are adopted verbatim; RTRADB01 raw payloads are re-packed once at
// fault time; RTRADB03 blocks are decoded to bit-packed form.  Nothing
// is ever dropped implicitly — eviction policy lives one layer up, in
// QueryService, which drives drop_block() against a byte budget.
//
// Not thread-safe: one FileSource per serving thread.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "retra/db/db_io.hpp"
#include "retra/serve/value_source.hpp"

namespace retra::serve {

class FileSource final : public ValueSource {
 public:
  /// Result of open(): either a ready source or a diagnosis of why the
  /// file was rejected (missing, malformed, truncated).
  struct OpenResult {
    bool ok = false;
    std::string error;
    std::unique_ptr<FileSource> source;
  };
  static OpenResult open(const std::string& path);

  ~FileSource() override;
  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  int num_levels() const override {
    return static_cast<int>(index_.levels.size());
  }
  std::uint64_t level_size(int level) const override;
  Value value(int level, idx::Index index) override;
  void values(int level, std::span<const idx::Index> indices,
              std::span<Value> out) override;

  /// The scanned level directory (format version, offsets, sizes).
  const db::FileIndex& index() const { return index_; }

  /// True when the file is block-granular (RTRADB03): residency, faults
  /// and eviction all act on blocks instead of whole levels.
  bool blocked() const { return index_.version == 3; }

  /// Cacheable units in `level` (1 for RTRADB01/02).
  int block_count(int level) const;
  /// The block holding position `index` of `level` (0 for RTRADB01/02).
  int block_of(int level, idx::Index index) const;
  /// First position covered by block `block` of `level`.
  std::uint64_t block_begin(int level, int block) const;

  /// Faults the block in if absent and returns it; aborts if the stored
  /// bytes fail their checksum or decode (open() already vetted the
  /// file's structure).  The returned CompactLevel is indexed from the
  /// block's first position — subtract block_begin() before get().
  const db::CompactLevel& ensure_block(int level, int block);

  bool is_block_resident(int level, int block) const;
  /// Releases a resident block; a later query faults it back in.
  void drop_block(int level, int block);

  /// Resident cost of block `block` of `level`: its decoded bytes when
  /// resident, the scan-time estimate otherwise.
  std::uint64_t block_bytes(int level, int block) const;

  /// Faults the level in if absent and returns it.  Only valid for
  /// levels with a single block (always true for RTRADB01/02); callers
  /// serving RTRADB03 use ensure_block().
  const db::CompactLevel& ensure_level(int level);

  /// True when every block of `level` is resident.
  bool is_resident(int level) const;
  /// Releases every resident block of `level`.
  void drop_level(int level);

  /// Decoded bytes currently resident across all levels.
  std::uint64_t resident_bytes() const { return resident_bytes_; }
  /// Decoded bytes level `level` costs while fully resident.
  std::uint64_t level_bytes(int level) const;

  /// Lifetime fault count (blocks materialised from disk; one per level
  /// for RTRADB01/02).
  std::uint64_t faults() const { return faults_; }

 private:
  struct Passkey {};  // lets open() use make_unique on a private-ish ctor

 public:
  FileSource(Passkey, std::FILE* file, db::FileIndex index);

 private:
  std::FILE* file_ = nullptr;
  db::FileIndex index_;
  // resident_[level][block]; RTRADB01/02 levels hold one block.
  std::vector<std::vector<std::optional<db::CompactLevel>>> resident_;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t faults_ = 0;
};

}  // namespace retra::serve

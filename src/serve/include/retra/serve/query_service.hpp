// The query-serving layer: a budgeted, metered, file-backed ValueSource.
//
// QueryService owns a FileSource and keeps its resident decoded bytes
// under a configurable budget with LRU eviction over the file's
// cacheable units: whole levels for RTRADB01/02, single blocks for
// RTRADB03 (the block cache).  Answering a query against a non-resident
// unit faults it in, then evicts least-recently-used units until the
// budget holds again.  A unit larger than the whole budget is still
// served — it is faulted in and everything else is evicted — so a small
// budget degrades to thrashing, never to wrong answers.  Eviction order
// is deterministic: it depends only on the query sequence.
//
// Every lookup, batch, fault and eviction is published through the obs
// registry (serve.* for whole-level units, serve.blockcache.* for
// blocks; docs/METRICS.md) and mirrored in the local Stats struct, so a
// bench artifact and the service's own counters can be reconciled
// exactly.
//
// Not thread-safe: one QueryService per serving thread.  Concurrent
// callers must go through net::Store, whose service_mutex_ carries the
// RETRA_PT_GUARDED_BY contract for the shared instance — this class
// deliberately has no mutex members, so the lock-coverage analysis
// (docs/ANALYSIS.md) does not apply here.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <utility>

#include "retra/serve/file_source.hpp"

namespace retra::serve {

struct QueryServiceConfig {
  /// Resident decoded-byte budget; 0 means unlimited (every unit stays
  /// resident once faulted, nothing is ever evicted).
  std::uint64_t budget_bytes = 0;
};

class QueryService final : public ValueSource {
 public:
  /// Result of open(): either a ready service or the FileSource's
  /// diagnosis of why the database file was rejected.
  struct OpenResult {
    bool ok = false;
    std::string error;
    std::unique_ptr<QueryService> service;
  };
  static OpenResult open(const std::string& path,
                         const QueryServiceConfig& config = {});

  int num_levels() const override { return file_->num_levels(); }
  std::uint64_t level_size(int level) const override {
    return file_->level_size(level);
  }
  Value value(int level, idx::Index index) override;
  void values(int level, std::span<const idx::Index> indices,
              std::span<Value> out) override;

  /// Local mirror of the serve.* obs metrics for this instance.  The
  /// level counters move for RTRADB01/02 files, the block counters for
  /// RTRADB03 files; resident_bytes covers both.
  struct Stats {
    std::uint64_t lookups = 0;    // positions answered (single + batched)
    std::uint64_t batches = 0;    // values() calls
    std::uint64_t faults = 0;     // levels materialised from disk
    std::uint64_t evictions = 0;  // levels dropped to respect the budget
    std::uint64_t resident_bytes = 0;   // decoded bytes resident
    std::uint64_t block_hits = 0;       // touches of a resident block
    std::uint64_t block_faults = 0;     // blocks decoded on demand
    std::uint64_t block_evictions = 0;  // blocks dropped for the budget
  };
  const Stats& stats() const { return stats_; }

  const QueryServiceConfig& config() const { return config_; }
  const db::FileIndex& index() const { return file_->index(); }

  /// True when the file is block-granular (RTRADB03).
  bool blocked() const { return file_->blocked(); }
  int block_count(int level) const { return file_->block_count(level); }
  int block_of(int level, idx::Index index) const {
    return file_->block_of(level, index);
  }
  std::uint64_t block_begin(int level, int block) const {
    return file_->block_begin(level, block);
  }

  /// Touches block `block` of `level` exactly as a query would (fault
  /// in, mark most recently used, evict LRU victims) and returns the
  /// resident block, indexed from its first position.  The reference
  /// stays valid until the next query.  This is how the network layer's
  /// shared hot tier snapshots a block it wants to promote above the
  /// service's single-threaded path.
  const db::CompactLevel& resident_block(int level, int block) {
    return touch(level, block);
  }

  /// Levels with at least one resident block, most recently used first
  /// (tests, introspection).
  std::vector<int> resident_levels() const;

  /// Resident (level, block) units, most recently used first.
  std::vector<std::pair<int, int>> resident_blocks() const;

 private:
  struct Passkey {};

 public:
  QueryService(Passkey, std::unique_ptr<FileSource> file,
               const QueryServiceConfig& config);

 private:
  struct BlockKey {
    int level = 0;
    int block = 0;
    bool operator==(const BlockKey&) const = default;
  };

  /// Marks the unit most recently used, faulting it in and evicting LRU
  /// units as needed; returns the resident block.
  const db::CompactLevel& touch(int level, int block);

  std::unique_ptr<FileSource> file_;
  QueryServiceConfig config_;
  std::list<BlockKey> lru_;  // front = most recently used
  Stats stats_;
};

}  // namespace retra::serve

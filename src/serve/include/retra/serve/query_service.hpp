// The query-serving layer: a budgeted, metered, file-backed ValueSource.
//
// QueryService owns a FileSource and keeps its resident packed bytes
// under a configurable budget with LRU level eviction: answering a query
// against a non-resident level faults the level in, then evicts
// least-recently-used levels until the budget holds again.  A level
// larger than the whole budget is still served — it is faulted in and
// everything else is evicted — so a small budget degrades to thrashing,
// never to wrong answers.  Eviction order is deterministic: it depends
// only on the query sequence.
//
// Every lookup, batch, fault and eviction is published through the obs
// registry (serve.* metrics, docs/METRICS.md) and mirrored in the local
// Stats struct, so a bench artifact and the service's own counters can
// be reconciled exactly.
//
// Not thread-safe: one QueryService per serving thread.  Concurrent
// callers must go through net::Store, whose service_mutex_ carries the
// RETRA_PT_GUARDED_BY contract for the shared instance — this class
// deliberately has no mutex members, so the lock-coverage analysis
// (docs/ANALYSIS.md) does not apply here.
#pragma once

#include <list>
#include <memory>
#include <string>

#include "retra/serve/file_source.hpp"

namespace retra::serve {

struct QueryServiceConfig {
  /// Resident packed-payload budget in bytes; 0 means unlimited (every
  /// level stays resident once faulted, nothing is ever evicted).
  std::uint64_t budget_bytes = 0;
};

class QueryService final : public ValueSource {
 public:
  /// Result of open(): either a ready service or the FileSource's
  /// diagnosis of why the database file was rejected.
  struct OpenResult {
    bool ok = false;
    std::string error;
    std::unique_ptr<QueryService> service;
  };
  static OpenResult open(const std::string& path,
                         const QueryServiceConfig& config = {});

  int num_levels() const override { return file_->num_levels(); }
  std::uint64_t level_size(int level) const override {
    return file_->level_size(level);
  }
  Value value(int level, idx::Index index) override;
  void values(int level, std::span<const idx::Index> indices,
              std::span<Value> out) override;

  /// Local mirror of the serve.* obs metrics for this instance.
  struct Stats {
    std::uint64_t lookups = 0;    // positions answered (single + batched)
    std::uint64_t batches = 0;    // values() calls
    std::uint64_t faults = 0;     // levels materialised from disk
    std::uint64_t evictions = 0;  // levels dropped to respect the budget
    std::uint64_t resident_bytes = 0;  // packed payload bytes resident
  };
  const Stats& stats() const { return stats_; }

  const QueryServiceConfig& config() const { return config_; }
  const db::FileIndex& index() const { return file_->index(); }

  /// Touches `level` exactly as a query would (fault in, mark most
  /// recently used, evict LRU victims) and returns the resident packed
  /// level.  The reference stays valid until the next query.  This is
  /// how the network layer's shared hot tier snapshots a level it wants
  /// to promote above the service's single-threaded path.
  const db::CompactLevel& resident_level(int level) { return touch(level); }

  /// Resident levels, most recently used first (tests, introspection).
  std::vector<int> resident_levels() const;

 private:
  struct Passkey {};

 public:
  QueryService(Passkey, std::unique_ptr<FileSource> file,
               const QueryServiceConfig& config);

 private:
  /// Marks `level` most recently used, faulting it in and evicting LRU
  /// levels as needed; returns the resident level.
  const db::CompactLevel& touch(int level);

  std::unique_ptr<FileSource> file_;
  QueryServiceConfig config_;
  std::list<int> lru_;  // front = most recently used
  Stats stats_;
};

}  // namespace retra::serve

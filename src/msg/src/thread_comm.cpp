#include "retra/msg/thread_comm.hpp"

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::msg {

class ThreadWorld::Endpoint : public Comm {
 public:
  Endpoint(int rank, ThreadWorld& world) : rank_(rank), world_(world) {}

  int rank() const override { return rank_; }
  int size() const override { return world_.size(); }

  void send(int dest, std::uint8_t tag,
            std::vector<std::byte> payload) override {
    RETRA_CHECK(dest >= 0 && dest < size());
    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
    world_.mailboxes_[support::to_size(dest)].push(
        Message{rank_, tag, std::move(payload)});
  }

  bool try_recv(Message& out) override {
    if (!world_.mailboxes_[support::to_size(rank_)].try_pop(out)) return false;
    ++stats_.messages_received;
    stats_.bytes_received += out.payload.size();
    return true;
  }

 private:
  int rank_;
  ThreadWorld& world_;
};

ThreadWorld::~ThreadWorld() = default;

ThreadWorld::ThreadWorld(int ranks)
    : mailboxes_(support::to_size(ranks)) {
  RETRA_CHECK(ranks >= 1);
  endpoints_.reserve(support::to_size(ranks));
  for (int r = 0; r < ranks; ++r) {
    endpoints_.push_back(std::make_unique<Endpoint>(r, *this));
  }
}

Comm& ThreadWorld::endpoint(int rank) {
  RETRA_CHECK(rank >= 0 && rank < size());
  return *endpoints_[support::to_size(rank)];
}

}  // namespace retra::msg

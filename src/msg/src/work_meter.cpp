#include "retra/msg/work_meter.hpp"

namespace retra::msg {

const char* work_kind_name(WorkKind kind) {
  switch (kind) {
    case WorkKind::kScanPosition:
      return "scan-position";
    case WorkKind::kExitOption:
      return "exit-option";
    case WorkKind::kLevelEdge:
      return "level-edge";
    case WorkKind::kAssign:
      return "assign";
    case WorkKind::kPredEdge:
      return "pred-edge";
    case WorkKind::kUpdateApply:
      return "update-apply";
    case WorkKind::kSweepPosition:
      return "sweep-position";
    case WorkKind::kRecordPack:
      return "record-pack";
    case WorkKind::kRecordUnpack:
      return "record-unpack";
    case WorkKind::kCount:
      break;
  }
  return "?";
}

}  // namespace retra::msg

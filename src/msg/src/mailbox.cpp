#include "retra/msg/mailbox.hpp"

namespace retra::msg {

void Mailbox::push(Message message) {
  const support::MutexLock lock(mutex_);
  queue_.push_back(std::move(message));
}

bool Mailbox::try_pop(Message& out) {
  const support::MutexLock lock(mutex_);
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

std::size_t Mailbox::approximate_size() const {
  const support::MutexLock lock(mutex_);
  return queue_.size();
}

}  // namespace retra::msg

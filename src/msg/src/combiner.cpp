#include "retra/msg/combiner.hpp"

#include <cstring>

#include "retra/obs/metrics.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::msg {

Combiner::Combiner(Comm& comm, std::uint8_t tag, std::size_t flush_bytes)
    : comm_(comm),
      tag_(tag),
      flush_bytes_(flush_bytes == 0 ? 1 : flush_bytes),
      buffers_(support::to_size(comm.size())),
      buffer_records_(support::to_size(comm.size()), 0) {}

void Combiner::append(int dest, const void* record, std::size_t record_size) {
  RETRA_DCHECK(dest >= 0 && dest < static_cast<int>(buffers_.size()));
  auto& buffer = buffers_[support::to_size(dest)];
  if (!buffer.empty() && buffer.size() + record_size > flush_bytes_) {
    flush(dest);
  }
  const std::size_t offset = buffer.size();
  buffer.resize(offset + record_size);
  std::memcpy(buffer.data() + offset, record, record_size);
  ++stats_.records;
  ++buffer_records_[support::to_size(dest)];
  comm_.meter().charge(WorkKind::kRecordPack);
}

void Combiner::flush(int dest) {
  auto& buffer = buffers_[support::to_size(dest)];
  if (buffer.empty()) return;
  ++stats_.messages;
  stats_.payload_bytes += buffer.size();
  // Metrics are published once per shipped message (not per record), so
  // the append hot path carries no atomic traffic.
  std::uint64_t& records = buffer_records_[support::to_size(dest)];
  RETRA_OBS_ADD(obs::Id::kCombinerRecords, records);
  RETRA_OBS_INC(obs::Id::kCombinerMessages);
  RETRA_OBS_ADD(obs::Id::kCombinerPayloadBytes, buffer.size());
  RETRA_OBS_OBSERVE(obs::Id::kCombinerRecordsPerMessage, records);
  records = 0;
  std::vector<std::byte> payload;
  payload.swap(buffer);
  comm_.send(dest, tag_, std::move(payload));
}

void Combiner::flush_all() {
  for (int dest = 0; dest < static_cast<int>(buffers_.size()); ++dest) {
    flush(dest);
  }
}

void CombinerStage::append(int dest, const void* record,
                           std::size_t record_size) {
  const std::size_t offset = bytes_.size();
  RETRA_CHECK_MSG(offset + record_size <= UINT32_MAX,
                  "combiner stage exceeds 4 GiB");
  bytes_.resize(offset + record_size);
  std::memcpy(bytes_.data() + offset, record, record_size);
  entries_.push_back(Entry{dest, static_cast<std::uint32_t>(offset),
                           static_cast<std::uint32_t>(record_size)});
}

void CombinerStage::replay_into(Combiner& combiner) const {
  for (const Entry& entry : entries_) {
    combiner.append(entry.dest, bytes_.data() + entry.offset, entry.size);
  }
}

void CombinerStage::clear() {
  entries_.clear();
  bytes_.clear();
}

}  // namespace retra::msg

#include "retra/msg/combiner.hpp"

#include <cstring>

#include "retra/obs/metrics.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::msg {

Combiner::Combiner(Comm& comm, std::uint8_t tag, std::size_t flush_bytes)
    : comm_(comm),
      tag_(tag),
      flush_bytes_(flush_bytes == 0 ? 1 : flush_bytes),
      buffers_(support::to_size(comm.size())),
      buffer_records_(support::to_size(comm.size()), 0) {}

void Combiner::append(int dest, const void* record, std::size_t record_size) {
  RETRA_DCHECK(dest >= 0 && dest < static_cast<int>(buffers_.size()));
  auto& buffer = buffers_[support::to_size(dest)];
  if (!buffer.empty() && buffer.size() + record_size > flush_bytes_) {
    flush(dest);
  }
  const std::size_t offset = buffer.size();
  buffer.resize(offset + record_size);
  std::memcpy(buffer.data() + offset, record, record_size);
  ++stats_.records;
  ++buffer_records_[support::to_size(dest)];
  comm_.meter().charge(WorkKind::kRecordPack);
}

void Combiner::flush(int dest) {
  auto& buffer = buffers_[support::to_size(dest)];
  if (buffer.empty()) return;
  ++stats_.messages;
  stats_.payload_bytes += buffer.size();
  // Metrics are published once per shipped message (not per record), so
  // the append hot path carries no atomic traffic.
  std::uint64_t& records = buffer_records_[support::to_size(dest)];
  RETRA_OBS_ADD(obs::Id::kCombinerRecords, records);
  RETRA_OBS_INC(obs::Id::kCombinerMessages);
  RETRA_OBS_ADD(obs::Id::kCombinerPayloadBytes, buffer.size());
  RETRA_OBS_OBSERVE(obs::Id::kCombinerRecordsPerMessage, records);
  records = 0;
  std::vector<std::byte> payload;
  payload.swap(buffer);
  comm_.send(dest, tag_, std::move(payload));
}

void Combiner::flush_all() {
  for (int dest = 0; dest < static_cast<int>(buffers_.size()); ++dest) {
    flush(dest);
  }
}

void Combiner::append_run(int dest, const void* records, std::size_t count,
                          std::size_t record_size) {
  RETRA_DCHECK(dest >= 0 && dest < static_cast<int>(buffers_.size()));
  const std::byte* src = static_cast<const std::byte*>(records);
  auto& buffer = buffers_[support::to_size(dest)];
  while (count > 0) {
    if (!buffer.empty() && buffer.size() + record_size > flush_bytes_) {
      flush(dest);
    }
    // Records that fit before the next flush boundary; append() lets an
    // empty buffer take one record even when record_size > flush_bytes_,
    // so the bulk path must too.
    std::size_t fit = buffer.size() + record_size > flush_bytes_
                          ? 1
                          : (flush_bytes_ - buffer.size()) / record_size;
    if (fit > count) fit = count;
    const std::size_t offset = buffer.size();
    buffer.resize(offset + fit * record_size);
    std::memcpy(buffer.data() + offset, src, fit * record_size);
    stats_.records += fit;
    buffer_records_[support::to_size(dest)] += fit;
    comm_.meter().charge(WorkKind::kRecordPack, fit);
    src += fit * record_size;
    count -= fit;
  }
}

void CombinerBank::reset(int dests, std::size_t record_size) {
  record_size_ = record_size;
  records_ = 0;
  slots_.resize(support::to_size(dests));
  for (auto& slot : slots_) slot.clear();
}

void CombinerBank::append(int dest, const void* record) {
  RETRA_DCHECK(dest >= 0 && dest < static_cast<int>(slots_.size()));
  auto& slot = slots_[support::to_size(dest)];
  const std::size_t offset = slot.size();
  slot.resize(offset + record_size_);
  std::memcpy(slot.data() + offset, record, record_size_);
  ++records_;
}

void CombinerBank::replay_into(Combiner& combiner) const {
  for (int dest = 0; dest < static_cast<int>(slots_.size()); ++dest) {
    const auto& slot = slots_[support::to_size(dest)];
    if (slot.empty()) continue;
    combiner.append_run(dest, slot.data(), slot.size() / record_size_,
                        record_size_);
  }
}

}  // namespace retra::msg

#include "retra/msg/fault_comm.hpp"

#include <algorithm>
#include <utility>

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::msg {

FaultyComm::FaultyComm(Comm& inner, const FaultPlan& plan)
    : inner_(inner),
      plan_(plan),
      // Every rank draws from its own deterministic stream: the fate of a
      // rank's nth frame depends only on (seed, rank, n).
      rng_(support::splitmix64(plan.seed) ^
           support::splitmix64(0x9e3779b97f4a7c15ULL *
                               (static_cast<std::uint64_t>(inner.rank()) +
                                1))) {}

void FaultyComm::set_level(int level) {
  level_ = level;
  level_sends_ = 0;
  crash_armed_ = plan_.crash_rank == inner_.rank() &&
                 plan_.crash_level == level;
}

void FaultyComm::tick() {
  ++now_;
  while (!held_.empty() && held_.front().due <= now_) {
    Held held = std::move(held_.front());
    held_.pop_front();
    forward(held.dest, held.tag, std::move(held.payload));
  }
}

void FaultyComm::forward(int dest, std::uint8_t tag,
                         std::vector<std::byte> payload) {
  ++fstats_.forwarded;
  inner_.send(dest, tag, std::move(payload));
}

void FaultyComm::send(int dest, std::uint8_t tag,
                      std::vector<std::byte> payload) {
  if (crashed_) throw RankCrash{inner_.rank(), level_};
  tick();
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  if (crash_armed_ && ++level_sends_ > plan_.crash_after_sends) {
    // The rank dies mid-send: this frame and everything after it is lost.
    crashed_ = true;
    throw RankCrash{inner_.rank(), level_};
  }
  if (plan_.corrupt > 0 && rng_.chance(plan_.corrupt) && !payload.empty()) {
    ++fstats_.corrupted;
    const std::uint64_t victim = rng_.below(payload.size());
    payload[victim] ^= std::byte{0x20};
  }
  if (plan_.drop > 0 && rng_.chance(plan_.drop)) {
    ++fstats_.dropped;
    return;
  }
  if (plan_.duplicate > 0 && rng_.chance(plan_.duplicate)) {
    // The copy trails the original by a tick so it arrives distinctly.
    ++fstats_.duplicated;
    held_.push_back(Held{now_ + 1, dest, tag, payload});
  }
  if (plan_.delay > 0 && rng_.chance(plan_.delay)) {
    ++fstats_.delayed;
    const std::uint64_t ticks =
        1 + rng_.below(static_cast<std::uint64_t>(
                std::max(plan_.max_delay_ticks, 1)));
    held_.push_back(Held{now_ + ticks, dest, tag, std::move(payload)});
    return;
  }
  if (plan_.reorder > 0 && rng_.chance(plan_.reorder)) {
    // Held for exactly one tick: the sender's next frame overtakes it.
    ++fstats_.reordered;
    held_.push_back(Held{now_ + 1, dest, tag, std::move(payload)});
    return;
  }
  forward(dest, tag, std::move(payload));
}

bool FaultyComm::try_recv(Message& out) {
  if (crashed_) throw RankCrash{inner_.rank(), level_};
  tick();
  if (!inner_.try_recv(out)) return false;
  ++stats_.messages_received;
  stats_.bytes_received += out.payload.size();
  return true;
}

FaultWorld::FaultWorld(ThreadWorld& world, const FaultPlan& plan,
                       const ReliableConfig& reliable) {
  faulty_.reserve(support::to_size(world.size()));
  reliable_.reserve(support::to_size(world.size()));
  for (int rank = 0; rank < world.size(); ++rank) {
    faulty_.push_back(
        std::make_unique<FaultyComm>(world.endpoint(rank), plan));
    reliable_.push_back(
        std::make_unique<ReliableComm>(*faulty_.back(), reliable));
  }
}

void FaultWorld::set_level(int level) {
  for (auto& faulty : faulty_) faulty->set_level(level);
}

}  // namespace retra::msg

#include "retra/msg/reliable_comm.hpp"

#include <algorithm>
#include <cstring>

#include "retra/obs/metrics.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::msg {

using support::to_size;

namespace {

void put_u64(std::byte* out, std::uint64_t v) {
  std::memcpy(out, &v, sizeof v);
}

std::uint64_t get_u64(const std::byte* in) {
  std::uint64_t v;
  std::memcpy(&v, in, sizeof v);
  return v;
}

}  // namespace

ReliableComm::ReliableComm(Comm& inner, const ReliableConfig& config)
    : inner_(inner), config_(config), tx_(to_size(inner.size())),
      rx_(to_size(inner.size())) {
  RETRA_CHECK(config_.retry_ticks >= 1);
  RETRA_CHECK(config_.backoff_cap >= config_.retry_ticks);
}

void ReliableComm::send(int dest, std::uint8_t tag,
                        std::vector<std::byte> payload) {
  RETRA_CHECK(dest >= 0 && dest < size());
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  PeerTx& peer = tx_[to_size(dest)];
  const std::uint64_t seq = peer.next_seq++;

  std::vector<std::byte> frame(kReliableDataHeader + payload.size());
  put_u64(frame.data() + 8, seq);
  frame[16] = static_cast<std::byte>(tag);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kReliableDataHeader, payload.data(), payload.size());
  }
  put_u64(frame.data(),
          frame_checksum(frame.data() + 8, frame.size() - 8));

  Pending& pending = peer.unacked[seq];
  pending.interval = config_.retry_ticks;
  pending.due = now_ + pending.interval;
  pending.frame = frame;  // keep a verbatim copy for retransmission
  ++rstats_.data_sent;
  RETRA_OBS_INC(obs::Id::kReliableDataSent);
  inner_.send(dest, kTagReliableData, std::move(frame));
  pump();
}

bool ReliableComm::try_recv(Message& out) {
  pump();
  Message raw;
  while (inner_.try_recv(raw)) {
    if (raw.tag == kTagReliableAck) {
      handle_ack(raw);
    } else if (raw.tag == kTagReliableData) {
      handle_data(std::move(raw));
    } else {
      RETRA_CHECK_MSG(false, "non-protocol frame on a reliable endpoint");
    }
  }
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  ++stats_.messages_received;
  stats_.bytes_received += out.payload.size();
  ++rstats_.delivered;
  RETRA_OBS_INC(obs::Id::kReliableDelivered);
  return true;
}

bool ReliableComm::all_acked() const {
  for (const PeerTx& peer : tx_) {
    if (!peer.unacked.empty()) return false;
  }
  return true;
}

void ReliableComm::pump() {
  ++now_;
  for (std::size_t dest = 0; dest < tx_.size(); ++dest) {
    for (auto& [seq, pending] : tx_[dest].unacked) {
      if (pending.due > now_) continue;
      ++rstats_.retries;
      RETRA_OBS_INC(obs::Id::kReliableRetries);
      pending.interval = std::min(pending.interval * 2, config_.backoff_cap);
      pending.due = now_ + pending.interval;
      inner_.send(static_cast<int>(dest), kTagReliableData, pending.frame);
    }
  }
}

void ReliableComm::send_ack(int peer) {
  std::vector<std::byte> frame(kReliableAckSize);
  put_u64(frame.data() + 8, rx_[to_size(peer)].expected);
  put_u64(frame.data(), frame_checksum(frame.data() + 8, 8));
  ++rstats_.acks_sent;
  RETRA_OBS_INC(obs::Id::kReliableAcksSent);
  inner_.send(peer, kTagReliableAck, std::move(frame));
}

void ReliableComm::handle_ack(const Message& raw) {
  if (raw.payload.size() != kReliableAckSize ||
      get_u64(raw.payload.data()) !=
          frame_checksum(raw.payload.data() + 8, 8)) {
    ++rstats_.corrupt_dropped;
    RETRA_OBS_INC(obs::Id::kReliableCorruptDropped);
    return;
  }
  const std::uint64_t ack = get_u64(raw.payload.data() + 8);
  auto& unacked = tx_[to_size(raw.source)].unacked;
  unacked.erase(unacked.begin(), unacked.lower_bound(ack));
}

void ReliableComm::handle_data(Message raw) {
  if (raw.payload.size() < kReliableDataHeader ||
      get_u64(raw.payload.data()) !=
          frame_checksum(raw.payload.data() + 8, raw.payload.size() - 8)) {
    ++rstats_.corrupt_dropped;
    RETRA_OBS_INC(obs::Id::kReliableCorruptDropped);
    return;
  }
  const std::uint64_t seq = get_u64(raw.payload.data() + 8);
  const auto tag = static_cast<std::uint8_t>(raw.payload[16]);
  PeerRx& peer = rx_[to_size(raw.source)];
  if (seq < peer.expected) {
    // Already delivered; the ack was lost or the frame was duplicated.
    ++rstats_.duplicates_suppressed;
    RETRA_OBS_INC(obs::Id::kReliableDuplicates);
    send_ack(raw.source);
    return;
  }

  Message logical;
  logical.source = raw.source;
  logical.tag = tag;
  logical.payload.assign(raw.payload.begin() + kReliableDataHeader,
                         raw.payload.end());
  if (seq == peer.expected) {
    ++peer.expected;
    ready_.push_back(std::move(logical));
    // Promote any consecutively-held successors.
    auto it = peer.held.find(peer.expected);
    while (it != peer.held.end()) {
      ready_.push_back(std::move(it->second));
      peer.held.erase(it);
      ++peer.expected;
      it = peer.held.find(peer.expected);
    }
  } else if (peer.held.emplace(seq, std::move(logical)).second) {
    ++rstats_.out_of_order_held;
    RETRA_OBS_INC(obs::Id::kReliableOutOfOrderHeld);
  } else {
    ++rstats_.duplicates_suppressed;
    RETRA_OBS_INC(obs::Id::kReliableDuplicates);
  }
  send_ack(raw.source);
}

}  // namespace retra::msg

// Per-rank communication endpoint.
//
// The distributed engine talks to a Comm only; implementations are the
// real multi-threaded world (retra/msg/thread_comm.hpp) and the simulated
// Ethernet cluster (retra/sim/sim_comm.hpp).  Only non-blocking primitives
// exist: the engine is written as bulk-synchronous supersteps and a driver
// supplies barriers and reductions between steps, which is what lets the
// discrete-event simulator run the identical engine code single-threaded.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/msg/message.hpp"
#include "retra/msg/work_meter.hpp"

namespace retra::msg {

/// Cumulative transport-level statistics of one endpoint.
struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
};

class Comm {
 public:
  virtual ~Comm() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Enqueues a message; never blocks.  Self-sends are permitted.
  virtual void send(int dest, std::uint8_t tag,
                    std::vector<std::byte> payload) = 0;

  /// Pops one inbound message if available.
  virtual bool try_recv(Message& out) = 0;

  WorkMeter& meter() { return meter_; }
  const WorkMeter& meter() const { return meter_; }
  const TransportStats& transport_stats() const { return stats_; }

 protected:
  WorkMeter meter_;
  TransportStats stats_;
};

}  // namespace retra::msg

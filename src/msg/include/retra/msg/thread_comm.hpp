// The real message-passing world: one mailbox per rank, shared by
// reference between endpoint objects.  Rank code must only communicate
// through its endpoint — engines hold no shared state, so running each
// rank on its own OS thread is a faithful stand-in for the paper's
// distributed processes.
#pragma once

#include <memory>
#include <vector>

#include "retra/msg/comm.hpp"
#include "retra/msg/mailbox.hpp"

namespace retra::msg {

class ThreadWorld {
 public:
  explicit ThreadWorld(int ranks);
  ~ThreadWorld();  // out of line: Endpoint is an implementation detail

  int size() const { return static_cast<int>(endpoints_.size()); }
  Comm& endpoint(int rank);

 private:
  class Endpoint;
  std::vector<Mailbox> mailboxes_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace retra::msg

// Abstract work accounting.
//
// Engines charge every unit of algorithmic work to a WorkMeter.  Under the
// real thread transport the counters feed the run statistics (table T3);
// under the simulated cluster they are converted into virtual CPU time by
// the machine cost model, which is how the discrete-event runs price
// computation without 1995 hardware.
#pragma once

#include <array>
#include <cstdint>

namespace retra::msg {

enum class WorkKind : int {
  kScanPosition = 0,  // one position visited during a level scan
  kExitOption,        // one exit evaluated
  kLevelEdge,         // one same-level edge counted
  kAssign,            // one position finalised
  kPredEdge,          // one predecessor edge generated (unmove)
  kUpdateApply,       // one contribution applied to an open position
  kRecordPack,        // one record serialised into a combining buffer
  kRecordUnpack,      // one record decoded from an inbound message
  kCount
};

inline constexpr int kWorkKinds = static_cast<int>(WorkKind::kCount);

const char* work_kind_name(WorkKind kind);

struct WorkMeter {
  std::array<std::uint64_t, kWorkKinds> counts{};

  void charge(WorkKind kind, std::uint64_t n = 1) {
    counts[static_cast<int>(kind)] += n;
  }
  std::uint64_t count(WorkKind kind) const {
    return counts[static_cast<int>(kind)];
  }
  void clear() { counts.fill(0); }

  WorkMeter& operator+=(const WorkMeter& other) {
    for (int i = 0; i < kWorkKinds; ++i) counts[i] += other.counts[i];
    return *this;
  }
};

}  // namespace retra::msg

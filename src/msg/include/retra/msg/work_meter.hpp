// Abstract work accounting.
//
// Engines charge every unit of algorithmic work to a WorkMeter.  Under the
// real thread transport the counters feed the run statistics (table T3);
// under the simulated cluster they are converted into virtual CPU time by
// the machine cost model, which is how the discrete-event runs price
// computation without 1995 hardware.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace retra::msg {

enum class WorkKind : int {
  kScanPosition = 0,  // one position visited during a level scan
  kExitOption,        // one exit evaluated
  kLevelEdge,         // one same-level edge counted
  kAssign,            // one position finalised
  kPredEdge,          // one predecessor edge generated (unmove)
  kUpdateApply,       // one contribution applied to an open position
  kSweepPosition,     // one position examined by a seed/zero-fill value
                      // sweep (the vectorizable compare/select kernels;
                      // charged in bulk per chunk)
  kRecordPack,        // one record serialised into a combining buffer
  kRecordUnpack,      // one record decoded from an inbound message
  kCount
};

inline constexpr std::size_t kWorkKinds =
    static_cast<std::size_t>(WorkKind::kCount);

const char* work_kind_name(WorkKind kind);

struct WorkMeter {
  std::array<std::uint64_t, kWorkKinds> counts{};

  void charge(WorkKind kind, std::uint64_t n = 1) {
    counts[static_cast<std::size_t>(kind)] += n;
  }
  std::uint64_t count(WorkKind kind) const {
    return counts[static_cast<std::size_t>(kind)];
  }
  void clear() { counts.fill(0); }

  WorkMeter& operator+=(const WorkMeter& other) {
    for (std::size_t i = 0; i < kWorkKinds; ++i) counts[i] += other.counts[i];
    return *this;
  }
};

}  // namespace retra::msg

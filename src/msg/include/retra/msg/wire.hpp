// Fixed-size record serialisation.
//
// Combined messages are flat arrays of fixed-size records; records are
// encoded field-by-field with memcpy so the format is independent of
// struct padding (and would be portable across nodes of a real cluster).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace retra::msg {

// The wire format is defined in fixed-width fields; these widths are the
// contract every record's kWireSize arithmetic is written against.
static_assert(sizeof(std::uint64_t) == 8 && sizeof(std::uint32_t) == 4 &&
              sizeof(std::int16_t) == 2 && sizeof(std::uint8_t) == 1 &&
              sizeof(std::byte) == 1);

class WireWriter {
 public:
  explicit WireWriter(std::byte* out) : out_(out) {}

  void u64(std::uint64_t v) { put(v); }
  void u32(std::uint32_t v) { put(v); }
  void i16(std::int16_t v) { put(v); }
  void u8(std::uint8_t v) { put(v); }

  std::size_t written() const { return offset_; }

 private:
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(out_ + offset_, &v, sizeof v);
    offset_ += sizeof v;
  }

  std::byte* out_;
  std::size_t offset_ = 0;
};

class WireReader {
 public:
  explicit WireReader(const std::byte* in) : in_(in) {}

  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::int16_t i16() { return get<std::int16_t>(); }
  std::uint8_t u8() { return get<std::uint8_t>(); }

  std::size_t consumed() const { return offset_; }

 private:
  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    std::memcpy(&v, in_ + offset_, sizeof v);
    offset_ += sizeof v;
    return v;
  }

  const std::byte* in_;
  std::size_t offset_ = 0;
};

}  // namespace retra::msg

// Reliable delivery over a lossy transport.
//
// The BSP drivers and the async coordinator detect quiescence by exact
// record accounting (cumulative sent == cumulative received), so the
// engine must see every logical message exactly once and in per-source
// order even when the transport below drops, duplicates, reorders,
// delays or corrupts frames.  ReliableComm is a msg::Comm decorator
// inserted between the Combiner and the transport that provides exactly
// that:
//
//   * every logical message becomes a DATA frame carrying a
//     per-destination sequence number and an FNV-1a checksum;
//   * the receiver acknowledges cumulatively, suppresses duplicates by
//     sequence number, buffers out-of-order frames, and drops frames
//     whose checksum does not verify (a retransmission heals them);
//   * the sender keeps unacknowledged frames and retransmits on a
//     tick-based timer with bounded exponential backoff.  Ticks advance
//     on every send/try_recv call, which every engine performs each
//     superstep, so retries need no extra thread.
//
// A record handed to send() is only counted "received" by the engine
// when it is delivered here, so in-flight (lost, held, unacked) records
// keep the drivers' quiescence checks honest: a phase cannot end while
// the reliability layer still owes a delivery.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "retra/msg/comm.hpp"

namespace retra::msg {

/// Inner-frame tags; engine tags live in the low range (retra/para uses
/// 1..4), so the top of the byte is reserved for the protocol.
inline constexpr std::uint8_t kTagReliableData = 0xF0;
inline constexpr std::uint8_t kTagReliableAck = 0xF1;

/// On-wire frame layouts.
///   DATA frame: [u64 checksum][u64 seq][u8 logical tag][payload...]
///   ACK frame:  [u64 checksum][u64 cumulative ack]
/// The checksum covers every byte after itself, so corruption anywhere
/// in a frame (header or payload) is detected.
inline constexpr std::size_t kReliableDataHeader =
    sizeof(std::uint64_t) + sizeof(std::uint64_t) + sizeof(std::uint8_t);
inline constexpr std::size_t kReliableAckSize =
    sizeof(std::uint64_t) + sizeof(std::uint64_t);
static_assert(kReliableDataHeader == 17 && kReliableAckSize == 16,
              "reliable frame layout is wire-visible; do not change "
              "field widths casually");

/// FNV-1a over a byte range (local copy so msg does not depend on db).
constexpr std::uint64_t frame_checksum(const std::byte* data,
                                       std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<std::uint64_t>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

struct ReliableConfig {
  std::uint32_t retry_ticks = 8;    // ticks before the first retransmit
  std::uint32_t backoff_cap = 128;  // retry interval ceiling (doubling)
};

/// Cumulative protocol counters of one endpoint.
struct ReliableStats {
  std::uint64_t data_sent = 0;   // first transmissions (not retries)
  std::uint64_t retries = 0;     // retransmitted frames
  std::uint64_t acks_sent = 0;
  std::uint64_t delivered = 0;   // logical messages handed to the engine
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t corrupt_dropped = 0;     // frames failing the checksum
  std::uint64_t out_of_order_held = 0;   // frames buffered for reordering

  ReliableStats& operator+=(const ReliableStats& o) {
    data_sent += o.data_sent;
    retries += o.retries;
    acks_sent += o.acks_sent;
    delivered += o.delivered;
    duplicates_suppressed += o.duplicates_suppressed;
    corrupt_dropped += o.corrupt_dropped;
    out_of_order_held += o.out_of_order_held;
    return *this;
  }
  ReliableStats operator-(const ReliableStats& o) const {
    ReliableStats d = *this;
    d.data_sent -= o.data_sent;
    d.retries -= o.retries;
    d.acks_sent -= o.acks_sent;
    d.delivered -= o.delivered;
    d.duplicates_suppressed -= o.duplicates_suppressed;
    d.corrupt_dropped -= o.corrupt_dropped;
    d.out_of_order_held -= o.out_of_order_held;
    return d;
  }
};

class ReliableComm : public Comm {
 public:
  explicit ReliableComm(Comm& inner, const ReliableConfig& config = {});

  int rank() const override { return inner_.rank(); }
  int size() const override { return inner_.size(); }

  void send(int dest, std::uint8_t tag,
            std::vector<std::byte> payload) override;
  bool try_recv(Message& out) override;

  const ReliableStats& reliable_stats() const { return rstats_; }
  /// True when every sent frame has been acknowledged (test hook).
  bool all_acked() const;

 private:
  struct Pending {
    std::vector<std::byte> frame;  // encoded DATA frame, resent verbatim
    std::uint64_t due = 0;
    std::uint32_t interval = 0;
  };
  struct PeerTx {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, Pending> unacked;
  };
  struct PeerRx {
    std::uint64_t expected = 0;                // next in-order sequence
    std::map<std::uint64_t, Message> held;     // out-of-order frames
  };

  /// Advances the tick and retransmits due unacknowledged frames.
  void pump();
  void send_ack(int peer);
  void handle_ack(const Message& raw);
  void handle_data(Message raw);

  Comm& inner_;
  ReliableConfig config_;
  std::uint64_t now_ = 0;
  std::vector<PeerTx> tx_;
  std::vector<PeerRx> rx_;
  std::deque<Message> ready_;  // in-order logical messages awaiting recv
  ReliableStats rstats_;
};

}  // namespace retra::msg

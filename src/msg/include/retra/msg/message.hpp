// Wire-level message representation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace retra::msg {

/// A point-to-point message: a tag describing the record type of the
/// payload plus a flat byte payload holding zero or more fixed-size
/// records (see retra/msg/wire.hpp).
struct Message {
  int source = -1;
  std::uint8_t tag = 0;
  std::vector<std::byte> payload;
};

// Payloads are flat arrays of fixed-size records memcpy'd in and out
// (retra/msg/wire.hpp); that only works because the element type is a
// single raw byte.
static_assert(sizeof(std::byte) == 1 &&
              std::is_trivially_copyable_v<std::byte>);

}  // namespace retra::msg

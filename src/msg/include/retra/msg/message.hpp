// Wire-level message representation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace retra::msg {

/// A point-to-point message: a tag describing the record type of the
/// payload plus a flat byte payload holding zero or more fixed-size
/// records (see retra/msg/wire.hpp).
struct Message {
  int source = -1;
  std::uint8_t tag = 0;
  std::vector<std::byte> payload;
};

}  // namespace retra::msg

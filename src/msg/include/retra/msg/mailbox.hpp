// Multi-producer single-consumer message queue backing the thread world.
#pragma once

#include <deque>

#include "retra/msg/message.hpp"
#include "retra/support/sync.hpp"
#include "retra/support/thread_annotations.hpp"

namespace retra::msg {

class Mailbox {
 public:
  void push(Message message) RETRA_EXCLUDES(mutex_);
  bool try_pop(Message& out) RETRA_EXCLUDES(mutex_);
  /// Number of queued messages (racy snapshot; used by tests and idle
  /// detection heuristics only).
  std::size_t approximate_size() const RETRA_EXCLUDES(mutex_);

 private:
  mutable support::Mutex mutex_;
  std::deque<Message> queue_ RETRA_GUARDED_BY(mutex_);
};

}  // namespace retra::msg

// Multi-producer single-consumer message queue backing the thread world.
#pragma once

#include <deque>
#include <mutex>

#include "retra/msg/message.hpp"

namespace retra::msg {

class Mailbox {
 public:
  void push(Message message);
  bool try_pop(Message& out);
  /// Number of queued messages (racy snapshot; used by tests and idle
  /// detection heuristics only).
  std::size_t approximate_size() const;

 private:
  mutable std::mutex mutex_;
  std::deque<Message> queue_;
};

}  // namespace retra::msg

// Message combining — the paper's central technique.
//
// A retrograde update is ~10 bytes; sending each as its own message costs
// a per-message software overhead (about a millisecond of 1995 RPC) plus a
// minimum Ethernet frame, three orders of magnitude more wire and CPU time
// than the record itself.  The combiner keeps one buffer per destination
// rank, appends records until the buffer reaches `flush_bytes`, and ships
// the whole buffer as one message; partial buffers are flushed at
// superstep boundaries so the bulk-synchronous termination logic stays
// exact.
//
// Combining OFF is expressed as flush_bytes = 1: every record travels
// alone, which is the paper's naive baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/msg/comm.hpp"

namespace retra::msg {

class Combiner {
 public:
  struct Stats {
    std::uint64_t records = 0;
    std::uint64_t messages = 0;
    std::uint64_t payload_bytes = 0;
  };

  /// `flush_bytes` is the combining buffer size; a buffer always accepts
  /// at least one record regardless.
  Combiner(Comm& comm, std::uint8_t tag, std::size_t flush_bytes);

  /// Appends one fixed-size record bound for `dest`, flushing first if it
  /// would not fit.
  void append(int dest, const void* record, std::size_t record_size);

  /// Sends any partial buffer for `dest`.
  void flush(int dest);
  /// Sends every partial buffer (superstep boundary).
  void flush_all();

  const Stats& stats() const { return stats_; }

 private:
  Comm& comm_;
  std::uint8_t tag_;
  std::size_t flush_bytes_;
  std::vector<std::vector<std::byte>> buffers_;  // one per destination
  /// Records currently sitting in each buffer; feeds the per-message
  /// combining-factor histogram when the buffer ships.
  std::vector<std::uint64_t> buffer_records_;
  Stats stats_;
};

/// Thread-private staging buffer for records that will later be fed to a
/// shared Combiner.
///
/// The rank engines' chunked phases run on worker threads that must not
/// touch the rank's combiner (it owns comm-facing buffers and the work
/// meter).  Each chunk stages its (dest, record) appends here in
/// discovery order; after the fork-join the owning thread replays the
/// stages *in chunk order* through Combiner::append.  Because the global
/// replay sequence equals the order a single-threaded sweep would have
/// produced, message framing, flush boundaries, stats, and meter charges
/// are bit-identical to the T = 1 run.
class CombinerStage {
 public:
  /// Stages one fixed-size record bound for `dest`.
  void append(int dest, const void* record, std::size_t record_size);

  std::uint64_t records() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Replays every staged record, in staging order, through
  /// combiner.append().  The stage keeps its contents; call clear() to
  /// reuse it.
  void replay_into(Combiner& combiner) const;

  void clear();

 private:
  struct Entry {
    int dest;
    std::uint32_t offset;
    std::uint32_t size;
  };
  std::vector<Entry> entries_;
  std::vector<std::byte> bytes_;
};

}  // namespace retra::msg

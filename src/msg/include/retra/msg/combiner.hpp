// Message combining — the paper's central technique.
//
// A retrograde update is ~10 bytes; sending each as its own message costs
// a per-message software overhead (about a millisecond of 1995 RPC) plus a
// minimum Ethernet frame, three orders of magnitude more wire and CPU time
// than the record itself.  The combiner keeps one buffer per destination
// rank, appends records until the buffer reaches `flush_bytes`, and ships
// the whole buffer as one message; partial buffers are flushed at
// superstep boundaries so the bulk-synchronous termination logic stays
// exact.
//
// Combining OFF is expressed as flush_bytes = 1: every record travels
// alone, which is the paper's naive baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/msg/comm.hpp"

namespace retra::msg {

class Combiner {
 public:
  struct Stats {
    std::uint64_t records = 0;
    std::uint64_t messages = 0;
    std::uint64_t payload_bytes = 0;
  };

  /// `flush_bytes` is the combining buffer size; a buffer always accepts
  /// at least one record regardless.
  Combiner(Comm& comm, std::uint8_t tag, std::size_t flush_bytes);

  /// Appends one fixed-size record bound for `dest`, flushing first if it
  /// would not fit.
  void append(int dest, const void* record, std::size_t record_size);

  /// Appends `count` contiguous fixed-size records bound for `dest` —
  /// exactly equivalent to `count` append() calls (same flush boundaries,
  /// same message framing, same stats and meter charges) but memcpy'd in
  /// buffer-sized blocks instead of record by record.  The bulk entry the
  /// engines' per-destination staging banks drain through.
  void append_run(int dest, const void* records, std::size_t count,
                  std::size_t record_size);

  /// Sends any partial buffer for `dest`.
  void flush(int dest);
  /// Sends every partial buffer (superstep boundary).
  void flush_all();

  const Stats& stats() const { return stats_; }

 private:
  Comm& comm_;
  std::uint8_t tag_;
  std::size_t flush_bytes_;
  std::vector<std::vector<std::byte>> buffers_;  // one per destination
  /// Records currently sitting in each buffer; feeds the per-message
  /// combining-factor histogram when the buffer ships.
  std::vector<std::uint64_t> buffer_records_;
  Stats stats_;
};

/// Lock-free per-destination staging bank for records that will later be
/// fed to a shared Combiner.
///
/// The rank engines' chunked phases run on worker threads that must not
/// touch the rank's combiner (it owns comm-facing buffers and the work
/// meter).  Each chunk owns one bank — no locks, no shared state — and
/// appends its records into one fixed-stride slot buffer per destination
/// rank, in discovery order.  After the fork-join the owning thread
/// drains the banks in (chunk, destination) order through
/// Combiner::append_run, one bulk call per non-empty destination.
///
/// Why this preserves the byte-identity guarantees the per-record replay
/// gave: chunks partition the index range in ascending order, so
/// concatenating the banks chunk-ascending yields, *per destination*,
/// exactly the record sequence a single-threaded sweep would have
/// produced — and a receiver only ever observes its own (source,
/// destination) stream.  Flush boundaries and message framing depend
/// only on that per-destination sequence, so grouping the replay by
/// destination changes no message, no stat, and no meter count.
class CombinerBank {
 public:
  /// Empties the bank and fixes its geometry: `dests` destination slots,
  /// `record_size`-byte records.  Keeps slot capacity across reuse.
  void reset(int dests, std::size_t record_size);

  /// Stages one record_size-byte record bound for `dest`.
  void append(int dest, const void* record);

  std::uint64_t records() const { return records_; }
  bool empty() const { return records_ == 0; }

  /// Drains every staged record into `combiner`: destinations in
  /// ascending order, records in staging order within each destination,
  /// via one append_run per non-empty destination.
  void replay_into(Combiner& combiner) const;

 private:
  std::size_t record_size_ = 0;
  std::vector<std::vector<std::byte>> slots_;  // one per destination
  std::uint64_t records_ = 0;
};

}  // namespace retra::msg

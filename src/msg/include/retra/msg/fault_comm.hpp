// Deterministic fault injection for the message transport.
//
// The paper's production runs were multi-day builds on 64 Ethernet
// workstations; at that scale the transport loses, duplicates, reorders
// and delays frames, and nodes die mid-build.  FaultyComm is a msg::Comm
// decorator that injects exactly those failures below the reliability
// sublayer (retra/msg/reliable_comm.hpp), driven by a seeded
// support::Xoshiro256 so every failure run is replayable from its seed:
// the nth send of a given rank always suffers the same fate.
//
// A scheduled crash models a node dying mid-level: once armed (see
// set_level), the endpoint throws RankCrash from the configured send
// onward and stays dead.  The BSP/async drivers translate the exception
// into a clean abort of the level so a later invocation can resume from
// the checkpoint directory.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "retra/msg/comm.hpp"
#include "retra/msg/reliable_comm.hpp"
#include "retra/msg/thread_comm.hpp"
#include "retra/support/numeric.hpp"
#include "retra/support/rng.hpp"

namespace retra::msg {

/// A replayable fault schedule.  Probabilities apply independently to
/// every frame handed to the transport (data and ack frames alike); the
/// crash fields schedule one rank's death at one build level.
struct FaultPlan {
  std::uint64_t seed = 0x5eed;
  double drop = 0.0;       // frame silently lost
  double duplicate = 0.0;  // frame delivered a second time, slightly late
  double reorder = 0.0;    // frame swapped behind the sender's next frame
  double delay = 0.0;      // frame held for 1..max_delay_ticks sender ticks
  int max_delay_ticks = 16;
  double corrupt = 0.0;    // one payload byte flipped
  int crash_rank = -1;  // rank that dies (-1: nobody)
  int crash_level = 0;  // level at which the crash is armed
  /// The rank completes this many sends of the crash level, then dies.
  std::uint64_t crash_after_sends = 0;

  bool active() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || delay > 0 ||
           corrupt > 0 || crash_rank >= 0;
  }
};

/// Cumulative injected-fault counters of one endpoint.
struct FaultStats {
  std::uint64_t forwarded = 0;  // frames passed through unharmed
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;
  std::uint64_t corrupted = 0;

  FaultStats& operator+=(const FaultStats& o) {
    forwarded += o.forwarded;
    dropped += o.dropped;
    duplicated += o.duplicated;
    reordered += o.reordered;
    delayed += o.delayed;
    corrupted += o.corrupted;
    return *this;
  }
  FaultStats operator-(const FaultStats& o) const {
    FaultStats d = *this;
    d.forwarded -= o.forwarded;
    d.dropped -= o.dropped;
    d.duplicated -= o.duplicated;
    d.reordered -= o.reordered;
    d.delayed -= o.delayed;
    d.corrupted -= o.corrupted;
    return d;
  }
};

/// Thrown by a crashed endpoint; drivers turn it into a clean abort.
struct RankCrash {
  int rank = -1;
  int level = -1;
};

class FaultyComm : public Comm {
 public:
  FaultyComm(Comm& inner, const FaultPlan& plan);

  int rank() const override { return inner_.rank(); }
  int size() const override { return inner_.size(); }

  void send(int dest, std::uint8_t tag,
            std::vector<std::byte> payload) override;
  bool try_recv(Message& out) override;

  /// Arms the scheduled crash when `level` matches the plan's crash level
  /// (and this endpoint is the crash rank); resets the per-level send
  /// count.  Called by build_parallel at the start of every level.
  void set_level(int level);

  bool crashed() const { return crashed_; }
  const FaultStats& fault_stats() const { return fstats_; }

 private:
  struct Held {
    std::uint64_t due = 0;
    int dest = 0;
    std::uint8_t tag = 0;
    std::vector<std::byte> payload;
  };

  /// Advances virtual time and releases due held frames.
  void tick();
  void forward(int dest, std::uint8_t tag, std::vector<std::byte> payload);

  Comm& inner_;
  FaultPlan plan_;
  support::Xoshiro256 rng_;
  std::uint64_t now_ = 0;
  std::uint64_t level_sends_ = 0;
  int level_ = -1;
  bool crash_armed_ = false;
  bool crashed_ = false;
  std::deque<Held> held_;  // delayed / reordered frames awaiting release
  FaultStats fstats_;
};

/// Convenience bundle: every rank of a ThreadWorld wrapped in
/// FaultyComm + ReliableComm, which is the stack build_parallel and the
/// chaos tests run engines on.  endpoint(r) is the outermost (reliable)
/// endpoint; all WorkMeter charges land there.
class FaultWorld {
 public:
  FaultWorld(ThreadWorld& world, const FaultPlan& plan,
             const ReliableConfig& reliable = {});

  int size() const { return static_cast<int>(reliable_.size()); }
  Comm& endpoint(int rank) { return *reliable_[support::to_size(rank)]; }
  FaultyComm& faulty(int rank) {
    return *faulty_[support::to_size(rank)];
  }
  ReliableComm& reliable(int rank) {
    return *reliable_[support::to_size(rank)];
  }

  /// Arms the scheduled crash on every endpoint (only the plan's crash
  /// rank reacts).
  void set_level(int level);

 private:
  std::vector<std::unique_ptr<FaultyComm>> faulty_;
  std::vector<std::unique_ptr<ReliableComm>> reliable_;
};

}  // namespace retra::msg

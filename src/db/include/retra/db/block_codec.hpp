// RTRADB03 per-block codecs (docs/FORMAT.md has the bitstream grammar).
//
// A block is a run of `count` offset-subtracted codes, each below
// 2^bits for the level's pack width (4, 8 or 16).  Three storage
// schemes exist:
//
//   raw  — the codes bit-packed exactly as RTRADB02 packs a level;
//   rle  — (code, varint run-length) pairs over maximal runs of equal
//          codes; wins on the long solved/unknown stretches retrograde
//          levels produce;
//   freq — canonical-prefix (Huffman) coding over the block's symbol
//          frequencies; wins on the heavily skewed value distributions
//          of finished levels (most positions hold a handful of
//          distinct values).
//
// encode_block() tries every applicable scheme and returns the
// smallest, so raw is the transparent fallback when compression does
// not pay.  decode_block() reverses any scheme back to raw bit-packed
// bytes, diagnosing malformed streams instead of crashing — the serving
// layer feeds it bytes straight from disk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "retra/db/format.hpp"

namespace retra::db {

/// One encoded block: the chosen scheme tag plus its stored bytes.
struct EncodedBlock {
  BlockScheme scheme = BlockScheme::kRaw;
  std::vector<std::uint8_t> bytes;
};

/// Bit-packs `count` codes at `bits` bits each — the raw scheme and the
/// RTRADB02 level payload layout (4-bit: two codes per byte, low nibble
/// first; 16-bit: little-endian).
std::vector<std::uint8_t> pack_codes(const std::uint16_t* codes,
                                     std::size_t count, int bits);

/// Run-length encodes: per maximal run, the code in ceil(bits/8)
/// little-endian bytes followed by the run length as a LEB128 varint.
std::vector<std::uint8_t> rle_encode(const std::uint16_t* codes,
                                     std::size_t count, int bits);

/// Canonical-prefix encodes (bits 4 or 8 only): u16 symbol count, the
/// (symbol, code length) table in ascending symbol order, then the
/// MSB-first bitstream, zero-padded to a byte.  Returns an empty vector
/// when the scheme does not apply (16-bit packing or fewer than two
/// distinct symbols).
std::vector<std::uint8_t> freq_encode(const std::uint16_t* codes,
                                      std::size_t count, int bits);

/// Encodes one block under the smallest applicable scheme (ties prefer
/// the lower scheme tag, so an incompressible block stays raw).
EncodedBlock encode_block(const std::uint16_t* codes, std::size_t count,
                          int bits);

/// Result of decode_block(): raw bit-packed bytes — exactly
/// CompactLevel::packed_bytes(count, bits) of them — or a diagnosis.
struct BlockDecodeResult {
  bool ok = false;
  std::string error;
  std::vector<std::uint8_t> packed;
};

/// Decodes `size` stored bytes of `scheme` back to bit-packed form.
/// Every structural defect — truncated stream, trailing garbage, run
/// lengths that do not sum to `count`, codes outside 2^bits, a
/// non-canonical symbol table — is a diagnosed error, never UB.
BlockDecodeResult decode_block(BlockScheme scheme, const std::uint8_t* data,
                               std::size_t size, std::uint64_t count,
                               int bits);

}  // namespace retra::db

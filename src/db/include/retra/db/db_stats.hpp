// Database content statistics — the raw material of the paper-style
// "database characteristics" tables (wins / draws / losses, value spread).
#pragma once

#include <cstdint>

#include "retra/db/database.hpp"
#include "retra/support/stats.hpp"

namespace retra::db {

struct LevelStats {
  int level = 0;
  std::uint64_t positions = 0;
  /// Positions the mover wins / draws / loses on net future captures.
  std::uint64_t wins = 0;
  std::uint64_t draws = 0;
  std::uint64_t losses = 0;
  Value min_value = 0;
  Value max_value = 0;
  double mean_value = 0.0;
};

LevelStats level_stats(const Database& database, int level);

/// Full value histogram of a level over [-bound, bound].
support::IntHistogram level_histogram(const Database& database, int level,
                                      int bound);

}  // namespace retra::db

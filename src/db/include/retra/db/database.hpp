// In-memory endgame databases: one dense value vector per level.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/game/level_game.hpp"
#include "retra/index/board_index.hpp"

namespace retra::db {

using game::Value;

/// Sentinel for not-yet-assigned entries inside solvers; never present in a
/// finished database.
inline constexpr Value kUnknown = INT16_MIN;

/// A solved database: levels 0..N, each a dense vector indexed by the
/// level's perfect position index.  Levels must be added bottom-up but may
/// be queried in any order.
class Database {
 public:
  /// Appends the next level; `values` must cover the whole level and the
  /// level id must be num_levels() (levels are contiguous from 0).
  void push_level(int level, std::vector<Value> values);

  /// Number of stored levels; stored level ids are 0..num_levels()-1.
  int num_levels() const { return static_cast<int>(levels_.size()); }
  bool has_level(int level) const {
    return level >= 0 && level < num_levels();
  }

  const std::vector<Value>& level(int l) const;
  Value value(int level, idx::Index index) const;

  /// Total entries across levels.
  std::uint64_t total_positions() const;

  bool operator==(const Database& other) const = default;

 private:
  std::vector<std::vector<Value>> levels_;
};

}  // namespace retra::db

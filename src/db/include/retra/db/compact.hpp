// Bit-packed read-only databases.
//
// A finished level's values span [−n, +n]; storing them at int16 wastes
// most of each byte.  CompactLevel packs values at 4, 8 or 16 bits per
// position (the narrowest width that covers the level's actual range,
// offset-encoded), cutting the paper's 600 MB uniprocessor figure by 2–4×
// for query-time use.  Construction-time state (best/cnt) still needs the
// full working set, which is why distribution — not packing — is what
// makes the big builds feasible; packing is how the *finished* database
// is served afterwards.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/index/board_index.hpp"

namespace retra::db {

class CompactLevel {
 public:
  /// An empty level (size 0); assign a real one before querying.
  CompactLevel() = default;

  /// Packs `values` at the narrowest supported width.
  explicit CompactLevel(const std::vector<Value>& values);

  /// Adopts an already-packed payload — the representation the RTRADB02
  /// file format stores, so file-backed serving can materialise a level
  /// without a decode/re-pack round trip.  `packed` must hold exactly
  /// packed_bytes(size, bits) bytes and `bits` must be 4, 8 or 16.
  static CompactLevel from_packed(std::uint64_t size, int bits, Value offset,
                                  std::vector<std::uint8_t> packed);

  /// Packed payload bytes needed for `size` values at `bits` bits each.
  static std::uint64_t packed_bytes(std::uint64_t size, int bits) {
    return (size * static_cast<std::uint64_t>(bits) + 7) / 8;
  }

  std::uint64_t size() const { return size_; }
  int bits() const { return bits_; }
  /// Stored value = (v - offset()) in `bits()` bits.
  Value offset() const { return offset_; }
  Value get(idx::Index index) const;

  /// The packed payload (what RTRADB02 persists verbatim).
  const std::vector<std::uint8_t>& packed() const { return packed_; }

  /// Bytes of packed payload (excluding the object header).
  std::uint64_t memory_bytes() const { return packed_.size(); }

  /// Unpacks back to a plain vector (tests, round-trips).
  std::vector<Value> expand() const;

 private:
  std::uint64_t size_ = 0;
  int bits_ = 16;
  Value offset_ = 0;  // stored value = (v - offset) in `bits_` bits
  std::vector<std::uint8_t> packed_;
};

/// A whole database in packed form; query API mirrors db::Database.
class CompactDatabase {
 public:
  explicit CompactDatabase(const Database& database);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  bool has_level(int level) const {
    return level >= 0 && level < num_levels();
  }
  Value value(int level, idx::Index index) const;
  const CompactLevel& level(int l) const;

  std::uint64_t memory_bytes() const;
  Database expand() const;

 private:
  std::vector<CompactLevel> levels_;
};

}  // namespace retra::db

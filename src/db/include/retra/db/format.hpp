// RTRADB on-disk format constants (docs/FORMAT.md is the byte-level
// reference; the format-doc analysis in tools/retra_analyze keeps the
// two in sync, both directions).
//
// Three little-endian formats share the 8-byte magic prefix:
//
//   RTRADB01 — raw values, narrowed to one byte when possible;
//   RTRADB02 — offset-coded bit-packed levels stored verbatim;
//   RTRADB03 — bit-packed levels split into fixed-size blocks, each
//   block stored raw or compressed under a per-block scheme chosen at
//   save time, with a per-level block directory so a point lookup
//   decompresses exactly one block.
//
// Everything a reader must agree on — magics, header sanity bounds,
// block geometry limits, scheme tags and codec parameters — lives here
// so db_io, the block codecs, the serving layer and the analyzer all
// reference one definition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace retra::db {

/// File magics; exactly kMagicBytes bytes on disk, no terminator.
inline constexpr std::string_view kMagic01 = "RTRADB01";
inline constexpr std::string_view kMagic02 = "RTRADB02";
inline constexpr std::string_view kMagic03 = "RTRADB03";
inline constexpr std::size_t kMagicBytes = 8;

/// Level counts and sizes beyond these bounds mean a corrupt header, not
/// a real database; rejecting early keeps a doctored file from driving a
/// multi-terabyte allocation.
inline constexpr std::uint32_t kMaxLevels = 4096;
inline constexpr std::uint64_t kMaxLevelSize = 1ull << 40;

/// RTRADB03 block geometry.  Positions per block must be even so every
/// block boundary is byte-aligned at 4-bit packing (two positions per
/// byte) and decoded blocks concatenate without shifting.
inline constexpr std::uint32_t kDefaultBlockPositions = 4096;
inline constexpr std::uint32_t kMaxBlockPositions = 65536;

/// Directory-size sanity bound: a level may hold at most this many
/// blocks (the real ceiling, kMaxLevelSize / 2 blocks, would let a
/// doctored header demand a gigantic directory allocation).
inline constexpr std::uint32_t kMaxLevelBlocks = 1u << 20;

/// RTRADB03 per-block storage schemes — the directory tag byte.  The
/// encoder tries every applicable scheme and keeps the smallest
/// encoding, so raw is the transparent fallback when compression does
/// not pay.
enum class BlockScheme : std::uint8_t {
  kRaw = 0,   // bit-packed codes, exactly the RTRADB02 byte layout
  kRle = 1,   // (code, varint run-length) pairs over runs of equal codes
  kFreq = 2,  // canonical-prefix (frequency) coded symbols
};

inline constexpr std::uint8_t kBlockSchemeCount = 3;

/// Frequency-coded blocks carry a symbol table of u8 symbols, so the
/// scheme only applies at 4- and 8-bit packing; code lengths are capped
/// so the decoder's bit accumulator never overflows.
inline constexpr std::uint32_t kFreqMaxSymbols = 256;
inline constexpr std::uint32_t kFreqMaxCodeBits = 32;

}  // namespace retra::db

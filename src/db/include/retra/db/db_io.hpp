// Database persistence.
//
// Two compact little-endian on-disk formats, both with a per-level FNV-1a
// checksum (docs/FORMAT.md is the byte-level reference):
//
//   RTRADB01 — raw values, narrowed to one byte when the level's range
//   allows (always true for awari):
//     magic "RTRADB01" | u32 level count
//     per level: u64 size | u8 width (1 or 2 bytes) | payload | u64 checksum
//
//   RTRADB02 — offset-coded bit-packed values, the CompactLevel
//   representation persisted verbatim so a server can fault a level in
//   without re-packing:
//     magic "RTRADB02" | u32 level count
//     per level: u64 size | u8 bits (4, 8 or 16) | i16 offset |
//                u64 payload bytes | payload | u64 checksum
//
// load() accepts both; save() writes RTRADB01 by default and RTRADB02
// with SaveOptions{.pack = true}.  scan()/read_level() expose the level
// directory without materialising payloads — the serving layer
// (retra/serve/file_source.hpp) uses them for on-demand residency.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "retra/db/compact.hpp"
#include "retra/db/database.hpp"

namespace retra::db {

struct SaveOptions {
  /// Write the RTRADB02 bit-packed format instead of RTRADB01.
  bool pack = false;
};

/// Writes the database; aborts on I/O failure (callers are CLI tools).
void save(const Database& database, const std::string& path,
          const SaveOptions& options = {});

/// Result of load(): either a database or a diagnosis of why the file was
/// rejected (missing, malformed, checksum mismatch).
struct LoadResult {
  bool ok = false;
  std::string error;
  Database database;
};

LoadResult load(const std::string& path);

/// One level's placement inside an RTRADB file, as recorded by scan().
struct LevelLocation {
  int level = 0;
  std::uint64_t size = 0;      // positions
  int bits = 16;               // stored bits per value (8/16 for RTRADB01)
  bool raw = false;            // RTRADB01: payload is raw int8/int16 values
  Value offset = 0;            // RTRADB02 pack offset (0 for RTRADB01)
  std::uint64_t payload_offset = 0;  // byte offset of the payload
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;  // stored FNV-1a of the payload
};

/// The level directory of an RTRADB file: everything needed to seek to
/// and decode any level, built by reading headers only (payloads are
/// skipped, so scanning a multi-gigabyte database touches a few KB).
struct FileIndex {
  bool ok = false;
  std::string error;
  int version = 0;  // 1 or 2
  std::vector<LevelLocation> levels;

  /// Sum of payload_bytes — the resident cost of the whole file.
  std::uint64_t total_payload_bytes() const;
};

/// Scans the level directory of `file` (rewinds first).  Structural
/// problems — bad magic, truncated headers, payloads running past the end
/// of the file — are diagnosed here; payload corruption is only caught by
/// the checksum verification in read_level().
FileIndex scan(std::FILE* file);
FileIndex scan(const std::string& path);

/// Result of read_level(): the level in packed (serving) form.
struct LevelReadResult {
  bool ok = false;
  std::string error;
  CompactLevel level;
};

/// Reads, checksum-verifies and unpacks one level located by scan() from
/// the same file.  RTRADB02 payloads are adopted as-is; RTRADB01 raw
/// payloads are decoded and re-packed at the narrowest width.
LevelReadResult read_level(std::FILE* file, const LevelLocation& location);

/// FNV-1a over a byte range; exposed for tests.
std::uint64_t fnv1a(const void* data, std::size_t size);

}  // namespace retra::db

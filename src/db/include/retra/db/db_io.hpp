// Database persistence.
//
// Compact little-endian format with a per-level FNV-1a checksum; values are
// narrowed to one byte when the level's range allows (always true for
// awari), mirroring the storage the paper's memory figures assume.
//
//   magic "RTRADB01" | u32 level count
//   per level: u64 size | u8 width (1 or 2) | payload | u64 checksum
#pragma once

#include <string>

#include "retra/db/database.hpp"

namespace retra::db {

/// Writes the database; aborts on I/O failure (callers are CLI tools).
void save(const Database& database, const std::string& path);

/// Result of load(): either a database or a diagnosis of why the file was
/// rejected (missing, malformed, checksum mismatch).
struct LoadResult {
  bool ok = false;
  std::string error;
  Database database;
};

LoadResult load(const std::string& path);

/// FNV-1a over a byte range; exposed for tests.
std::uint64_t fnv1a(const void* data, std::size_t size);

}  // namespace retra::db

// Database persistence.
//
// Three compact little-endian on-disk formats (docs/FORMAT.md is the
// byte-level reference; retra/db/format.hpp holds the shared constants):
//
//   RTRADB01 — raw values, narrowed to one byte when the level's range
//   allows (always true for awari):
//     magic "RTRADB01" | u32 level count
//     per level: u64 size | u8 width (1 or 2 bytes) | payload | u64 checksum
//
//   RTRADB02 — offset-coded bit-packed values, the CompactLevel
//   representation persisted verbatim so a server can fault a level in
//   without re-packing:
//     magic "RTRADB02" | u32 level count
//     per level: u64 size | u8 bits (4, 8 or 16) | i16 offset |
//                u64 payload bytes | payload | u64 checksum
//
//   RTRADB03 — the bit-packed level split into fixed-size blocks, each
//   stored raw or compressed under a per-block scheme (BlockScheme),
//   fronted by a block directory so a point lookup reads and decodes
//   exactly one block:
//     magic "RTRADB03" | u32 level count
//     per level: u64 size | u8 bits | i16 offset | u32 block positions |
//                u32 block count | u64 payload bytes |
//                directory (per block: u8 scheme | u32 stored bytes |
//                u64 offset | u64 checksum) | u64 directory checksum |
//                concatenated stored blocks
//
// load() accepts all three; save() writes the version selected by
// db::Format — RTRADB01 by default, RTRADB02 with Format{.version = 2}
// and RTRADB03 with Format{.version = 3}.
// scan()/read_level()/read_block() expose the level directory without
// materialising payloads — the serving layer
// (retra/serve/file_source.hpp) uses them for on-demand residency.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "retra/db/compact.hpp"
#include "retra/db/database.hpp"
#include "retra/db/format.hpp"

namespace retra::db {

/// Which on-disk format save() writes.
struct Format {
  /// 1 = RTRADB01 raw, 2 = RTRADB02 bit-packed, 3 = RTRADB03
  /// block-compressed.
  int version = 1;
  /// RTRADB03 positions per block; must be even and at most
  /// kMaxBlockPositions.  Ignored by versions 1 and 2.
  std::uint32_t block_positions = kDefaultBlockPositions;
};

/// Writes the database; aborts on I/O failure (callers are CLI tools).
void save(const Database& database, const std::string& path,
          const Format& format = {});

/// Result of load(): either a database or a diagnosis of why the file was
/// rejected (missing, malformed, checksum mismatch).
struct LoadResult {
  bool ok = false;
  std::string error;
  Database database;
};

LoadResult load(const std::string& path);

/// One block's placement inside an RTRADB03 level, as recorded by scan().
struct BlockLocation {
  BlockScheme scheme = BlockScheme::kRaw;
  std::uint64_t offset = 0;  // absolute byte offset of the stored bytes
  std::uint32_t stored_bytes = 0;
  std::uint64_t checksum = 0;  // stored FNV-1a of the stored bytes
};

/// One level's placement inside an RTRADB file, as recorded by scan().
struct LevelLocation {
  int level = 0;
  std::uint64_t size = 0;      // positions
  int bits = 16;               // stored bits per value (8/16 for RTRADB01)
  bool raw = false;            // RTRADB01: payload is raw int8/int16 values
  Value offset = 0;            // pack offset (0 for RTRADB01)
  std::uint64_t payload_offset = 0;  // byte offset of the payload
  std::uint64_t payload_bytes = 0;   // stored bytes (post-compression for v3)
  std::uint64_t checksum = 0;  // v1/v2 stored FNV-1a (0 for v3: per block)
  std::uint32_t block_positions = 0;  // v3 positions per block (0 for v1/v2)
  std::vector<BlockLocation> blocks;  // v3 block directory (empty for v1/v2)

  /// Cacheable units in this level: the directory blocks for RTRADB03,
  /// one whole-level block for RTRADB01/02.
  int block_count() const;
  /// First position covered by block `block`.
  std::uint64_t block_begin(int block) const;
  /// Positions covered by block `block` (the last block may be short).
  std::uint64_t block_size(int block) const;
  /// Resident cost of block `block` once decoded to bit-packed form —
  /// what a block cache charges against its byte budget.  For RTRADB01/02
  /// this is the whole-level payload_bytes.
  std::uint64_t block_decoded_bytes(int block) const;
  /// Sum of block_decoded_bytes over all blocks.
  std::uint64_t decoded_bytes() const;
};

/// The level directory of an RTRADB file: everything needed to seek to
/// and decode any level, built by reading headers only (payloads are
/// skipped, so scanning a multi-gigabyte database touches a few KB).
struct FileIndex {
  bool ok = false;
  std::string error;
  int version = 0;  // 1, 2 or 3
  std::vector<LevelLocation> levels;

  /// Sum of payload_bytes — the on-disk cost of all level payloads
  /// (compressed for RTRADB03).
  std::uint64_t total_payload_bytes() const;
  /// Sum of decoded (bit-packed) bytes — the cost of everything resident
  /// at once.  Equals total_payload_bytes() for RTRADB02.
  std::uint64_t total_decoded_bytes() const;
};

/// Scans the level directory of `file` (rewinds first).  Structural
/// problems — bad magic, truncated headers, bad block directories,
/// payloads running past the end of the file — are diagnosed here;
/// payload corruption is only caught by the checksum verification in
/// read_level()/read_block().
FileIndex scan(std::FILE* file);
FileIndex scan(const std::string& path);

/// Result of read_level()/read_block(): the data in packed (serving)
/// form.
struct LevelReadResult {
  bool ok = false;
  std::string error;
  CompactLevel level;
};

/// Reads, checksum-verifies and unpacks one level located by scan() from
/// the same file.  RTRADB02 payloads are adopted as-is; RTRADB03 blocks
/// are decoded and concatenated; RTRADB01 raw payloads are decoded and
/// re-packed at the narrowest width.
LevelReadResult read_level(std::FILE* file, const LevelLocation& location);

/// Reads, checksum-verifies and decodes one block of a level.  The
/// returned CompactLevel holds location.block_size(block) values indexed
/// from 0 — position p of the level lives at p - block_begin(block).
/// For RTRADB01/02 the only block (0) is the whole level.
LevelReadResult read_block(std::FILE* file, const LevelLocation& location,
                           int block);

/// FNV-1a over a byte range; exposed for tests.
std::uint64_t fnv1a(const void* data, std::size_t size);

}  // namespace retra::db

#include "retra/db/block_codec.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <utility>

#include "retra/support/check.hpp"

namespace retra::db {

namespace {

std::size_t packed_size(std::size_t count, int bits) {
  return (count * static_cast<std::size_t>(bits) + 7) / 8;
}

/// Deposits code `i` into raw bit-packed output (zero-initialised) with
/// the CompactLevel layout: 4-bit low nibble first, 16-bit little-endian.
void put_code(std::vector<std::uint8_t>& out, std::size_t i,
              std::uint32_t code, int bits) {
  switch (bits) {
    case 4: {
      const std::size_t byte = i / 2;
      if (i % 2 == 0) {
        out[byte] |= static_cast<std::uint8_t>(code);
      } else {
        out[byte] |= static_cast<std::uint8_t>(code << 4);
      }
      break;
    }
    case 8:
      out[i] = static_cast<std::uint8_t>(code);
      break;
    default:
      out[2 * i] = static_cast<std::uint8_t>(code & 0xff);
      out[2 * i + 1] = static_cast<std::uint8_t>(code >> 8);
      break;
  }
}

void append_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool read_varint(const std::uint8_t* data, std::size_t size,
                 std::size_t& pos, std::uint64_t& out) {
  out = 0;
  unsigned shift = 0;
  while (pos < size) {
    const std::uint8_t b = data[pos++];
    if (shift >= 63) return false;  // longer than any valid run length
    out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return true;
    shift += 7;
  }
  return false;  // stream ended mid-varint
}

/// MSB-first bit emitter for the frequency-coded stream.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}
  void put(std::uint32_t code, std::uint32_t len) {
    for (std::uint32_t i = len; i-- > 0;) {
      acc_ = static_cast<std::uint8_t>((acc_ << 1) | ((code >> i) & 1u));
      if (++nbits_ == 8) {
        out_.push_back(acc_);
        acc_ = 0;
        nbits_ = 0;
      }
    }
  }
  void flush() {
    if (nbits_ != 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8u - nbits_)));
      acc_ = 0;
      nbits_ = 0;
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint8_t acc_ = 0;
  unsigned nbits_ = 0;
};

/// MSB-first bit reader over the stored stream.
struct BitReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t byte = 0;
  unsigned bit = 0;

  bool next(std::uint32_t& out) {
    if (byte >= size) return false;
    out = (static_cast<std::uint32_t>(data[byte]) >> (7u - bit)) & 1u;
    if (++bit == 8) {
      bit = 0;
      ++byte;
    }
    return true;
  }
};

/// Huffman code lengths for `freqs` (all nonzero, size >= 2).  The
/// two-smallest merge breaks ties on node index so the lengths — and
/// therefore every compressed byte — are deterministic across runs.
std::vector<std::uint32_t> huffman_lengths(
    const std::vector<std::uint64_t>& freqs) {
  struct Node {
    std::uint64_t freq;
    int parent;
  };
  const std::size_t n = freqs.size();
  std::vector<Node> nodes;
  nodes.reserve(2 * n - 1);
  for (const std::uint64_t f : freqs) nodes.push_back({f, -1});
  std::vector<std::size_t> roots(n);
  std::iota(roots.begin(), roots.end(), std::size_t{0});
  while (roots.size() > 1) {
    std::size_t a = 0, b = 1;  // positions in `roots` of the two smallest
    const auto smaller = [&nodes, &roots](std::size_t x, std::size_t y) {
      const Node& nx = nodes[roots[x]];
      const Node& ny = nodes[roots[y]];
      return nx.freq != ny.freq ? nx.freq < ny.freq : roots[x] < roots[y];
    };
    if (smaller(b, a)) std::swap(a, b);
    for (std::size_t i = 2; i < roots.size(); ++i) {
      if (smaller(i, a)) {
        b = a;
        a = i;
      } else if (smaller(i, b)) {
        b = i;
      }
    }
    const std::size_t ra = roots[a], rb = roots[b];
    const int merged = static_cast<int>(nodes.size());
    nodes.push_back({nodes[ra].freq + nodes[rb].freq, -1});
    nodes[ra].parent = merged;
    nodes[rb].parent = merged;
    if (a > b) std::swap(a, b);  // erase the higher position first
    roots.erase(roots.begin() + static_cast<std::ptrdiff_t>(b));
    roots[a] = static_cast<std::size_t>(merged);
  }
  std::vector<std::uint32_t> lens(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int p = nodes[i].parent; p != -1; p = nodes[static_cast<std::size_t>(p)].parent) {
      ++lens[i];
    }
  }
  return lens;
}

}  // namespace

std::vector<std::uint8_t> pack_codes(const std::uint16_t* codes,
                                     std::size_t count, int bits) {
  RETRA_CHECK_MSG(bits == 4 || bits == 8 || bits == 16,
                  "unsupported pack width");
  std::vector<std::uint8_t> out(packed_size(count, bits), 0);
  for (std::size_t i = 0; i < count; ++i) {
    put_code(out, i, codes[i], bits);
  }
  return out;
}

std::vector<std::uint8_t> rle_encode(const std::uint16_t* codes,
                                     std::size_t count, int bits) {
  std::vector<std::uint8_t> out;
  std::size_t i = 0;
  while (i < count) {
    const std::uint16_t code = codes[i];
    std::size_t j = i + 1;
    while (j < count && codes[j] == code) ++j;
    out.push_back(static_cast<std::uint8_t>(code & 0xff));
    if (bits == 16) out.push_back(static_cast<std::uint8_t>(code >> 8));
    append_varint(out, j - i);
    i = j;
  }
  return out;
}

std::vector<std::uint8_t> freq_encode(const std::uint16_t* codes,
                                      std::size_t count, int bits) {
  if ((bits != 4 && bits != 8) || count == 0) return {};
  std::array<std::uint64_t, kFreqMaxSymbols> counts{};
  for (std::size_t i = 0; i < count; ++i) ++counts[codes[i]];
  std::vector<std::uint32_t> symbols;
  std::vector<std::uint64_t> freqs;
  for (std::uint32_t s = 0; s < (1u << bits); ++s) {
    if (counts[s] != 0) {
      symbols.push_back(s);
      freqs.push_back(counts[s]);
    }
  }
  if (symbols.size() < 2) return {};  // a constant block is RLE's job

  const std::vector<std::uint32_t> lens = huffman_lengths(freqs);
  for (const std::uint32_t len : lens) {
    if (len > kFreqMaxCodeBits) return {};
  }

  // Canonical code assignment over (length, symbol) order.
  std::vector<std::size_t> order(symbols.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return lens[x] != lens[y] ? lens[x] < lens[y] : symbols[x] < symbols[y];
  });
  std::vector<std::uint32_t> codeword(symbols.size(), 0);
  std::uint32_t code = 0;
  std::uint32_t prev_len = lens[order[0]];
  for (const std::size_t i : order) {
    code <<= (lens[i] - prev_len);
    codeword[i] = code;
    ++code;
    prev_len = lens[i];
  }
  std::array<std::uint32_t, kFreqMaxSymbols> sym_code{};
  std::array<std::uint32_t, kFreqMaxSymbols> sym_len{};
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    sym_code[symbols[i]] = codeword[i];
    sym_len[symbols[i]] = lens[i];
  }

  std::vector<std::uint8_t> out;
  const auto num = static_cast<std::uint32_t>(symbols.size());
  out.push_back(static_cast<std::uint8_t>(num & 0xff));
  out.push_back(static_cast<std::uint8_t>(num >> 8));
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    out.push_back(static_cast<std::uint8_t>(symbols[i]));
    out.push_back(static_cast<std::uint8_t>(lens[i]));
  }
  BitWriter writer(out);
  for (std::size_t i = 0; i < count; ++i) {
    writer.put(sym_code[codes[i]], sym_len[codes[i]]);
  }
  writer.flush();
  return out;
}

EncodedBlock encode_block(const std::uint16_t* codes, std::size_t count,
                          int bits) {
  EncodedBlock best;
  best.scheme = BlockScheme::kRaw;
  best.bytes = pack_codes(codes, count, bits);
  const auto consider = [&best](BlockScheme scheme,
                                std::vector<std::uint8_t> bytes) {
    if (bytes.empty()) return;  // scheme not applicable
    if (bytes.size() < best.bytes.size()) {
      best.scheme = scheme;
      best.bytes = std::move(bytes);
    }
  };
  consider(BlockScheme::kRle, rle_encode(codes, count, bits));
  consider(BlockScheme::kFreq, freq_encode(codes, count, bits));
  return best;
}

namespace {

BlockDecodeResult decode_fail(std::string message) {
  BlockDecodeResult result;
  result.error = std::move(message);
  return result;
}

BlockDecodeResult decode_raw(const std::uint8_t* data, std::size_t size,
                             std::uint64_t count, int bits) {
  if (size != packed_size(count, bits)) {
    return decode_fail("raw block has wrong stored size");
  }
  BlockDecodeResult result;
  result.packed.assign(data, data + size);
  result.ok = true;
  return result;
}

BlockDecodeResult decode_rle(const std::uint8_t* data, std::size_t size,
                             std::uint64_t count, int bits) {
  BlockDecodeResult result;
  result.packed.assign(packed_size(count, bits), 0);
  std::size_t pos = 0;
  std::uint64_t filled = 0;
  while (filled < count) {
    if (pos >= size) return decode_fail("truncated rle stream");
    std::uint32_t code = data[pos++];
    if (bits == 16) {
      if (pos >= size) return decode_fail("truncated rle stream");
      code |= static_cast<std::uint32_t>(data[pos++]) << 8;
    }
    if (bits < 16 && code >= (1u << bits)) {
      return decode_fail("rle code exceeds pack width");
    }
    std::uint64_t run = 0;
    if (!read_varint(data, size, pos, run)) {
      return decode_fail("truncated rle stream");
    }
    if (run == 0) return decode_fail("zero-length rle run");
    if (run > count - filled) return decode_fail("rle run overflows block");
    for (std::uint64_t i = 0; i < run; ++i) {
      put_code(result.packed, filled++, code, bits);
    }
  }
  if (pos != size) return decode_fail("trailing bytes after rle stream");
  result.ok = true;
  return result;
}

BlockDecodeResult decode_freq(const std::uint8_t* data, std::size_t size,
                              std::uint64_t count, int bits) {
  if (bits != 4 && bits != 8) {
    return decode_fail("freq scheme invalid at 16-bit packing");
  }
  if (size < 2) return decode_fail("truncated frequency table");
  const std::uint32_t num = static_cast<std::uint32_t>(data[0]) |
                            (static_cast<std::uint32_t>(data[1]) << 8);
  if (num < 2 || num > kFreqMaxSymbols) {
    return decode_fail("bad frequency symbol count");
  }
  if (size < 2 + 2 * static_cast<std::size_t>(num)) {
    return decode_fail("truncated frequency table");
  }
  std::vector<std::uint32_t> symbols(num);
  std::vector<std::uint32_t> lens(num);
  std::uint32_t max_len = 0;
  for (std::uint32_t i = 0; i < num; ++i) {
    symbols[i] = data[2 + 2 * i];
    lens[i] = data[3 + 2 * i];
    if (symbols[i] >= (1u << bits)) {
      return decode_fail("frequency symbol exceeds pack width");
    }
    if (i > 0 && symbols[i] <= symbols[i - 1]) {
      return decode_fail("frequency symbols not ascending");
    }
    if (lens[i] < 1 || lens[i] > kFreqMaxCodeBits) {
      return decode_fail("bad frequency code length");
    }
    max_len = std::max(max_len, lens[i]);
  }

  // Canonical reconstruction: symbols in (length, symbol) order, first
  // code and symbol offset per length, and the completeness (Kraft)
  // check a Huffman table must satisfy.
  std::array<std::uint32_t, kFreqMaxCodeBits + 1> len_count{};
  for (const std::uint32_t len : lens) ++len_count[len];
  std::uint64_t kraft = 0;
  for (std::uint32_t len = 1; len <= max_len; ++len) {
    kraft += static_cast<std::uint64_t>(len_count[len]) << (max_len - len);
  }
  if (kraft != (std::uint64_t{1} << max_len)) {
    return decode_fail("frequency code is not complete");
  }
  std::vector<std::size_t> order(num);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return lens[x] != lens[y] ? lens[x] < lens[y] : symbols[x] < symbols[y];
  });
  std::array<std::uint32_t, kFreqMaxCodeBits + 1> first_code{};
  std::array<std::uint32_t, kFreqMaxCodeBits + 1> first_index{};
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (std::uint32_t len = 1; len <= max_len; ++len) {
    first_code[len] = code;
    first_index[len] = index;
    code = (code + len_count[len]) << 1;
    index += len_count[len];
  }

  BlockDecodeResult result;
  result.packed.assign(packed_size(count, bits), 0);
  BitReader reader{data, size, 2 + 2 * static_cast<std::size_t>(num), 0};
  for (std::uint64_t n = 0; n < count; ++n) {
    std::uint32_t acc = 0;
    std::uint32_t len = 0;
    for (;;) {
      std::uint32_t bit = 0;
      if (!reader.next(bit)) return decode_fail("truncated frequency stream");
      acc = (acc << 1) | bit;
      ++len;
      if (len > max_len) return decode_fail("unresolvable frequency code");
      if (len_count[len] != 0 && acc - first_code[len] < len_count[len]) {
        const std::size_t at = order[first_index[len] + (acc - first_code[len])];
        put_code(result.packed, static_cast<std::size_t>(n), symbols[at],
                 bits);
        break;
      }
    }
  }
  if (reader.bit != 0) {
    const std::uint8_t tail = data[reader.byte];
    if ((tail & ((1u << (8u - reader.bit)) - 1u)) != 0) {
      return decode_fail("nonzero padding in frequency stream");
    }
    ++reader.byte;
  }
  if (reader.byte != size) {
    return decode_fail("trailing bytes after frequency stream");
  }
  result.ok = true;
  return result;
}

}  // namespace

BlockDecodeResult decode_block(BlockScheme scheme, const std::uint8_t* data,
                               std::size_t size, std::uint64_t count,
                               int bits) {
  switch (scheme) {
    case BlockScheme::kRaw:
      return decode_raw(data, size, count, bits);
    case BlockScheme::kRle:
      return decode_rle(data, size, count, bits);
    case BlockScheme::kFreq:
      return decode_freq(data, size, count, bits);
  }
  return decode_fail("unknown block scheme");
}

}  // namespace retra::db

#include "retra/db/compact.hpp"

#include <algorithm>
#include <utility>

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::db {

using support::to_size;

CompactLevel::CompactLevel(const std::vector<Value>& values) {
  size_ = values.size();
  Value lo = 0, hi = 0;
  if (!values.empty()) {
    const auto [min_it, max_it] =
        std::minmax_element(values.begin(), values.end());
    lo = *min_it;
    hi = *max_it;
  }
  offset_ = lo;
  const std::uint32_t span = static_cast<std::uint32_t>(hi - lo);
  if (span < (1u << 4)) {
    bits_ = 4;
  } else if (span < (1u << 8)) {
    bits_ = 8;
  } else {
    bits_ = 16;
  }

  packed_.assign((size_ * static_cast<std::uint64_t>(bits_) + 7) / 8, 0);
  for (std::uint64_t i = 0; i < size_; ++i) {
    const auto coded = static_cast<std::uint32_t>(values[i] - offset_);
    switch (bits_) {
      case 4: {
        const std::uint64_t byte = i / 2;
        if (i % 2 == 0) {
          packed_[byte] |= static_cast<std::uint8_t>(coded);
        } else {
          packed_[byte] |= static_cast<std::uint8_t>(coded << 4);
        }
        break;
      }
      case 8:
        packed_[i] = static_cast<std::uint8_t>(coded);
        break;
      default:
        packed_[2 * i] = static_cast<std::uint8_t>(coded & 0xff);
        packed_[2 * i + 1] = static_cast<std::uint8_t>(coded >> 8);
        break;
    }
  }
}

CompactLevel CompactLevel::from_packed(std::uint64_t size, int bits,
                                       Value offset,
                                       std::vector<std::uint8_t> packed) {
  RETRA_CHECK_MSG(bits == 4 || bits == 8 || bits == 16,
                  "unsupported pack width");
  RETRA_CHECK_MSG(packed.size() == packed_bytes(size, bits),
                  "packed payload does not match size * bits");
  CompactLevel level;
  level.size_ = size;
  level.bits_ = bits;
  level.offset_ = offset;
  level.packed_ = std::move(packed);
  return level;
}

Value CompactLevel::get(idx::Index index) const {
  RETRA_DCHECK(index < size_);
  std::uint32_t coded = 0;
  switch (bits_) {
    case 4: {
      const std::uint8_t byte = packed_[index / 2];
      coded = index % 2 == 0 ? (byte & 0x0f) : (byte >> 4);
      break;
    }
    case 8:
      coded = packed_[index];
      break;
    default:
      coded = static_cast<std::uint32_t>(packed_[2 * index]) |
              (static_cast<std::uint32_t>(packed_[2 * index + 1]) << 8);
      break;
  }
  return static_cast<Value>(static_cast<std::int32_t>(coded) + offset_);
}

std::vector<Value> CompactLevel::expand() const {
  std::vector<Value> out(size_);
  for (std::uint64_t i = 0; i < size_; ++i) out[i] = get(i);
  return out;
}

CompactDatabase::CompactDatabase(const Database& database) {
  levels_.reserve(to_size(database.num_levels()));
  for (int level = 0; level < database.num_levels(); ++level) {
    levels_.emplace_back(database.level(level));
  }
}

Value CompactDatabase::value(int level, idx::Index index) const {
  RETRA_CHECK(has_level(level));
  return levels_[to_size(level)].get(index);
}

const CompactLevel& CompactDatabase::level(int l) const {
  RETRA_CHECK(has_level(l));
  return levels_[to_size(l)];
}

std::uint64_t CompactDatabase::memory_bytes() const {
  std::uint64_t total = 0;
  for (const CompactLevel& level : levels_) total += level.memory_bytes();
  return total;
}

Database CompactDatabase::expand() const {
  Database out;
  for (int level = 0; level < num_levels(); ++level) {
    out.push_level(level, levels_[to_size(level)].expand());
  }
  return out;
}

}  // namespace retra::db

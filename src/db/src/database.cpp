#include "retra/db/database.hpp"

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::db {

using support::to_size;

void Database::push_level(int level, std::vector<Value> values) {
  RETRA_CHECK_MSG(level == num_levels(), "levels must be added bottom-up");
  for (const Value v : values) {
    RETRA_CHECK_MSG(v != kUnknown, "database level contains unknown values");
  }
  levels_.push_back(std::move(values));
}

const std::vector<Value>& Database::level(int l) const {
  RETRA_CHECK(has_level(l));
  return levels_[to_size(l)];
}

Value Database::value(int level, idx::Index index) const {
  RETRA_CHECK(has_level(level));
  const auto& values = levels_[to_size(level)];
  RETRA_CHECK(index < values.size());
  return values[index];
}

std::uint64_t Database::total_positions() const {
  std::uint64_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

}  // namespace retra::db

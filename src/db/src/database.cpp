#include "retra/db/database.hpp"

#include "retra/support/check.hpp"

namespace retra::db {

void Database::push_level(int level, std::vector<Value> values) {
  RETRA_CHECK_MSG(level == num_levels(), "levels must be added bottom-up");
  for (const Value v : values) {
    RETRA_CHECK_MSG(v != kUnknown, "database level contains unknown values");
  }
  levels_.push_back(std::move(values));
}

const std::vector<Value>& Database::level(int l) const {
  RETRA_CHECK(has_level(l));
  return levels_[l];
}

Value Database::value(int level, idx::Index index) const {
  RETRA_CHECK(has_level(level));
  const auto& values = levels_[level];
  RETRA_CHECK(index < values.size());
  return values[index];
}

std::uint64_t Database::total_positions() const {
  std::uint64_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

}  // namespace retra::db

#include "retra/db/db_stats.hpp"

#include <algorithm>

namespace retra::db {

LevelStats level_stats(const Database& database, int level) {
  const auto& values = database.level(level);
  LevelStats stats;
  stats.level = level;
  stats.positions = values.size();
  if (values.empty()) return stats;
  stats.min_value = values.front();
  stats.max_value = values.front();
  double sum = 0.0;
  for (const Value v : values) {
    if (v > 0) {
      ++stats.wins;
    } else if (v == 0) {
      ++stats.draws;
    } else {
      ++stats.losses;
    }
    stats.min_value = std::min(stats.min_value, v);
    stats.max_value = std::max(stats.max_value, v);
    sum += v;
  }
  stats.mean_value = sum / static_cast<double>(values.size());
  return stats;
}

support::IntHistogram level_histogram(const Database& database, int level,
                                      int bound) {
  support::IntHistogram histogram(-bound, bound);
  for (const Value v : database.level(level)) {
    histogram.add(v);
  }
  return histogram;
}

}  // namespace retra::db

#include "retra/db/db_io.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "retra/db/block_codec.hpp"
#include "retra/obs/metrics.hpp"
#include "retra/support/check.hpp"

namespace retra::db {

namespace {

/// Serialized size of one RTRADB03 block-directory entry:
/// u8 scheme | u32 stored bytes | u64 offset | u64 checksum.
constexpr std::size_t kDirEntryBytes = 1 + 4 + 8 + 8;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t size) {
  RETRA_CHECK_MSG(std::fwrite(data, 1, size, f) == size, "short write");
}

template <typename T>
void write_pod(std::FILE* f, T value) {
  write_bytes(f, &value, sizeof value);
}

bool read_bytes(std::FILE* f, void* data, std::size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool read_pod(std::FILE* f, T& value) {
  return read_bytes(f, &value, sizeof value);
}

std::uint64_t file_position(std::FILE* f) {
  const long pos = std::ftell(f);
  RETRA_CHECK_MSG(pos >= 0, "ftell failed");
  return static_cast<std::uint64_t>(pos);
}

bool seek_to(std::FILE* f, std::uint64_t offset) {
  return std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0;
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, T value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof value);
}

template <typename T>
T extract_pod(const std::uint8_t* data) {
  T value;
  std::memcpy(&value, data, sizeof value);
  return value;
}

/// Writes one RTRADB03 level: header, block directory (with its own
/// checksum), then the concatenated stored blocks.
void save_compressed_level(std::FILE* f, const std::vector<Value>& values,
                           std::uint32_t block_positions) {
  const CompactLevel packed(values);
  const auto size = static_cast<std::uint64_t>(values.size());
  const int bits = packed.bits();
  const Value offset = packed.offset();

  std::vector<std::uint16_t> codes(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    codes[i] = static_cast<std::uint16_t>(values[i] - offset);
  }

  const std::uint64_t block_count =
      size == 0 ? 0 : (size + block_positions - 1) / block_positions;
  std::vector<EncodedBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(block_count));
  std::uint64_t payload_bytes = 0;
  for (std::uint64_t b = 0; b < block_count; ++b) {
    const std::uint64_t begin = b * block_positions;
    const std::uint64_t count = std::min<std::uint64_t>(block_positions,
                                                        size - begin);
    EncodedBlock encoded = encode_block(
        codes.data() + begin, static_cast<std::size_t>(count), bits);
    payload_bytes += encoded.bytes.size();
    switch (encoded.scheme) {
      case BlockScheme::kRaw:
        RETRA_OBS_INC(obs::Id::kDbCompressBlocksRaw);
        break;
      case BlockScheme::kRle:
        RETRA_OBS_INC(obs::Id::kDbCompressBlocksRle);
        break;
      case BlockScheme::kFreq:
        RETRA_OBS_INC(obs::Id::kDbCompressBlocksFreq);
        break;
    }
    RETRA_OBS_ADD(obs::Id::kDbCompressBytesIn,
                  CompactLevel::packed_bytes(count, bits));
    RETRA_OBS_ADD(obs::Id::kDbCompressBytesOut, encoded.bytes.size());
    blocks.push_back(std::move(encoded));
  }

  write_pod(f, size);
  write_pod(f, static_cast<std::uint8_t>(bits));
  write_pod(f, offset);
  write_pod(f, block_positions);
  write_pod(f, static_cast<std::uint32_t>(block_count));
  write_pod(f, payload_bytes);

  std::vector<std::uint8_t> directory;
  directory.reserve(blocks.size() * kDirEntryBytes);
  std::uint64_t running = 0;
  for (const EncodedBlock& block : blocks) {
    append_pod(directory, static_cast<std::uint8_t>(block.scheme));
    append_pod(directory, static_cast<std::uint32_t>(block.bytes.size()));
    append_pod(directory, running);
    append_pod(directory, fnv1a(block.bytes.data(), block.bytes.size()));
    running += block.bytes.size();
  }
  write_bytes(f, directory.data(), directory.size());
  write_pod(f, fnv1a(directory.data(), directory.size()));
  for (const EncodedBlock& block : blocks) {
    write_bytes(f, block.bytes.data(), block.bytes.size());
  }
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

int LevelLocation::block_count() const {
  if (block_positions == 0) return 1;
  return static_cast<int>(blocks.size());
}

std::uint64_t LevelLocation::block_begin(int block) const {
  if (block_positions == 0) return 0;
  return static_cast<std::uint64_t>(block) * block_positions;
}

std::uint64_t LevelLocation::block_size(int block) const {
  if (block_positions == 0) return size;
  const std::uint64_t begin = block_begin(block);
  RETRA_DCHECK(begin < size);
  return std::min<std::uint64_t>(block_positions, size - begin);
}

std::uint64_t LevelLocation::block_decoded_bytes(int block) const {
  if (block_positions == 0) return payload_bytes;
  return CompactLevel::packed_bytes(block_size(block), bits);
}

std::uint64_t LevelLocation::decoded_bytes() const {
  std::uint64_t total = 0;
  for (int b = 0; b < block_count(); ++b) total += block_decoded_bytes(b);
  return total;
}

std::uint64_t FileIndex::total_payload_bytes() const {
  std::uint64_t total = 0;
  for (const LevelLocation& location : levels) total += location.payload_bytes;
  return total;
}

std::uint64_t FileIndex::total_decoded_bytes() const {
  std::uint64_t total = 0;
  for (const LevelLocation& location : levels) total += location.decoded_bytes();
  return total;
}

void save(const Database& database, const std::string& path,
          const Format& format) {
  RETRA_CHECK_MSG(format.version >= 1 && format.version <= 3,
                  "unknown RTRADB format version");
  RETRA_CHECK_MSG(format.block_positions >= 1 &&
                      format.block_positions <= kMaxBlockPositions &&
                      format.block_positions % 2 == 0,
                  "block_positions must be even and within kMaxBlockPositions");
  File file(std::fopen(path.c_str(), "wb"));
  RETRA_CHECK_MSG(file != nullptr, "cannot open for writing: " + path);
  std::FILE* f = file.get();

  const std::string_view magic =
      format.version == 3 ? kMagic03
                          : (format.version == 2 ? kMagic02 : kMagic01);
  write_bytes(f, magic.data(), kMagicBytes);
  write_pod(f, static_cast<std::uint32_t>(database.num_levels()));

  for (int l = 0; l < database.num_levels(); ++l) {
    const auto& values = database.level(l);
    if (format.version == 3) {
      save_compressed_level(f, values, format.block_positions);
      continue;
    }
    if (format.version == 2) {
      const CompactLevel packed(values);
      write_pod(f, static_cast<std::uint64_t>(values.size()));
      write_pod(f, static_cast<std::uint8_t>(packed.bits()));
      write_pod(f, packed.offset());
      write_pod(f, static_cast<std::uint64_t>(packed.packed().size()));
      write_bytes(f, packed.packed().data(), packed.packed().size());
      write_pod(f, fnv1a(packed.packed().data(), packed.packed().size()));
      continue;
    }
    bool narrow = true;
    for (const Value v : values) {
      if (v < INT8_MIN || v > INT8_MAX) {
        narrow = false;
        break;
      }
    }
    write_pod(f, static_cast<std::uint64_t>(values.size()));
    write_pod(f, static_cast<std::uint8_t>(narrow ? 1 : 2));
    std::uint64_t checksum;
    if (narrow) {
      std::vector<std::int8_t> packed(values.begin(), values.end());
      checksum = fnv1a(packed.data(), packed.size());
      write_bytes(f, packed.data(), packed.size());
    } else {
      checksum = fnv1a(values.data(), values.size() * sizeof(Value));
      write_bytes(f, values.data(), values.size() * sizeof(Value));
    }
    write_pod(f, checksum);
  }
  RETRA_CHECK_MSG(std::fflush(f) == 0, "flush failed: " + path);
}

FileIndex scan(std::FILE* file) {
  FileIndex index;
  const auto fail = [&index](const std::string& message) {
    index.ok = false;
    index.error = message;
    return index;
  };

  if (std::fseek(file, 0, SEEK_END) != 0) return fail("seek failed");
  const std::uint64_t file_size = file_position(file);
  std::rewind(file);

  char magic[kMagicBytes];
  if (!read_bytes(file, magic, sizeof magic)) return fail("bad magic");
  if (std::memcmp(magic, kMagic01.data(), sizeof magic) == 0) {
    index.version = 1;
  } else if (std::memcmp(magic, kMagic02.data(), sizeof magic) == 0) {
    index.version = 2;
  } else if (std::memcmp(magic, kMagic03.data(), sizeof magic) == 0) {
    index.version = 3;
  } else {
    return fail("bad magic");
  }

  std::uint32_t level_count = 0;
  if (!read_pod(file, level_count) || level_count > kMaxLevels) {
    return fail("bad level count");
  }

  for (std::uint32_t l = 0; l < level_count; ++l) {
    const std::string where = " in level " + std::to_string(l);
    LevelLocation location;
    location.level = static_cast<int>(l);
    std::uint8_t stored_width = 0;
    if (!read_pod(file, location.size) || !read_pod(file, stored_width)) {
      return fail("bad level header" + where);
    }
    if (location.size > kMaxLevelSize) {
      return fail("bad level header" + where);
    }
    if (index.version == 1) {
      if (stored_width != 1 && stored_width != 2) {
        return fail("bad level header" + where);
      }
      location.raw = true;
      location.bits = stored_width * 8;
      location.payload_bytes = location.size * stored_width;
    } else {
      if (stored_width != 4 && stored_width != 8 && stored_width != 16) {
        return fail("bad level header" + where);
      }
      location.bits = stored_width;
      if (!read_pod(file, location.offset)) {
        return fail("bad level header" + where);
      }
      if (index.version == 3) {
        std::uint32_t block_count = 0;
        if (!read_pod(file, location.block_positions) ||
            !read_pod(file, block_count) ||
            !read_pod(file, location.payload_bytes)) {
          return fail("bad level header" + where);
        }
        if (location.block_positions < 1 ||
            location.block_positions > kMaxBlockPositions ||
            location.block_positions % 2 != 0) {
          return fail("bad block geometry" + where);
        }
        const std::uint64_t expected_blocks =
            location.size == 0
                ? 0
                : (location.size + location.block_positions - 1) /
                      location.block_positions;
        if (block_count != expected_blocks ||
            block_count > kMaxLevelBlocks) {
          return fail("bad block geometry" + where);
        }
        std::vector<std::uint8_t> directory(
            static_cast<std::size_t>(block_count) * kDirEntryBytes);
        if (!read_bytes(file, directory.data(), directory.size())) {
          return fail("truncated block directory" + where);
        }
        std::uint64_t directory_checksum = 0;
        if (!read_pod(file, directory_checksum)) {
          return fail("truncated block directory" + where);
        }
        if (fnv1a(directory.data(), directory.size()) != directory_checksum) {
          return fail("block directory checksum mismatch" + where);
        }
        location.payload_offset = file_position(file);
        location.blocks.reserve(block_count);
        std::uint64_t running = 0;
        for (std::uint32_t b = 0; b < block_count; ++b) {
          const std::string at = where + " block " + std::to_string(b);
          const std::uint8_t* entry =
              directory.data() + static_cast<std::size_t>(b) * kDirEntryBytes;
          BlockLocation block;
          const std::uint8_t scheme = entry[0];
          if (scheme >= kBlockSchemeCount) {
            return fail("bad block scheme" + at);
          }
          block.scheme = static_cast<BlockScheme>(scheme);
          block.stored_bytes = extract_pod<std::uint32_t>(entry + 1);
          const auto relative = extract_pod<std::uint64_t>(entry + 5);
          block.checksum = extract_pod<std::uint64_t>(entry + 13);
          if (relative != running) {
            return fail("bad block directory" + at);
          }
          const std::uint64_t begin =
              static_cast<std::uint64_t>(b) * location.block_positions;
          const std::uint64_t count = std::min<std::uint64_t>(
              location.block_positions, location.size - begin);
          const std::uint64_t decoded =
              CompactLevel::packed_bytes(count, location.bits);
          const bool size_ok =
              block.scheme == BlockScheme::kRaw
                  ? block.stored_bytes == decoded
                  : block.stored_bytes >= 1 && block.stored_bytes <= decoded;
          if (!size_ok) {
            return fail("bad block directory" + at);
          }
          block.offset = location.payload_offset + running;
          running += block.stored_bytes;
          location.blocks.push_back(block);
        }
        if (running != location.payload_bytes) {
          return fail("bad block directory" + where);
        }
        if (location.payload_offset + location.payload_bytes > file_size) {
          return fail("truncated level payload" + where);
        }
        if (!seek_to(file, location.payload_offset + location.payload_bytes)) {
          return fail("truncated level payload" + where);
        }
        index.levels.push_back(std::move(location));
        continue;
      }
      if (!read_pod(file, location.payload_bytes)) {
        return fail("bad level header" + where);
      }
      if (location.payload_bytes !=
          CompactLevel::packed_bytes(location.size, location.bits)) {
        return fail("bad level header" + where);
      }
    }
    location.payload_offset = file_position(file);
    if (location.payload_offset + location.payload_bytes + sizeof(std::uint64_t) >
        file_size) {
      return fail("truncated level payload" + where);
    }
    if (!seek_to(file, location.payload_offset + location.payload_bytes)) {
      return fail("truncated level payload" + where);
    }
    if (!read_pod(file, location.checksum)) {
      return fail("missing checksum" + where);
    }
    index.levels.push_back(std::move(location));
  }
  index.ok = true;
  return index;
}

FileIndex scan(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    FileIndex index;
    index.error = "cannot open: " + path;
    return index;
  }
  return scan(file.get());
}

namespace {

/// Reads and decodes one RTRADB03 block to raw bit-packed bytes.
bool read_packed_block(std::FILE* file, const LevelLocation& location,
                       int block, std::vector<std::uint8_t>& packed,
                       std::string& error) {
  const std::string at = " in level " + std::to_string(location.level) +
                         " block " + std::to_string(block);
  const BlockLocation& entry = location.blocks[static_cast<std::size_t>(block)];
  if (!seek_to(file, entry.offset)) {
    error = "truncated level payload" + at;
    return false;
  }
  std::vector<std::uint8_t> stored(entry.stored_bytes);
  if (!read_bytes(file, stored.data(), stored.size())) {
    error = "truncated level payload" + at;
    return false;
  }
  if (fnv1a(stored.data(), stored.size()) != entry.checksum) {
    error = "block checksum mismatch" + at;
    return false;
  }
  BlockDecodeResult decoded =
      decode_block(entry.scheme, stored.data(), stored.size(),
                   location.block_size(block), location.bits);
  if (!decoded.ok) {
    error = "malformed block" + at + ": " + decoded.error;
    return false;
  }
  packed = std::move(decoded.packed);
  return true;
}

}  // namespace

LevelReadResult read_level(std::FILE* file, const LevelLocation& location) {
  LevelReadResult result;
  const auto fail = [&result](const std::string& message) {
    result.ok = false;
    result.error = message;
    return result;
  };
  const std::string where = " in level " + std::to_string(location.level);

  if (location.block_positions != 0) {
    // RTRADB03: decode every block and concatenate.  Blocks cover an
    // even number of positions, so each decoded block is byte-aligned
    // and the concatenation is exactly the RTRADB02 packed payload.
    std::vector<std::uint8_t> packed;
    packed.reserve(static_cast<std::size_t>(
        CompactLevel::packed_bytes(location.size, location.bits)));
    for (int b = 0; b < location.block_count(); ++b) {
      std::vector<std::uint8_t> block;
      std::string error;
      if (!read_packed_block(file, location, b, block, error)) {
        return fail(error);
      }
      packed.insert(packed.end(), block.begin(), block.end());
    }
    result.level = CompactLevel::from_packed(location.size, location.bits,
                                             location.offset,
                                             std::move(packed));
    result.ok = true;
    return result;
  }

  if (!seek_to(file, location.payload_offset)) {
    return fail("truncated level payload" + where);
  }
  std::vector<std::uint8_t> payload(location.payload_bytes);
  if (!read_bytes(file, payload.data(), payload.size())) {
    return fail("truncated level payload" + where);
  }
  if (fnv1a(payload.data(), payload.size()) != location.checksum) {
    return fail("checksum mismatch" + where);
  }

  if (!location.raw) {
    result.level = CompactLevel::from_packed(location.size, location.bits,
                                             location.offset,
                                             std::move(payload));
    result.ok = true;
    return result;
  }
  std::vector<Value> values(location.size);
  if (location.bits == 8) {
    for (std::uint64_t i = 0; i < location.size; ++i) {
      values[i] = static_cast<std::int8_t>(payload[i]);
    }
  } else {
    std::memcpy(values.data(), payload.data(), payload.size());
  }
  result.level = CompactLevel(values);
  result.ok = true;
  return result;
}

LevelReadResult read_block(std::FILE* file, const LevelLocation& location,
                           int block) {
  RETRA_CHECK_MSG(block >= 0 && block < location.block_count(),
                  "block index out of range");
  if (location.block_positions == 0) return read_level(file, location);
  LevelReadResult result;
  std::vector<std::uint8_t> packed;
  std::string error;
  if (!read_packed_block(file, location, block, packed, error)) {
    result.error = std::move(error);
    return result;
  }
  result.level = CompactLevel::from_packed(location.block_size(block),
                                           location.bits, location.offset,
                                           std::move(packed));
  result.ok = true;
  return result;
}

LoadResult load(const std::string& path) {
  LoadResult result;
  File file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    result.error = "cannot open: " + path;
    return result;
  }
  std::FILE* f = file.get();

  const FileIndex index = scan(f);
  if (!index.ok) {
    result.error = index.error;
    return result;
  }
  for (const LevelLocation& location : index.levels) {
    LevelReadResult level = read_level(f, location);
    if (!level.ok) {
      result.error = level.error;
      return result;
    }
    result.database.push_level(location.level, level.level.expand());
  }
  result.ok = true;
  return result;
}

}  // namespace retra::db

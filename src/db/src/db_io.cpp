#include "retra/db/db_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "retra/support/check.hpp"

namespace retra::db {

namespace {

constexpr char kMagic[8] = {'R', 'T', 'R', 'A', 'D', 'B', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t size) {
  RETRA_CHECK_MSG(std::fwrite(data, 1, size, f) == size, "short write");
}

template <typename T>
void write_pod(std::FILE* f, T value) {
  write_bytes(f, &value, sizeof value);
}

bool read_bytes(std::FILE* f, void* data, std::size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool read_pod(std::FILE* f, T& value) {
  return read_bytes(f, &value, sizeof value);
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void save(const Database& database, const std::string& path) {
  File file(std::fopen(path.c_str(), "wb"));
  RETRA_CHECK_MSG(file != nullptr, "cannot open for writing: " + path);
  std::FILE* f = file.get();

  write_bytes(f, kMagic, sizeof kMagic);
  write_pod(f, static_cast<std::uint32_t>(database.num_levels()));

  for (int l = 0; l < database.num_levels(); ++l) {
    const auto& values = database.level(l);
    bool narrow = true;
    for (const Value v : values) {
      if (v < INT8_MIN || v > INT8_MAX) {
        narrow = false;
        break;
      }
    }
    write_pod(f, static_cast<std::uint64_t>(values.size()));
    write_pod(f, static_cast<std::uint8_t>(narrow ? 1 : 2));
    std::uint64_t checksum;
    if (narrow) {
      std::vector<std::int8_t> packed(values.begin(), values.end());
      checksum = fnv1a(packed.data(), packed.size());
      write_bytes(f, packed.data(), packed.size());
    } else {
      checksum = fnv1a(values.data(), values.size() * sizeof(Value));
      write_bytes(f, values.data(), values.size() * sizeof(Value));
    }
    write_pod(f, checksum);
  }
  RETRA_CHECK_MSG(std::fflush(f) == 0, "flush failed: " + path);
}

LoadResult load(const std::string& path) {
  LoadResult result;
  File file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    result.error = "cannot open: " + path;
    return result;
  }
  std::FILE* f = file.get();

  char magic[8];
  if (!read_bytes(f, magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof magic) != 0) {
    result.error = "bad magic";
    return result;
  }
  std::uint32_t level_count = 0;
  if (!read_pod(f, level_count) || level_count > 4096) {
    result.error = "bad level count";
    return result;
  }

  for (std::uint32_t l = 0; l < level_count; ++l) {
    std::uint64_t size = 0;
    std::uint8_t width = 0;
    if (!read_pod(f, size) || !read_pod(f, width) ||
        (width != 1 && width != 2)) {
      result.error = "bad level header";
      return result;
    }
    std::vector<Value> values;
    std::uint64_t checksum = 0;
    if (width == 1) {
      std::vector<std::int8_t> packed(size);
      if (!read_bytes(f, packed.data(), size)) {
        result.error = "truncated level payload";
        return result;
      }
      checksum = fnv1a(packed.data(), packed.size());
      values.assign(packed.begin(), packed.end());
    } else {
      values.resize(size);
      if (!read_bytes(f, values.data(), size * sizeof(Value))) {
        result.error = "truncated level payload";
        return result;
      }
      checksum = fnv1a(values.data(), size * sizeof(Value));
    }
    std::uint64_t stored = 0;
    if (!read_pod(f, stored)) {
      result.error = "missing checksum";
      return result;
    }
    if (stored != checksum) {
      result.error = "checksum mismatch in level " + std::to_string(l);
      return result;
    }
    result.database.push_level(static_cast<int>(l), std::move(values));
  }
  result.ok = true;
  return result;
}

}  // namespace retra::db

#include "retra/db/db_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "retra/support/check.hpp"

namespace retra::db {

namespace {

constexpr char kMagic01[8] = {'R', 'T', 'R', 'A', 'D', 'B', '0', '1'};
constexpr char kMagic02[8] = {'R', 'T', 'R', 'A', 'D', 'B', '0', '2'};

/// Level counts and sizes beyond these bounds mean a corrupt header, not
/// a real database; rejecting early keeps a doctored file from driving a
/// multi-terabyte allocation.
constexpr std::uint32_t kMaxLevels = 4096;
constexpr std::uint64_t kMaxLevelSize = std::uint64_t{1} << 40;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t size) {
  RETRA_CHECK_MSG(std::fwrite(data, 1, size, f) == size, "short write");
}

template <typename T>
void write_pod(std::FILE* f, T value) {
  write_bytes(f, &value, sizeof value);
}

bool read_bytes(std::FILE* f, void* data, std::size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool read_pod(std::FILE* f, T& value) {
  return read_bytes(f, &value, sizeof value);
}

std::uint64_t file_position(std::FILE* f) {
  const long pos = std::ftell(f);
  RETRA_CHECK_MSG(pos >= 0, "ftell failed");
  return static_cast<std::uint64_t>(pos);
}

bool seek_to(std::FILE* f, std::uint64_t offset) {
  return std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t FileIndex::total_payload_bytes() const {
  std::uint64_t total = 0;
  for (const LevelLocation& location : levels) total += location.payload_bytes;
  return total;
}

void save(const Database& database, const std::string& path,
          const SaveOptions& options) {
  File file(std::fopen(path.c_str(), "wb"));
  RETRA_CHECK_MSG(file != nullptr, "cannot open for writing: " + path);
  std::FILE* f = file.get();

  write_bytes(f, options.pack ? kMagic02 : kMagic01, sizeof kMagic01);
  write_pod(f, static_cast<std::uint32_t>(database.num_levels()));

  for (int l = 0; l < database.num_levels(); ++l) {
    const auto& values = database.level(l);
    if (options.pack) {
      const CompactLevel packed(values);
      write_pod(f, static_cast<std::uint64_t>(values.size()));
      write_pod(f, static_cast<std::uint8_t>(packed.bits()));
      write_pod(f, packed.offset());
      write_pod(f, static_cast<std::uint64_t>(packed.packed().size()));
      write_bytes(f, packed.packed().data(), packed.packed().size());
      write_pod(f, fnv1a(packed.packed().data(), packed.packed().size()));
      continue;
    }
    bool narrow = true;
    for (const Value v : values) {
      if (v < INT8_MIN || v > INT8_MAX) {
        narrow = false;
        break;
      }
    }
    write_pod(f, static_cast<std::uint64_t>(values.size()));
    write_pod(f, static_cast<std::uint8_t>(narrow ? 1 : 2));
    std::uint64_t checksum;
    if (narrow) {
      std::vector<std::int8_t> packed(values.begin(), values.end());
      checksum = fnv1a(packed.data(), packed.size());
      write_bytes(f, packed.data(), packed.size());
    } else {
      checksum = fnv1a(values.data(), values.size() * sizeof(Value));
      write_bytes(f, values.data(), values.size() * sizeof(Value));
    }
    write_pod(f, checksum);
  }
  RETRA_CHECK_MSG(std::fflush(f) == 0, "flush failed: " + path);
}

FileIndex scan(std::FILE* file) {
  FileIndex index;
  const auto fail = [&index](const std::string& message) {
    index.ok = false;
    index.error = message;
    return index;
  };

  if (std::fseek(file, 0, SEEK_END) != 0) return fail("seek failed");
  const std::uint64_t file_size = file_position(file);
  std::rewind(file);

  char magic[8];
  if (!read_bytes(file, magic, sizeof magic)) return fail("bad magic");
  if (std::memcmp(magic, kMagic01, sizeof magic) == 0) {
    index.version = 1;
  } else if (std::memcmp(magic, kMagic02, sizeof magic) == 0) {
    index.version = 2;
  } else {
    return fail("bad magic");
  }

  std::uint32_t level_count = 0;
  if (!read_pod(file, level_count) || level_count > kMaxLevels) {
    return fail("bad level count");
  }

  for (std::uint32_t l = 0; l < level_count; ++l) {
    const std::string where = " in level " + std::to_string(l);
    LevelLocation location;
    location.level = static_cast<int>(l);
    std::uint8_t stored_width = 0;
    if (!read_pod(file, location.size) || !read_pod(file, stored_width)) {
      return fail("bad level header" + where);
    }
    if (location.size > kMaxLevelSize) {
      return fail("bad level header" + where);
    }
    if (index.version == 1) {
      if (stored_width != 1 && stored_width != 2) {
        return fail("bad level header" + where);
      }
      location.raw = true;
      location.bits = stored_width * 8;
      location.payload_bytes = location.size * stored_width;
    } else {
      if (stored_width != 4 && stored_width != 8 && stored_width != 16) {
        return fail("bad level header" + where);
      }
      location.bits = stored_width;
      if (!read_pod(file, location.offset) ||
          !read_pod(file, location.payload_bytes)) {
        return fail("bad level header" + where);
      }
      if (location.payload_bytes !=
          CompactLevel::packed_bytes(location.size, location.bits)) {
        return fail("bad level header" + where);
      }
    }
    location.payload_offset = file_position(file);
    if (location.payload_offset + location.payload_bytes + sizeof(std::uint64_t) >
        file_size) {
      return fail("truncated level payload" + where);
    }
    if (!seek_to(file, location.payload_offset + location.payload_bytes)) {
      return fail("truncated level payload" + where);
    }
    if (!read_pod(file, location.checksum)) {
      return fail("missing checksum" + where);
    }
    index.levels.push_back(location);
  }
  index.ok = true;
  return index;
}

FileIndex scan(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    FileIndex index;
    index.error = "cannot open: " + path;
    return index;
  }
  return scan(file.get());
}

LevelReadResult read_level(std::FILE* file, const LevelLocation& location) {
  LevelReadResult result;
  const auto fail = [&result](const std::string& message) {
    result.ok = false;
    result.error = message;
    return result;
  };
  const std::string where = " in level " + std::to_string(location.level);

  if (!seek_to(file, location.payload_offset)) {
    return fail("truncated level payload" + where);
  }
  std::vector<std::uint8_t> payload(location.payload_bytes);
  if (!read_bytes(file, payload.data(), payload.size())) {
    return fail("truncated level payload" + where);
  }
  if (fnv1a(payload.data(), payload.size()) != location.checksum) {
    return fail("checksum mismatch" + where);
  }

  if (!location.raw) {
    result.level = CompactLevel::from_packed(location.size, location.bits,
                                             location.offset,
                                             std::move(payload));
    result.ok = true;
    return result;
  }
  std::vector<Value> values(location.size);
  if (location.bits == 8) {
    for (std::uint64_t i = 0; i < location.size; ++i) {
      values[i] = static_cast<std::int8_t>(payload[i]);
    }
  } else {
    std::memcpy(values.data(), payload.data(), payload.size());
  }
  result.level = CompactLevel(values);
  result.ok = true;
  return result;
}

LoadResult load(const std::string& path) {
  LoadResult result;
  File file(std::fopen(path.c_str(), "rb"));
  if (!file) {
    result.error = "cannot open: " + path;
    return result;
  }
  std::FILE* f = file.get();

  const FileIndex index = scan(f);
  if (!index.ok) {
    result.error = index.error;
    return result;
  }
  for (const LevelLocation& location : index.levels) {
    LevelReadResult level = read_level(f, location);
    if (!level.ok) {
      result.error = level.error;
      return result;
    }
    result.database.push_level(location.level, level.level.expand());
  }
  result.ok = true;
  return result;
}

}  // namespace retra::db

#include "retra/index/binomial.hpp"

#include <array>
#include <cstddef>

#include "retra/support/check.hpp"

namespace retra::idx {

namespace {

struct Tables {
  // binom[n][k] for 0 <= n <= kMaxN, 0 <= k <= kMaxK.
  std::array<std::array<std::uint64_t, kMaxK + 1>, kMaxN + 1> binom{};

  Tables() {
    for (std::size_t n = 0; n <= kMaxN; ++n) {
      binom[n][0] = 1;
      for (std::size_t k = 1; k <= kMaxK; ++k) {
        if (k > n) {
          binom[n][k] = 0;
        } else if (k == n) {
          binom[n][k] = 1;
        } else {
          binom[n][k] = binom[n - 1][k - 1] + binom[n - 1][k];
        }
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint64_t binomial(int n, int k) {
  if (k < 0 || n < 0 || k > n) return 0;
  RETRA_CHECK_MSG(n <= kMaxN && k <= kMaxK, "binomial table exceeded");
  return tables().binom[static_cast<std::size_t>(n)][static_cast<std::size_t>(k)];
}

}  // namespace retra::idx

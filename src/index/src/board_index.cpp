#include "retra/index/board_index.hpp"

#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::idx {

using support::to_size;

int stones_on(const Board& board) {
  int sum = 0;
  for (const auto pit : board) sum += pit;
  return sum;
}

std::uint64_t level_size(int stones) {
  RETRA_CHECK(stones >= 0);
  return binomial(stones + kPits - 1, kPits - 1);
}

std::uint64_t cumulative_size(int stones) {
  RETRA_CHECK(stones >= 0);
  return binomial(stones + kPits, kPits);
}

Index rank(const Board& board) {
  // Lexicographic rank on (pit 0, …, pit 11) via the combinatorial number
  // system.  With r stones still unplaced at pit i, the boards whose pit i
  // holds fewer than b_i stones number
  //   C(r + 11 − i, 11 − i) − C(r − b_i + 11 − i, 11 − i)
  // (a telescoped hockey-stick sum), so the rank is 11 pairs of table
  // lookups.  Pit 11 is determined by the rest and contributes nothing.
  Index index = 0;
  int remaining = stones_on(board);
  for (int i = 0; i + 1 < kPits; ++i) {
    const int d = kPits - 1 - i;  // pits after pit i
    index += binomial(remaining + d, d) -
             binomial(remaining - board[to_size(i)] + d, d);
    remaining -= board[to_size(i)];
  }
  return index;
}

Board unrank(int stones, Index index) {
  RETRA_CHECK(index < level_size(stones));
  Board board{};
  int remaining = stones;
  for (int i = 0; i + 1 < kPits; ++i) {
    const int d = kPits - 1 - i;
    // Walk pit values upward, peeling off the block of boards whose pit i
    // holds v stones: C(remaining − v + d − 1, d − 1) boards each.
    int v = 0;
    while (true) {
      const std::uint64_t block = binomial(remaining - v + d - 1, d - 1);
      if (index < block) break;
      index -= block;
      ++v;
      RETRA_DCHECK(v <= remaining);
    }
    board[to_size(i)] = static_cast<std::uint8_t>(v);
    remaining -= v;
  }
  board[to_size(kPits - 1)] = static_cast<std::uint8_t>(remaining);
  return board;
}

Board first_board(int stones) {
  RETRA_CHECK(stones >= 0 && stones < 256);
  Board board{};
  board[to_size(kPits - 1)] = static_cast<std::uint8_t>(stones);
  return board;
}

bool next_board(Board& board) {
  // Lexicographic successor of a fixed-sum composition: increment the
  // rightmost pit j that has at least one stone somewhere to its right, and
  // push everything after j into the last pit.
  int tail = board[to_size(kPits - 1)];
  for (int j = kPits - 2; j >= 0; --j) {
    if (tail > 0) {
      board[to_size(j)] = static_cast<std::uint8_t>(board[to_size(j)] + 1);
      for (int k = j + 1; k + 1 < kPits; ++k) board[to_size(k)] = 0;
      board[to_size(kPits - 1)] = static_cast<std::uint8_t>(tail - 1);
      return true;
    }
    tail += board[to_size(j)];
  }
  // The board was the last of its level; wrap to the first.
  const int stones = tail;
  board = first_board(stones);
  return false;
}

}  // namespace retra::idx

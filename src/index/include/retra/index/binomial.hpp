// Binomial coefficient tables.
//
// Retrograde analysis indexes the n-stone level of awari through the
// combinatorial number system; every rank/unrank operation is a handful of
// table lookups, so the table is precomputed once at static-init time.
#pragma once

#include <cstdint>

namespace retra::idx {

/// Largest n for which binomial(n, k) is tabulated.  Covers boards with up
/// to kMaxN − 12 stones, far beyond anything this library computes.
inline constexpr int kMaxN = 80;
/// Largest k tabulated (we only ever need k ≤ 12 + 1).
inline constexpr int kMaxK = 14;

/// C(n, k); 0 outside the valid triangle (including negative arguments),
/// which lets the ranking formulas avoid edge-case branches.
std::uint64_t binomial(int n, int k);

}  // namespace retra::idx

// Binomial coefficient tables.
//
// Retrograde analysis indexes the n-stone level of awari through the
// combinatorial number system; every rank/unrank operation is a handful of
// table lookups.  The table is a constexpr inline variable so the lookups
// inline into the scan kernels instead of crossing a translation-unit
// boundary per position.
#pragma once

#include <cstdint>

#include "retra/support/check.hpp"

namespace retra::idx {

/// Largest n for which binomial(n, k) is tabulated.  Covers boards with up
/// to kMaxN − 12 stones, far beyond anything this library computes.
inline constexpr int kMaxN = 80;
/// Largest k tabulated (we only ever need k ≤ 12 + 1).
inline constexpr int kMaxK = 14;

namespace detail {

struct BinomialTable {
  // at[n][k] for 0 <= n <= kMaxN, 0 <= k <= kMaxK.
  std::uint64_t at[kMaxN + 1][kMaxK + 1];
};

constexpr BinomialTable make_binomial_table() {
  BinomialTable t{};
  for (int n = 0; n <= kMaxN; ++n) {
    t.at[n][0] = 1;
    for (int k = 1; k <= kMaxK; ++k) {
      if (k > n) {
        t.at[n][k] = 0;
      } else if (k == n) {
        t.at[n][k] = 1;
      } else {
        t.at[n][k] = t.at[n - 1][k - 1] + t.at[n - 1][k];
      }
    }
  }
  return t;
}

inline constexpr BinomialTable kBinomial = make_binomial_table();

}  // namespace detail

/// C(n, k); 0 outside the valid triangle (including negative arguments),
/// which lets the ranking formulas avoid edge-case branches.
constexpr std::uint64_t binomial(int n, int k) {
  if (k < 0 || n < 0 || k > n) return 0;
  RETRA_CHECK_MSG(n <= kMaxN && k <= kMaxK, "binomial table exceeded");
  return detail::kBinomial.at[n][k];
}

}  // namespace retra::idx

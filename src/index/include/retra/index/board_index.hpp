// Perfect indexing of awari boards.
//
// A level groups all boards with the same total number of stones; the
// n-stone level contains C(n + 11, 11) boards.  Within a level, boards are
// ranked lexicographically on (pit 0, pit 1, …, pit 11) through the
// combinatorial number system, giving a dense, gap-free index — exactly what
// the retrograde-analysis value arrays are addressed by.
#pragma once

#include <array>
#include <cstdint>

#include "retra/index/binomial.hpp"

namespace retra::idx {

/// Number of pits on an awari board.  Pits 0–5 belong to the player to
/// move, 6–11 to the opponent; positions are always normalised to the
/// player to move.
inline constexpr int kPits = 12;

/// Dense rank of a board within its level.
using Index = std::uint64_t;

/// Pit occupancy vector.  uint8_t per pit: a pit can hold at most all the
/// stones of its level, and the library tops out far below 255 stones.
using Board = std::array<std::uint8_t, kPits>;

/// Total stones on the board (== the board's level).
int stones_on(const Board& board);

/// Number of boards in the n-stone level: C(n + 11, 11).
std::uint64_t level_size(int stones);

/// Number of boards in all levels 0..n inclusive: C(n + 12, 12).
std::uint64_t cumulative_size(int stones);

/// Rank of `board` within its level; inverse of unrank().
Index rank(const Board& board);

/// The board of the given level with the given rank.
Board unrank(int stones, Index index);

/// In-place advance of `board` to the next board of the same level in rank
/// order.  Returns false (leaving the board at the level's first element)
/// when called on the last board.  Enumerating with next_board() is much
/// faster than unranking successive indices.
bool next_board(Board& board);

/// First board of the level in rank order: all stones in pit 11.
Board first_board(int stones);

/// Calls fn(board, index) for every board of the level, in rank order.
template <typename Fn>
void for_each_board(int stones, Fn&& fn) {
  Board board = first_board(stones);
  const std::uint64_t size = level_size(stones);
  for (std::uint64_t i = 0; i < size; ++i) {
    fn(static_cast<const Board&>(board), static_cast<Index>(i));
    if (i + 1 < size) next_board(board);
  }
}

}  // namespace retra::idx

// Perfect indexing of awari boards.
//
// A level groups all boards with the same total number of stones; the
// n-stone level contains C(n + 11, 11) boards.  Within a level, boards are
// ranked lexicographically on (pit 0, pit 1, …, pit 11) through the
// combinatorial number system, giving a dense, gap-free index — exactly what
// the retrograde-analysis value arrays are addressed by.
//
// Everything here is inline: rank/unrank/next_board are the innermost
// kernels of every scan, and the binomial lookups must fold into the
// callers' loops rather than cross a translation-unit boundary per
// position.
#pragma once

#include <array>
#include <cstdint>

#include "retra/index/binomial.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::idx {

/// Number of pits on an awari board.  Pits 0–5 belong to the player to
/// move, 6–11 to the opponent; positions are always normalised to the
/// player to move.
inline constexpr int kPits = 12;

/// Dense rank of a board within its level.
using Index = std::uint64_t;

/// Pit occupancy vector.  uint8_t per pit: a pit can hold at most all the
/// stones of its level, and the library tops out far below 255 stones.
using Board = std::array<std::uint8_t, kPits>;

/// Total stones on the board (== the board's level).
inline int stones_on(const Board& board) {
  int sum = 0;
  for (const auto pit : board) sum += pit;
  return sum;
}

/// Number of boards in the n-stone level: C(n + 11, 11).
inline std::uint64_t level_size(int stones) {
  RETRA_CHECK(stones >= 0);
  return binomial(stones + kPits - 1, kPits - 1);
}

/// Number of boards in all levels 0..n inclusive: C(n + 12, 12).
inline std::uint64_t cumulative_size(int stones) {
  RETRA_CHECK(stones >= 0);
  return binomial(stones + kPits, kPits);
}

/// Rank of `board` within its level given its known stone total; inverse of
/// unrank().  The stone count is the level every caller already knows, so
/// the hot paths skip the stones_on() sweep rank() would redo.
inline Index rank_in_level(int stones, const Board& board) {
  // Lexicographic rank on (pit 0, …, pit 11) via the combinatorial number
  // system.  With r stones still unplaced at pit i, the boards whose pit i
  // holds fewer than b_i stones number
  //   C(r + 11 − i, 11 − i) − C(r − b_i + 11 − i, 11 − i)
  // (a telescoped hockey-stick sum), so the rank is 11 pairs of table
  // lookups.  Pit 11 is determined by the rest and contributes nothing.
  Index index = 0;
  int remaining = stones;
  for (int i = 0; i + 1 < kPits; ++i) {
    const int d = kPits - 1 - i;  // pits after pit i
    index += binomial(remaining + d, d) -
             binomial(remaining - board[support::to_size(i)] + d, d);
    remaining -= board[support::to_size(i)];
  }
  return index;
}

/// Rank of `board` within its level; inverse of unrank().
inline Index rank(const Board& board) {
  return rank_in_level(stones_on(board), board);
}

/// The board of the given level with the given rank.
inline Board unrank(int stones, Index index) {
  RETRA_CHECK(index < level_size(stones));
  Board board{};
  int remaining = stones;
  for (int i = 0; i + 1 < kPits; ++i) {
    const int d = kPits - 1 - i;
    // Walk pit values upward, peeling off the block of boards whose pit i
    // holds v stones: C(remaining − v + d − 1, d − 1) boards each.
    int v = 0;
    while (true) {
      const std::uint64_t block = binomial(remaining - v + d - 1, d - 1);
      if (index < block) break;
      index -= block;
      ++v;
      RETRA_DCHECK(v <= remaining);
    }
    board[support::to_size(i)] = static_cast<std::uint8_t>(v);
    remaining -= v;
  }
  board[support::to_size(kPits - 1)] = static_cast<std::uint8_t>(remaining);
  return board;
}

/// First board of the level in rank order: all stones in pit 11.
inline Board first_board(int stones) {
  RETRA_CHECK(stones >= 0 && stones < 256);
  Board board{};
  board[support::to_size(kPits - 1)] = static_cast<std::uint8_t>(stones);
  return board;
}

/// In-place advance of `board` to the next board of the same level in rank
/// order.  Returns false (leaving the board at the level's first element)
/// when called on the last board.  Enumerating with next_board() is much
/// faster than unranking successive indices.
inline bool next_board(Board& board) {
  // Lexicographic successor of a fixed-sum composition: increment the
  // rightmost pit j that has at least one stone somewhere to its right, and
  // push everything after j into the last pit.
  int tail = board[support::to_size(kPits - 1)];
  for (int j = kPits - 2; j >= 0; --j) {
    if (tail > 0) {
      board[support::to_size(j)] =
          static_cast<std::uint8_t>(board[support::to_size(j)] + 1);
      for (int k = j + 1; k + 1 < kPits; ++k) board[support::to_size(k)] = 0;
      board[support::to_size(kPits - 1)] = static_cast<std::uint8_t>(tail - 1);
      return true;
    }
    tail += board[support::to_size(j)];
  }
  // The board was the last of its level; wrap to the first.
  const int stones = tail;
  board = first_board(stones);
  return false;
}

/// Calls fn(board, index) for every board of the level, in rank order.
template <typename Fn>
void for_each_board(int stones, Fn&& fn) {
  Board board = first_board(stones);
  const std::uint64_t size = level_size(stones);
  for (std::uint64_t i = 0; i < size; ++i) {
    fn(static_cast<const Board&>(board), static_cast<Index>(i));
    if (i + 1 < size) next_board(board);
  }
}

/// Incremental cursor over one level's boards for callers that visit
/// monotonically increasing (but not necessarily consecutive) indices —
/// exactly what a rank's local scan does under every partition scheme.
/// seek() bridges small forward gaps with next_board() steps (a few adds
/// per step) and falls back to a full unrank() only for long jumps, so a
/// cyclic partition with stride P costs P cheap steps per position instead
/// of one expensive unrank.
class LevelWalker {
 public:
  explicit LevelWalker(int stones)
      : stones_(stones), index_(0), board_(first_board(stones)) {}

  /// Forward gap (in ranks) up to which seek() steps with next_board()
  /// instead of unranking.  One unrank costs on the order of `stones`
  /// table probes per pit; 64 successor steps stay comfortably below that
  /// while covering every realistic rank-count stride.
  static constexpr Index kStepLimit = 64;

  int stones() const { return stones_; }
  Index index() const { return index_; }

  /// The board with rank `target` in this walker's level.  The reference
  /// stays valid until the next seek().
  const Board& seek(Index target) {
    if (target != index_) {
      if (target > index_ && target - index_ <= kStepLimit) {
        for (Index i = index_; i < target; ++i) next_board(board_);
      } else {
        board_ = unrank(stones_, target);
      }
      index_ = target;
    }
    return board_;
  }

 private:
  int stones_;
  Index index_;
  Board board_;
};

}  // namespace retra::idx

// Depth to conversion (DTC) — the classic endgame-database companion of
// the value tables (Thompson-style retrograde analysis).
//
// For a solved level, dtc(p) is the number of plies until the game leaves
// the level (a capture or game-end exit) when both sides play
// value-optimally and, among value-optimal moves, the favoured side
// (v > 0) converts as fast as possible while the unfavoured side (v < 0)
// delays as long as possible:
//
//   v(p) > 0:  dtc = min over value-optimal options
//                    (exit: 1,  successor s: 1 + dtc(s))
//   v(p) < 0:  dtc = max over value-optimal options (same costs)
//   v(p) = 0:  kNoConversion — both sides can cycle forever, so no
//              conversion is forced (a drawn position may still convert
//              in play, but neither side can force or need it).
//
// Every value-optimal option of a nonzero position flips the sign
// (+u ↔ −u) or exits, and the +u side forces conversion in finitely many
// plies (that is what makes the value +u), so the min/max recursion is
// well-founded.  It is computed retrograde, like the values themselves: a
// bucket queue keyed by dtc plays the role of Dijkstra's priority queue
// (unit-cost layers), min positions resolve on their first settled
// optimal successor, max positions on their last (edge counting).
//
// Oracles use DTC to play the *shortest* win instead of an arbitrary one
// (evaluate_moves_dtc).
#pragma once

#include <cstdint>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/game/level_game.hpp"
#include "retra/ra/sweep_solver.hpp"
#include "retra/support/check.hpp"

namespace retra::ra {

using Dtc = std::uint32_t;
inline constexpr Dtc kNoConversion = UINT32_MAX;

template <typename LevelGame, typename LowerFn>
std::vector<Dtc> compute_dtc(const LevelGame& game, LowerFn&& lower,
                             const std::vector<db::Value>& values) {
  const std::uint64_t size = game.size();
  RETRA_CHECK(values.size() == size);

  std::vector<Dtc> dtc(size, kNoConversion);
  // For v < 0 positions: optimal successor edges not yet settled, and the
  // largest settled candidate (1 + dtc(s), or 1 for an optimal exit).
  std::vector<std::uint32_t> open_edges(size, 0);
  std::vector<Dtc> max_candidate(size, 0);

  // Bucket queue: settled positions by dtc; processed in increasing dtc
  // so min-side positions settle on their first (smallest) candidate.
  std::vector<std::vector<idx::Index>> buckets;
  auto push = [&](idx::Index p, Dtc d) {
    RETRA_DCHECK(dtc[p] == kNoConversion);
    dtc[p] = d;
    if (buckets.size() <= d) buckets.resize(d + 1);
    buckets[d].push_back(p);
  };

  // Initialisation: classify every nonzero position's optimal options.
  game.scan([&](idx::Index i, auto&& visit) {
    const db::Value v = values[i];
    if (v == 0) return;  // draws never convert by force
    bool exit_optimal = false;
    std::uint32_t optimal_succs = 0;
    visit(
        [&](const game::Exit& exit) {
          if (game::exit_value(exit, lower) == v) exit_optimal = true;
        },
        [&](idx::Index s) {
          if (static_cast<db::Value>(-values[s]) == v) ++optimal_succs;
        });
    RETRA_CHECK_MSG(exit_optimal || optimal_succs > 0,
                    "no value-optimal option: values are inconsistent");
    if (v > 0) {
      // Converting via an exit costs one ply and nothing can beat it.
      if (exit_optimal) push(i, 1);
    } else {
      open_edges[i] = optimal_succs;
      if (exit_optimal) max_candidate[i] = 1;
      if (optimal_succs == 0) push(i, max_candidate[i]);
    }
  });

  // Retrograde propagation in dtc order.
  for (Dtc layer = 0; layer < buckets.size(); ++layer) {
    // buckets may grow while we drain this layer's vector.
    for (std::size_t k = 0; k < buckets[layer].size(); ++k) {
      const idx::Index p = buckets[layer][k];
      const db::Value vp = values[p];
      game.visit_predecessors(p, [&](idx::Index q) {
        const db::Value vq = values[q];
        // The edge q -> p is value-optimal for q iff −v(p) == v(q).
        if (vq == 0 || static_cast<db::Value>(-vp) != vq) return;
        if (vq > 0) {
          if (dtc[q] == kNoConversion) push(q, dtc[p] + 1);
        } else {
          RETRA_CHECK_MSG(open_edges[q] > 0, "optimal edge double-counted");
          --open_edges[q];
          if (dtc[p] + 1 > max_candidate[q]) max_candidate[q] = dtc[p] + 1;
          if (open_edges[q] == 0 && dtc[q] == kNoConversion) {
            push(q, max_candidate[q]);
          }
        }
      });
    }
  }

  // Every nonzero position converts under optimal play.
  for (std::uint64_t i = 0; i < size; ++i) {
    RETRA_CHECK_MSG(values[i] == 0 || dtc[i] != kNoConversion,
                    "nonzero value without forced conversion");
  }
  return dtc;
}

}  // namespace retra::ra

// Querying a solved database: position values and optimal moves.
//
// This is what an endgame database is *for*: given any awari position
// whose stone count is covered, report its game-theoretic value and rank
// the moves by the value they guarantee.
//
// The oracle queries through serve::ValueSource — its single query
// surface — so the same code serves from the dense in-memory Database
// (wrap it in serve::DatabaseSource at the call site), the bit-packed
// CompactDatabase, or an on-disk RTRADB file behind a residency budget
// (serve::QueryService).  Successor lookups are batched per level
// through values().
#pragma once

#include <string>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/game/awari.hpp"
#include "retra/serve/value_source.hpp"

namespace retra::ra {

struct MoveEval {
  int pit = 0;       // origin pit of the move (0–5)
  int captured = 0;  // stones captured immediately
  db::Value value = 0;  // guaranteed net future capture for the mover
  game::Board after{};  // successor position (next mover's view)
};

/// Game-theoretic value of `board`; aborts if the source does not cover
/// the board's stone count.
db::Value position_value(serve::ValueSource& source,
                         const game::Board& board);

/// All legal moves, best first (value, then lower pit index as the tie
/// break).  Empty for terminal positions.
std::vector<MoveEval> evaluate_moves(serve::ValueSource& source,
                                     const game::Board& board);

/// Plays optimal moves from `board` until the game ends or `max_plies` is
/// reached (cycling positions never end), returning a human-readable
/// transcript line per ply.
std::vector<std::string> optimal_line(serve::ValueSource& source,
                                      game::Board board, int max_plies = 32);

/// Depth-to-conversion tables for every level of an awari database (see
/// retra/ra/dtc.hpp); index dtc.levels[n][rank].
struct DtcTables {
  std::vector<std::vector<std::uint32_t>> levels;
};
DtcTables compute_awari_dtc(serve::ValueSource& source);

/// Like evaluate_moves, but value ties are broken by conversion depth:
/// winning movers convert as fast as possible, losing movers delay.
std::vector<MoveEval> evaluate_moves_shortest(serve::ValueSource& source,
                                              const DtcTables& dtc,
                                              const game::Board& board);

}  // namespace retra::ra

// Reference solver: threshold decomposition by alternating attractors.
//
// For every threshold k ≥ 0 the sets
//   W_k = { p : the mover forces net capture > k }
//   L_k = { p : the mover cannot avoid net capture < −k }
// are least fixpoints of elementary reachability rules:
//   p ∈ W_k  ⇐  some exit of p is worth > k, or some successor ∈ L_k
//   p ∈ L_k  ⇐  every exit of p is worth < −k and every successor ∈ W_k
// (cycling yields 0, which is neither > k nor < −k, so positions are only
// captured by the fixpoint when finitely forced — exactly the semantics of
// DESIGN.md).  The value is recovered as |{k : p ∈ W_k}| − |{k : p ∈ L_k}|.
//
// O(bound · iterations · edges): slow, but every step is an elementary
// argument.  This is the correctness oracle the production sweep solver is
// cross-checked against.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/game/level_game.hpp"
#include "retra/ra/sweep_solver.hpp"
#include "retra/support/check.hpp"

namespace retra::ra {

template <typename LevelGame, typename LowerFn>
std::vector<db::Value> solve_level_attractor(const LevelGame& game,
                                             LowerFn&& lower) {
  const std::uint64_t size = game.size();
  const int bound = game.max_value();

  // Materialise best-exit values and successor lists once.
  std::vector<db::Value> max_exit(size, kNoOption);
  std::vector<std::vector<std::uint32_t>> succs(size);
  game.scan([&](idx::Index i, auto&& visit) {
    visit(
        [&](const game::Exit& exit) {
          const db::Value value = game::exit_value(exit, lower);
          if (value > max_exit[i]) max_exit[i] = value;
        },
        [&](idx::Index s) {
          RETRA_CHECK_MSG(s < (std::uint64_t{1} << 32),
                          "attractor reference limited to small levels");
          succs[i].push_back(static_cast<std::uint32_t>(s));
        });
  });

  std::vector<int> value(size, 0);
  std::vector<char> in_w(size), in_l(size);

  for (int k = 0; k < bound; ++k) {
    std::fill(in_w.begin(), in_w.end(), char{0});
    std::fill(in_l.begin(), in_l.end(), char{0});
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint64_t p = 0; p < size; ++p) {
        if (!in_w[p]) {
          bool wins = max_exit[p] != kNoOption && max_exit[p] > k;
          if (!wins) {
            for (const std::uint32_t s : succs[p]) {
              if (in_l[s]) {
                wins = true;
                break;
              }
            }
          }
          if (wins) {
            in_w[p] = 1;
            changed = true;
          }
        }
        if (!in_l[p]) {
          bool loses = max_exit[p] == kNoOption || max_exit[p] < -k;
          if (loses) {
            for (const std::uint32_t s : succs[p]) {
              if (!in_w[s]) {
                loses = false;
                break;
              }
            }
          }
          if (loses) {
            in_l[p] = 1;
            changed = true;
          }
        }
      }
    }
    for (std::uint64_t p = 0; p < size; ++p) {
      RETRA_CHECK_MSG(!(in_w[p] && in_l[p]), "W_k and L_k intersect");
      if (in_w[p]) ++value[p];
      if (in_l[p]) --value[p];
    }
  }

  std::vector<db::Value> out(size);
  for (std::uint64_t p = 0; p < size; ++p) {
    out[p] = static_cast<db::Value>(value[p]);
  }
  return out;
}

}  // namespace retra::ra

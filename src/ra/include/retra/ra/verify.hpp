// Self-verification of a solved level.
//
// Two checks together pin the fixpoint uniquely (see DESIGN.md):
//
//  1. Local consistency: v(p) equals the max over all option values —
//     exits against the lower databases and −v(s) for same-level
//     successors.  (This holds with equality even for cycling positions:
//     a zero-filled position always has a zero-filled successor.)
//  2. Well-foundedness of positive values: v(p) = u > 0 must be realised
//     by an exit worth u or by a successor with value −u that was
//     finalised *earlier* (assignment-order certificate).  This rejects
//     mutually-supporting cycles of nonzero values, the classic failure
//     mode local consistency alone cannot see.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/game/level_game.hpp"
#include "retra/ra/sweep_solver.hpp"

namespace retra::ra {

struct VerifyReport {
  bool ok = true;
  std::uint64_t positions_checked = 0;
  std::string error;  // description of the first failure

  void fail(std::string message) {
    if (ok) {
      ok = false;
      error = std::move(message);
    }
  }
};

/// Verifies one level.  `order` may be empty, which skips check 2.
template <typename LevelGame, typename LowerFn>
VerifyReport verify_level(const LevelGame& game, LowerFn&& lower,
                          const std::vector<db::Value>& values,
                          const std::vector<std::uint32_t>& order = {}) {
  VerifyReport report;
  if (values.size() != game.size()) {
    report.fail("value array size mismatch");
    return report;
  }
  const bool check_order = order.size() == values.size();

  game.scan([&](idx::Index p, auto&& visit) {
    ++report.positions_checked;
    const db::Value v = values[p];
    db::Value best = kNoOption;
    bool witnessed = false;
    visit(
        [&](const game::Exit& exit) {
          const db::Value value = game::exit_value(exit, lower);
          if (value > best) best = value;
          if (value == v) witnessed = true;  // exits are always well-founded
        },
        [&](idx::Index s) {
          const auto value = static_cast<db::Value>(-values[s]);
          if (value > best) best = value;
          if (check_order && value == v && v > 0 && order[s] < order[p]) {
            witnessed = true;
          }
        });
    if (best != v) {
      report.fail("local consistency failed at position " +
                  std::to_string(p) + ": value " + std::to_string(v) +
                  " vs option max " + std::to_string(best));
    }
    if (check_order && v > 0 && !witnessed) {
      report.fail("positive value without well-founded witness at position " +
                  std::to_string(p));
    }
  });
  return report;
}

}  // namespace retra::ra

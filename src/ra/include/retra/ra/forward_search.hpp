// Exhaustive forward search for tiny games (test oracle #3).
//
// Computes the value of a single position by depth-first search over play
// paths, scoring a revisited position as 0 — the path formulation of the
// "infinite play is worth nothing further" convention.  Exponential: only
// used on games with a handful of positions per level.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/game/level_game.hpp"
#include "retra/support/check.hpp"

namespace retra::ra {

namespace detail {

template <typename LevelGame, typename LowerFn>
int forward_value_rec(const LevelGame& game, LowerFn& lower, idx::Index p,
                      std::vector<char>& on_path, std::uint64_t& budget) {
  RETRA_CHECK_MSG(budget-- > 0, "forward search budget exhausted");
  if (on_path[p]) return 0;  // repetition: no further net capture
  on_path[p] = 1;
  int best = INT32_MIN;
  game.visit_options(
      p,
      [&](const game::Exit& exit) {
        const int value = game::exit_value(exit, lower);
        if (value > best) best = value;
      },
      [&](idx::Index s) {
        const int value =
            -forward_value_rec(game, lower, s, on_path, budget);
        if (value > best) best = value;
      });
  on_path[p] = 0;
  RETRA_CHECK_MSG(best != INT32_MIN, "position with no options");
  return best;
}

}  // namespace detail

/// Value of position `start`; aborts if the search exceeds `budget` node
/// expansions (the caller sized the game wrongly for an exhaustive check).
template <typename LevelGame, typename LowerFn>
db::Value forward_value(const LevelGame& game, LowerFn&& lower,
                        idx::Index start,
                        std::uint64_t budget = 50'000'000) {
  std::vector<char> on_path(game.size(), 0);
  const int value =
      detail::forward_value_rec(game, lower, start, on_path, budget);
  return static_cast<db::Value>(value);
}

}  // namespace retra::ra

// The production sequential retrograde-analysis solver.
//
// Solves one level of a level game (see retra/game/level_game.hpp) given
// the values of all lower levels.  This is the algorithm the paper
// parallelises, so its structure mirrors the distributed one exactly:
//
//  * every position keeps `best` (the best option value proven so far) and
//    `cnt` (same-level successor edges not yet resolved);
//  * value magnitudes are processed from the level bound downwards; within
//    magnitude u, `best == u` finalises a position at +u (no unresolved
//    successor can offer more) and `cnt == 0` finalises it at exactly
//    `best`;
//  * every finalisation notifies the position's same-level predecessors
//    (retrograde step: unmove generation) with the contribution −value;
//  * positions never finalised can cycle forever on zero-reward moves and
//    receive value 0.
//
// This is backward induction for deterministic graphical games whose
// internal cycles are all worth zero (Washburn-style), organised so that
// every predecessor edge is traversed exactly once.
#pragma once

#include <cstdint>
#include <vector>

#include "retra/db/database.hpp"
#include "retra/game/level_game.hpp"
#include "retra/support/check.hpp"

namespace retra::ra {

/// `best` value meaning "no option value known yet".
inline constexpr db::Value kNoOption = INT16_MIN + 1;

/// Assignment order of positions resolved only by the final zero-fill.
inline constexpr std::uint32_t kZeroFillOrder = UINT32_MAX;

struct SweepStats {
  std::uint64_t positions = 0;
  std::uint64_t exit_options = 0;   // exits evaluated during initialisation
  std::uint64_t level_edges = 0;    // same-level successor edges counted
  std::uint64_t assignments = 0;    // positions finalised before zero-fill
  std::uint64_t zero_filled = 0;
  std::uint64_t pred_edges = 0;     // predecessor edges visited
  std::uint64_t updates = 0;        // contributions applied to open positions
  int magnitudes = 0;
};

struct SweepResult {
  std::vector<db::Value> values;
  /// Assignment sequence numbers (only when requested): the verifier's
  /// well-foundedness certificate for positive values.
  std::vector<std::uint32_t> order;
  SweepStats stats;
};

struct SweepOptions {
  bool record_order = false;
};

/// Solves one level.  `lower(level, index)` must return the final value of
/// any lower-level position reachable through an exit.
template <typename LevelGame, typename LowerFn>
SweepResult solve_level(const LevelGame& game, LowerFn&& lower,
                        const SweepOptions& options = {}) {
  const std::uint64_t size = game.size();
  const int bound = game.max_value();
  RETRA_CHECK(bound >= 0);

  SweepResult result;
  result.stats.positions = size;
  result.values.assign(size, db::kUnknown);
  if (options.record_order) result.order.assign(size, kZeroFillOrder);

  std::vector<db::Value> best(size, kNoOption);
  std::vector<std::uint16_t> cnt(size, 0);
  std::vector<idx::Index> queue;
  std::uint32_t sequence = 0;

  auto assign = [&](idx::Index p, db::Value v) {
    RETRA_DCHECK(result.values[p] == db::kUnknown);
    result.values[p] = v;
    if (options.record_order) result.order[p] = sequence++;
    ++result.stats.assignments;
    queue.push_back(p);
  };

  // Initialisation: evaluate every exit against the lower databases and
  // count same-level successor edges.  Positions with no same-level
  // successors are exact immediately.
  game.scan([&](idx::Index i, auto&& visit) {
    db::Value b = kNoOption;
    std::uint32_t edges = 0;
    visit(
        [&](const game::Exit& exit) {
          const db::Value value = game::exit_value(exit, lower);
          if (value > b) b = value;
          ++result.stats.exit_options;
        },
        [&](idx::Index) {
          ++edges;
          ++result.stats.level_edges;
        });
    RETRA_CHECK_MSG(b != kNoOption || edges > 0,
                    "position with no options at all");
    RETRA_CHECK_MSG(edges <= UINT16_MAX, "successor edge count overflow");
    RETRA_CHECK_MSG(b == kNoOption || (b >= -bound && b <= bound),
                    "exit value outside the level's value bound");
    best[i] = b;
    cnt[i] = static_cast<std::uint16_t>(edges);
    if (edges == 0) assign(i, b);
  });

  // Magnitude sweep.  The queue drained at magnitude u only ever carries
  // positions whose |value| <= u, so contributions never exceed the open
  // positions' remaining bound.
  for (int u = bound; u >= 1; --u) {
    ++result.stats.magnitudes;
    const auto mag = static_cast<db::Value>(u);
    for (std::uint64_t i = 0; i < size; ++i) {
      if (result.values[i] == db::kUnknown && best[i] == mag) {
        assign(i, mag);
      }
      RETRA_DCHECK(result.values[i] != db::kUnknown || best[i] <= mag);
    }
    while (!queue.empty()) {
      const idx::Index p = queue.back();
      queue.pop_back();
      const db::Value v = result.values[p];
      const auto contribution = static_cast<db::Value>(-v);
      game.visit_predecessors(p, [&](idx::Index q) {
        ++result.stats.pred_edges;
        if (result.values[q] != db::kUnknown) return;
        ++result.stats.updates;
        RETRA_CHECK_MSG(cnt[q] > 0, "more contributions than counted edges");
        --cnt[q];
        if (contribution > best[q]) best[q] = contribution;
        RETRA_CHECK_MSG(best[q] <= mag, "contribution above current magnitude");
        if (best[q] == mag) {
          assign(q, mag);
        } else if (cnt[q] == 0) {
          RETRA_CHECK(best[q] != kNoOption);
          assign(q, best[q]);
        }
      });
    }
  }

  // Whatever survives every magnitude can cycle forever: value 0.
  for (std::uint64_t i = 0; i < size; ++i) {
    if (result.values[i] == db::kUnknown) {
      result.values[i] = 0;
      ++result.stats.zero_filled;
    }
  }
  return result;
}

}  // namespace retra::ra

// Bottom-up database construction over a game family.
//
// A *game family* exposes `level(l)` returning the LevelGame for level l
// (awari: game::AwariFamily; synthetic: game::GraphGame).  Levels are
// solved in increasing order; each solved level feeds the exits of the
// next.
#pragma once

#include <functional>

#include "retra/db/database.hpp"
#include "retra/ra/sweep_solver.hpp"
#include "retra/ra/verify.hpp"
#include "retra/support/check.hpp"
#include "retra/support/log.hpp"

namespace retra::ra {

struct BuildOptions {
  /// Run the self-verifier on every solved level (slower; aborts on
  /// failure).
  bool verify = false;
  /// Per-level stats callback, e.g. for progress reporting.
  std::function<void(int level, const SweepStats&)> on_level;
};

template <typename Family>
db::Database build_database(const Family& family, int max_level,
                            const BuildOptions& options = {}) {
  db::Database database;
  for (int l = 0; l <= max_level; ++l) {
    decltype(auto) game = family.level(l);
    auto lower = [&database](int level, idx::Index index) {
      return database.value(level, index);
    };
    SweepOptions sweep_options;
    sweep_options.record_order = options.verify;
    SweepResult result = solve_level(game, lower, sweep_options);
    if (options.verify) {
      const VerifyReport report =
          verify_level(game, lower, result.values, result.order);
      RETRA_CHECK_MSG(report.ok, "level verification failed: " + report.error);
    }
    if (options.on_level) options.on_level(l, result.stats);
    database.push_level(l, std::move(result.values));
  }
  return database;
}

}  // namespace retra::ra

#include "retra/ra/oracle.hpp"

#include <algorithm>
#include <array>

#include "retra/game/awari_level.hpp"
#include "retra/ra/dtc.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::ra {

db::Value position_value(serve::ValueSource& source,
                         const game::Board& board) {
  const int stones = idx::stones_on(board);
  RETRA_CHECK_MSG(source.covers(stones),
                  "database does not cover this stone count");
  return source.value(stones, idx::rank(board));
}

std::vector<MoveEval> evaluate_moves(serve::ValueSource& source,
                                     const game::Board& board) {
  std::vector<MoveEval> evals;
  std::array<int, game::kPits / 2> levels{};
  std::array<idx::Index, game::kPits / 2> ranks{};
  for (const auto& move : game::legal_moves(board)) {
    MoveEval eval;
    eval.pit = move.pit;
    eval.captured = move.captured;
    eval.after = move.after;
    levels[evals.size()] = idx::stones_on(move.after);
    ranks[evals.size()] = idx::rank(move.after);
    evals.push_back(eval);
  }

  // Batch successor lookups per level: a capture and a plain sowing move
  // land in different levels, so gather each level's indices and resolve
  // them with one values() call — one residency check per level instead
  // of per move when the source is file-backed.
  std::array<bool, game::kPits / 2> resolved{};
  std::array<idx::Index, game::kPits / 2> batch{};
  std::array<db::Value, game::kPits / 2> batch_values{};
  std::array<std::size_t, game::kPits / 2> batch_slot{};
  for (std::size_t i = 0; i < evals.size(); ++i) {
    if (resolved[i]) continue;
    const int level = levels[i];
    RETRA_CHECK_MSG(source.covers(level),
                    "database does not cover this stone count");
    std::size_t count = 0;
    for (std::size_t j = i; j < evals.size(); ++j) {
      if (!resolved[j] && levels[j] == level) {
        batch[count] = ranks[j];
        batch_slot[count] = j;
        ++count;
      }
    }
    source.values(level, std::span<const idx::Index>(batch.data(), count),
                  std::span<db::Value>(batch_values.data(), count));
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t j = batch_slot[k];
      evals[j].value = static_cast<db::Value>(evals[j].captured -
                                              batch_values[k]);
      resolved[j] = true;
    }
  }

  std::sort(evals.begin(), evals.end(),
            [](const MoveEval& a, const MoveEval& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.pit < b.pit;
            });
  return evals;
}

std::vector<std::string> optimal_line(serve::ValueSource& source,
                                      game::Board board, int max_plies) {
  std::vector<std::string> transcript;
  for (int ply = 0; ply < max_plies; ++ply) {
    const db::Value value = position_value(source, board);
    if (game::is_terminal(board)) {
      transcript.push_back(game::board_to_string(board) +
                           "  terminal, reward " +
                           std::to_string(game::terminal_reward(board)));
      break;
    }
    const auto evals = evaluate_moves(source, board);
    const MoveEval& best = evals.front();
    RETRA_CHECK_MSG(best.value == value,
                    "database inconsistent: best move misses the value");
    transcript.push_back(
        game::board_to_string(board) + "  value " + std::to_string(value) +
        ", plays pit " + std::to_string(best.pit) +
        (best.captured ? " capturing " + std::to_string(best.captured)
                       : std::string()));
    board = best.after;
  }
  return transcript;
}

DtcTables compute_awari_dtc(serve::ValueSource& source) {
  DtcTables tables;
  tables.levels.reserve(support::to_size(source.num_levels()));
  for (int level = 0; level < source.num_levels(); ++level) {
    const game::AwariLevel game(level);
    auto lower = [&source](int l, idx::Index i) {
      return source.value(l, i);
    };
    tables.levels.push_back(
        compute_dtc(game, lower, source.level_values(level)));
  }
  return tables;
}

std::vector<MoveEval> evaluate_moves_shortest(serve::ValueSource& source,
                                              const DtcTables& dtc,
                                              const game::Board& board) {
  std::vector<MoveEval> evals = evaluate_moves(source, board);
  if (evals.empty()) return evals;
  const db::Value best = evals.front().value;

  // Conversion cost of a move: captures leave the level immediately (one
  // ply); a sowing move inherits the successor's depth plus one.
  auto conversion = [&](const MoveEval& eval) -> std::uint64_t {
    if (eval.captured > 0) return 1;
    const int level = idx::stones_on(eval.after);
    const Dtc d = dtc.levels.at(support::to_size(level))[idx::rank(eval.after)];
    return d == kNoConversion ? kNoConversion
                              : static_cast<std::uint64_t>(d) + 1;
  };

  std::stable_sort(evals.begin(), evals.end(),
                   [&](const MoveEval& a, const MoveEval& b) {
                     if (a.value != b.value) return a.value > b.value;
                     if (a.value != best) return false;  // keep order
                     const auto ca = conversion(a);
                     const auto cb = conversion(b);
                     // Winners hurry, losers stall, draws don't care.
                     if (best > 0) return ca < cb;
                     if (best < 0) return ca > cb;
                     return false;
                   });
  return evals;
}

}  // namespace retra::ra

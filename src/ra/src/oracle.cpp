#include "retra/ra/oracle.hpp"

#include <algorithm>

#include "retra/game/awari_level.hpp"
#include "retra/ra/dtc.hpp"
#include "retra/support/check.hpp"
#include "retra/support/numeric.hpp"

namespace retra::ra {

db::Value position_value(const db::Database& database,
                         const game::Board& board) {
  const int stones = idx::stones_on(board);
  RETRA_CHECK_MSG(database.has_level(stones),
                  "database does not cover this stone count");
  return database.value(stones, idx::rank(board));
}

std::vector<MoveEval> evaluate_moves(const db::Database& database,
                                     const game::Board& board) {
  std::vector<MoveEval> evals;
  for (const auto& move : game::legal_moves(board)) {
    MoveEval eval;
    eval.pit = move.pit;
    eval.captured = move.captured;
    eval.after = move.after;
    eval.value = static_cast<db::Value>(
        move.captured - position_value(database, move.after));
    evals.push_back(eval);
  }
  std::sort(evals.begin(), evals.end(),
            [](const MoveEval& a, const MoveEval& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.pit < b.pit;
            });
  return evals;
}

std::vector<std::string> optimal_line(const db::Database& database,
                                      game::Board board, int max_plies) {
  std::vector<std::string> transcript;
  for (int ply = 0; ply < max_plies; ++ply) {
    const db::Value value = position_value(database, board);
    if (game::is_terminal(board)) {
      transcript.push_back(game::board_to_string(board) +
                           "  terminal, reward " +
                           std::to_string(game::terminal_reward(board)));
      break;
    }
    const auto evals = evaluate_moves(database, board);
    const MoveEval& best = evals.front();
    RETRA_CHECK_MSG(best.value == value,
                    "database inconsistent: best move misses the value");
    transcript.push_back(
        game::board_to_string(board) + "  value " + std::to_string(value) +
        ", plays pit " + std::to_string(best.pit) +
        (best.captured ? " capturing " + std::to_string(best.captured)
                       : std::string()));
    board = best.after;
  }
  return transcript;
}

DtcTables compute_awari_dtc(const db::Database& database) {
  DtcTables tables;
  tables.levels.reserve(support::to_size(database.num_levels()));
  for (int level = 0; level < database.num_levels(); ++level) {
    const game::AwariLevel game(level);
    auto lower = [&database](int l, idx::Index i) {
      return database.value(l, i);
    };
    tables.levels.push_back(
        compute_dtc(game, lower, database.level(level)));
  }
  return tables;
}

std::vector<MoveEval> evaluate_moves_shortest(const db::Database& database,
                                              const DtcTables& dtc,
                                              const game::Board& board) {
  std::vector<MoveEval> evals = evaluate_moves(database, board);
  if (evals.empty()) return evals;
  const db::Value best = evals.front().value;

  // Conversion cost of a move: captures leave the level immediately (one
  // ply); a sowing move inherits the successor's depth plus one.
  auto conversion = [&](const MoveEval& eval) -> std::uint64_t {
    if (eval.captured > 0) return 1;
    const int level = idx::stones_on(eval.after);
    const Dtc d = dtc.levels.at(support::to_size(level))[idx::rank(eval.after)];
    return d == kNoConversion ? kNoConversion
                              : static_cast<std::uint64_t>(d) + 1;
  };

  std::stable_sort(evals.begin(), evals.end(),
                   [&](const MoveEval& a, const MoveEval& b) {
                     if (a.value != b.value) return a.value > b.value;
                     if (a.value != best) return false;  // keep order
                     const auto ca = conversion(a);
                     const auto cb = conversion(b);
                     // Winners hurry, losers stall, draws don't care.
                     if (best > 0) return ca < cb;
                     if (best < 0) return ca > cb;
                     return false;
                   });
  return evals;
}

}  // namespace retra::ra

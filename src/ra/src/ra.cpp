// Anchor translation unit for the header-template retra_ra library; also
// hosts explicit instantiation smoke checks so template errors surface when
// the library itself is built rather than in downstream targets.
#include "retra/game/awari_level.hpp"
#include "retra/game/graph_game.hpp"
#include "retra/ra/attractor_solver.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/forward_search.hpp"
#include "retra/ra/sweep_solver.hpp"
#include "retra/ra/verify.hpp"

namespace retra::ra {

namespace {

// Force instantiation of the solver stack for both shipped game types.
[[maybe_unused]] void instantiate_templates() {
  auto lower = [](int, idx::Index) { return db::Value{0}; };

  const game::AwariLevel awari(2);
  (void)solve_level(awari, lower);
  (void)solve_level_attractor(awari, lower);
  (void)verify_level(awari, lower, {});
  (void)forward_value(awari, lower, 0);

  const game::GraphGameConfig config;
  const game::GraphGame graph(config);
  (void)solve_level(graph.level(1), lower);
  (void)solve_level_attractor(graph.level(1), lower);
  (void)verify_level(graph.level(1), lower, {});
  (void)forward_value(graph.level(1), lower, 0);
}

}  // namespace

}  // namespace retra::ra

// P2 — Vectorized sweep kernels: scalar vs SIMD throughput.
//
// Three panels:
//  (a) kernels: the three exec::simd sweep kernels timed on a packed
//      int16 array at every backend this host supports (scalar, SSE2,
//      AVX2).  The packed seed scan (collect_eq2) speedup over scalar is
//      the headline number; every backend's output is checked identical
//      to the scalar reference before it is timed.
//  (b) engine: real awari builds with the backend pinned scalar vs
//      widest, across per-phase thread splits — the engine phase timers
//      (host wall time) show what the kernels buy inside the full
//      seed/zero-fill/drain machinery, and the runs are checked for the
//      engines' bit-identity guarantee (same stats either way).
//  (c) model: the 1995 cluster priced at vector_lanes = 1 (the paper's
//      scalar SPARCs) vs this host's width — the DES sweep term shrinks
//      by exactly the lane count; everything else is untouched.
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "retra/exec/simd.hpp"

namespace {

using namespace retra;
using namespace retra::bench;

struct KernelRow {
  exec::simd::Backend backend = exec::simd::Backend::kScalar;
  int lanes = 1;
  double replace_s = 0;  // zero-fill word sweep
  double eq2_s = 0;      // packed seed scan
  double seed_s = 0;     // first-magnitude combined sweep
};

struct EngineRow {
  const char* backend = "";
  int threads_scan = 0;
  int threads_drain = 0;
  double seed_s = 0;
  double zero_fill_s = 0;
  double drain_s = 0;
  std::uint64_t sweep_positions = 0;
  std::uint64_t assignments = 0;
  std::uint64_t zero_filled = 0;
};

/// Best-of-`reps` wall time of `body` (untimed `prepare` runs first).
template <typename Prepare, typename Body>
double best_of(int reps, Prepare&& prepare, Body&& body) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    prepare();
    const support::Timer timer;
    body();
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "P2: scalar vs SIMD throughput of the exec::simd sweep kernels, "
      "standalone and inside the engines, plus the 1995 model priced "
      "with and without the vector-width term. --json writes the "
      "artifact.");
  add_model_flags(cli);
  add_output_flags(cli);
  cli.flag("elements", "4194304",
           "int16 elements in the standalone kernel arrays");
  cli.flag("reps", "5", "timed repetitions per kernel (best-of)");
  cli.flag("level", "7", "awari level of the engine and model panels");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.parse(argc, argv);
  const auto n = static_cast<std::size_t>(cli.integer("elements"));
  const int reps = static_cast<int>(cli.integer("reps"));
  const int level = static_cast<int>(cli.integer("level"));
  const auto combine = static_cast<std::size_t>(cli.integer("combine-bytes"));
  sim::ClusterModel model = model_from(cli);

  const exec::simd::Backend widest = exec::simd::widest_available();
  const exec::simd::Backend initial = exec::simd::active();
  std::printf(
      "P2: vectorized sweep kernels — %zu int16 elements, best of %d, "
      "widest backend %s (%d lanes), %u hardware thread(s)\n",
      n, reps, exec::simd::backend_name(widest),
      exec::simd::lanes(widest), std::thread::hardware_concurrency());
  print_model(model);

  // (a) Standalone kernels.  The input mirrors an engine shard mid-build:
  // roughly a third of the values still unknown, option counts and best
  // exits scattered so every vector word mixes matches and non-matches.
  std::vector<std::int16_t> values(n), best(n);
  std::vector<std::uint16_t> cnt(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = i % 3 == 0 ? db::kUnknown : static_cast<std::int16_t>(i % 7);
    best[i] = static_cast<std::int16_t>(i % 5);
    cnt[i] = static_cast<std::uint16_t>(i % 4);
  }
  const std::int16_t mag = 2;
  std::vector<std::int16_t> scratch(n);
  std::vector<std::uint32_t> hits(n);

  // Cross-backend identity check before anything is timed.
  exec::simd::set_active(exec::simd::Backend::kScalar);
  scratch = values;
  const std::uint64_t ref_replaced =
      exec::simd::replace_matching(scratch.data(), n, db::kUnknown, 0);
  const std::vector<std::int16_t> ref_replaced_data = scratch;
  const std::size_t ref_eq2 = exec::simd::collect_eq2(
      values.data(), db::kUnknown, best.data(), mag, n, hits.data());
  const std::vector<std::uint32_t> ref_eq2_hits(hits.begin(),
                                                hits.begin() + ref_eq2);
  const std::size_t ref_seed = exec::simd::collect_seed_candidates(
      values.data(), db::kUnknown, cnt.data(), best.data(), mag, n,
      hits.data());
  const std::vector<std::uint32_t> ref_seed_hits(hits.begin(),
                                                 hits.begin() + ref_seed);

  std::vector<KernelRow> kernel_rows;
  for (const auto backend :
       {exec::simd::Backend::kScalar, exec::simd::Backend::kSse2,
        exec::simd::Backend::kAvx2}) {
    if (exec::simd::set_active(backend) != backend) continue;
    KernelRow row;
    row.backend = backend;
    row.lanes = exec::simd::lanes(backend);

    scratch = values;
    RETRA_CHECK(exec::simd::replace_matching(scratch.data(), n, db::kUnknown,
                                             0) == ref_replaced);
    RETRA_CHECK(scratch == ref_replaced_data);
    std::size_t matched = exec::simd::collect_eq2(
        values.data(), db::kUnknown, best.data(), mag, n, hits.data());
    RETRA_CHECK(matched == ref_eq2);
    RETRA_CHECK(std::memcmp(hits.data(), ref_eq2_hits.data(),
                            matched * sizeof(std::uint32_t)) == 0);
    matched = exec::simd::collect_seed_candidates(values.data(), db::kUnknown,
                                                  cnt.data(), best.data(),
                                                  mag, n, hits.data());
    RETRA_CHECK(matched == ref_seed);
    RETRA_CHECK(std::memcmp(hits.data(), ref_seed_hits.data(),
                            matched * sizeof(std::uint32_t)) == 0);

    row.replace_s = best_of(
        reps, [&] { std::memcpy(scratch.data(), values.data(),
                                n * sizeof(std::int16_t)); },
        [&] { exec::simd::replace_matching(scratch.data(), n, db::kUnknown,
                                           0); });
    row.eq2_s = best_of(
        reps, [] {},
        [&] { exec::simd::collect_eq2(values.data(), db::kUnknown,
                                      best.data(), mag, n, hits.data()); });
    row.seed_s = best_of(
        reps, [] {},
        [&] { exec::simd::collect_seed_candidates(values.data(), db::kUnknown,
                                                  cnt.data(), best.data(),
                                                  mag, n, hits.data()); });
    kernel_rows.push_back(row);
  }
  exec::simd::set_active(initial);

  const double mpos = static_cast<double>(n) / 1e6;
  std::printf("\n(a) standalone kernels, Mpos/s (speedup vs scalar)\n\n");
  support::Table kernel_table({"backend", "lanes", "zero-fill", "seed scan",
                               "first-mag", "scan speedup"});
  for (const KernelRow& row : kernel_rows) {
    kernel_table.row()
        .add(exec::simd::backend_name(row.backend))
        .add(row.lanes)
        .add(mpos / row.replace_s, 0)
        .add(mpos / row.eq2_s, 0)
        .add(mpos / row.seed_s, 0)
        .add(kernel_rows.front().eq2_s / row.eq2_s, 2);
  }
  kernel_table.print();

  // (b) The kernels inside the engines: scalar vs widest backend across
  // per-phase thread splits, phase timers from the obs deltas.  The
  // engines guarantee bit-identical results for every cell; the stats
  // columns make that visible.
  std::printf(
      "\n(b) awari level %d build, host phase seconds by backend and "
      "(Tscan, Tdrain)\n\n",
      level);
  const struct {
    int scan;
    int drain;
  } splits[] = {{1, 1}, {2, 1}, {1, 2}, {2, 2}};
  std::vector<EngineRow> engine_rows;
  for (const auto backend : {exec::simd::Backend::kScalar, widest}) {
    if (backend != exec::simd::Backend::kScalar &&
        widest == exec::simd::Backend::kScalar) {
      break;  // scalar-only build: one pass
    }
    exec::simd::set_active(backend);
    for (const auto split : splits) {
      para::ParallelConfig config;
      config.ranks = 1;
      config.combine_bytes = combine;
      config.threads_scan = split.scan;
      config.threads_drain = split.drain;
      config.oversubscribe = true;
      const obs::Snapshot before = obs::snapshot();
      const para::ParallelResult run =
          para::build_parallel(game::AwariFamily{}, level, config);
      const obs::Snapshot delta = obs::snapshot() - before;
      EngineRow row;
      row.backend = exec::simd::backend_name(backend);
      row.threads_scan = split.scan;
      row.threads_drain = split.drain;
      row.seed_s = delta[obs::Id::kEngineSeedSeconds].seconds();
      row.zero_fill_s = delta[obs::Id::kEngineZeroFillSeconds].seconds();
      row.drain_s = delta[obs::Id::kEngineDrainSeconds].seconds();
      row.sweep_positions =
          delta[obs::Id::kEngineKernelSweepPositions].value;
      for (const para::LevelRunInfo& info : run.levels) {
        row.assignments += info.total.assignments;
        row.zero_filled += info.total.zero_filled;
      }
      engine_rows.push_back(row);
    }
  }
  exec::simd::set_active(initial);
  support::Table engine_table({"backend", "Tscan", "Tdrain", "seed",
                               "zero-fill", "drain", "sweep pos",
                               "assignments", "zero-filled"});
  for (const EngineRow& row : engine_rows) {
    // Bit-identity guarantee: every cell finalises the same positions.
    RETRA_CHECK(row.assignments == engine_rows.front().assignments);
    RETRA_CHECK(row.zero_filled == engine_rows.front().zero_filled);
    engine_table.row()
        .add(row.backend)
        .add(row.threads_scan)
        .add(row.threads_drain)
        .add(support::human_seconds(row.seed_s))
        .add(support::human_seconds(row.zero_fill_s))
        .add(support::human_seconds(row.drain_s))
        .add(row.sweep_positions)
        .add(row.assignments)
        .add(row.zero_filled);
  }
  engine_table.print();

  // (c) The DES model with and without the vector-width term.  The work
  // meters are identical (determinism guarantee); only the kSweepPosition
  // pricing changes, so the delta is exactly the sweep term shrinking by
  // the lane count.
  const int host_lanes = exec::simd::lanes(widest);
  double model_time[2] = {0, 0};
  double sweep_term[2] = {0, 0};
  para::SimBuildResult model_runs[2];
  const obs::Snapshot artifact_before = obs::snapshot();
  for (int i = 0; i < 2; ++i) {
    model.machine.vector_lanes = i == 0 ? 1 : host_lanes;
    model_runs[i] = simulate_build(level, 1, combine, model);
    model_time[i] = model_runs[i].total_time_s();
    double sweep_ops = 0;
    for (const para::LevelRunInfo& info : model_runs[i].levels) {
      sweep_ops +=
          model.machine
              .op_cost[static_cast<std::size_t>(
                  msg::WorkKind::kSweepPosition)] *
          static_cast<double>(
              info.work_total.count(msg::WorkKind::kSweepPosition));
    }
    sweep_term[i] = sweep_ops / model.machine.cpu_ops_per_second /
                    model.machine.vector_lanes;
  }
  const obs::Snapshot artifact_delta = obs::snapshot() - artifact_before;
  model.machine.vector_lanes = 1;

  std::printf(
      "\n(c) modelled 1995 node, level %d: scalar SPARC vs a %d-lane "
      "what-if\n\n",
      level, host_lanes);
  support::Table model_table({"lanes", "sweep term", "build"});
  for (int i = 0; i < 2; ++i) {
    model_table.row()
        .add(i == 0 ? 1 : host_lanes)
        .add(support::human_seconds(sweep_term[i]))
        .add(support::human_seconds(model_time[i]));
  }
  model_table.print();

  const std::string path = cli.str("json");
  if (!path.empty()) {
    BenchRunMeta meta;
    meta.suite = "p2";
    meta.bench = "bench_p2_kernels";
    meta.max_level = level;
    meta.ranks = 1;
    meta.combine_bytes = combine;
    // Standard retra-bench-v1 document (levels of the lanes=1 model run,
    // metrics of the model panel) plus the "p2" extension object with the
    // kernel and engine grids; validators tolerate the extra key.
    std::string json =
        bench_artifact_json(meta, model, model_runs[0], artifact_delta);
    obs::JsonWriter extra;
    extra.begin_object();
    extra.kv("elements", static_cast<std::uint64_t>(n));
    extra.kv("widest_backend", exec::simd::backend_name(widest));
    extra.kv("widest_lanes", host_lanes);
    extra.key("kernels").begin_array();
    for (const KernelRow& row : kernel_rows) {
      extra.begin_object();
      extra.kv("backend", exec::simd::backend_name(row.backend));
      extra.kv("lanes", row.lanes);
      extra.kv("zero_fill_mpps", mpos / row.replace_s);
      extra.kv("seed_scan_mpps", mpos / row.eq2_s);
      extra.kv("first_mag_mpps", mpos / row.seed_s);
      extra.kv("seed_scan_speedup",
               kernel_rows.front().eq2_s / row.eq2_s);
      extra.end_object();
    }
    extra.end_array();
    extra.key("engine").begin_array();
    for (const EngineRow& row : engine_rows) {
      extra.begin_object();
      extra.kv("backend", row.backend);
      extra.kv("threads_scan", row.threads_scan);
      extra.kv("threads_drain", row.threads_drain);
      extra.kv("seed_s", row.seed_s);
      extra.kv("zero_fill_s", row.zero_fill_s);
      extra.kv("drain_s", row.drain_s);
      extra.kv("sweep_positions", row.sweep_positions);
      extra.kv("assignments", row.assignments);
      extra.kv("zero_filled", row.zero_filled);
      extra.end_object();
    }
    extra.end_array();
    extra.key("model").begin_object();
    extra.kv("level", level);
    extra.kv("scalar_sweep_s", sweep_term[0]);
    extra.kv("vector_sweep_s", sweep_term[1]);
    extra.kv("scalar_build_s", model_time[0]);
    extra.kv("vector_build_s", model_time[1]);
    extra.end_object();
    extra.end_object();
    RETRA_CHECK(json.size() > 1 && json.back() == '}');
    json.pop_back();
    json += ",\"p2\":" + extra.str() + "}";
    std::string error;
    if (!validate_bench_artifact(json, &error)) {
      std::fprintf(stderr, "internal error: artifact fails validation: %s\n",
                   error.c_str());
      return 1;
    }
    if (!write_text_file(path, json)) return 1;
    std::printf("\nwrote %s (%s)\n", path.c_str(), kBenchSchema);
  }
  return 0;
}

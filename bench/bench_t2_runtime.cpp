// T2 — Execution times: database level × processor count.
//
// The measured panel runs the real build under the cluster simulator; the
// projected panel extends the table to the paper-scale databases the
// abstract describes (40 h on one machine vs 50 min on 64; a larger one
// in 20 h on 64 that needs >600 MB on a uniprocessor).
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "T2: execution time per database build, measured under the cluster "
      "simulator and projected at paper scale.  --json writes the "
      "artifact of the largest measured build (max level, most ranks).");
  add_model_flags(cli);
  add_output_flags(cli);
  cli.flag("max-level", "10", "largest level built under the simulator");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.parse(argc, argv);
  const int max_level = static_cast<int>(cli.integer("max-level"));
  const auto combine = static_cast<std::size_t>(cli.integer("combine-bytes"));
  const sim::ClusterModel model = model_from(cli);

  std::printf("T2: execution time per database build (levels 0..n)\n");
  print_model(model);

  const std::vector<int> rank_counts{1, 4, 16, 64};

  std::printf("\n(a) measured under the cluster simulator\n\n");
  std::vector<std::string> headers{"n", "positions"};
  for (const int ranks : rank_counts) {
    headers.push_back("P=" + std::to_string(ranks));
  }
  headers.push_back("speedup@64");
  support::Table measured(headers);

  sim::LevelProfile top_profile{};
  std::uint64_t top_rounds = 1;
  std::optional<para::SimBuildResult> artifact_run;
  obs::Snapshot artifact_delta;
  for (int level = 6; level <= max_level; ++level) {
    measured.row().add(level).add(idx::cumulative_size(level));
    double t1 = 0, t_last = 0;
    for (const int ranks : rank_counts) {
      const obs::Snapshot before = obs::snapshot();
      auto run = simulate_build(level, ranks, combine, model);
      t_last = run.total_time_s();
      if (ranks == 1) t1 = t_last;
      measured.add(support::human_seconds(t_last));
      if (level == max_level && ranks == rank_counts.back()) {
        top_profile = measured_profile(run);
        top_rounds = run.levels.back().rounds;
        artifact_delta = obs::snapshot() - before;
        artifact_run = std::move(run);
      }
    }
    measured.add(t1 / t_last, 1);
  }
  measured.print();

  std::printf(
      "\n(b) projected at paper scale (densities measured at level %d; "
      "single level, all lower levels assumed built)\n\n",
      max_level);
  support::Table projected({"n", "positions", "P=1", "P=64", "speedup",
                            "P=1 working set", ""});
  for (const int level : {16, 18, 20, 21, 22, 24}) {
    sim::LevelProfile profile =
        paper_scale_profile(top_profile, max_level, level);
    profile.rounds = top_rounds * static_cast<std::uint64_t>(level) /
                     static_cast<std::uint64_t>(max_level);
    const auto p1 = sim::project_level(profile, 1, model, combine);
    const auto p64 = sim::project_level(profile, 64, model, combine);
    const std::uint64_t uniproc_bytes =
        idx::level_size(level) * 6 +
        (idx::cumulative_size(level) - idx::level_size(level));
    projected.row()
        .add(level)
        .add(idx::level_size(level))
        .add(support::human_seconds(p1.time_s))
        .add(support::human_seconds(p64.time_s))
        .add(p1.time_s / p64.time_s, 1)
        .add(support::human_bytes(uniproc_bytes))
        .add(uniproc_bytes > 600ull << 20 ? "> 600 MB: uniprocessor infeasible"
                                          : "");
  }
  projected.print();
  std::printf(
      "\npaper reference: one database 40 h on P=1 vs 50 min on P=64 "
      "(speedup 48); a larger one 20 h on P=64, >600 MB on P=1.\n");

  BenchRunMeta meta;
  meta.suite = "t2";
  meta.bench = "bench_t2_runtime";
  meta.max_level = max_level;
  meta.ranks = rank_counts.back();
  meta.combine_bytes = combine;
  if (!write_artifact_if_requested(cli, meta, model, *artifact_run,
                                   artifact_delta)) {
    return 1;
  }
  return 0;
}

// S1 — Sensitivity of the reproduced speedup to the cluster-model
// assumptions.
//
// The absolute 1995 constants cannot be measured today, so this table
// shows how the paper-scale speedup at P = 64 moves as the two dominant
// assumptions vary: the per-message software overhead (the combining
// argument's driver) and the number of bridged Ethernet segments (the
// aggregate bandwidth).  The abstract's reported speedup of 48 pins the
// plausible region; a single shared segment is visibly incompatible with
// it, which is why the default model uses four.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "S1: sensitivity of the reproduced speedup to the 1995 cluster- "
      "model constants.");
  add_model_flags(cli);
  cli.flag("level", "9", "level measured for workload densities");
  cli.flag("paper-level", "21", "projected level");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));
  const int paper_level = static_cast<int>(cli.integer("paper-level"));

  sim::ClusterModel base = model_from(cli);
  const auto reference = simulate_build(level, 64, 4096, base);
  sim::LevelProfile paper =
      paper_scale_profile(measured_profile(reference), level, paper_level);
  paper.rounds = reference.levels.back().rounds *
                 static_cast<std::uint64_t>(paper_level) /
                 static_cast<std::uint64_t>(level);

  std::printf(
      "S1: projected speedup at P=64 for level %d, by model assumption "
      "(paper reports 48)\n\n",
      paper_level);

  const std::vector<double> overheads_ms{0.2, 0.5, 1.0, 2.0, 5.0};
  const std::vector<int> segment_counts{1, 2, 4, 8};

  std::vector<std::string> headers{"overhead \\ segments"};
  for (const int s : segment_counts) headers.push_back(std::to_string(s));
  support::Table table(headers);
  for (const double overhead_ms : overheads_ms) {
    table.row().add(std::to_string(overhead_ms).substr(0, 4) + " ms");
    for (const int segments : segment_counts) {
      sim::ClusterModel model = base;
      model.machine.send_overhead_s = overhead_ms * 1e-3;
      model.machine.recv_overhead_s = overhead_ms * 1e-3;
      model.net.segments = segments;
      const double t1 = sim::project_level(paper, 1, model, 4096).time_s;
      const double t64 = sim::project_level(paper, 64, model, 4096).time_s;
      table.add(t1 / t64, 1);
    }
  }
  table.print();

  std::printf(
      "\nand the no-combining penalty (time ratio vs 4 KB combining at "
      "P=64) under the same sweep:\n\n");
  support::Table penalty(headers);
  for (const double overhead_ms : overheads_ms) {
    penalty.row().add(std::to_string(overhead_ms).substr(0, 4) + " ms");
    for (const int segments : segment_counts) {
      sim::ClusterModel model = base;
      model.machine.send_overhead_s = overhead_ms * 1e-3;
      model.machine.recv_overhead_s = overhead_ms * 1e-3;
      model.net.segments = segments;
      const double with =
          sim::project_level(paper, 64, model, 4096).time_s;
      const double without =
          sim::project_level(paper, 64, model, 1).time_s;
      penalty.add(without / with, 1);
    }
  }
  penalty.print();
  std::printf(
      "\ncombining stays a large win everywhere in the plausible region — "
      "the paper's conclusion is robust to the modelling constants.\n");
  return 0;
}

// Shared plumbing for the paper-table bench binaries.
//
// Every bench accepts the same model/workload flags so runs are
// reproducible and the cluster model is stated explicitly in the output
// header.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>

#include "retra/game/awari_level.hpp"
#include "retra/obs/json.hpp"
#include "retra/obs/metrics.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/para/sim_build.hpp"
#include "retra/sim/cluster_model.hpp"
#include "retra/sim/projection.hpp"
#include "retra/support/cli.hpp"
#include "retra/support/format.hpp"
#include "retra/support/table.hpp"

namespace retra::bench {

/// Registers the flags shared by all bench binaries.
inline void add_model_flags(support::Cli& cli) {
  cli.flag("cpu-mops", "10", "modelled CPU rate, million ops/s");
  cli.flag("send-overhead-us", "1000", "per-message sender overhead, us");
  cli.flag("recv-overhead-us", "1000", "per-message receiver overhead, us");
  cli.flag("bandwidth-mbps", "10", "Ethernet segment bandwidth, Mbit/s");
  cli.flag("segments", "4", "bridged Ethernet segments");
}

inline sim::ClusterModel model_from(const support::Cli& cli) {
  sim::ClusterModel model;
  model.machine.cpu_ops_per_second = cli.number("cpu-mops") * 1e6;
  model.machine.send_overhead_s = cli.number("send-overhead-us") * 1e-6;
  model.machine.recv_overhead_s = cli.number("recv-overhead-us") * 1e-6;
  model.net.bandwidth_bps = cli.number("bandwidth-mbps") * 1e6;
  model.net.segments = static_cast<int>(cli.integer("segments"));
  return model;
}

inline void print_model(const sim::ClusterModel& model) {
  std::printf(
      "cluster model: %.0f Mops/s CPU, %.2f ms send / %.2f ms recv "
      "overhead, %d x %.0f Mbit/s Ethernet segments\n",
      model.machine.cpu_ops_per_second / 1e6,
      model.machine.send_overhead_s * 1e3,
      model.machine.recv_overhead_s * 1e3, model.net.segments,
      model.net.bandwidth_bps / 1e6);
}

/// One simulated awari build up to `level` on `ranks` processors.
inline para::SimBuildResult simulate_build(int level, int ranks,
                                           std::size_t combine_bytes,
                                           const sim::ClusterModel& model,
                                           para::PartitionScheme scheme =
                                               para::PartitionScheme::kCyclic,
                                           bool replicate_lower = false,
                                           int threads_per_rank = 1,
                                           int threads_scan = 0,
                                           int threads_drain = 0) {
  para::ParallelConfig config;
  config.ranks = ranks;
  config.combine_bytes = combine_bytes;
  config.scheme = scheme;
  config.replicate_lower = replicate_lower;
  config.threads_per_rank = threads_per_rank;
  config.threads_scan = threads_scan;
  config.threads_drain = threads_drain;
  config.oversubscribe =
      threads_per_rank > 1 || threads_scan > 1 || threads_drain > 1;
  return para::build_parallel_simulated(game::AwariFamily{}, level, config,
                                        model);
}

/// The measured awari workload profile of the top level of a build.
inline sim::LevelProfile measured_profile(const para::SimBuildResult& run) {
  return para::profile_of(run.levels.back());
}

/// Paper-scale what-if: the measured level profile rescaled to a target
/// awari level's position count, with rounds tracking the value bound.
inline sim::LevelProfile paper_scale_profile(const sim::LevelProfile& base,
                                             int measured_level,
                                             int target_level) {
  const double bound_ratio =
      static_cast<double>(target_level) / measured_level;
  return base.scaled(idx::level_size(target_level), bound_ratio);
}

// ---------------------------------------------------------------------------
// BENCH_*.json artifacts ("retra-bench-v1", documented in docs/METRICS.md).
//
// Every bench that builds levels emits its run through these helpers, so
// two binaries given the same configuration produce byte-comparable level
// arrays — CI's bench-smoke job relies on that to cross-check
// `retra_bench --suite smoke` against `bench_t3_comm`.

inline constexpr const char* kBenchSchema = "retra-bench-v1";

/// Identity of one bench run inside its artifact.
struct BenchRunMeta {
  std::string suite;  // suite or table id, e.g. "smoke", "t3"
  std::string bench;  // producing binary, e.g. "bench_t3_comm"
  int max_level = 0;
  int ranks = 0;
  std::size_t combine_bytes = 0;
};

/// Registers the output flags shared by all bench binaries.
inline void add_output_flags(support::Cli& cli) {
  cli.flag("json", "",
           "write a retra-bench-v1 JSON artifact to this path "
           "(see docs/METRICS.md)");
}

namespace detail {

/// The per-level statistics fields, shared between each levels[] entry and
/// the totals object (totals additionally lack "level").
inline void write_stats_fields(obs::JsonWriter& w,
                               const para::EngineStats& stats,
                               std::uint64_t positions, std::uint64_t rounds,
                               double time_s) {
  w.kv("positions", positions);
  w.kv("rounds", rounds);
  w.kv("updates_local", stats.updates_local);
  w.kv("updates_remote", stats.updates_remote);
  w.kv("lookups_local", stats.lookups_local);
  w.kv("lookups_remote", stats.lookups_remote);
  w.kv("replies", stats.replies_sent);
  w.kv("assignments", stats.assignments);
  w.kv("zero_filled", stats.zero_filled);
  w.kv("messages", stats.messages_sent);
  w.kv("records_per_message", stats.records_per_message());
  w.kv("payload_bytes", stats.payload_bytes);
  w.kv("time_s", time_s);
}

}  // namespace detail

/// Renders a finished simulated build as the retra-bench-v1 document.
/// `delta` is the obs snapshot delta covering exactly this run.
inline std::string bench_artifact_json(const BenchRunMeta& meta,
                                       const sim::ClusterModel& model,
                                       const para::SimBuildResult& run,
                                       const obs::Snapshot& delta) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", kBenchSchema);
  w.kv("suite", meta.suite);
  w.kv("bench", meta.bench);
  w.key("config").begin_object();
  w.kv("max_level", meta.max_level);
  w.kv("ranks", meta.ranks);
  w.kv("combine_bytes", static_cast<std::uint64_t>(meta.combine_bytes));
  w.kv("cpu_mops", model.machine.cpu_ops_per_second / 1e6);
  w.kv("send_overhead_us", model.machine.send_overhead_s * 1e6);
  w.kv("recv_overhead_us", model.machine.recv_overhead_s * 1e6);
  w.kv("bandwidth_mbps", model.net.bandwidth_bps / 1e6);
  w.kv("segments", model.net.segments);
  w.end_object();

  para::EngineStats total;
  std::uint64_t positions = 0;
  std::uint64_t rounds = 0;
  double total_time = 0.0;
  w.key("levels").begin_array();
  for (const para::LevelRunInfo& info : run.levels) {
    w.begin_object();
    w.kv("level", info.level);
    detail::write_stats_fields(w, info.total, info.size, info.rounds,
                               info.build_seconds);
    w.end_object();
    total += info.total;
    positions += info.size;
    rounds += info.rounds;
    total_time += info.build_seconds;
  }
  w.end_array();
  w.key("totals").begin_object();
  detail::write_stats_fields(w, total, positions, rounds, total_time);
  w.end_object();
  w.key("metrics");
  obs::write_metrics_array(w, delta);
  w.end_object();
  return w.str();
}

/// Artifact for benches that run no simulated build — the micro and
/// query-serving benches.  The document is schema-identical to a build
/// artifact (so one validator covers everything) with an empty `levels`
/// array, zeroed `totals`, and the interesting content in `metrics`: the
/// obs snapshot delta covering exactly the benched workload.
inline std::string micro_artifact_json(const BenchRunMeta& meta,
                                       const obs::Snapshot& delta,
                                       const sim::ClusterModel& model = {}) {
  return bench_artifact_json(meta, model, para::SimBuildResult{}, delta);
}

/// Structural check of a parsed retra-bench-v1 document: schema tag,
/// config/levels/totals fields, and a metrics array that mirrors the obs
/// catalog (every catalog metric present, kinds matching).  Returns false
/// with a description in `error` on the first violation.
inline bool validate_bench_artifact(const obs::JsonValue& doc,
                                    std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  if (!doc.is_object()) return fail("root is not an object");
  const obs::JsonValue* schema = doc.find("schema");
  if (!schema || !schema->is_string() || schema->string != kBenchSchema) {
    return fail("schema is missing or not \"" + std::string(kBenchSchema) +
                "\"");
  }
  for (const char* key : {"suite", "bench"}) {
    const obs::JsonValue* v = doc.find(key);
    if (!v || !v->is_string() || v->string.empty()) {
      return fail(std::string(key) + " is missing or empty");
    }
  }

  const obs::JsonValue* config = doc.find("config");
  if (!config || !config->is_object()) return fail("config is not an object");
  for (const char* key :
       {"max_level", "ranks", "combine_bytes", "cpu_mops",
        "send_overhead_us", "recv_overhead_us", "bandwidth_mbps",
        "segments"}) {
    const obs::JsonValue* v = config->find(key);
    if (!v || !v->is_number()) {
      return fail("config." + std::string(key) +
                  " is missing or not a number");
    }
  }

  static constexpr const char* kStatsFields[] = {
      "positions",      "rounds",        "updates_local",
      "updates_remote", "lookups_local", "lookups_remote",
      "replies",        "assignments",   "zero_filled",
      "messages",       "records_per_message", "payload_bytes",
      "time_s"};
  const obs::JsonValue* levels = doc.find("levels");
  if (!levels || !levels->is_array()) return fail("levels is not an array");
  for (std::size_t i = 0; i < levels->array.size(); ++i) {
    const obs::JsonValue& entry = levels->array[i];
    const std::string where = "levels[" + std::to_string(i) + "]";
    if (!entry.is_object()) return fail(where + " is not an object");
    const obs::JsonValue* level = entry.find("level");
    if (!level || !level->is_number()) {
      return fail(where + ".level is missing or not a number");
    }
    for (const char* key : kStatsFields) {
      const obs::JsonValue* v = entry.find(key);
      if (!v || !v->is_number()) {
        return fail(where + "." + key + " is missing or not a number");
      }
    }
  }
  const obs::JsonValue* totals = doc.find("totals");
  if (!totals || !totals->is_object()) return fail("totals is not an object");
  for (const char* key : kStatsFields) {
    const obs::JsonValue* v = totals->find(key);
    if (!v || !v->is_number()) {
      return fail("totals." + std::string(key) +
                  " is missing or not a number");
    }
  }

  const obs::JsonValue* metrics = doc.find("metrics");
  if (!metrics || !metrics->is_array()) return fail("metrics is not an array");
  std::vector<bool> seen(obs::kMetricCount, false);
  for (const obs::JsonValue& entry : metrics->array) {
    if (!entry.is_object()) return fail("metrics entry is not an object");
    const obs::JsonValue* name = entry.find("name");
    const obs::JsonValue* kind = entry.find("kind");
    if (!name || !name->is_string() || !kind || !kind->is_string()) {
      return fail("metrics entry lacks name/kind strings");
    }
    std::size_t index = obs::kMetricCount;
    for (std::size_t i = 0; i < obs::kMetricCount; ++i) {
      if (obs::kCatalog[i].name == name->string) {
        index = i;
        break;
      }
    }
    if (index == obs::kMetricCount) {
      return fail("metric \"" + name->string + "\" is not in the obs catalog");
    }
    if (seen[index]) return fail("metric \"" + name->string + "\" repeated");
    seen[index] = true;
    const obs::Kind expected = obs::kCatalog[index].kind;
    if (kind->string != obs::kind_name(expected)) {
      return fail("metric \"" + name->string + "\" has kind \"" +
                  kind->string + "\", catalog says \"" +
                  std::string(obs::kind_name(expected)) + "\"");
    }
    switch (expected) {
      case obs::Kind::kCounter:
      case obs::Kind::kGauge: {
        const obs::JsonValue* v = entry.find("value");
        if (!v || !v->is_number()) {
          return fail("metric \"" + name->string + "\" lacks a value");
        }
        break;
      }
      case obs::Kind::kTimer: {
        const obs::JsonValue* seconds = entry.find("seconds");
        const obs::JsonValue* count = entry.find("count");
        if (!seconds || !seconds->is_number() || !count ||
            !count->is_number()) {
          return fail("metric \"" + name->string + "\" lacks seconds/count");
        }
        break;
      }
      case obs::Kind::kHistogram: {
        const obs::JsonValue* count = entry.find("count");
        const obs::JsonValue* sum = entry.find("sum");
        const obs::JsonValue* buckets = entry.find("buckets");
        if (!count || !count->is_number() || !sum || !sum->is_number() ||
            !buckets || !buckets->is_array()) {
          return fail("metric \"" + name->string +
                      "\" lacks count/sum/buckets");
        }
        break;
      }
    }
  }
  for (std::size_t i = 0; i < obs::kMetricCount; ++i) {
    if (!seen[i]) {
      return fail("catalog metric \"" + std::string(obs::kCatalog[i].name) +
                  "\" is absent from the metrics array");
    }
  }
  return true;
}

/// Parse-then-validate convenience for files and tests.
inline bool validate_bench_artifact(std::string_view text,
                                    std::string* error) {
  obs::JsonValue doc;
  if (!obs::json_parse(text, doc, error)) return false;
  return validate_bench_artifact(doc, error);
}

/// Writes `json` to `path`; returns false (with a perror-style message on
/// stderr) when the file cannot be written.
inline bool write_text_file(const std::string& path,
                            const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
  return ok;
}

/// Honors a bench binary's --json flag: renders the artifact, validates it
/// against the schema it was just written from (a self-check that the
/// writer and validator stay in lockstep), and writes it out.  Returns
/// false on I/O or validation failure.
inline bool write_artifact_if_requested(const support::Cli& cli,
                                        const BenchRunMeta& meta,
                                        const sim::ClusterModel& model,
                                        const para::SimBuildResult& run,
                                        const obs::Snapshot& delta) {
  const std::string path = cli.str("json");
  if (path.empty()) return true;
  const std::string json = bench_artifact_json(meta, model, run, delta);
  std::string error;
  if (!validate_bench_artifact(json, &error)) {
    std::fprintf(stderr, "internal error: artifact fails validation: %s\n",
                 error.c_str());
    return false;
  }
  if (!write_text_file(path, json)) return false;
  std::printf("\nwrote %s (%s)\n", path.c_str(), kBenchSchema);
  return true;
}

/// write_artifact_if_requested for micro/query benches: same validate-
/// then-write discipline, empty levels (see micro_artifact_json).
inline bool write_micro_artifact(const std::string& path,
                                 const BenchRunMeta& meta,
                                 const obs::Snapshot& delta,
                                 const sim::ClusterModel& model = {}) {
  if (path.empty()) return true;
  const std::string json = micro_artifact_json(meta, delta, model);
  std::string error;
  if (!validate_bench_artifact(json, &error)) {
    std::fprintf(stderr, "internal error: artifact fails validation: %s\n",
                 error.c_str());
    return false;
  }
  if (!write_text_file(path, json)) return false;
  std::printf("\nwrote %s (%s)\n", path.c_str(), kBenchSchema);
  return true;
}

}  // namespace retra::bench

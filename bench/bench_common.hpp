// Shared plumbing for the paper-table bench binaries.
//
// Every bench accepts the same model/workload flags so runs are
// reproducible and the cluster model is stated explicitly in the output
// header.
#pragma once

#include <cstdio>
#include <string>

#include "retra/game/awari_level.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/para/sim_build.hpp"
#include "retra/sim/cluster_model.hpp"
#include "retra/sim/projection.hpp"
#include "retra/support/cli.hpp"
#include "retra/support/format.hpp"
#include "retra/support/table.hpp"

namespace retra::bench {

/// Registers the flags shared by all bench binaries.
inline void add_model_flags(support::Cli& cli) {
  cli.flag("cpu-mops", "10", "modelled CPU rate, million ops/s");
  cli.flag("send-overhead-us", "1000", "per-message sender overhead, us");
  cli.flag("recv-overhead-us", "1000", "per-message receiver overhead, us");
  cli.flag("bandwidth-mbps", "10", "Ethernet segment bandwidth, Mbit/s");
  cli.flag("segments", "4", "bridged Ethernet segments");
}

inline sim::ClusterModel model_from(const support::Cli& cli) {
  sim::ClusterModel model;
  model.machine.cpu_ops_per_second = cli.number("cpu-mops") * 1e6;
  model.machine.send_overhead_s = cli.number("send-overhead-us") * 1e-6;
  model.machine.recv_overhead_s = cli.number("recv-overhead-us") * 1e-6;
  model.net.bandwidth_bps = cli.number("bandwidth-mbps") * 1e6;
  model.net.segments = static_cast<int>(cli.integer("segments"));
  return model;
}

inline void print_model(const sim::ClusterModel& model) {
  std::printf(
      "cluster model: %.0f Mops/s CPU, %.2f ms send / %.2f ms recv "
      "overhead, %d x %.0f Mbit/s Ethernet segments\n",
      model.machine.cpu_ops_per_second / 1e6,
      model.machine.send_overhead_s * 1e3,
      model.machine.recv_overhead_s * 1e3, model.net.segments,
      model.net.bandwidth_bps / 1e6);
}

/// One simulated awari build up to `level` on `ranks` processors.
inline para::SimBuildResult simulate_build(int level, int ranks,
                                           std::size_t combine_bytes,
                                           const sim::ClusterModel& model,
                                           para::PartitionScheme scheme =
                                               para::PartitionScheme::kCyclic,
                                           bool replicate_lower = false) {
  para::ParallelConfig config;
  config.ranks = ranks;
  config.combine_bytes = combine_bytes;
  config.scheme = scheme;
  config.replicate_lower = replicate_lower;
  return para::build_parallel_simulated(game::AwariFamily{}, level, config,
                                        model);
}

/// The measured awari workload profile of the top level of a build.
inline sim::LevelProfile measured_profile(const para::SimBuildResult& run) {
  return para::profile_of(run.levels.back());
}

/// Paper-scale what-if: the measured level profile rescaled to a target
/// awari level's position count, with rounds tracking the value bound.
inline sim::LevelProfile paper_scale_profile(const sim::LevelProfile& base,
                                             int measured_level,
                                             int target_level) {
  const double bound_ratio =
      static_cast<double>(target_level) / measured_level;
  return base.scaled(idx::level_size(target_level), bound_ratio);
}

}  // namespace retra::bench

// F2 — The effect of message combining (the paper's central technique).
//
// Same workload and identical resulting database; only the combining
// buffer size varies, from 1 (every update is its own message — the naive
// baseline whose "enormous" overhead the abstract describes) to 16 KB.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "F2: the effect of message combining — the same simulated build "
      "swept over combining buffer sizes, measured and at paper scale. "
      "--json writes the artifact of the 4 KB reference build.");
  add_model_flags(cli);
  add_output_flags(cli);
  cli.flag("level", "9", "awari level built under the simulator");
  cli.flag("ranks", "16", "processors");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));
  const int ranks = static_cast<int>(cli.integer("ranks"));
  const sim::ClusterModel model = model_from(cli);

  std::printf("F2: message combining on the level-%d build, P=%d\n", level,
              ranks);
  print_model(model);
  std::printf("\n");

  const std::vector<std::size_t> buffer_sizes{1,    64,   256,  1024,
                                              4096, 8192, 16384};
  support::Table table({"buffer", "messages", "records/msg", "payload",
                        "time", "vs no combining"});
  double naive_time = 0;
  for (const std::size_t bytes : buffer_sizes) {
    const auto run = simulate_build(level, ranks, bytes, model);
    std::uint64_t messages = 0, payload = 0, records = 0;
    for (const auto& t : run.timings) {
      messages += t.messages;
      payload += t.payload_bytes;
    }
    for (const auto& info : run.levels) {
      records += info.total.updates_remote + info.total.lookups_remote +
                 info.total.replies_sent;
    }
    const double time = run.total_time_s();
    if (bytes == 1) naive_time = time;
    table.row()
        .add(bytes == 1 ? std::string("off") : support::human_bytes(bytes))
        .add(messages)
        .add(static_cast<double>(records) / static_cast<double>(messages), 1)
        .add(support::human_bytes(payload))
        .add(support::human_seconds(time))
        .add(std::string(1, 'x') +
             std::to_string(naive_time / time).substr(0, 5));
  }
  table.print();

  // Paper-scale projection of the same ablation.
  const obs::Snapshot before = obs::snapshot();
  const auto reference = simulate_build(level, ranks, 4096, model);
  const obs::Snapshot delta = obs::snapshot() - before;
  sim::LevelProfile paper =
      paper_scale_profile(measured_profile(reference), level, 21);
  paper.rounds = reference.levels.back().rounds * 21 /
                 static_cast<std::uint64_t>(level);
  std::printf("\nprojected at paper scale (level 21, P=64):\n\n");
  support::Table projected({"buffer", "messages", "time", "vs no combining"});
  double paper_naive = 0;
  for (const std::size_t bytes : buffer_sizes) {
    const auto p = sim::project_level(paper, 64, model, bytes);
    if (bytes == 1) paper_naive = p.time_s;
    projected.row()
        .add(bytes == 1 ? std::string("off") : support::human_bytes(bytes))
        .add(p.messages)
        .add(support::human_seconds(p.time_s))
        .add(std::string(1, 'x') +
             std::to_string(paper_naive / p.time_s).substr(0, 5));
  }
  projected.print();
  std::printf(
      "\npaper claim: combining reduces the otherwise enormous "
      "communication overhead drastically, making the distributed build "
      "worthwhile at all.\n");

  BenchRunMeta meta;
  meta.suite = "f2";
  meta.bench = "bench_f2_combining";
  meta.max_level = level;
  meta.ranks = ranks;
  meta.combine_bytes = 4096;
  if (!write_artifact_if_requested(cli, meta, model, reference, delta)) {
    return 1;
  }
  return 0;
}

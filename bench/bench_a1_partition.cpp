// A1 — Ablation: partition scheme.
//
// Block partitions keep scans contiguous but inherit the position
// ordering's value locality (stones concentrate in low pits late in the
// rank order), skewing per-rank work; cyclic partitions scatter
// everything evenly at the price of making nearly all updates remote.
// Block-cyclic interpolates.
#include <cstdio>

#include "bench_common.hpp"
#include "retra/support/stats.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "A1 ablation: partition scheme (block, cyclic, block-cyclic) — load "
      "balance and communication of the simulated build.");
  add_model_flags(cli);
  cli.flag("level", "9", "awari level built under the simulator");
  cli.flag("ranks", "16", "processors");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.flag("block-size", "1024", "block-cyclic block width");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));
  const int ranks = static_cast<int>(cli.integer("ranks"));
  const auto combine = static_cast<std::size_t>(cli.integer("combine-bytes"));
  const sim::ClusterModel model = model_from(cli);

  std::printf("A1: partition-scheme ablation, level %d, P=%d\n", level,
              ranks);
  print_model(model);
  std::printf("\n");

  support::Table table({"scheme", "time", "remote update share",
                        "work imbalance", "messages"});
  for (const auto scheme :
       {para::PartitionScheme::kBlock, para::PartitionScheme::kCyclic,
        para::PartitionScheme::kBlockCyclic}) {
    para::ParallelConfig config;
    config.ranks = ranks;
    config.combine_bytes = combine;
    config.scheme = scheme;
    config.block_size = static_cast<std::uint64_t>(cli.integer("block-size"));
    const auto run = para::build_parallel_simulated(game::AwariFamily{},
                                                    level, config, model);
    std::uint64_t local = 0, remote = 0, messages = 0;
    for (const auto& info : run.levels) {
      local += info.total.updates_local;
      remote += info.total.updates_remote;
      messages += info.total.messages_sent;
    }
    // Balance is judged on the top (dominant) level; tiny levels are
    // inherently skewed and contribute nothing to the total time.
    std::vector<std::uint64_t> work;
    for (const auto& meter : run.levels.back().work_per_rank) {
      work.push_back(meter.count(msg::WorkKind::kPredEdge) +
                     meter.count(msg::WorkKind::kLevelEdge));
    }
    table.row()
        .add(scheme_name(scheme))
        .add(support::human_seconds(run.total_time_s()))
        .add(support::percent(static_cast<double>(remote) /
                              static_cast<double>(local + remote)))
        .add(support::balance_of(work).imbalance, 3)
        .add(messages);
  }
  table.print();
  std::printf(
      "\nwork imbalance is max-rank/mean-rank of per-level edge work "
      "(worst level shown); 1.0 is perfect balance.\n");
  return 0;
}

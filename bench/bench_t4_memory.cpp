// T4 — Memory per node versus processor count.
//
// The second half of the paper's argument: even ignoring time, the big
// databases simply do not fit one 1995 node.  Per-node memory is the
// partitioned share of the level's working set plus the partitioned
// lower-level databases needed for exit lookups; the replicated-lower
// column shows what ablation A3 pays instead.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "T4: per-node memory of the distributed build versus processor "
      "count, against 1995 node capacities.");
  cli.flag("level", "21", "database level whose build is sized");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));

  const std::uint64_t positions = idx::level_size(level);
  const std::uint64_t lower = idx::cumulative_size(level) - positions;
  // Working set: value + best + counter per open position (6 B); lower
  // levels are final values (1 B).
  const std::uint64_t working = positions * 6;

  std::printf(
      "T4: per-node memory for building awari level %d (%s positions, "
      "working set %s, lower databases %s)\n\n",
      level, support::with_thousands(positions).c_str(),
      support::human_bytes(working).c_str(),
      support::human_bytes(lower).c_str());

  support::Table table({"P", "working/node", "lower/node (partitioned)",
                        "total/node", "lower/node (replicated)",
                        "fits 64 MB node?"});
  for (const int ranks : {1, 2, 4, 8, 16, 32, 64}) {
    const std::uint64_t u = static_cast<std::uint64_t>(ranks);
    const std::uint64_t w = working / u;
    const std::uint64_t l = lower / u;
    const std::uint64_t total = w + l;
    table.row()
        .add(ranks)
        .add(support::human_bytes(w))
        .add(support::human_bytes(l))
        .add(support::human_bytes(total))
        .add(support::human_bytes(lower))  // full copy per node
        .add(total <= 64ull << 20 ? "yes" : "no");
  }
  table.print();
  std::printf(
      "\nat P=1 this is the >600 MB configuration the abstract calls "
      "infeasible; at P=64 each node holds ~1/64th, well inside a "
      "1995-class 64 MB workstation — but only in partitioned mode: "
      "replicating the lower databases would put the full %s back on "
      "every node.\n",
      support::human_bytes(lower).c_str());
  return 0;
}

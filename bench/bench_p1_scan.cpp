// P1 — Scan throughput under two-level parallelism (P ranks × T workers).
//
// Three panels:
//  (a) host: the real awari build runs once per worker count with the
//      chunked engine phases live; the engine.scan/seed/zero_fill phase
//      timers (host wall time) give the measured throughput.  On a
//      single-core container these rows are flat — the panel exists to
//      measure real hardware when it is there.
//  (b) modelled: the same builds priced on the 1995 cluster, where the
//      chunk-parallel scan divides across the T workers of each node
//      (sim::MachineModel::worker_threads).  By the engines' determinism
//      guarantee the work meters are identical for every T, so this panel
//      isolates the algorithmic speedup of the chunked scan.
//  (c) end-to-end: virtual wall clock of the full build at --e2e-ranks
//      with T=1 vs T=2 workers per node — the two-level counterpart of
//      F1's measured speedup panel.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "retra/exec/simd.hpp"

namespace {

struct ScanRow {
  int threads = 0;
  // Host wall-clock phase seconds (obs timer deltas).
  double host_scan_s = 0;
  double host_drain_s = 0;
  double host_seed_s = 0;
  double host_zero_fill_s = 0;
  double host_build_s = 0;
  std::uint64_t scan_positions = 0;
  // Modelled 1995-cluster numbers.
  double model_scan_s = 0;
  double model_drain_s = 0;
  double model_build_s = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "P1: scan throughput of the chunked rank engine at T workers per "
      "rank — host phase timers plus the modelled 1995 cluster, and an "
      "end-to-end PxT build comparison. --json writes the artifact.");
  add_model_flags(cli);
  add_output_flags(cli);
  cli.flag("level", "8", "awari level built for the thread sweep");
  cli.flag("e2e-level", "8", "awari level of the end-to-end PxT panel");
  cli.flag("e2e-ranks", "4", "ranks of the end-to-end PxT panel");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.flag("vector-lanes", "0",
           "int16 lanes the modelled CPUs sweep per op (0 = this host's "
           "active sweep-kernel width, keeping model vs host honest)");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));
  const int e2e_level = static_cast<int>(cli.integer("e2e-level"));
  const int e2e_ranks = static_cast<int>(cli.integer("e2e-ranks"));
  const auto combine = static_cast<std::size_t>(cli.integer("combine-bytes"));
  sim::ClusterModel model = model_from(cli);
  // The host build runs the exec::simd sweep kernels at their active
  // width; pricing the model at the same width keeps the model-vs-host
  // panels honest (override with --vector-lanes, e.g. 1 for the paper's
  // scalar SPARCs).
  const int lanes_flag = static_cast<int>(cli.integer("vector-lanes"));
  model.machine.vector_lanes =
      lanes_flag > 0 ? lanes_flag
                     : static_cast<int>(exec::simd::active_lanes());
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf(
      "P1: two-level parallelism — chunked scan throughput, awari level "
      "%d, %u hardware thread(s) on this host, %s sweep kernels "
      "(%d lanes)\n",
      level, hw, exec::simd::backend_name(exec::simd::active()),
      model.machine.vector_lanes);
  print_model(model);

  const std::vector<int> thread_counts{1, 2, 4, 8};
  std::vector<ScanRow> rows;
  const obs::Snapshot run_start = obs::snapshot();
  obs::Snapshot before = run_start;
  for (const int threads : thread_counts) {
    ScanRow row;
    row.threads = threads;

    // Host build: the chunked phases really run on T threads (the cap is
    // bypassed so the T>cores rows still exercise the chunk machinery).
    para::ParallelConfig config;
    config.ranks = 1;
    config.combine_bytes = combine;
    config.threads_per_rank = threads;
    config.oversubscribe = true;
    support::Timer wall;
    const para::ParallelResult host =
        para::build_parallel(game::AwariFamily{}, level, config);
    row.host_build_s = wall.seconds();
    const obs::Snapshot host_delta = obs::snapshot() - before;
    row.host_scan_s = host_delta[obs::Id::kEngineScanSeconds].seconds();
    row.host_drain_s = host_delta[obs::Id::kEngineDrainSeconds].seconds();
    row.host_seed_s = host_delta[obs::Id::kEngineSeedSeconds].seconds();
    row.host_zero_fill_s =
        host_delta[obs::Id::kEngineZeroFillSeconds].seconds();
    row.scan_positions = host_delta[obs::Id::kEngineScanPositions].value;

    // Modelled: identical work meters by the determinism guarantee, so T
    // enters only through the pricing.  The scan phase is the scan-kind
    // ops of all levels divided across the workers; the drain is the
    // predecessor-generation ops likewise.
    model.machine.worker_threads = threads;
    para::ParallelConfig sim_config = config;
    const para::SimBuildResult sim = para::build_parallel_simulated(
        game::AwariFamily{}, level, sim_config, model);
    row.model_build_s = sim.total_time_s();
    const auto kind_ops = [&](msg::WorkKind kind) {
      double ops = 0;
      for (const para::LevelRunInfo& info : sim.levels) {
        ops += model.machine.op_cost[static_cast<std::size_t>(kind)] *
               static_cast<double>(info.work_total.count(kind));
      }
      return ops;
    };
    const double scan_ops =
        kind_ops(msg::WorkKind::kScanPosition) +
        kind_ops(msg::WorkKind::kExitOption) +
        kind_ops(msg::WorkKind::kLevelEdge) +
        kind_ops(msg::WorkKind::kSweepPosition) /
            static_cast<double>(model.machine.vector_lanes);
    row.model_scan_s =
        scan_ops / model.machine.cpu_ops_per_second / threads;
    row.model_drain_s = kind_ops(msg::WorkKind::kPredEdge) /
                        model.machine.cpu_ops_per_second / threads;

    before = obs::snapshot();
    rows.push_back(row);
    (void)host;
  }
  model.machine.worker_threads = 1;

  const double positions = static_cast<double>(rows.front().scan_positions);
  std::printf(
      "\n(a+b) scan phase at T workers: modelled 1995 node vs this "
      "host\n\n");
  support::Table scan_table({"T", "scan (model)", "pos/s (model)", "speedup",
                             "drain (model)", "scan (host)", "pos/s (host)",
                             "drain (host)", "seed (host)"});
  for (const ScanRow& row : rows) {
    scan_table.row()
        .add(row.threads)
        .add(support::human_seconds(row.model_scan_s))
        .add(positions / row.model_scan_s, 0)
        .add(rows.front().model_scan_s / row.model_scan_s, 2)
        .add(support::human_seconds(row.model_drain_s))
        .add(support::human_seconds(row.host_scan_s))
        .add(positions / row.host_scan_s, 0)
        .add(support::human_seconds(row.host_drain_s))
        .add(support::human_seconds(row.host_seed_s));
  }
  scan_table.print();
  if (hw <= 1) {
    std::printf(
        "\nnote: 1 hardware thread — the host columns cannot speed up; "
        "the modelled columns carry the two-level speedup claim.\n");
  }

  // (c) End-to-end PxT: the full distributed build under the cluster
  // simulator, one worker vs two workers per node.
  std::printf(
      "\n(c) end-to-end build at P=%d ranks, level %d, virtual cluster "
      "time\n\n",
      e2e_ranks, e2e_level);
  double e2e_seconds[2] = {0, 0};
  obs::Snapshot artifact_delta;
  para::SimBuildResult artifact_run;
  support::Table e2e_table({"T", "time", "speedup"});
  for (int i = 0; i < 2; ++i) {
    const int threads = i + 1;
    model.machine.worker_threads = threads;
    para::ParallelConfig config;
    config.ranks = e2e_ranks;
    config.combine_bytes = combine;
    config.threads_per_rank = threads;
    config.oversubscribe = true;
    const obs::Snapshot e2e_before = obs::snapshot();
    para::SimBuildResult run = para::build_parallel_simulated(
        game::AwariFamily{}, e2e_level, config, model);
    e2e_seconds[i] = run.total_time_s();
    e2e_table.row()
        .add(threads)
        .add(support::human_seconds(e2e_seconds[i]))
        .add(e2e_seconds[0] / e2e_seconds[i], 2);
    if (threads == 2) {
      artifact_delta = obs::snapshot() - e2e_before;
      artifact_run = std::move(run);
    }
  }
  model.machine.worker_threads = 1;
  e2e_table.print();

  const std::string path = cli.str("json");
  if (!path.empty()) {
    BenchRunMeta meta;
    meta.suite = "p1";
    meta.bench = "bench_p1_scan";
    meta.max_level = level;
    meta.ranks = e2e_ranks;
    meta.combine_bytes = combine;
    // Standard retra-bench-v1 document (levels/totals of the T=2 e2e run,
    // metrics of the whole bench) plus the "p1" extension object with the
    // throughput grid; validators tolerate the extra key.
    std::string json = bench_artifact_json(
        meta, model, artifact_run, obs::snapshot() - run_start);
    obs::JsonWriter extra;
    extra.begin_object();
    extra.kv("hw_concurrency", static_cast<std::uint64_t>(hw));
    extra.kv("level", level);
    extra.kv("simd_backend", exec::simd::backend_name(exec::simd::active()));
    extra.kv("vector_lanes", model.machine.vector_lanes);
    extra.key("scan").begin_array();
    for (const ScanRow& row : rows) {
      extra.begin_object();
      extra.kv("threads", row.threads);
      extra.kv("scan_s", row.model_scan_s);
      extra.kv("scan_pps", positions / row.model_scan_s);
      extra.kv("speedup", rows.front().model_scan_s / row.model_scan_s);
      extra.kv("drain_s", row.model_drain_s);
      extra.kv("seed_s", row.host_seed_s);
      extra.kv("zero_fill_s", row.host_zero_fill_s);
      extra.kv("host_scan_s", row.host_scan_s);
      extra.kv("host_drain_s", row.host_drain_s);
      extra.kv("host_scan_pps", positions / row.host_scan_s);
      extra.kv("host_build_s", row.host_build_s);
      extra.kv("model_build_s", row.model_build_s);
      extra.end_object();
    }
    extra.end_array();
    extra.key("e2e").begin_object();
    extra.kv("ranks", e2e_ranks);
    extra.kv("level", e2e_level);
    extra.kv("t1_s", e2e_seconds[0]);
    extra.kv("t2_s", e2e_seconds[1]);
    extra.kv("speedup", e2e_seconds[0] / e2e_seconds[1]);
    extra.end_object();
    extra.end_object();
    RETRA_CHECK(json.size() > 1 && json.back() == '}');
    json.pop_back();
    json += ",\"p1\":" + extra.str() + "}";
    std::string error;
    if (!validate_bench_artifact(json, &error)) {
      std::fprintf(stderr, "internal error: artifact fails validation: %s\n",
                   error.c_str());
      return 1;
    }
    if (!write_text_file(path, json)) return 1;
    std::printf("\nwrote %s (%s)\n", path.c_str(), kBenchSchema);
  }
  return 0;
}

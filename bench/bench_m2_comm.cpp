// M2 — Communication-layer microbenchmarks (google-benchmark).
//
// Per-operation costs of the message substrate: mailbox transfer, record
// serialisation, combining, and partition arithmetic.  With combining, a
// 10-byte update costs one append (~nanoseconds) instead of one message —
// the modern-hardware echo of the paper's argument.
#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"

#include <cstring>

#include "retra/msg/combiner.hpp"
#include "retra/msg/mailbox.hpp"
#include "retra/msg/thread_comm.hpp"
#include "retra/para/partition.hpp"
#include "retra/para/records.hpp"

namespace {

using namespace retra;

void BM_MailboxPushPop(benchmark::State& state) {
  msg::Mailbox box;
  msg::Message out;
  std::vector<std::byte> payload(64);
  for (auto _ : state) {
    box.push(msg::Message{0, 1, payload});
    benchmark::DoNotOptimize(box.try_pop(out));
  }
}
BENCHMARK(BM_MailboxPushPop);

void BM_UpdateRecordEncodeDecode(benchmark::State& state) {
  para::UpdateRecord record;
  record.target = 123456789;
  record.contribution = -7;
  std::byte buffer[para::UpdateRecord::kWireSize];
  for (auto _ : state) {
    record.encode(buffer);
    msg::WireReader reader(buffer);
    benchmark::DoNotOptimize(para::UpdateRecord::decode(reader));
  }
}
BENCHMARK(BM_UpdateRecordEncodeDecode);

void BM_CombinerAppend(benchmark::State& state) {
  const std::size_t flush_bytes = static_cast<std::size_t>(state.range(0));
  msg::ThreadWorld world(2);
  msg::Combiner combiner(world.endpoint(0), 3, flush_bytes);
  para::UpdateRecord record;
  record.target = 42;
  record.contribution = 1;
  std::byte buffer[para::UpdateRecord::kWireSize];
  record.encode(buffer);
  msg::Message sink;
  std::uint64_t appended = 0;
  for (auto _ : state) {
    combiner.append(1, buffer, para::UpdateRecord::kWireSize);
    if (++appended % 4096 == 0) {
      // Drain so mailboxes don't grow without bound.
      while (world.endpoint(1).try_recv(sink)) {
      }
    }
  }
  state.counters["msgs/record"] =
      static_cast<double>(combiner.stats().messages) /
      static_cast<double>(combiner.stats().records);
}
BENCHMARK(BM_CombinerAppend)->Arg(1)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ThreadWorldRoundTrip(benchmark::State& state) {
  msg::ThreadWorld world(2);
  msg::Message out;
  for (auto _ : state) {
    world.endpoint(0).send(1, 1, std::vector<std::byte>(10));
    benchmark::DoNotOptimize(world.endpoint(1).try_recv(out));
  }
}
BENCHMARK(BM_ThreadWorldRoundTrip);

void BM_PartitionOwner(benchmark::State& state) {
  const para::Partition partition(
      static_cast<para::PartitionScheme>(state.range(0)), 84'672'315, 64,
      1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition.owner(i));
    i = (i + 997) % 84'672'315;
  }
}
BENCHMARK(BM_PartitionOwner)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  retra::bench::BenchRunMeta meta;
  meta.suite = "m2";
  meta.bench = "bench_m2_comm";
  meta.max_level = 0;
  meta.ranks = 1;
  return retra::bench::gbench_main(argc, argv, meta);
}

// T1 — Database sizes and uniprocessor memory requirements.
//
// Reproduces the paper's database-statistics table: positions per level,
// cumulative positions, bytes of the final database (1 byte per position)
// and of the retrograde working set (values + best + counters), with the
// uniprocessor total that motivates distribution.  The abstract's ">600
// MByte of internal memory on a uniprocessor" database is flagged where
// the working set first crosses that line.
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"
#include "retra/index/board_index.hpp"

namespace {

// Bytes per position during construction: value (int16) + best option
// (int16) + successor counter (uint16), as in para::RankEngine.
constexpr std::uint64_t kWorkingBytes = 6;
// Bytes per position in the persisted database (values narrow to int8).
constexpr std::uint64_t kFinalBytes = 1;

}  // namespace

int main(int argc, char** argv) {
  using namespace retra;
  support::Cli cli;
  cli.describe(
      "T1: database sizes — positions per awari level, cumulative totals, "
      "and uniprocessor memory requirements.");
  cli.flag("max-level", "24", "largest level to tabulate");
  cli.parse(argc, argv);
  const int max_level = static_cast<int>(cli.integer("max-level"));

  std::printf(
      "T1: awari endgame database sizes (working set = %" PRIu64
      " B/position during construction, %" PRIu64 " B/position final)\n\n",
      kWorkingBytes, kFinalBytes);

  support::Table table({"level", "positions", "cumulative", "final DB",
                        "level working set", "uniproc total", ""});
  bool crossed = false;
  for (int level = 0; level <= max_level; ++level) {
    const std::uint64_t positions = idx::level_size(level);
    const std::uint64_t cumulative = idx::cumulative_size(level);
    // Building level n on one machine needs the level's working set plus
    // all lower levels' final values for exit lookups.
    const std::uint64_t uniprocessor =
        positions * kWorkingBytes +
        (cumulative - positions) * kFinalBytes;
    const bool crosses =
        !crossed && uniprocessor > 600ull * 1024 * 1024;
    crossed = crossed || crosses;
    table.row()
        .add(level)
        .add(positions)
        .add(cumulative)
        .add(support::human_bytes(cumulative * kFinalBytes))
        .add(support::human_bytes(positions * kWorkingBytes))
        .add(support::human_bytes(uniprocessor))
        .add(crosses ? "<- exceeds 600 MB (the abstract's database)" : "");
  }
  table.print();

  std::printf(
      "\nThe paper computed one database in 50 min on 64 processors that "
      "took 40 h on one machine,\nand a larger one (20 h on 64) needing "
      ">600 MB on a uniprocessor — see bench_t2_runtime.\n");
  return 0;
}

// T3 — Communication statistics per level.
//
// For every level of the build: retrograde updates split into local and
// remote, exit lookups and replies, combined messages and the combining
// factor actually achieved.  This is the table that substantiates the
// combining claim with raw counts rather than times.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "T3: per-level communication statistics of a simulated parallel "
      "awari build — local/remote updates, lookups, replies, combined "
      "messages, and the achieved combining factor.");
  add_model_flags(cli);
  add_output_flags(cli);
  cli.flag("max-level", "10", "largest level built");
  cli.flag("ranks", "16", "processors");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.parse(argc, argv);
  const int max_level = static_cast<int>(cli.integer("max-level"));
  const int ranks = static_cast<int>(cli.integer("ranks"));
  const auto combine = static_cast<std::size_t>(cli.integer("combine-bytes"));
  const sim::ClusterModel model = model_from(cli);

  std::printf(
      "T3: communication statistics per level, P=%d, %zu-byte combining\n\n",
      ranks, combine);

  const obs::Snapshot before = obs::snapshot();
  const auto run = simulate_build(max_level, ranks, combine, model);
  const obs::Snapshot delta = obs::snapshot() - before;

  support::Table table({"level", "positions", "updates local",
                        "updates remote", "lookups remote", "replies",
                        "messages", "records/msg", "payload"});
  for (const auto& info : run.levels) {
    table.row()
        .add(info.level)
        .add(info.size)
        .add(info.total.updates_local)
        .add(info.total.updates_remote)
        .add(info.total.lookups_remote)
        .add(info.total.replies_sent)
        .add(info.total.messages_sent)
        .add(info.total.records_per_message(), 1)
        .add(support::human_bytes(info.total.payload_bytes));
  }
  table.print();

  std::printf(
      "\nremote updates approach (P-1)/P of all updates as the cyclic "
      "partition scatters predecessors; combining packs hundreds of "
      "10-byte records per message once levels are large enough to fill "
      "buffers between supersteps.\n");

  BenchRunMeta meta;
  meta.suite = "t3";
  meta.bench = "bench_t3_comm";
  meta.max_level = max_level;
  meta.ranks = ranks;
  meta.combine_bytes = combine;
  if (!write_artifact_if_requested(cli, meta, model, run, delta)) return 1;
  return 0;
}

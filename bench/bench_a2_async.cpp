// A2 — Ablation: bulk-synchronous vs asynchronous execution.
//
// The same engine runs under (a) the BSP driver — a barrier and counter
// reduction after every superstep — and (b) the barrier-free driver,
// where ranks process messages whenever they arrive and a coordinator
// detects phase quiescence with a two-snapshot protocol.  Both must
// produce the identical database; they differ in synchronisation
// structure and message granularity (async flushes partial combining
// buffers far more often, so it sends more, smaller messages — the
// trade-off the paper's synchronous-iteration design avoids).
#include <cstdio>

#include "bench_common.hpp"
#include "retra/ra/builder.hpp"
#include "retra/support/timer.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  support::Cli cli;
  cli.describe(
      "A2 ablation: bulk-synchronous versus asynchronous execution of the "
      "real threaded build.");
  cli.flag("level", "8", "awari level built");
  cli.flag("ranks", "4", "processors (real threads)");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));
  const int ranks = static_cast<int>(cli.integer("ranks"));

  std::printf(
      "A2: BSP vs asynchronous drivers, level %d, P=%d real threads "
      "(wall-clock on this container is advisory: it has one core)\n\n",
      level, ranks);

  const db::Database expected =
      ra::build_database(game::AwariFamily{}, level);

  support::Table table({"driver", "supersteps", "messages", "payload",
                        "wall", "database"});
  for (const bool async : {false, true}) {
    para::ParallelConfig config;
    config.ranks = ranks;
    config.use_threads = true;
    config.async = async;
    config.combine_bytes =
        static_cast<std::size_t>(cli.integer("combine-bytes"));
    support::Timer timer;
    const auto result =
        para::build_parallel(game::AwariFamily{}, level, config);
    const double wall = timer.seconds();
    std::uint64_t steps = 0;
    for (const auto& info : result.levels) steps += info.rounds;
    table.row()
        .add(async ? "async" : "BSP")
        .add(steps)
        .add(result.total_messages())
        .add(support::human_bytes(result.total_payload_bytes()))
        .add(support::human_seconds(wall))
        .add(result.database->gather() == expected ? "identical"
                                                   : "MISMATCH");
  }
  table.print();
  std::printf(
      "\nBSP counts rounds (each rank steps once per round); the async "
      "count is total supersteps including idle polls.  The paper's "
      "synchronous iteration structure keeps combining buffers fuller — "
      "fewer, larger messages — which the message column quantifies.\n");
  return 0;
}

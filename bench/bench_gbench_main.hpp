// Custom main() for the google-benchmark binaries.
//
// Replaces BENCHMARK_MAIN() so these binaries honour the repo-wide --json
// flag: google-benchmark rejects unrecognised flags in Initialize, so
// --json / --json=PATH is stripped from argv first, and after the run the
// obs snapshot delta is emitted as a retra-bench-v1 micro artifact (empty
// levels array; the metrics delta is the content — see bench_common.hpp).
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"

namespace retra::bench {

/// Runs all registered google benchmarks; `meta` identifies the artifact
/// written when --json is present.  Returns the process exit code.
inline int gbench_main(int argc, char** argv, const BenchRunMeta& meta) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.starts_with("--json=")) {
      json_path = arg.substr(7);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  const obs::Snapshot before = obs::snapshot();
  benchmark::RunSpecifiedBenchmarks();
  const obs::Snapshot delta = obs::snapshot() - before;
  benchmark::Shutdown();
  return write_micro_artifact(json_path, meta, delta) ? 0 : 1;
}

}  // namespace retra::bench

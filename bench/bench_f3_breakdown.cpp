// F3 — Where the time goes: compute / send / receive / idle / barrier
// shares per processor count, from the discrete-event run.  This is the
// figure that explains the bend of the speedup curve: compute shrinks
// with P while barriers and (with combining off) message overheads grow.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "F3: time breakdown of the simulated build — compute, send/receive "
      "overhead, network, idle, and barrier shares per processor count.");
  add_model_flags(cli);
  cli.flag("level", "9", "awari level built under the simulator");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));
  const auto combine = static_cast<std::size_t>(cli.integer("combine-bytes"));
  const sim::ClusterModel model = model_from(cli);

  std::printf("F3: time breakdown of the level-%d build (%zu-byte "
              "combining)\n",
              level, combine);
  print_model(model);
  std::printf("\n");

  support::Table table({"P", "wall", "compute", "send", "recv", "idle",
                        "barrier", "net busy"});
  for (const int ranks : {1, 2, 4, 8, 16, 32, 64}) {
    const auto run = simulate_build(level, ranks, combine, model);
    double wall = 0, compute = 0, send = 0, recv = 0, idle = 0, barrier = 0,
           net = 0;
    for (const auto& timing : run.timings) {
      wall += timing.time_s;
      barrier += timing.barrier_s;
      net += timing.network_busy_s;
      for (const auto& rank : timing.per_rank) {
        compute += rank.compute_s;
        send += rank.send_s;
        recv += rank.recv_s;
        idle += rank.idle_s;
      }
    }
    // Per-rank shares of the wall clock (averaged over ranks).
    const double denom = wall * ranks;
    table.row()
        .add(ranks)
        .add(support::human_seconds(wall))
        .add(support::percent(compute / denom))
        .add(support::percent(send / denom))
        .add(support::percent(recv / denom))
        .add(support::percent(idle / denom))
        .add(support::percent(barrier / wall))
        .add(support::percent(net / wall));
  }
  table.print();
  std::printf(
      "\ncolumns compute/send/recv/idle are the average rank's share of "
      "the wall clock; barrier and network-busy are global shares.\n");
  return 0;
}

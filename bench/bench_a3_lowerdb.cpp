// A3 — Ablation: partitioned vs replicated lower databases.
//
// Exit lookups need lower-level values.  Partitioned mode keeps every
// level sharded and resolves remote exits with combined lookup/reply
// round-trips; replicated mode broadcasts every solved level so lookups
// are always local — trading a size×(P−1) record broadcast and P× memory
// for zero lookup traffic.  The paper's memory argument forces the
// partitioned choice at scale.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "A3 ablation: partitioned versus replicated lower databases — "
      "lookup traffic against replication broadcast cost.");
  add_model_flags(cli);
  cli.flag("level", "9", "awari level built under the simulator");
  cli.flag("ranks", "8", "processors");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));
  const int ranks = static_cast<int>(cli.integer("ranks"));
  const auto combine = static_cast<std::size_t>(cli.integer("combine-bytes"));
  const sim::ClusterModel model = model_from(cli);

  std::printf("A3: lower-database placement, level %d, P=%d\n\n", level,
              ranks);

  support::Table table({"mode", "time", "lookup records", "messages",
                        "payload", "db bytes/node"});
  for (const bool replicate : {false, true}) {
    const auto run = simulate_build(level, ranks, combine, model,
                                    para::PartitionScheme::kCyclic,
                                    replicate);
    std::uint64_t lookups = 0, messages = 0, payload = 0;
    for (const auto& info : run.levels) {
      lookups += info.total.lookups_remote + info.total.replies_sent;
    }
    for (const auto& timing : run.timings) {
      messages += timing.messages;
      payload += timing.payload_bytes;
    }
    table.row()
        .add(replicate ? "replicated" : "partitioned")
        .add(support::human_seconds(run.total_time_s()))
        .add(lookups)
        .add(messages)
        .add(support::human_bytes(payload))
        .add(support::human_bytes(run.database->bytes_on_rank(0)));
  }
  table.print();
  std::printf(
      "\nreplication eliminates lookup traffic but ships every level to "
      "every node and multiplies per-node database memory by P — "
      "impossible for the paper's >600 MB databases.\n");
  return 0;
}

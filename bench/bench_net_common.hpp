// Shared load-generator core for the Q2 server bench.
//
// Drives a running retra-net-v1 server with N concurrent client
// threads, each on its own connection.  Two shapes per thread:
//
//   * closed loop (pipeline == 1) — one QUERY in flight, latency is the
//     full round trip including the wait for the response;
//   * pipelined (pipeline > 1) — `pipeline` QUERYs written back-to-back
//     before reading, approximating an open load: latency is the whole
//     window, throughput is what the pipe sustains.
//
// Both bench_q2_server (full CLI, several connection counts) and the
// retra_bench "q2" suite (one fixed CI-sized configuration) run this
// core, so their artifacts are directly comparable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "retra/net/client.hpp"
#include "retra/support/rng.hpp"
#include "retra/support/timer.hpp"

namespace retra::bench {

struct NetLoadConfig {
  int connections = 4;
  /// Round trips per connection (each carries `pipeline` lookups).
  int requests_per_connection = 2000;
  /// QUERY frames in flight per round trip; 1 is the closed loop.
  std::size_t pipeline = 1;
  std::uint64_t seed = 7;
};

struct NetLoadResult {
  bool ok = true;
  std::string error;
  /// One entry per completed round trip, all connections merged.
  std::vector<double> latencies_us;
  double seconds = 0;          // wall time of the whole run
  std::uint64_t lookups = 0;   // positions answered
  std::uint64_t busy = 0;      // kBusy sheds observed (not retried here)

  double percentile(double p) const {
    if (latencies_us.empty()) return 0.0;
    std::vector<double> sorted = latencies_us;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(rank + 0.5)];
  }
  double round_trips_per_second() const {
    return seconds > 0
               ? static_cast<double>(latencies_us.size()) / seconds
               : 0.0;
  }
  double lookups_per_second() const {
    return seconds > 0 ? static_cast<double>(lookups) / seconds : 0.0;
  }
};

/// Runs the configured load against `host:port`.  `level_sizes` is the
/// server's level directory (from a STATS round trip); the workload is
/// uniform over levels 1..top and uniform over each level's indices,
/// reproducible from the seed.
inline NetLoadResult run_net_load(const std::string& host,
                                  std::uint16_t port,
                                  const std::vector<std::uint64_t>& sizes,
                                  const NetLoadConfig& config) {
  NetLoadResult result;
  if (sizes.size() < 2) {
    result.ok = false;
    result.error = "need at least two served levels";
    return result;
  }
  std::mutex merge_mutex;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.connections));
  support::Timer run_timer;
  for (int c = 0; c < config.connections; ++c) {
    threads.emplace_back([&, c] {
      auto connected = net::Client::connect(host, port);
      if (!connected.ok) {
        const std::lock_guard lock(merge_mutex);
        result.ok = false;
        result.error = connected.error;
        return;
      }
      net::Client& client = *connected.client;
      support::Xoshiro256 rng(config.seed +
                              static_cast<std::uint64_t>(c) * 0x9E3779B9u);
      const auto top = static_cast<std::uint64_t>(sizes.size() - 1);
      std::vector<double> latencies;
      latencies.reserve(
          static_cast<std::size_t>(config.requests_per_connection));
      std::uint64_t lookups = 0;
      std::uint64_t busy = 0;
      std::vector<idx::Index> indices(config.pipeline);
      std::vector<db::Value> values(config.pipeline);
      std::vector<net::ErrorCode> codes;
      for (int r = 0; r < config.requests_per_connection; ++r) {
        const auto level = 1 + rng.below(top);
        for (auto& index : indices) {
          index = rng.below(sizes[static_cast<std::size_t>(level)]);
        }
        support::Timer timer;
        net::Client::Status status;
        std::uint64_t round_busy = 0;
        if (config.pipeline == 1) {
          status = client.query(static_cast<std::uint32_t>(level),
                                indices[0], values[0]);
          if (status.code == net::ErrorCode::kBusy) {
            round_busy = 1;
            status.code = net::ErrorCode::kNone;
          }
        } else {
          status = client.pipelined_queries(
              static_cast<std::uint32_t>(level), indices, values, &codes);
          for (const net::ErrorCode code : codes) {
            if (code == net::ErrorCode::kBusy) ++round_busy;
          }
        }
        if (!status.ok()) {
          const std::lock_guard lock(merge_mutex);
          result.ok = false;
          result.error = status.transport.empty()
                             ? std::string(net::error_name(status.code))
                             : status.transport;
          return;
        }
        // A shed round trip is still a measured round trip; only the
        // answered lookups count as throughput.
        latencies.push_back(timer.seconds() * 1e6);
        busy += round_busy;
        lookups += config.pipeline - round_busy;
      }
      const std::lock_guard lock(merge_mutex);
      result.latencies_us.insert(result.latencies_us.end(),
                                 latencies.begin(), latencies.end());
      result.lookups += lookups;
      result.busy += busy;
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.seconds = run_timer.seconds();
  return result;
}

}  // namespace retra::bench

// Q2 — Network serving latency and throughput.
//
// Spins up an in-process retra-net-v1 server (src/net) over a packed
// database and drives it with the shared load generator
// (bench_net_common.hpp) at several connection counts, closed-loop and
// pipelined: per-round-trip p50/p99 latency, round trips per second,
// and answered lookups per second.
//
//   $ bench_q2_server --level=7 --connections=1,4,16 --requests=2000
//   $ bench_q2_server --db=/tmp/awari8.db --budget-kb=16 --pipeline=16
//
// --json writes a retra-bench-v1 artifact whose metrics array is the
// obs delta of the load phases only — net.requests, net.hot_hits,
// net.query_us and friends reconcile with the printed tables
// (tests/test_net_server.cpp locks the counter pipeline down).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_net_common.hpp"
#include "retra/net/server.hpp"
#include "retra/ra/builder.hpp"

namespace {

using namespace retra;

std::vector<int> parse_counts(const std::string& text) {
  std::vector<int> counts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string item =
        text.substr(begin, comma == std::string::npos ? comma
                                                      : comma - begin);
    if (const int value = std::atoi(item.c_str()); value > 0) {
      counts.push_back(value);
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return counts;
}

void add_row(support::Table& table, int connections, const char* mode,
             const bench::NetLoadResult& result) {
  table.row()
      .add(connections)
      .add(mode)
      .add(static_cast<std::int64_t>(result.latencies_us.size()))
      .add(static_cast<std::int64_t>(result.lookups))
      .add(static_cast<std::int64_t>(result.busy))
      .add(result.percentile(0.50))
      .add(result.percentile(0.99))
      .add(result.round_trips_per_second() / 1e3)
      .add(result.lookups_per_second() / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.describe(
      "Network serving bench: closed-loop and pipelined lookup latency "
      "and throughput against an in-process retra-net-v1 server.");
  cli.flag("db", "", "serve this database file (default: build and pack)");
  cli.flag("level", "7", "levels to build when no --db is given");
  cli.flag("budget-kb", "0", "QueryService budget (0 = unlimited)");
  cli.flag("hot-kb", "1024", "hot-tier budget (0 disables the tier)");
  cli.flag("workers", "2", "server worker threads");
  cli.flag("connections", "1,4,16", "client connection counts to sweep");
  cli.flag("requests", "2000", "round trips per connection");
  cli.flag("pipeline", "8", "queries in flight in the pipelined mode");
  cli.flag("seed", "7", "workload random seed");
  bench::add_output_flags(cli);
  cli.parse(argc, argv);

  std::string path = cli.str("db");
  std::string scratch;
  if (path.empty()) {
    const int level = static_cast<int>(cli.integer("level"));
    const db::Database database =
        ra::build_database(game::AwariFamily{}, level);
    scratch = (std::filesystem::temp_directory_path() /
               ("bench_q2_awari" + std::to_string(level) + ".db"))
                  .string();
    db::save(database, scratch, db::Format{.version = 2});
    path = scratch;
    std::printf("built levels 0..%d and packed them to %s\n", level,
                path.c_str());
  }

  net::ServerConfig config;
  config.workers = static_cast<int>(cli.integer("workers"));
  config.budget_bytes =
      static_cast<std::uint64_t>(cli.integer("budget-kb")) * 1024;
  config.hot_bytes = static_cast<std::uint64_t>(cli.integer("hot-kb")) * 1024;
  auto opened = net::Server::open(path, config);
  if (!opened.ok) {
    std::fprintf(stderr, "cannot serve %s: %s\n", path.c_str(),
                 opened.error.c_str());
    return 1;
  }
  net::Server& server = *opened.server;
  const std::vector<std::uint64_t> sizes = server.store().level_sizes();
  std::printf(
      "serving %s: %d levels on 127.0.0.1:%u, %d workers, budget %llu, "
      "hot %llu\n",
      path.c_str(), server.num_levels(),
      static_cast<unsigned>(server.port()), config.workers,
      static_cast<unsigned long long>(config.budget_bytes),
      static_cast<unsigned long long>(config.hot_bytes));

  bench::NetLoadConfig load;
  load.requests_per_connection = static_cast<int>(cli.integer("requests"));
  load.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto pipeline =
      static_cast<std::size_t>(cli.integer("pipeline"));

  const obs::Snapshot before = obs::snapshot();
  support::Table table({"conns", "mode", "round trips", "lookups", "busy",
                        "p50 us", "p99 us", "kRT/s", "klookups/s"});
  for (const int connections : parse_counts(cli.str("connections"))) {
    load.connections = connections;
    load.pipeline = 1;
    bench::NetLoadResult closed =
        bench::run_net_load("127.0.0.1", server.port(), sizes, load);
    if (!closed.ok) {
      std::fprintf(stderr, "load failed: %s\n", closed.error.c_str());
      return 1;
    }
    add_row(table, connections, "closed", closed);

    load.pipeline = pipeline;
    bench::NetLoadResult piped =
        bench::run_net_load("127.0.0.1", server.port(), sizes, load);
    if (!piped.ok) {
      std::fprintf(stderr, "load failed: %s\n", piped.error.c_str());
      return 1;
    }
    const std::string mode = "piped x" + std::to_string(pipeline);
    add_row(table, connections, mode.c_str(), piped);
  }
  const obs::Snapshot delta = obs::snapshot() - before;
  table.print();

  const net::Server::Stats stats = server.stats();
  std::printf(
      "\nserver: %llu connections, %llu requests, %llu hot hits, %llu "
      "shed\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.hot_hits),
      static_cast<unsigned long long>(stats.shed));
  server.stop();

  bench::BenchRunMeta meta;
  meta.suite = "q2";
  meta.bench = "bench_q2_server";
  meta.max_level = server.num_levels() - 1;
  meta.ranks = 1;
  meta.combine_bytes = 0;
  if (!bench::write_micro_artifact(cli.str("json"), meta, delta)) return 1;

  if (!scratch.empty()) std::remove(scratch.c_str());
  return 0;
}

// OC1 — Out-of-core build: memory budget vs spill/fault traffic.
//
// The paper's database (23 stones, ~10^9 positions) never fit one 1995
// workstation's RAM; completed levels lived on disk.  This bench sweeps
// the per-rank working-set budget from "everything resident" down to
// less than one block and reports what the paging layer does: spills,
// faults, evictions, peak residency — with every build checked
// bit-identical to the unconstrained reference — plus the 1995 price of
// the disk traffic under the modelled SCSI drive.
//
//   $ bench_oc1_outofcore --level=8 --ranks=4
//   $ bench_oc1_outofcore --level=9 --ranks=8 --json=BENCH_oc1.json
//
// --json writes a retra-bench-v1 artifact: the levels/totals arrays come
// from a simulated out-of-core build under the tightest budget (whose
// virtual time includes the priced disk I/O), and the metrics array is
// the obs delta of the whole sweep, carrying engine.store.*.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "retra/support/timer.hpp"

namespace {

using namespace retra;

struct SweepRow {
  std::string label;
  std::uint64_t budget = 0;
  para::StoreStats store;   // summed counters, max'd gauges across ranks
  double real_s = 0;
  double model_io_s = 0;    // max over ranks: the 1995 critical path
};

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.describe(
      "Out-of-core build bench: working-set budget sweep with "
      "bit-identity checks and 1995 disk-time pricing.");
  cli.flag("level", "8", "levels to build");
  cli.flag("ranks", "4", "ranks for the distributed build");
  cli.flag("threads-per-rank", "1", "worker threads inside each rank");
  cli.flag("block-positions", "128",
           "positions per spilled RTRADB03 block (small = fault traffic)");
  bench::add_model_flags(cli);
  bench::add_output_flags(cli);
  cli.parse(argc, argv);

  const int level = static_cast<int>(cli.integer("level"));
  const int ranks = static_cast<int>(cli.integer("ranks"));
  const sim::ClusterModel model = bench::model_from(cli);
  bench::print_model(model);
  std::printf(
      "modelled disk: %.1f MB/s, %.0f ms/op "
      "(one SCSI drive per workstation)\n\n",
      model.machine.disk_bytes_per_second / 1e6,
      model.machine.disk_op_overhead_s * 1e3);

  para::ParallelConfig base;
  base.ranks = ranks;
  base.threads_per_rank = static_cast<int>(cli.integer("threads-per-rank"));
  base.oversubscribe = base.threads_per_rank > 1;

  const obs::Snapshot before = obs::snapshot();

  // Reference: the unconstrained in-memory build.
  support::Timer ref_timer;
  const para::ParallelResult reference =
      para::build_parallel(game::AwariFamily{}, level, base);
  const double ref_s = ref_timer.seconds();
  std::uint64_t full_bytes = 0;
  for (int r = 0; r < ranks; ++r) {
    full_bytes =
        std::max(full_bytes, reference.database->store(r).stored_bytes());
  }
  const db::Database truth = reference.database->gather();
  std::printf(
      "reference build: levels 0..%d on %d ranks, %s of completed levels "
      "on the largest rank, %.2fs\n\n",
      level, ranks, support::human_bytes(full_bytes).c_str(), ref_s);

  const std::string scratch_root =
      (std::filesystem::temp_directory_path() /
       ("bench_oc1_" + std::to_string(::getpid())))
          .string();

  struct Point {
    const char* label;
    double fraction;  // of full_bytes; <= 0 means a fixed tiny budget
  };
  static constexpr Point kPoints[] = {
      {"100%", 1.0}, {"50%", 0.5}, {"25%", 0.25},
      {"10%", 0.10}, {"5%", 0.05}, {"tiny", -1.0}};

  std::vector<SweepRow> rows;
  std::uint64_t tightest = 0;
  for (const Point& point : kPoints) {
    SweepRow row;
    row.label = point.label;
    row.budget = point.fraction > 0
                     ? std::max<std::uint64_t>(
                           1, static_cast<std::uint64_t>(
                                  point.fraction *
                                  static_cast<double>(full_bytes)))
                     : 256;  // smaller than one decoded block: pure thrash
    tightest = row.budget;

    para::ParallelConfig config = base;
    config.store.working_set_bytes = row.budget;
    config.store.scratch_dir = scratch_root + "_" + point.label;
    config.store.block_positions =
        static_cast<std::uint32_t>(cli.integer("block-positions"));
    support::Timer timer;
    const para::ParallelResult run =
        para::build_parallel(game::AwariFamily{}, level, config);
    row.real_s = timer.seconds();
    if (run.database->gather() != truth) {
      std::fprintf(stderr,
                   "FATAL: budget %llu build diverged from the reference\n",
                   static_cast<unsigned long long>(row.budget));
      return 1;
    }
    for (int r = 0; r < ranks; ++r) {
      const para::StoreStats stats = run.database->store(r).stats();
      row.store += stats;
      row.model_io_s = std::max(
          row.model_io_s,
          model.machine.io_seconds(stats.levels_spilled + stats.faults,
                                   stats.spill_bytes + stats.fault_bytes));
    }
    std::filesystem::remove_all(config.store.scratch_dir);
    rows.push_back(row);
  }

  std::printf("all %zu budgeted builds bit-identical to the reference\n\n",
              rows.size());
  support::Table table({"budget/rank", "bytes", "spills", "spill B",
                        "faults", "fault B", "evict", "peak res", "real",
                        "1995 disk"});
  for (const SweepRow& row : rows) {
    table.row()
        .add(row.label)
        .add(row.budget)
        .add(row.store.levels_spilled)
        .add(row.store.spill_bytes)
        .add(row.store.faults)
        .add(row.store.fault_bytes)
        .add(row.store.evictions)
        .add(row.store.peak_resident_bytes)
        .add(support::human_seconds(row.real_s))
        .add(support::human_seconds(row.model_io_s));
  }
  table.print();

  // The artifact's levels/totals: a simulated 1995 run under the
  // tightest budget, so each level's virtual time includes the spill and
  // fault traffic priced by MachineModel::io_seconds.
  para::ParallelConfig sim_config = base;
  sim_config.store.working_set_bytes = tightest;
  sim_config.store.scratch_dir = scratch_root + "_sim";
  sim_config.store.block_positions =
      static_cast<std::uint32_t>(cli.integer("block-positions"));
  const para::SimBuildResult sim_run = para::build_parallel_simulated(
      game::AwariFamily{}, level, sim_config, model);
  std::filesystem::remove_all(sim_config.store.scratch_dir);
  std::printf(
      "\nsimulated 1995 run under the %s budget: %s of virtual time\n",
      support::human_bytes(tightest).c_str(),
      support::human_seconds(sim_run.total_time_s()).c_str());
  const obs::Snapshot delta = obs::snapshot() - before;

  bench::BenchRunMeta meta;
  meta.suite = "oc1";
  meta.bench = "bench_oc1_outofcore";
  meta.max_level = level;
  meta.ranks = ranks;
  meta.combine_bytes = base.combine_bytes;
  if (!bench::write_artifact_if_requested(cli, meta, model, sim_run, delta)) {
    return 1;
  }
  return 0;
}

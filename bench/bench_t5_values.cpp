// T5 — Database content statistics.
//
// What the computed databases actually say: per level, how many positions
// the player to move wins / draws / loses on net future captures, and the
// value extremes.  These are real (not simulated) numbers from the
// sequential solver with full self-verification enabled.
#include <cstdio>

#include "bench_common.hpp"
#include "retra/db/db_stats.hpp"
#include "retra/ra/builder.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  support::Cli cli;
  cli.describe(
      "T5: database content statistics — win/draw/loss distribution per "
      "level, verified against the sequential solver.");
  cli.flag("max-level", "10", "largest level to build and verify");
  cli.parse(argc, argv);
  const int max_level = static_cast<int>(cli.integer("max-level"));

  ra::BuildOptions options;
  options.verify = true;
  const db::Database database =
      ra::build_database(game::AwariFamily{}, max_level, options);

  std::printf(
      "T5: awari database content, levels 0..%d (every level passed the "
      "local-consistency + well-foundedness verifier)\n\n",
      max_level);

  support::Table table({"level", "positions", "mover wins", "draws",
                        "mover loses", "win%", "min", "max", "mean"});
  for (int level = 0; level <= max_level; ++level) {
    const db::LevelStats stats = db::level_stats(database, level);
    table.row()
        .add(level)
        .add(stats.positions)
        .add(stats.wins)
        .add(stats.draws)
        .add(stats.losses)
        .add(support::percent(static_cast<double>(stats.wins) /
                              static_cast<double>(stats.positions)))
        .add(static_cast<int>(stats.min_value))
        .add(static_cast<int>(stats.max_value))
        .add(stats.mean_value, 3);
  }
  table.print();

  // Value histogram of the top level.
  std::printf("\nvalue histogram of level %d:\n\n", max_level);
  const auto histogram = db::level_histogram(database, max_level, max_level);
  support::Table hist({"value", "positions", "share"});
  for (int v = -max_level; v <= max_level; ++v) {
    if (histogram.count_at(v) == 0) continue;
    hist.row()
        .add(v)
        .add(histogram.count_at(v))
        .add(support::percent(static_cast<double>(histogram.count_at(v)) /
                              static_cast<double>(histogram.total())));
  }
  hist.print();
  return 0;
}

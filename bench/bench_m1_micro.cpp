// M1 — Microbenchmarks (google-benchmark).
//
// Per-operation costs of the building blocks: indexing, move and unmove
// generation, and whole-level sequential solves.  These are the measured
// counterparts of the abstract work units priced by the cluster model.
#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"

#include <vector>

#include "retra/game/awari.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/index/board_index.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/sweep_solver.hpp"

namespace {

using namespace retra;

void BM_Rank(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  const idx::Board board = idx::unrank(level, idx::level_size(level) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx::rank(board));
  }
}
BENCHMARK(BM_Rank)->Arg(6)->Arg(12)->Arg(20);

void BM_Unrank(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  const idx::Index index = idx::level_size(level) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx::unrank(level, index));
  }
}
BENCHMARK(BM_Unrank)->Arg(6)->Arg(12)->Arg(20);

void BM_NextBoard(benchmark::State& state) {
  idx::Board board = idx::first_board(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    idx::next_board(board);
    benchmark::DoNotOptimize(board);
  }
}
BENCHMARK(BM_NextBoard)->Arg(12);

void BM_LegalMoves(benchmark::State& state) {
  const game::Board board =
      game::board_from_string("4 4 4 4 4 4  4 4 4 4 4 4");
  for (auto _ : state) {
    benchmark::DoNotOptimize(game::legal_moves(board));
  }
}
BENCHMARK(BM_LegalMoves);

void BM_Predecessors(benchmark::State& state) {
  const game::Board board =
      game::board_from_string("1 2 0 3 1 0  2 0 1 1 0 1");
  std::vector<game::Board> out;
  for (auto _ : state) {
    game::predecessors(board, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["preds"] = static_cast<double>(out.size());
}
BENCHMARK(BM_Predecessors);

void BM_SolveLevel(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  const db::Database lower =
      ra::build_database(game::AwariFamily{}, level - 1);
  const game::AwariLevel game(level);
  auto lookup = [&lower](int l, idx::Index i) { return lower.value(l, i); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(ra::solve_level(game, lookup));
  }
  state.counters["positions/s"] = benchmark::Counter(
      static_cast<double>(idx::level_size(level)),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SolveLevel)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FullBuild(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ra::build_database(game::AwariFamily{}, level));
  }
  state.counters["positions/s"] = benchmark::Counter(
      static_cast<double>(idx::cumulative_size(level)),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FullBuild)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  retra::bench::BenchRunMeta meta;
  meta.suite = "m1";
  meta.bench = "bench_m1_micro";
  meta.max_level = 8;
  meta.ranks = 1;
  return retra::bench::gbench_main(argc, argv, meta);
}

// F1 — Speedup curve (the paper's headline figure).
//
// Two panels:
//  (a) measured: the real awari build up to --level runs under the
//      discrete-event cluster for every processor count; speedup is
//      virtual-time(1) / virtual-time(P).
//  (b) projected: the measured workload densities rescaled to a
//      paper-scale database (--paper-level), where the abstract reports a
//      speedup of 48 on 64 processors.
//  (c) projected P x T: the same paper-scale level with T worker threads
//      per node (two-level parallelism) — what multiprocessor nodes would
//      have bought the 1995 cluster.
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace retra;
  using namespace retra::bench;
  support::Cli cli;
  cli.describe(
      "F1: speedup curve of the simulated distributed awari build — "
      "measured panel per processor count plus a paper-scale projection. "
      "--json writes the artifact of the largest-P measured run.");
  add_model_flags(cli);
  add_output_flags(cli);
  cli.flag("level", "10", "awari level actually built under the simulator");
  cli.flag("paper-level", "21", "level for the projected paper-scale panel");
  cli.flag("combine-bytes", "4096", "combining buffer size");
  cli.flag("threads-per-rank", "1",
           "worker threads per rank in the measured panel");
  cli.parse(argc, argv);
  const int level = static_cast<int>(cli.integer("level"));
  const int paper_level = static_cast<int>(cli.integer("paper-level"));
  const auto combine = static_cast<std::size_t>(cli.integer("combine-bytes"));
  const int threads = static_cast<int>(cli.integer("threads-per-rank"));
  sim::ClusterModel model = model_from(cli);
  model.machine.worker_threads = threads;

  std::printf("F1: speedup of the distributed build, combining on\n");
  print_model(model);

  const std::vector<int> rank_counts{1, 2, 4, 8, 16, 24, 32, 48, 64};

  std::printf(
      "\n(a) measured under the cluster simulator: full build to level %d "
      "(%s positions — ~0.3%% of the paper's database, so the curve "
      "saturates early; panel (b) is the headline regime)\n\n",
      level, support::with_thousands(idx::cumulative_size(level)).c_str());
  support::Table measured(
      {"P", "time", "speedup", "efficiency", "messages", "payload"});
  double t1 = 0;
  sim::LevelProfile top_profile{};
  std::uint64_t top_rounds = 0;
  std::optional<para::SimBuildResult> artifact_run;
  obs::Snapshot artifact_delta;
  for (const int ranks : rank_counts) {
    const obs::Snapshot before = obs::snapshot();
    auto run = simulate_build(level, ranks, combine, model,
                              para::PartitionScheme::kCyclic,
                              /*replicate_lower=*/false, threads);
    double time = run.total_time_s();
    std::uint64_t messages = 0, payload = 0;
    for (const auto& t : run.timings) {
      messages += t.messages;
      payload += t.payload_bytes;
    }
    if (ranks == 1) t1 = time;
    if (ranks == rank_counts.back()) {
      // Densities are P-independent but the round count (propagation
      // waves across ranks) is not: take both from the P=64 run so the
      // projected barrier term is realistic.
      top_profile = measured_profile(run);
      top_rounds = run.levels.back().rounds;
      artifact_delta = obs::snapshot() - before;
      artifact_run = std::move(run);
    }
    measured.row()
        .add(ranks)
        .add(support::human_seconds(time))
        .add(t1 / time, 2)
        .add(support::percent(t1 / time / ranks))
        .add(messages)
        .add(support::human_bytes(payload));
  }
  measured.print();

  // Paper-scale projection: same densities, paper-sized level.  Rounds at
  // P=1 are irrelevant (no barrier between 1 rank and itself matters
  // little); we reuse the measured round count scaled by the bound ratio.
  sim::LevelProfile paper =
      paper_scale_profile(top_profile, level, paper_level);
  paper.rounds = std::max<std::uint64_t>(
      paper.rounds, top_rounds * static_cast<std::uint64_t>(paper_level) /
                        static_cast<std::uint64_t>(level));

  std::printf(
      "\n(b) projected at paper scale: level %d alone (%s positions), "
      "measured densities from level %d\n\n",
      paper_level,
      support::with_thousands(idx::level_size(paper_level)).c_str(), level);
  support::Table projected({"P", "time", "speedup", "efficiency", "compute",
                            "msg overhead", "network", "barrier"});
  const double paper_t1 =
      sim::project_level(paper, 1, model, combine).time_s;
  for (const int ranks : rank_counts) {
    const auto p = sim::project_level(paper, ranks, model, combine);
    projected.row()
        .add(ranks)
        .add(support::human_seconds(p.time_s))
        .add(paper_t1 / p.time_s, 2)
        .add(support::percent(paper_t1 / p.time_s / ranks))
        .add(support::human_seconds(p.compute_s))
        .add(support::human_seconds(p.overhead_s))
        .add(support::human_seconds(p.network_s))
        .add(support::human_seconds(p.barrier_s));
  }
  projected.print();

  // P x T: the same projection with each node's chunk-parallel phases
  // divided across T workers.  Speedups are against the T=1 uniprocessor,
  // so the table reads as "total speedup bought by P nodes x T workers".
  std::printf(
      "\n(c) projected P x T at paper scale: T worker threads per node, "
      "speedup vs the T=1 uniprocessor\n\n");
  const std::vector<int> worker_counts{1, 2, 4};
  support::Table pxt({"P", "T=1 time", "T=1 speedup", "T=2 time",
                      "T=2 speedup", "T=4 time", "T=4 speedup"});
  sim::ClusterModel pxt_model = model;
  pxt_model.machine.worker_threads = 1;
  const double pxt_base =
      sim::project_level(paper, 1, pxt_model, combine).time_s;
  for (const int ranks : rank_counts) {
    pxt.row().add(ranks);
    for (const int t : worker_counts) {
      pxt_model.machine.worker_threads = t;
      const auto p = sim::project_level(paper, ranks, pxt_model, combine);
      pxt.add(support::human_seconds(p.time_s)).add(pxt_base / p.time_s, 2);
    }
  }
  pxt.print();
  std::printf(
      "\npaper reference points: speedup 48 at P=64; uniprocessor run of "
      "the same database took 40 h.\n");

  BenchRunMeta meta;
  meta.suite = "f1";
  meta.bench = "bench_f1_speedup";
  meta.max_level = level;
  meta.ranks = rank_counts.back();
  meta.combine_bytes = combine;
  if (!write_artifact_if_requested(cli, meta, model, *artifact_run,
                                   artifact_delta)) {
    return 1;
  }
  return 0;
}

// Q1 — Query-serving throughput and cache behaviour.
//
// The finished database's whole purpose is query-time perfect play
// (Romein & Bal 2003 serve the solved awari database interactively);
// this bench measures what the serving layer delivers: single-lookup and
// batched throughput against a file-backed QueryService, cold (every
// level faulted from disk) and hot (resident within the byte budget),
// with the dense in-memory database as the reference ceiling.
//
//   $ bench_q1_query --level=8 --budget-kb=16 --queries=200000
//   $ bench_q1_query --db=/tmp/awari10.db --batch=64 --json=BENCH_q1.json
//
// --json writes a retra-bench-v1 artifact whose metrics array is the obs
// delta of the served phases only — serve.lookups, serve.level_faults,
// serve.level_evictions and friends reconcile exactly with the printed
// table (tests/test_serve.cpp locks the same pipeline down).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "retra/ra/builder.hpp"
#include "retra/serve/query_service.hpp"
#include "retra/support/rng.hpp"
#include "retra/support/timer.hpp"

namespace {

using namespace retra;

struct Workload {
  std::vector<int> levels;
  std::vector<idx::Index> indices;
};

/// A reproducible query stream: uniform over levels 1..top (level 0 is a
/// single position), uniform over each level's indices.
Workload make_workload(const serve::ValueSource& source, int queries,
                       std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  Workload work;
  work.levels.reserve(static_cast<std::size_t>(queries));
  work.indices.reserve(static_cast<std::size_t>(queries));
  const int top = source.num_levels() - 1;
  for (int q = 0; q < queries; ++q) {
    const int level = 1 + static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(top)));
    work.levels.push_back(level);
    work.indices.push_back(rng.below(source.level_size(level)));
  }
  return work;
}

struct PhaseResult {
  std::uint64_t lookups = 0;
  std::uint64_t faults = 0;
  std::uint64_t evictions = 0;
  double seconds = 0;
};

PhaseResult run_single(serve::QueryService& service, const Workload& work) {
  const auto before = service.stats();
  support::Timer timer;
  db::Value sink = 0;
  for (std::size_t i = 0; i < work.levels.size(); ++i) {
    sink = static_cast<db::Value>(
        sink ^ service.value(work.levels[i], work.indices[i]));
  }
  PhaseResult result;
  result.seconds = timer.seconds();
  const auto after = service.stats();
  result.lookups = after.lookups - before.lookups;
  result.faults = after.faults - before.faults;
  result.evictions = after.evictions - before.evictions;
  // Defeat dead-code elimination of the lookup loop.
  if (sink == INT16_MIN) std::printf("(impossible sink)\n");
  return result;
}

/// Replays the workload through values(): consecutive queries to the same
/// level are coalesced into one batched call of up to `batch` lookups.
PhaseResult run_batched(serve::QueryService& service, const Workload& work,
                        int batch) {
  const auto before = service.stats();
  std::vector<idx::Index> indices;
  std::vector<db::Value> out;
  indices.reserve(static_cast<std::size_t>(batch));
  out.resize(static_cast<std::size_t>(batch));
  support::Timer timer;
  std::size_t i = 0;
  while (i < work.levels.size()) {
    const int level = work.levels[i];
    indices.clear();
    while (i < work.levels.size() && work.levels[i] == level &&
           indices.size() < static_cast<std::size_t>(batch)) {
      indices.push_back(work.indices[i]);
      ++i;
    }
    service.values(level, indices,
                   std::span<db::Value>(out.data(), indices.size()));
  }
  PhaseResult result;
  result.seconds = timer.seconds();
  const auto after = service.stats();
  result.lookups = after.lookups - before.lookups;
  result.faults = after.faults - before.faults;
  result.evictions = after.evictions - before.evictions;
  return result;
}

void add_row(support::Table& table, const char* phase,
             const PhaseResult& result) {
  table.row()
      .add(phase)
      .add(static_cast<std::int64_t>(result.lookups))
      .add(static_cast<std::int64_t>(result.faults))
      .add(static_cast<std::int64_t>(result.evictions))
      .add(result.seconds <= 0
               ? 0.0
               : static_cast<double>(result.lookups) / result.seconds / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.describe(
      "Query-serving bench: cold/hot/batched lookup throughput of the "
      "file-backed QueryService under a residency budget.");
  cli.flag("db", "", "serve this database file (default: build and pack)");
  cli.flag("level", "8", "levels to build when no --db is given");
  cli.flag("budget-kb", "16", "resident-level budget (0 = unlimited)");
  cli.flag("queries", "200000", "lookups per phase");
  cli.flag("batch", "64", "max lookups per batched values() call");
  cli.flag("seed", "7", "workload random seed");
  bench::add_output_flags(cli);
  cli.parse(argc, argv);

  const int queries = static_cast<int>(cli.integer("queries"));
  const int batch = static_cast<int>(cli.integer("batch"));

  // Resolve the database file: an existing one via --db, otherwise build
  // in memory and pack to a scratch RTRADB02 file.
  std::string path = cli.str("db");
  std::string scratch;
  if (path.empty()) {
    const int level = static_cast<int>(cli.integer("level"));
    const db::Database database =
        ra::build_database(game::AwariFamily{}, level);
    scratch = (std::filesystem::temp_directory_path() /
               ("bench_q1_awari" + std::to_string(level) + ".db"))
                  .string();
    db::SaveOptions options;
    options.pack = true;
    db::save(database, scratch, options);
    path = scratch;
    std::printf("built levels 0..%d and packed them to %s\n", level,
                path.c_str());
  }

  serve::QueryServiceConfig config;
  config.budget_bytes =
      static_cast<std::uint64_t>(cli.integer("budget-kb")) * 1024;
  auto opened = serve::QueryService::open(path, config);
  if (!opened.ok) {
    std::fprintf(stderr, "cannot serve %s: %s\n", path.c_str(),
                 opened.error.c_str());
    return 1;
  }
  serve::QueryService& service = *opened.service;
  std::printf(
      "serving %s: %d levels, %llu packed bytes, budget %llu bytes\n",
      path.c_str(), service.num_levels(),
      static_cast<unsigned long long>(service.index().total_payload_bytes()),
      static_cast<unsigned long long>(config.budget_bytes));

  const Workload work = make_workload(
      service, queries, static_cast<std::uint64_t>(cli.integer("seed")));

  const obs::Snapshot before = obs::snapshot();
  // Cold: first touch of every level comes off the file.
  const PhaseResult cold = run_single(service, work);
  // Hot: identical stream again — faults now measure budget thrash only.
  const PhaseResult hot = run_single(service, work);
  // Batched: same stream through values() in level-coalesced batches.
  const PhaseResult batched = run_batched(service, work, batch);
  const obs::Snapshot delta = obs::snapshot() - before;

  support::Table table(
      {"phase", "lookups", "faults", "evictions", "Mlookups/s"});
  add_row(table, "cold single", cold);
  add_row(table, "hot single", hot);
  add_row(table, std::string("batched x" + std::to_string(batch)).c_str(),
          batched);
  table.print();
  std::printf(
      "\nresident after run: %llu bytes in %zu levels\n",
      static_cast<unsigned long long>(service.stats().resident_bytes),
      service.resident_levels().size());

  bench::BenchRunMeta meta;
  meta.suite = "q1";
  meta.bench = "bench_q1_query";
  meta.max_level = service.num_levels() - 1;
  meta.ranks = 1;
  meta.combine_bytes = 0;
  if (!bench::write_micro_artifact(cli.str("json"), meta, delta)) return 1;

  if (!scratch.empty()) std::remove(scratch.c_str());
  return 0;
}

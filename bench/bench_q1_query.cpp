// Q1 — Query-serving throughput and cache behaviour.
//
// The finished database's whole purpose is query-time perfect play
// (Romein & Bal 2003 serve the solved awari database interactively);
// this bench measures what the serving layer delivers: single-lookup and
// batched throughput against a file-backed QueryService, cold (every
// level faulted from disk) and hot (resident within the byte budget),
// with the dense in-memory database as the reference ceiling.
//
//   $ bench_q1_query --level=8 --budget-kb=16 --queries=200000
//   $ bench_q1_query --db=/tmp/awari10.db --batch=64 --json=BENCH_q1.json
//
// When building its own scratch database (no --db), the bench also runs
// a compressed-vs-raw sweep: the same levels saved as RTRADB02 and
// block-compressed RTRADB03, per-level size ratios, and point-lookup
// p50/p99 latency through each file under the same budget
// (--compare=false skips it).
//
// --json writes a retra-bench-v1 artifact whose metrics array is the obs
// delta of the served phases plus the sweep — serve.lookups and friends
// cover both, and the sweep contributes db.compress.* (from the
// compressed save) and serve.blockcache.* (from serving it); see
// tests/test_serve.cpp for the exact-reconcile version of the pipeline.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "retra/ra/builder.hpp"
#include "retra/serve/query_service.hpp"
#include "retra/support/rng.hpp"
#include "retra/support/timer.hpp"

namespace {

using namespace retra;

struct Workload {
  std::vector<int> levels;
  std::vector<idx::Index> indices;
};

/// A reproducible query stream: uniform over levels 1..top (level 0 is a
/// single position), uniform over each level's indices.
Workload make_workload(const serve::ValueSource& source, int queries,
                       std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  Workload work;
  work.levels.reserve(static_cast<std::size_t>(queries));
  work.indices.reserve(static_cast<std::size_t>(queries));
  const int top = source.num_levels() - 1;
  for (int q = 0; q < queries; ++q) {
    const int level = 1 + static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(top)));
    work.levels.push_back(level);
    work.indices.push_back(rng.below(source.level_size(level)));
  }
  return work;
}

struct PhaseResult {
  std::uint64_t lookups = 0;
  std::uint64_t faults = 0;
  std::uint64_t evictions = 0;
  double seconds = 0;
};

PhaseResult run_single(serve::QueryService& service, const Workload& work) {
  const auto before = service.stats();
  support::Timer timer;
  db::Value sink = 0;
  for (std::size_t i = 0; i < work.levels.size(); ++i) {
    sink = static_cast<db::Value>(
        sink ^ service.value(work.levels[i], work.indices[i]));
  }
  PhaseResult result;
  result.seconds = timer.seconds();
  const auto after = service.stats();
  result.lookups = after.lookups - before.lookups;
  result.faults = after.faults - before.faults;
  result.evictions = after.evictions - before.evictions;
  // Defeat dead-code elimination of the lookup loop.
  if (sink == INT16_MIN) std::printf("(impossible sink)\n");
  return result;
}

/// Replays the workload through values(): consecutive queries to the same
/// level are coalesced into one batched call of up to `batch` lookups.
PhaseResult run_batched(serve::QueryService& service, const Workload& work,
                        int batch) {
  const auto before = service.stats();
  std::vector<idx::Index> indices;
  std::vector<db::Value> out;
  indices.reserve(static_cast<std::size_t>(batch));
  out.resize(static_cast<std::size_t>(batch));
  support::Timer timer;
  std::size_t i = 0;
  while (i < work.levels.size()) {
    const int level = work.levels[i];
    indices.clear();
    while (i < work.levels.size() && work.levels[i] == level &&
           indices.size() < static_cast<std::size_t>(batch)) {
      indices.push_back(work.indices[i]);
      ++i;
    }
    service.values(level, indices,
                   std::span<db::Value>(out.data(), indices.size()));
  }
  PhaseResult result;
  result.seconds = timer.seconds();
  const auto after = service.stats();
  result.lookups = after.lookups - before.lookups;
  result.faults = after.faults - before.faults;
  result.evictions = after.evictions - before.evictions;
  return result;
}

void add_row(support::Table& table, const char* phase,
             const PhaseResult& result) {
  table.row()
      .add(phase)
      .add(static_cast<std::int64_t>(result.lookups))
      .add(static_cast<std::int64_t>(result.faults))
      .add(static_cast<std::int64_t>(result.evictions))
      .add(result.seconds <= 0
               ? 0.0
               : static_cast<double>(result.lookups) / result.seconds / 1e6);
}

// ---- compressed-vs-raw sweep --------------------------------------

struct LatencyStats {
  double p50_us = 0;
  double p99_us = 0;
};

/// Times each of the workload's first `samples` point lookups through a
/// fresh budgeted service over `path` and reports exact percentiles.
LatencyStats measure_latency(const std::string& path, std::uint64_t budget,
                             const Workload& work, int samples) {
  serve::QueryServiceConfig config;
  config.budget_bytes = budget;
  auto opened = serve::QueryService::open(path, config);
  if (!opened.ok) {
    std::fprintf(stderr, "sweep cannot serve %s: %s\n", path.c_str(),
                 opened.error.c_str());
    std::exit(1);
  }
  serve::QueryService& service = *opened.service;
  const std::size_t n =
      std::min(work.levels.size(), static_cast<std::size_t>(samples));
  std::vector<double> lat;
  lat.reserve(n);
  db::Value sink = 0;
  for (std::size_t i = 0; i < n; ++i) {
    support::Timer timer;
    sink = static_cast<db::Value>(
        sink ^ service.value(work.levels[i], work.indices[i]));
    lat.push_back(timer.seconds() * 1e6);
  }
  if (sink == INT16_MIN) std::printf("(impossible sink)\n");
  std::sort(lat.begin(), lat.end());
  LatencyStats stats;
  if (!lat.empty()) {
    stats.p50_us = lat[lat.size() / 2];
    stats.p99_us = lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
  }
  return stats;
}

/// "raw:3 freq:12" — blocks of the level per compression scheme.
std::string scheme_histogram(const db::LevelLocation& location) {
  int counts[db::kBlockSchemeCount] = {};
  for (const db::BlockLocation& block : location.blocks) {
    ++counts[static_cast<int>(block.scheme)];
  }
  static constexpr const char* kNames[db::kBlockSchemeCount] = {"raw", "rle",
                                                                "freq"};
  std::string text;
  for (int s = 0; s < db::kBlockSchemeCount; ++s) {
    if (counts[s] == 0) continue;
    if (!text.empty()) text += ' ';
    text += kNames[s];
    text += ':';
    text += std::to_string(counts[s]);
  }
  return text.empty() ? "-" : text;
}

/// Saves `database` compressed next to the raw scratch file, prints the
/// per-level ratio table and the p50/p99 point-lookup latencies of both
/// files under the same budget.
void run_sweep(const db::Database& database, const std::string& raw_path,
               std::uint64_t budget, const Workload& work, int samples) {
  const std::string compressed_path = raw_path + ".c";
  db::save(database, compressed_path, db::Format{.version = 3});

  auto scanned = [](const std::string& p) {
    std::FILE* f = std::fopen(p.c_str(), "rb");
    db::FileIndex index = db::scan(f);
    std::fclose(f);
    return index;
  };
  const db::FileIndex compressed = scanned(compressed_path);

  std::printf("\ncompressed-vs-raw sweep (%d point lookups, same budget):\n",
              samples);
  support::Table table(
      {"level", "raw bytes", "compressed", "ratio", "schemes"});
  for (const db::LevelLocation& location : compressed.levels) {
    table.row()
        .add(location.level)
        .add(support::with_thousands(location.decoded_bytes()))
        .add(support::with_thousands(location.payload_bytes))
        .add(location.payload_bytes == 0
                 ? 1.0
                 : static_cast<double>(location.decoded_bytes()) /
                       static_cast<double>(location.payload_bytes))
        .add(scheme_histogram(location));
  }
  table.print();
  const auto file_bytes = [](const std::string& p) {
    return static_cast<std::uint64_t>(std::filesystem::file_size(p));
  };
  const std::uint64_t raw_bytes = file_bytes(raw_path);
  const std::uint64_t compressed_bytes = file_bytes(compressed_path);
  std::printf("file bytes: raw %s, compressed %s (ratio %.2f)\n",
              support::with_thousands(raw_bytes).c_str(),
              support::with_thousands(compressed_bytes).c_str(),
              static_cast<double>(raw_bytes) /
                  static_cast<double>(compressed_bytes));

  const LatencyStats raw = measure_latency(raw_path, budget, work, samples);
  const LatencyStats comp =
      measure_latency(compressed_path, budget, work, samples);
  std::printf(
      "latency: raw p50 %.2fus p99 %.2fus, compressed p50 %.2fus p99 "
      "%.2fus\n",
      raw.p50_us, raw.p99_us, comp.p50_us, comp.p99_us);
  std::remove(compressed_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  support::Cli cli;
  cli.describe(
      "Query-serving bench: cold/hot/batched lookup throughput of the "
      "file-backed QueryService under a residency budget.");
  cli.flag("db", "", "serve this database file (default: build and pack)");
  cli.flag("level", "8", "levels to build when no --db is given");
  cli.flag("budget-kb", "16", "resident-level budget (0 = unlimited)");
  cli.flag("queries", "200000", "lookups per phase");
  cli.flag("batch", "64", "max lookups per batched values() call");
  cli.flag("seed", "7", "workload random seed");
  cli.flag("compare", "true",
           "run the compressed-vs-raw sweep (build mode only)");
  cli.flag("sweep-queries", "50000", "point lookups per sweep measurement");
  bench::add_output_flags(cli);
  cli.parse(argc, argv);

  const int queries = static_cast<int>(cli.integer("queries"));
  const int batch = static_cast<int>(cli.integer("batch"));

  // Resolve the database file: an existing one via --db, otherwise build
  // in memory and pack to a scratch RTRADB02 file.
  std::string path = cli.str("db");
  std::string scratch;
  db::Database database;
  if (path.empty()) {
    const int level = static_cast<int>(cli.integer("level"));
    database = ra::build_database(game::AwariFamily{}, level);
    scratch = (std::filesystem::temp_directory_path() /
               ("bench_q1_awari" + std::to_string(level) + ".db"))
                  .string();
    db::save(database, scratch, db::Format{.version = 2});
    path = scratch;
    std::printf("built levels 0..%d and packed them to %s\n", level,
                path.c_str());
  }

  serve::QueryServiceConfig config;
  config.budget_bytes =
      static_cast<std::uint64_t>(cli.integer("budget-kb")) * 1024;
  auto opened = serve::QueryService::open(path, config);
  if (!opened.ok) {
    std::fprintf(stderr, "cannot serve %s: %s\n", path.c_str(),
                 opened.error.c_str());
    return 1;
  }
  serve::QueryService& service = *opened.service;
  std::printf(
      "serving %s: %d levels, %llu packed bytes, budget %llu bytes\n",
      path.c_str(), service.num_levels(),
      static_cast<unsigned long long>(service.index().total_payload_bytes()),
      static_cast<unsigned long long>(config.budget_bytes));

  const Workload work = make_workload(
      service, queries, static_cast<std::uint64_t>(cli.integer("seed")));

  const obs::Snapshot before = obs::snapshot();
  // Cold: first touch of every level comes off the file.
  const PhaseResult cold = run_single(service, work);
  // Hot: identical stream again — faults now measure budget thrash only.
  const PhaseResult hot = run_single(service, work);
  // Batched: same stream through values() in level-coalesced batches.
  const PhaseResult batched = run_batched(service, work, batch);

  support::Table table(
      {"phase", "lookups", "faults", "evictions", "Mlookups/s"});
  add_row(table, "cold single", cold);
  add_row(table, "hot single", hot);
  add_row(table, std::string("batched x" + std::to_string(batch)).c_str(),
          batched);
  table.print();
  std::printf(
      "\nresident after run: %llu bytes in %zu levels\n",
      static_cast<unsigned long long>(service.stats().resident_bytes),
      service.resident_levels().size());

  // Compressed-vs-raw sweep (inside the artifact's obs window, so the
  // metrics delta carries db.compress.* and serve.blockcache.*).
  if (cli.boolean("compare") && !scratch.empty()) {
    run_sweep(database, scratch, config.budget_bytes, work,
              static_cast<int>(cli.integer("sweep-queries")));
  }
  const obs::Snapshot delta = obs::snapshot() - before;

  bench::BenchRunMeta meta;
  meta.suite = "q1";
  meta.bench = "bench_q1_query";
  meta.max_level = service.num_levels() - 1;
  meta.ranks = 1;
  meta.combine_bytes = 0;
  if (!bench::write_micro_artifact(cli.str("json"), meta, delta)) return 1;

  if (!scratch.empty()) std::remove(scratch.c_str());
  return 0;
}

// Randomised round-trip and equivalence checks of the wire layer: every
// record type survives encode/decode for arbitrary field values, and a
// combined stream delivers exactly the concatenation of its appends.
#include <gtest/gtest.h>

#include <cstring>

#include "retra/msg/combiner.hpp"
#include "retra/msg/thread_comm.hpp"
#include "retra/para/records.hpp"
#include "retra/support/rng.hpp"

namespace retra::para {
namespace {

TEST(RecordsFuzz, UpdateRoundTrip) {
  support::Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    UpdateRecord record;
    record.target = rng();
    record.contribution = static_cast<std::int16_t>(rng());
    std::byte buffer[UpdateRecord::kWireSize];
    record.encode(buffer);
    msg::WireReader reader(buffer);
    const UpdateRecord back = UpdateRecord::decode(reader);
    ASSERT_EQ(back.target, record.target);
    ASSERT_EQ(back.contribution, record.contribution);
    ASSERT_EQ(reader.consumed(), UpdateRecord::kWireSize);
  }
}

TEST(RecordsFuzz, LookupRoundTrip) {
  support::Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    LookupRecord record;
    record.target = rng();
    record.requester = rng();
    record.reward = static_cast<std::int16_t>(rng());
    record.level = static_cast<std::uint8_t>(rng());
    record.same_mover = static_cast<std::uint8_t>(rng() & 1);
    std::byte buffer[LookupRecord::kWireSize];
    record.encode(buffer);
    msg::WireReader reader(buffer);
    const LookupRecord back = LookupRecord::decode(reader);
    ASSERT_EQ(back.target, record.target);
    ASSERT_EQ(back.requester, record.requester);
    ASSERT_EQ(back.reward, record.reward);
    ASSERT_EQ(back.level, record.level);
    ASSERT_EQ(back.same_mover, record.same_mover);
  }
}

TEST(RecordsFuzz, ReplyAndShardRoundTrip) {
  support::Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    ReplyRecord reply;
    reply.requester = rng();
    reply.value = static_cast<std::int16_t>(rng());
    std::byte buffer[ReplyRecord::kWireSize];
    reply.encode(buffer);
    msg::WireReader r1(buffer);
    const ReplyRecord reply_back = ReplyRecord::decode(r1);
    ASSERT_EQ(reply_back.requester, reply.requester);
    ASSERT_EQ(reply_back.value, reply.value);

    ShardRecord shard;
    shard.index = rng();
    shard.value = static_cast<std::int16_t>(rng());
    std::byte buffer2[ShardRecord::kWireSize];
    shard.encode(buffer2);
    msg::WireReader r2(buffer2);
    const ShardRecord shard_back = ShardRecord::decode(r2);
    ASSERT_EQ(shard_back.index, shard.index);
    ASSERT_EQ(shard_back.value, shard.value);
  }
}

TEST(RecordsFuzz, CombinedStreamIsExactConcatenation) {
  // Random appends to random destinations with random flush sizes; the
  // reassembled per-destination byte stream must equal the direct
  // concatenation of the appended records.
  support::Xoshiro256 rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const int ranks = 2 + static_cast<int>(rng.below(5));
    const std::size_t flush = 1 + rng.below(64);
    msg::ThreadWorld world(ranks);
    msg::Combiner combiner(world.endpoint(0), 9, flush);

    std::vector<std::vector<std::byte>> expected(
        static_cast<std::size_t>(ranks));
    const int appends = 200 + static_cast<int>(rng.below(800));
    for (int i = 0; i < appends; ++i) {
      const int dest =
          1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(ranks) - 1));
      UpdateRecord record;
      record.target = rng();
      record.contribution = static_cast<std::int16_t>(rng());
      std::byte buffer[UpdateRecord::kWireSize];
      record.encode(buffer);
      combiner.append(dest, buffer, UpdateRecord::kWireSize);
      auto& sink = expected[static_cast<std::size_t>(dest)];
      sink.insert(sink.end(), buffer, buffer + UpdateRecord::kWireSize);
    }
    combiner.flush_all();

    for (int dest = 1; dest < ranks; ++dest) {
      std::vector<std::byte> received;
      msg::Message message;
      while (world.endpoint(dest).try_recv(message)) {
        ASSERT_EQ(message.tag, 9);
        ASSERT_EQ(message.source, 0);
        received.insert(received.end(), message.payload.begin(),
                        message.payload.end());
      }
      ASSERT_EQ(received, expected[static_cast<std::size_t>(dest)])
          << "trial " << trial;
    }
  }
}

TEST(RecordsFuzz, WireSizesMatchEncodedLengths) {
  std::byte buffer[64];
  {
    msg::WireWriter w(buffer);
    UpdateRecord{}.encode(buffer);
    // Encoded length is the declared wire size (no padding drift).
    msg::WireReader r(buffer);
    (void)UpdateRecord::decode(r);
    EXPECT_EQ(r.consumed(), UpdateRecord::kWireSize);
  }
  {
    msg::WireReader r(buffer);
    LookupRecord{}.encode(buffer);
    (void)LookupRecord::decode(r);
    EXPECT_EQ(r.consumed(), LookupRecord::kWireSize);
  }
}

}  // namespace
}  // namespace retra::para

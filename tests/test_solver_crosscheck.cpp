// Three independent solvers, one answer.
//
// The production sweep solver, the threshold-attractor reference and (for
// tiny instances) exhaustive forward search implement the same semantics
// three different ways; this suite demands bit-identical values across
// hundreds of random graph games and the small awari levels, plus a clean
// bill from the self-verifier.
#include <gtest/gtest.h>

#include "retra/game/awari_level.hpp"
#include "retra/game/graph_game.hpp"
#include "retra/ra/attractor_solver.hpp"
#include "retra/ra/builder.hpp"
#include "retra/ra/forward_search.hpp"
#include "retra/ra/sweep_solver.hpp"
#include "retra/ra/verify.hpp"

namespace retra::ra {
namespace {

/// Solves a whole graph game with both solvers, verifying and comparing
/// every level.
void crosscheck_game(const game::GraphGame& graph, bool with_forward) {
  db::Database database;
  for (int l = 0; l < graph.num_levels(); ++l) {
    const game::GraphLevel& level = graph.level(l);
    auto lower = [&database](int lv, idx::Index i) {
      return database.value(lv, i);
    };

    SweepOptions options;
    options.record_order = true;
    const SweepResult sweep = solve_level(level, lower, options);
    const std::vector<db::Value> reference =
        solve_level_attractor(level, lower);
    ASSERT_EQ(sweep.values, reference) << "level " << l;

    const VerifyReport report =
        verify_level(level, lower, sweep.values, sweep.order);
    ASSERT_TRUE(report.ok) << report.error;

    if (with_forward) {
      for (std::uint64_t n = 0; n < level.size(); ++n) {
        ASSERT_EQ(forward_value(level, lower, n), sweep.values[n])
            << "level " << l << " node " << n;
      }
    }
    database.push_level(l, sweep.values);
  }
}

class RandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphs, SweepMatchesAttractorAndVerifies) {
  game::GraphGameConfig config;
  config.levels = 4;
  config.size0 = 12;
  config.growth = 2.0;
  config.edge_mean = 2.0;
  config.exit_mean = 1.2;
  config.reward_range = 3;
  config.seed = GetParam();
  crosscheck_game(game::GraphGame(config), /*with_forward=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs,
                         ::testing::Range<std::uint64_t>(1, 61));

class TinyGraphsWithForwardSearch
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TinyGraphsWithForwardSearch, AllThreeSolversAgree) {
  game::GraphGameConfig config;
  config.levels = 2;
  config.size0 = 5;
  config.growth = 1.6;
  config.edge_mean = 1.5;
  config.exit_mean = 1.0;
  config.terminal_chance = 0.3;
  config.reward_range = 2;
  config.seed = GetParam();
  crosscheck_game(game::GraphGame(config), /*with_forward=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TinyGraphsWithForwardSearch,
                         ::testing::Range<std::uint64_t>(100, 160));

class DenseGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DenseGraphs, HeavyCyclesStillAgree) {
  // Dense same-level connectivity and few exits: the regime where almost
  // everything cycles and zero-fill carries the level.
  game::GraphGameConfig config;
  config.levels = 3;
  config.size0 = 20;
  config.growth = 1.5;
  config.edge_mean = 5.0;
  config.exit_mean = 0.4;
  config.terminal_chance = 0.05;
  config.reward_range = 5;
  config.seed = GetParam();
  crosscheck_game(game::GraphGame(config), /*with_forward=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseGraphs,
                         ::testing::Range<std::uint64_t>(500, 530));

class AwariLevels : public ::testing::TestWithParam<int> {};

TEST_P(AwariLevels, SweepMatchesAttractorAndVerifies) {
  const int max_level = GetParam();
  db::Database database;
  for (int l = 0; l <= max_level; ++l) {
    const game::AwariLevel level(l);
    auto lower = [&database](int lv, idx::Index i) {
      return database.value(lv, i);
    };
    SweepOptions options;
    options.record_order = true;
    const SweepResult sweep = solve_level(level, lower, options);
    ASSERT_EQ(sweep.values, solve_level_attractor(level, lower))
        << "awari level " << l;
    const VerifyReport report =
        verify_level(level, lower, sweep.values, sweep.order);
    ASSERT_TRUE(report.ok) << report.error;
    database.push_level(l, sweep.values);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, AwariLevels, ::testing::Values(4, 6, 7));

TEST(AwariDatabase, ValueBoundsRespectLevel) {
  const auto database = build_database(game::AwariFamily{}, 6);
  for (int l = 0; l <= 6; ++l) {
    for (const db::Value v : database.level(l)) {
      ASSERT_LE(std::abs(v), l);
    }
  }
}

TEST(AwariDatabase, ValueParityMatchesStoneCount) {
  // Every stone eventually lands in someone's store or stays cycling; net
  // capture difference has the parity of... no such invariant in awari
  // (stones can remain on the board in cycles).  Instead check a weaker
  // structural fact: level 2's all-known values include both signs.
  const auto database = build_database(game::AwariFamily{}, 2);
  bool has_positive = false, has_negative = false;
  for (const db::Value v : database.level(2)) {
    has_positive |= v > 0;
    has_negative |= v < 0;
  }
  EXPECT_TRUE(has_positive);
  EXPECT_TRUE(has_negative);
}

}  // namespace
}  // namespace retra::ra

// exec::simd kernel contract: every backend (scalar, SSE2, AVX2 — as far
// as this build and host support) returns bit-identical results to the
// scalar reference, for any alignment, any length (vector body + scalar
// tail), and the packed-word edge values the engines actually store
// (db::kUnknown = INT16_MIN, negative magnitudes).  The references here
// are written independently of src/exec/src/simd.cpp.
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "retra/db/database.hpp"
#include "retra/exec/simd.hpp"
#include "retra/support/rng.hpp"

namespace retra::exec::simd {
namespace {

std::vector<Backend> available_backends() {
  std::vector<Backend> backends{Backend::kScalar};
  for (const Backend wide : {Backend::kSse2, Backend::kAvx2}) {
    if (static_cast<int>(widest_available()) >= static_cast<int>(wide)) {
      backends.push_back(wide);
    }
  }
  return backends;
}

/// Pins `backend` for one scope; restores the previous one on exit.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend) : previous_(active()) {
    EXPECT_EQ(set_active(backend), backend);
  }
  ~ScopedBackend() { set_active(previous_); }

 private:
  Backend previous_;
};

// Independent scalar references.

std::uint64_t ref_replace(std::int16_t* data, std::size_t n,
                          std::int16_t match, std::int16_t replacement) {
  std::uint64_t replaced = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] == match) {
      data[i] = replacement;
      ++replaced;
    }
  }
  return replaced;
}

std::vector<std::uint32_t> ref_eq2(const std::int16_t* a, std::int16_t va,
                                   const std::int16_t* b, std::int16_t vb,
                                   std::size_t n) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == va && b[i] == vb) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::vector<std::uint32_t> ref_seed(const std::int16_t* values,
                                    std::int16_t unknown,
                                    const std::uint16_t* cnt,
                                    const std::int16_t* best,
                                    std::int16_t mag, std::size_t n) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i] == unknown && (cnt[i] == 0 || best[i] == mag)) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

struct Fixture {
  std::vector<std::int16_t> values;
  std::vector<std::int16_t> best;
  std::vector<std::uint16_t> cnt;
};

/// A shard-like random fixture: a dense mix of kUnknown, magnitudes the
/// sweeps look for, and bystanders, so every vector word holds matches
/// and non-matches.
Fixture random_fixture(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  Fixture f;
  f.values.resize(n);
  f.best.resize(n);
  f.cnt.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = rng();
    f.values[i] = r % 3 == 0 ? db::kUnknown
                             : static_cast<std::int16_t>(
                                   static_cast<int>(r % 11) - 5);
    f.best[i] =
        static_cast<std::int16_t>(static_cast<int>((r >> 8) % 9) - 4);
    f.cnt[i] = static_cast<std::uint16_t>((r >> 16) % 3);
  }
  return f;
}

// The lengths cover: empty, below one SSE2 word, below one AVX2 word,
// exact word multiples, and off-by-one around them.
const std::size_t kLengths[] = {0,  1,  7,  8,  9,   15,  16, 17,
                                31, 32, 33, 63, 100, 1023};

TEST(Backends, WidestIsOrderedAndLanesMatch) {
  EXPECT_EQ(lanes(Backend::kScalar), 1);
  EXPECT_EQ(lanes(Backend::kSse2), 8);
  EXPECT_EQ(lanes(Backend::kAvx2), 16);
  EXPECT_EQ(set_active(active()), active());
  // Requesting wider than the host supports clamps instead of crashing.
  const Backend previous = active();
  EXPECT_LE(static_cast<int>(set_active(Backend::kAvx2)),
            static_cast<int>(widest_available()));
  set_active(previous);
}

TEST(ReplaceMatching, MatchesReferenceOnRandomData) {
  for (const Backend backend : available_backends()) {
    ScopedBackend scoped(backend);
    for (const std::size_t n : kLengths) {
      Fixture f = random_fixture(n, 0x5eed + n);
      std::vector<std::int16_t> expect = f.values;
      const std::uint64_t expect_count =
          ref_replace(expect.data(), n, db::kUnknown, 0);
      const std::uint64_t got =
          replace_matching(f.values.data(), n, db::kUnknown, 0);
      EXPECT_EQ(got, expect_count)
          << backend_name(backend) << " n=" << n;
      EXPECT_EQ(f.values, expect) << backend_name(backend) << " n=" << n;
    }
  }
}

TEST(ReplaceMatching, AllAndNoneMatch) {
  for (const Backend backend : available_backends()) {
    ScopedBackend scoped(backend);
    std::vector<std::int16_t> all(100, db::kUnknown);
    EXPECT_EQ(replace_matching(all.data(), all.size(), db::kUnknown, -7),
              100u);
    EXPECT_EQ(all, std::vector<std::int16_t>(100, -7));
    EXPECT_EQ(replace_matching(all.data(), all.size(), db::kUnknown, 0), 0u);
    EXPECT_EQ(all, std::vector<std::int16_t>(100, -7));
  }
}

TEST(CollectEq2, MatchesReferenceOnRandomData) {
  for (const Backend backend : available_backends()) {
    ScopedBackend scoped(backend);
    for (const std::size_t n : kLengths) {
      const Fixture f = random_fixture(n, 0xbeef + n);
      for (const std::int16_t mag :
           {std::int16_t{-3}, std::int16_t{0}, std::int16_t{2}}) {
        const std::vector<std::uint32_t> expect =
            ref_eq2(f.values.data(), db::kUnknown, f.best.data(), mag, n);
        std::vector<std::uint32_t> got(n + 1, 0xdeadu);
        const std::size_t count = collect_eq2(
            f.values.data(), db::kUnknown, f.best.data(), mag, n, got.data());
        ASSERT_EQ(count, expect.size())
            << backend_name(backend) << " n=" << n << " mag=" << mag;
        got.resize(count);
        EXPECT_EQ(got, expect)
            << backend_name(backend) << " n=" << n << " mag=" << mag;
      }
    }
  }
}

TEST(CollectSeedCandidates, MatchesReferenceOnRandomData) {
  for (const Backend backend : available_backends()) {
    ScopedBackend scoped(backend);
    for (const std::size_t n : kLengths) {
      const Fixture f = random_fixture(n, 0xcafe + n);
      for (const std::int16_t mag : {std::int16_t{-2}, std::int16_t{1}}) {
        const std::vector<std::uint32_t> expect =
            ref_seed(f.values.data(), db::kUnknown, f.cnt.data(),
                     f.best.data(), mag, n);
        std::vector<std::uint32_t> got(n + 1, 0xdeadu);
        const std::size_t count = collect_seed_candidates(
            f.values.data(), db::kUnknown, f.cnt.data(), f.best.data(), mag,
            n, got.data());
        ASSERT_EQ(count, expect.size())
            << backend_name(backend) << " n=" << n << " mag=" << mag;
        got.resize(count);
        EXPECT_EQ(got, expect)
            << backend_name(backend) << " n=" << n << " mag=" << mag;
      }
    }
  }
}

TEST(Alignment, UnalignedHeadAndTailAreExact) {
  // The engines hand the kernels interior shard pointers with no
  // alignment guarantee: offset every array by 1..word-1 elements and the
  // results must not change.
  constexpr std::size_t kN = 256;
  const Fixture f = random_fixture(kN + 32, 0xa11a);
  for (const Backend backend : available_backends()) {
    ScopedBackend scoped(backend);
    for (const std::size_t offset : {1u, 3u, 15u, 17u}) {
      const std::int16_t* values = f.values.data() + offset;
      const std::int16_t* best = f.best.data() + offset;
      const std::uint16_t* cnt = f.cnt.data() + offset;

      const std::vector<std::uint32_t> expect_eq2 =
          ref_eq2(values, db::kUnknown, best, 2, kN);
      std::vector<std::uint32_t> got(kN, 0);
      ASSERT_EQ(collect_eq2(values, db::kUnknown, best, 2, kN, got.data()),
                expect_eq2.size())
          << backend_name(backend) << " offset=" << offset;
      got.resize(expect_eq2.size());
      EXPECT_EQ(got, expect_eq2);

      const std::vector<std::uint32_t> expect_seed =
          ref_seed(values, db::kUnknown, cnt, best, 2, kN);
      got.assign(kN, 0);
      ASSERT_EQ(collect_seed_candidates(values, db::kUnknown, cnt, best, 2,
                                        kN, got.data()),
                expect_seed.size())
          << backend_name(backend) << " offset=" << offset;
      got.resize(expect_seed.size());
      EXPECT_EQ(got, expect_seed);

      std::vector<std::int16_t> mutate(f.values);
      std::vector<std::int16_t> expect_data(f.values);
      const std::uint64_t expect_count =
          ref_replace(expect_data.data() + offset, kN, db::kUnknown, 0);
      EXPECT_EQ(replace_matching(mutate.data() + offset, kN, db::kUnknown, 0),
                expect_count)
          << backend_name(backend) << " offset=" << offset;
      EXPECT_EQ(mutate, expect_data);
    }
  }
}

TEST(PackedWords, SentinelAndExtremeValues) {
  // INT16_MIN (db::kUnknown itself), INT16_MAX, and -1 (all bits set)
  // must compare exactly — a saturating or sign-confused comparison
  // would corrupt these first.
  const std::vector<std::int16_t> tricky = {
      INT16_MIN, INT16_MAX, -1, 0, 1, INT16_MIN, -1, INT16_MAX,
      INT16_MIN, 0,         -1, 1, 0, 1,         -1, INT16_MIN,
      INT16_MIN};
  for (const Backend backend : available_backends()) {
    ScopedBackend scoped(backend);
    for (const std::int16_t needle :
         {std::int16_t{INT16_MIN}, std::int16_t{INT16_MAX},
          std::int16_t{-1}}) {
      const std::vector<std::uint32_t> expect =
          ref_eq2(tricky.data(), needle, tricky.data(), needle,
                  tricky.size());
      std::vector<std::uint32_t> got(tricky.size(), 0);
      ASSERT_EQ(collect_eq2(tricky.data(), needle, tricky.data(), needle,
                            tricky.size(), got.data()),
                expect.size())
          << backend_name(backend) << " needle=" << needle;
      got.resize(expect.size());
      EXPECT_EQ(got, expect);

      std::vector<std::int16_t> mutate = tricky;
      std::vector<std::int16_t> expect_data = tricky;
      const std::uint64_t count =
          ref_replace(expect_data.data(), expect_data.size(), needle, 7);
      EXPECT_EQ(replace_matching(mutate.data(), mutate.size(), needle, 7),
                count)
          << backend_name(backend) << " needle=" << needle;
      EXPECT_EQ(mutate, expect_data);
    }
  }
}

TEST(PackedWords, CntZeroOrBestDisjunction) {
  // collect_seed_candidates: both sides of the || must fire, separately
  // and together, and unknown positions failing both must not.
  const std::vector<std::int16_t> values(32, db::kUnknown);
  std::vector<std::uint16_t> cnt(32, 1);
  std::vector<std::int16_t> best(32, 0);
  cnt[3] = 0;               // cnt side only
  best[7] = 2;              // best side only
  cnt[11] = 0; best[11] = 2;  // both
  for (const Backend backend : available_backends()) {
    ScopedBackend scoped(backend);
    std::vector<std::uint32_t> got(32, 0);
    const std::size_t count = collect_seed_candidates(
        values.data(), db::kUnknown, cnt.data(), best.data(), 2, 32,
        got.data());
    ASSERT_EQ(count, 3u) << backend_name(backend);
    EXPECT_EQ(got[0], 3u);
    EXPECT_EQ(got[1], 7u);
    EXPECT_EQ(got[2], 11u);
  }
}

}  // namespace
}  // namespace retra::exec::simd

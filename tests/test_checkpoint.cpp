#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "retra/game/awari_level.hpp"
#include "retra/para/checkpoint.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/ra/builder.hpp"

namespace retra::para {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("retra_ckpt_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CheckpointTest, SaveAndLoadRoundTrip) {
  ParallelConfig config;
  config.ranks = 3;
  config.checkpoint_dir = dir_;
  const auto result = build_parallel(game::AwariFamily{}, 4, config);

  const CheckpointLoad loaded = checkpoint_load(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.meta.ranks, 3);
  EXPECT_EQ(loaded.meta.levels, 5);
  EXPECT_EQ(loaded.database->gather(), result.database->gather());
}

TEST_F(CheckpointTest, ResumeContinuesWhereItStopped) {
  // First run builds to level 3; the "resumed" run asks for level 6 and
  // must produce the same database as a from-scratch build.
  ParallelConfig config;
  config.ranks = 4;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  const auto resumed = build_parallel(game::AwariFamily{}, 6, config);
  // Only levels 4..6 were built this time.
  EXPECT_EQ(resumed.levels.size(), 3u);
  EXPECT_EQ(resumed.levels.front().level, 4);
  EXPECT_EQ(resumed.database->gather(),
            ra::build_database(game::AwariFamily{}, 6));
}

TEST_F(CheckpointTest, FullyCheckpointedBuildIsANoOp) {
  ParallelConfig config;
  config.ranks = 2;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 4, config);
  const auto again = build_parallel(game::AwariFamily{}, 4, config);
  EXPECT_TRUE(again.levels.empty());
  EXPECT_EQ(again.database->gather(),
            ra::build_database(game::AwariFamily{}, 4));
}

TEST_F(CheckpointTest, IncompatibleConfigurationStartsFresh) {
  ParallelConfig config;
  config.ranks = 3;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  ParallelConfig other = config;
  other.ranks = 5;  // different layout: checkpoint must be ignored
  const auto result = build_parallel(game::AwariFamily{}, 3, other);
  EXPECT_EQ(result.levels.size(), 4u);  // rebuilt everything
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 3));
}

TEST_F(CheckpointTest, CorruptedLevelFileIsRejected) {
  ParallelConfig config;
  config.ranks = 2;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  // Flip a byte in level 2's payload.
  const std::string victim = dir_ + "/level_2.ck";
  std::fstream file(victim, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(0, std::ios::end);
  const auto size = static_cast<long>(file.tellg());
  file.seekg(size / 2);
  char byte;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(size / 2);
  file.write(&byte, 1);
  file.close();

  const CheckpointLoad loaded = checkpoint_load(dir_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("level"), std::string::npos);
}

TEST_F(CheckpointTest, MissingDirectoryReportsCleanly) {
  const CheckpointLoad loaded = checkpoint_load(dir_ + "/nonexistent");
  EXPECT_FALSE(loaded.ok);
  EXPECT_FALSE(loaded.error.empty());
}

TEST_F(CheckpointTest, MalformedManifestRejected) {
  fs::create_directories(dir_);
  std::ofstream(dir_ + "/manifest.txt") << "not a manifest";
  const CheckpointLoad loaded = checkpoint_load(dir_);
  EXPECT_FALSE(loaded.ok);
}

TEST_F(CheckpointTest, ReplicatedModeRoundTrips) {
  ParallelConfig config;
  config.ranks = 3;
  config.replicate_lower = true;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);
  const CheckpointLoad loaded = checkpoint_load(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_TRUE(loaded.meta.replicated);
  EXPECT_EQ(loaded.database->gather(),
            ra::build_database(game::AwariFamily{}, 3));
}

TEST(CheckpointCompat, MatchRules) {
  CheckpointMeta meta;
  meta.ranks = 4;
  meta.scheme = PartitionScheme::kCyclic;
  meta.block_size = 64;
  meta.replicated = false;
  EXPECT_TRUE(checkpoint_compatible(meta, 4, PartitionScheme::kCyclic, 999,
                                    false));  // block irrelevant for cyclic
  EXPECT_FALSE(checkpoint_compatible(meta, 8, PartitionScheme::kCyclic, 64,
                                     false));
  EXPECT_FALSE(checkpoint_compatible(meta, 4, PartitionScheme::kBlock, 64,
                                     false));
  EXPECT_FALSE(checkpoint_compatible(meta, 4, PartitionScheme::kCyclic, 64,
                                     true));
  meta.scheme = PartitionScheme::kBlockCyclic;
  EXPECT_TRUE(checkpoint_compatible(meta, 4, PartitionScheme::kBlockCyclic,
                                    64, false));
  EXPECT_FALSE(checkpoint_compatible(meta, 4, PartitionScheme::kBlockCyclic,
                                     128, false));
}

}  // namespace
}  // namespace retra::para

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <random>
#include <vector>

#include "retra/game/awari_level.hpp"
#include "retra/para/checkpoint.hpp"
#include "retra/para/parallel_solver.hpp"
#include "retra/ra/builder.hpp"

namespace retra::para {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("retra_ckpt_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CheckpointTest, SaveAndLoadRoundTrip) {
  ParallelConfig config;
  config.ranks = 3;
  config.checkpoint_dir = dir_;
  const auto result = build_parallel(game::AwariFamily{}, 4, config);

  const CheckpointLoad loaded = checkpoint_load(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.meta.ranks, 3);
  EXPECT_EQ(loaded.meta.levels, 5);
  EXPECT_EQ(loaded.database->gather(), result.database->gather());
}

TEST_F(CheckpointTest, ResumeContinuesWhereItStopped) {
  // First run builds to level 3; the "resumed" run asks for level 6 and
  // must produce the same database as a from-scratch build.
  ParallelConfig config;
  config.ranks = 4;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  const auto resumed = build_parallel(game::AwariFamily{}, 6, config);
  // Only levels 4..6 were built this time.
  EXPECT_EQ(resumed.levels.size(), 3u);
  EXPECT_EQ(resumed.levels.front().level, 4);
  EXPECT_EQ(resumed.database->gather(),
            ra::build_database(game::AwariFamily{}, 6));
}

TEST_F(CheckpointTest, FullyCheckpointedBuildIsANoOp) {
  ParallelConfig config;
  config.ranks = 2;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 4, config);
  const auto again = build_parallel(game::AwariFamily{}, 4, config);
  EXPECT_TRUE(again.levels.empty());
  EXPECT_EQ(again.database->gather(),
            ra::build_database(game::AwariFamily{}, 4));
}

TEST_F(CheckpointTest, IncompatibleConfigurationStartsFresh) {
  ParallelConfig config;
  config.ranks = 3;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  ParallelConfig other = config;
  other.ranks = 5;  // different layout: checkpoint must be ignored
  const auto result = build_parallel(game::AwariFamily{}, 3, other);
  EXPECT_EQ(result.levels.size(), 4u);  // rebuilt everything
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 3));
}

TEST_F(CheckpointTest, CorruptedLevelFileIsRejected) {
  ParallelConfig config;
  config.ranks = 2;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  // Flip a byte in level 2's payload.
  const std::string victim = dir_ + "/level_2.ck";
  std::fstream file(victim, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(0, std::ios::end);
  const auto size = static_cast<long>(file.tellg());
  file.seekg(size / 2);
  char byte;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(size / 2);
  file.write(&byte, 1);
  file.close();

  const CheckpointLoad loaded = checkpoint_load(dir_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("level"), std::string::npos);
}

TEST_F(CheckpointTest, MissingDirectoryReportsCleanly) {
  const CheckpointLoad loaded = checkpoint_load(dir_ + "/nonexistent");
  EXPECT_FALSE(loaded.ok);
  EXPECT_FALSE(loaded.error.empty());
}

TEST_F(CheckpointTest, MalformedManifestRejected) {
  fs::create_directories(dir_);
  std::ofstream(dir_ + "/manifest.txt") << "not a manifest";
  const CheckpointLoad loaded = checkpoint_load(dir_);
  EXPECT_FALSE(loaded.ok);
}

TEST_F(CheckpointTest, ReplicatedModeRoundTrips) {
  ParallelConfig config;
  config.ranks = 3;
  config.replicate_lower = true;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);
  const CheckpointLoad loaded = checkpoint_load(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_TRUE(loaded.meta.replicated);
  EXPECT_EQ(loaded.database->gather(),
            ra::build_database(game::AwariFamily{}, 3));
}

TEST_F(CheckpointTest, TruncatedLevelFileIsRejected) {
  ParallelConfig config;
  config.ranks = 2;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  const std::string victim = dir_ + "/level_1.ck";
  const auto size = fs::file_size(victim);
  fs::resize_file(victim, size / 2);

  const CheckpointLoad loaded = checkpoint_load(dir_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_FALSE(loaded.error.empty());
}

TEST_F(CheckpointTest, BitFlipInChecksumRegionIsRejected) {
  ParallelConfig config;
  config.ranks = 2;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  // The last 8 bytes of a level file are the final shard's checksum; a
  // flipped checksum must be caught exactly like flipped payload.
  const std::string victim = dir_ + "/level_3.ck";
  const auto size = static_cast<long>(fs::file_size(victim));
  std::fstream file(victim, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(size - 4);
  char byte;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  file.seekp(size - 4);
  file.write(&byte, 1);
  file.close();

  const CheckpointLoad loaded = checkpoint_load(dir_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("checksum"), std::string::npos)
      << loaded.error;
}

TEST_F(CheckpointTest, ManifestLevelCountMismatchIsRejected) {
  ParallelConfig config;
  config.ranks = 2;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  // The manifest claims 4 levels; remove one of the referenced files.
  fs::remove(dir_ + "/level_2.ck");
  const CheckpointLoad loaded = checkpoint_load(dir_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("missing"), std::string::npos) << loaded.error;
}

// Fuzz: arbitrary truncations and single-bit flips anywhere in a level
// file must always produce ok == false with a diagnosis — never a crash,
// never a silently adopted corrupted database.
TEST_F(CheckpointTest, CorruptionFuzzAlwaysFailsCleanly) {
  ParallelConfig config;
  config.ranks = 3;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  const std::string victim = dir_ + "/level_2.ck";
  std::vector<char> pristine;
  {
    std::ifstream in(victim, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(pristine.empty());
  const auto restore = [&](const std::vector<char>& bytes) {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  std::mt19937_64 rng(0xf22);
  for (int round = 0; round < 24; ++round) {
    std::vector<char> mutated = pristine;
    const std::size_t pos = rng() % mutated.size();
    mutated[pos] =
        static_cast<char>(mutated[pos] ^ (1 << (rng() % 8)));
    restore(mutated);
    const CheckpointLoad loaded = checkpoint_load(dir_);
    EXPECT_FALSE(loaded.ok) << "bit flip at " << pos << " was accepted";
    EXPECT_FALSE(loaded.error.empty());
  }
  for (int round = 0; round < 8; ++round) {
    std::vector<char> mutated = pristine;
    mutated.resize(rng() % pristine.size());
    restore(mutated);
    const CheckpointLoad loaded = checkpoint_load(dir_);
    EXPECT_FALSE(loaded.ok)
        << "truncation to " << mutated.size() << " was accepted";
    EXPECT_FALSE(loaded.error.empty());
  }

  restore(pristine);
  EXPECT_TRUE(checkpoint_load(dir_).ok);
}

// The combining buffer size is a tuning knob, not a layout parameter: a
// resume with a different one must pick the checkpoint up.
TEST_F(CheckpointTest, DifferentCombineBytesStillResumes) {
  ParallelConfig config;
  config.ranks = 3;
  config.combine_bytes = 4096;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  ParallelConfig retuned = config;
  retuned.combine_bytes = 64;
  const auto resumed = build_parallel(game::AwariFamily{}, 5, retuned);
  EXPECT_EQ(resumed.levels.size(), 2u);  // only levels 4..5 were built
  EXPECT_EQ(resumed.database->gather(),
            ra::build_database(game::AwariFamily{}, 5));
}

TEST_F(CheckpointTest, DifferentBlockSizeIsRejectedForBlockCyclic) {
  ParallelConfig config;
  config.ranks = 3;
  config.scheme = PartitionScheme::kBlockCyclic;
  config.block_size = 16;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 3, config);

  ParallelConfig other = config;
  other.block_size = 32;  // different layout: checkpoint must be ignored
  const auto result = build_parallel(game::AwariFamily{}, 3, other);
  EXPECT_EQ(result.levels.size(), 4u);  // rebuilt everything
  EXPECT_EQ(result.database->gather(),
            ra::build_database(game::AwariFamily{}, 3));
}

TEST_F(CheckpointTest, ManifestRecordsTheCombineBytes) {
  ParallelConfig config;
  config.ranks = 2;
  config.combine_bytes = 512;
  config.checkpoint_dir = dir_;
  build_parallel(game::AwariFamily{}, 2, config);
  const CheckpointLoad loaded = checkpoint_load(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.meta.combine_bytes, 512u);
}

TEST(CheckpointCompat, MatchRules) {
  CheckpointMeta meta;
  meta.ranks = 4;
  meta.scheme = PartitionScheme::kCyclic;
  meta.block_size = 64;
  meta.replicated = false;
  EXPECT_TRUE(checkpoint_compatible(meta, 4, PartitionScheme::kCyclic, 999,
                                    false));  // block irrelevant for cyclic
  EXPECT_FALSE(checkpoint_compatible(meta, 8, PartitionScheme::kCyclic, 64,
                                     false));
  EXPECT_FALSE(checkpoint_compatible(meta, 4, PartitionScheme::kBlock, 64,
                                     false));
  EXPECT_FALSE(checkpoint_compatible(meta, 4, PartitionScheme::kCyclic, 64,
                                     true));
  meta.scheme = PartitionScheme::kBlockCyclic;
  EXPECT_TRUE(checkpoint_compatible(meta, 4, PartitionScheme::kBlockCyclic,
                                    64, false));
  EXPECT_FALSE(checkpoint_compatible(meta, 4, PartitionScheme::kBlockCyclic,
                                     128, false));
}

}  // namespace
}  // namespace retra::para

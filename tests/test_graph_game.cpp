#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "retra/game/graph_game.hpp"

namespace retra::game {
namespace {

GraphGameConfig small_config(std::uint64_t seed) {
  GraphGameConfig config;
  config.levels = 4;
  config.size0 = 10;
  config.growth = 1.7;
  config.seed = seed;
  return config;
}

TEST(GraphGame, DeterministicBySeed) {
  const GraphGame a(small_config(42)), b(small_config(42));
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (int l = 0; l < a.num_levels(); ++l) {
    ASSERT_EQ(a.level(l).size(), b.level(l).size());
    for (std::uint64_t n = 0; n < a.level(l).size(); ++n) {
      EXPECT_EQ(a.level(l).succs_of(n), b.level(l).succs_of(n));
    }
  }
}

TEST(GraphGame, EveryNodeHasAnOption) {
  const GraphGame game(small_config(7));
  for (int l = 0; l < game.num_levels(); ++l) {
    const GraphLevel& level = game.level(l);
    for (std::uint64_t n = 0; n < level.size(); ++n) {
      EXPECT_TRUE(!level.succs_of(n).empty() || !level.exits_of(n).empty());
    }
  }
}

TEST(GraphGame, ExitsPointStrictlyDownward) {
  const GraphGame game(small_config(9));
  for (int l = 0; l < game.num_levels(); ++l) {
    const GraphLevel& level = game.level(l);
    for (std::uint64_t n = 0; n < level.size(); ++n) {
      for (const Exit& exit : level.exits_of(n)) {
        if (exit.is_terminal()) continue;
        ASSERT_LT(exit.lower_level, l);
        ASSERT_LT(exit.lower_index, game.level(exit.lower_level).size());
      }
    }
  }
}

TEST(GraphGame, LevelZeroHasOnlyTerminalExits) {
  const GraphGame game(small_config(13));
  const GraphLevel& level = game.level(0);
  for (std::uint64_t n = 0; n < level.size(); ++n) {
    for (const Exit& exit : level.exits_of(n)) {
      EXPECT_TRUE(exit.is_terminal());
    }
  }
}

TEST(GraphGame, PredecessorsInvertSuccessors) {
  const GraphGame game(small_config(21));
  for (int l = 0; l < game.num_levels(); ++l) {
    const GraphLevel& level = game.level(l);
    std::map<std::pair<std::uint64_t, std::uint64_t>, int> fwd, bwd;
    for (std::uint64_t n = 0; n < level.size(); ++n) {
      level.visit_options(
          n, [](const Exit&) {},
          [&](idx::Index s) { ++fwd[{n, s}]; });
      level.visit_predecessors(n, [&](idx::Index p) { ++bwd[{p, n}]; });
    }
    EXPECT_EQ(fwd, bwd) << "level " << l;
  }
}

TEST(GraphGame, MaxValueBoundsExitMagnitudes) {
  const GraphGame game(small_config(33));
  for (int l = 0; l < game.num_levels(); ++l) {
    const GraphLevel& level = game.level(l);
    for (std::uint64_t n = 0; n < level.size(); ++n) {
      for (const Exit& exit : level.exits_of(n)) {
        const int lower_bound =
            exit.is_terminal() ? 0 : game.level(exit.lower_level).max_value();
        EXPECT_LE(std::abs(exit.reward) + lower_bound, level.max_value());
      }
    }
  }
}

TEST(GraphLevel, CustomBuilderDerivesPredsAndBound) {
  // Node 0 -> node 1 -> node 0 cycle; node 1 also has a terminal exit -2.
  GraphLevel level = GraphLevel::custom(
      /*level=*/0, {{1}, {0}},
      {{}, {Exit{-2, Exit::kTerminal, 0}}});
  EXPECT_EQ(level.size(), 2u);
  EXPECT_EQ(level.max_value(), 2);
  int pred_count = 0;
  level.visit_predecessors(0, [&](idx::Index p) {
    EXPECT_EQ(p, 1u);
    ++pred_count;
  });
  EXPECT_EQ(pred_count, 1);
}

}  // namespace
}  // namespace retra::game

// The RETRA_CHECK_ACCESS shard-ownership/phase checker.
//
// With the checker compiled in (-DRETRA_CHECK_ACCESS=ON) a discipline
// violation must abort the process deterministically — these are death
// tests.  In a normal build the hooks are no-ops and the same operations
// must succeed, which the non-death tests cover in both configurations.
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "retra/db/database.hpp"
#include "retra/para/dist_db.hpp"
#include "retra/support/access_check.hpp"

namespace retra {
namespace {

using para::DistributedDatabase;
using para::Partition;
using para::PartitionScheme;
using support::BspPhase;

/// A one-level cyclic database over 3 ranks, values 0..6.
DistributedDatabase make_db() {
  DistributedDatabase ddb(PartitionScheme::kCyclic, 1, 3, false);
  std::vector<std::vector<db::Value>> shards(3);
  const Partition partition = ddb.make_partition(7);
  for (int r = 0; r < 3; ++r) {
    shards[static_cast<std::size_t>(r)].resize(partition.local_size(r));
  }
  for (std::uint64_t i = 0; i < 7; ++i) {
    shards[static_cast<std::size_t>(partition.owner(i))]
          [partition.to_local(i)] = static_cast<db::Value>(i);
  }
  ddb.push_level_shards(0, 7, std::move(shards));
  return ddb;
}

TEST(AccessCheck, SerialAccessAlwaysPasses) {
  const DistributedDatabase ddb = make_db();
  // No actor tag, serial phase: the driver may read any shard.
  const int owner = ddb.owner(0, 4);
  EXPECT_EQ(ddb.value_local(owner, 0, 4), 4);
}

TEST(AccessCheck, OwnerActorPasses) {
  const DistributedDatabase ddb = make_db();
  const int owner = ddb.owner(0, 4);
  const support::ScopedPhase phase(BspPhase::kCompute);
  const support::ScopedActor actor(owner);
  EXPECT_EQ(ddb.value_local(owner, 0, 4), 4);
}

#if defined(RETRA_CHECK_ACCESS)

using AccessCheckDeath = ::testing::Test;

TEST(AccessCheckDeath, CrossRankReadAborts) {
  const DistributedDatabase ddb = make_db();
  const int owner = ddb.owner(0, 4);
  const int thief = (owner + 1) % 3;
  const support::ScopedPhase phase(BspPhase::kCompute);
  EXPECT_DEATH(
      {
        // A rank reaching into another rank's shard: the BSP ownership
        // rule the checker exists to enforce.
        const support::ScopedActor actor(thief);
        (void)ddb.value_local(owner, 0, 4);
      },
      "cross-rank access");
}

TEST(AccessCheckDeath, StoreMutationDuringComputeAborts) {
  EXPECT_DEATH(
      {
        const support::ScopedPhase phase(BspPhase::kCompute);
        const support::ScopedActor actor(0);
        DistributedDatabase ddb = make_db();  // push_level_shards inside
      },
      "outside the serial window");
}

TEST(AccessCheckDeath, StoreMutationDuringExchangeAborts) {
  EXPECT_DEATH(
      {
        const support::ScopedPhase phase(BspPhase::kExchange);
        DistributedDatabase ddb = make_db();
      },
      "outside the serial window");
}

TEST(AccessCheckDeath, WriteOutsideTheThreadChunkAborts) {
  // In-range locals pass under an active chunk...
  {
    const support::ScopedChunk chunk(0, 4);
    support::check_chunk(0, "test");
    support::check_chunk(3, "test");
  }
  // ...and without a chunk the hook is inert (serial single-chunk code).
  support::check_chunk(999, "test");
  EXPECT_DEATH(
      {
        const support::ScopedChunk chunk(0, 4);
        support::check_chunk(7, "test");
      },
      "outside the thread's chunk");
}

#else

TEST(AccessCheck, DisabledHooksAreNoOps) {
  // Without RETRA_CHECK_ACCESS even a rule-breaking access must succeed:
  // the hooks compile to empty inlines.
  const DistributedDatabase ddb = make_db();
  const int owner = ddb.owner(0, 4);
  const support::ScopedPhase phase(BspPhase::kCompute);
  const support::ScopedActor actor((owner + 1) % 3);
  EXPECT_EQ(ddb.value_local(owner, 0, 4), 4);
  const support::ScopedChunk chunk(0, 4);
  support::check_chunk(999, "test");  // no-op stub
}

#endif  // RETRA_CHECK_ACCESS

}  // namespace
}  // namespace retra

#include <gtest/gtest.h>

#include "retra/db/compact.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/ra/builder.hpp"
#include "retra/support/rng.hpp"

namespace retra::db {
namespace {

TEST(CompactLevel, FourBitRange) {
  const std::vector<Value> values{-8, -1, 0, 3, 7, 7, -8};
  const CompactLevel level(values);
  EXPECT_EQ(level.bits(), 4);
  EXPECT_EQ(level.expand(), values);
  EXPECT_EQ(level.memory_bytes(), 4u);  // ceil(7 * 4 / 8)
}

TEST(CompactLevel, EightBitRange) {
  const std::vector<Value> values{-100, 100, 0};
  const CompactLevel level(values);
  EXPECT_EQ(level.bits(), 8);
  EXPECT_EQ(level.expand(), values);
}

TEST(CompactLevel, SixteenBitRange) {
  const std::vector<Value> values{-3000, 3000};
  const CompactLevel level(values);
  EXPECT_EQ(level.bits(), 16);
  EXPECT_EQ(level.expand(), values);
}

TEST(CompactLevel, EmptyAndSingle) {
  EXPECT_EQ(CompactLevel(std::vector<Value>{}).size(), 0u);
  const CompactLevel one({Value{42}});
  EXPECT_EQ(one.get(0), 42);
  EXPECT_EQ(one.bits(), 4);  // zero span packs minimally
}

TEST(CompactLevel, OffsetHandlesAsymmetricRanges) {
  // Range [3, 10]: span 7, packs in 4 bits despite values > 7.
  std::vector<Value> values;
  for (Value v = 3; v <= 10; ++v) values.push_back(v);
  const CompactLevel level(values);
  EXPECT_EQ(level.bits(), 4);
  EXPECT_EQ(level.expand(), values);
}

TEST(CompactLevel, RandomRoundTrips) {
  support::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const int span = 1 + static_cast<int>(rng.below(300));
    const int lo = static_cast<int>(rng.below(200)) - 100;
    std::vector<Value> values(1 + rng.below(500));
    for (auto& v : values) {
      v = static_cast<Value>(
          lo + static_cast<int>(rng.below(static_cast<std::uint64_t>(span))));
    }
    const CompactLevel level(values);
    ASSERT_EQ(level.expand(), values) << "trial " << trial;
    for (std::uint64_t i = 0; i < values.size(); i += 7) {
      ASSERT_EQ(level.get(i), values[i]);
    }
  }
}

TEST(CompactDatabase, AwariRoundTripAndCompression) {
  const Database database = ra::build_database(game::AwariFamily{}, 8);
  const CompactDatabase compact(database);
  EXPECT_EQ(compact.expand(), database);
  // Levels up to 7 span <= 15 values (4-bit packing); level 8 spans 17
  // and packs at 8 bits.  Plain storage is int16, so the blend beats 2x.
  std::uint64_t plain = 0;
  for (int l = 0; l <= 8; ++l) plain += database.level(l).size() * 2;
  EXPECT_LT(compact.memory_bytes() * 2, plain);
  // Point queries agree everywhere on a sampled basis.
  for (int l = 0; l <= 8; ++l) {
    const auto& values = database.level(l);
    for (std::uint64_t i = 0; i < values.size(); i += 97) {
      ASSERT_EQ(compact.value(l, i), values[i]);
    }
  }
}

TEST(CompactDatabase, LevelAccessors) {
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {1, -1, 0});
  const CompactDatabase compact(database);
  EXPECT_EQ(compact.num_levels(), 2);
  EXPECT_TRUE(compact.has_level(1));
  EXPECT_FALSE(compact.has_level(2));
  EXPECT_EQ(compact.level(1).size(), 3u);
}

}  // namespace
}  // namespace retra::db

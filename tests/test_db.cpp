#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "retra/db/database.hpp"
#include "retra/db/db_io.hpp"
#include "retra/db/db_stats.hpp"
#include "retra/game/awari_level.hpp"
#include "retra/ra/builder.hpp"

namespace retra::db {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Database, PushAndQuery) {
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {1, -1, 0});
  EXPECT_EQ(database.num_levels(), 2);
  EXPECT_TRUE(database.has_level(1));
  EXPECT_FALSE(database.has_level(2));
  EXPECT_EQ(database.value(1, 0), 1);
  EXPECT_EQ(database.value(1, 1), -1);
  EXPECT_EQ(database.total_positions(), 4u);
}

TEST(Database, EqualityIsDeep) {
  Database a, b;
  a.push_level(0, {1});
  b.push_level(0, {1});
  EXPECT_EQ(a, b);
  Database c;
  c.push_level(0, {2});
  EXPECT_NE(a, c);
}

TEST(DbIo, RoundTripNarrowValues) {
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {5, -5, 0, 127, -128});
  const std::string path = temp_path("retra_narrow.db");
  save(database, path);
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, RoundTripWideValues) {
  Database database;
  database.push_level(0, {1000, -1000, 0});
  const std::string path = temp_path("retra_wide.db");
  save(database, path);
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, DetectsCorruption) {
  Database database;
  database.push_level(0, {7, -7, 7, -7});
  const std::string path = temp_path("retra_corrupt.db");
  save(database, path);
  {
    // Flip one payload byte.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(24);
    char byte;
    file.seekg(24);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(24);
    file.write(&byte, 1);
  }
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  std::remove(path.c_str());
}

TEST(DbIo, RejectsMissingFile) {
  const LoadResult loaded = load(temp_path("retra_nonexistent.db"));
  EXPECT_FALSE(loaded.ok);
}

TEST(DbIo, RejectsBadMagic) {
  const std::string path = temp_path("retra_badmagic.db");
  {
    std::ofstream file(path, std::ios::binary);
    file << "NOTADB00garbage";
  }
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DbIo, ChecksumIsStable) {
  const char data[] = "retrograde";
  EXPECT_EQ(fnv1a(data, 10), fnv1a(data, 10));
  EXPECT_NE(fnv1a(data, 10), fnv1a(data, 9));
}

TEST(DbStats, CountsSigns) {
  Database database;
  database.push_level(0, {2, 0, 0, -1, 3});
  const LevelStats stats = level_stats(database, 0);
  EXPECT_EQ(stats.positions, 5u);
  EXPECT_EQ(stats.wins, 2u);
  EXPECT_EQ(stats.draws, 2u);
  EXPECT_EQ(stats.losses, 1u);
  EXPECT_EQ(stats.min_value, -1);
  EXPECT_EQ(stats.max_value, 3);
  EXPECT_DOUBLE_EQ(stats.mean_value, 0.8);
}

TEST(DbStats, HistogramMatchesStats) {
  Database database;
  database.push_level(0, {2, 0, 0, -1, 3});
  const auto histogram = level_histogram(database, 0, 3);
  EXPECT_EQ(histogram.total(), 5u);
  EXPECT_EQ(histogram.positive(), 2u);
  EXPECT_EQ(histogram.zero(), 2u);
  EXPECT_EQ(histogram.negative(), 1u);
  EXPECT_EQ(histogram.count_at(3), 1u);
}

TEST(DbIo, PackedRoundTripAllWidths) {
  // One level per pack width: zero span and span 7 take 4 bits, span 200
  // takes 8, a full int16 span takes 16.
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {3, 4, 5, 6, 7, 8, 9, 10});
  database.push_level(2, {-100, 100, 0});
  database.push_level(3, {-3000, 3000, 12});
  const std::string path = temp_path("retra_packed.db");
  save(database, path, Format{.version = 2});

  const FileIndex index = scan(path);
  ASSERT_TRUE(index.ok) << index.error;
  EXPECT_EQ(index.version, 2);
  ASSERT_EQ(index.levels.size(), 4u);
  EXPECT_EQ(index.levels[0].bits, 4);
  EXPECT_EQ(index.levels[1].bits, 4);
  EXPECT_EQ(index.levels[2].bits, 8);
  EXPECT_EQ(index.levels[3].bits, 16);
  EXPECT_EQ(index.levels[1].offset, 3);

  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, PackedDetectsCorruption) {
  Database database;
  database.push_level(0, {7, -7, 7, -7, 0, 3});
  const std::string path = temp_path("retra_packed_corrupt.db");
  save(database, path, Format{.version = 2});
  const FileIndex index = scan(path);
  ASSERT_TRUE(index.ok) << index.error;
  {
    // Flip the first payload byte of level 0.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    const auto at =
        static_cast<std::streamoff>(index.levels[0].payload_offset);
    char byte;
    file.seekg(at);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(at);
    file.write(&byte, 1);
  }
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("checksum"), std::string::npos)
      << loaded.error;
  std::remove(path.c_str());
}

TEST(DbIo, PackedRejectsTruncation) {
  Database database;
  database.push_level(0, {1, 2, 3, 4, 5, 6, 7, 8});
  const std::string path = temp_path("retra_packed_trunc.db");
  save(database, path, Format{.version = 2});
  // Cut into the trailing checksum: the level's payload+checksum no
  // longer fit in the file, which scan() diagnoses structurally.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 5);
  const FileIndex index = scan(path);
  EXPECT_FALSE(index.ok);
  EXPECT_NE(index.error.find("truncated"), std::string::npos) << index.error;
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  std::remove(path.c_str());
}

TEST(DbIo, ReadLevelExpandsEachLevel) {
  // scan() + read_level() on both formats hand back exactly the values
  // that save() was given, level by level.
  Database database;
  database.push_level(0, {0});
  database.push_level(1, {9, -9, 0, 4});
  for (const bool pack : {false, true}) {
    const std::string path = temp_path("retra_readlevel.db");
    Format format;
    format.version = pack ? 2 : 1;
    save(database, path, format);
    std::FILE* file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    const FileIndex index = scan(file);
    ASSERT_TRUE(index.ok) << index.error;
    ASSERT_EQ(index.levels.size(), 2u);
    for (int level = 0; level < 2; ++level) {
      const LevelReadResult read = read_level(
          file, index.levels[static_cast<std::size_t>(level)]);
      ASSERT_TRUE(read.ok) << read.error;
      EXPECT_EQ(read.level.expand(), database.level(level))
          << "pack=" << pack;
    }
    std::fclose(file);
    std::remove(path.c_str());
  }
}

TEST(DbIo, CompressedRoundTripAllSchemes) {
  // One level per scheme family: constant (rle), skewed (freq), plus a
  // wide level that stays raw, all in one RTRADB03 file.
  Database database;
  database.push_level(0, {0});
  database.push_level(1, std::vector<Value>(5000, 3));  // rle
  std::vector<Value> skewed;
  for (int i = 0; i < 5000; ++i) skewed.push_back(i % 11 == 0 ? 5 : -2);
  database.push_level(2, skewed);  // freq
  std::vector<Value> wide;
  for (int i = 0; i < 5000; ++i) {
    wide.push_back(static_cast<Value>((i * 7919) % 6007 - 3000));
  }
  database.push_level(3, wide);  // 16-bit, high entropy: raw

  const std::string path = temp_path("retra_compressed.db");
  save(database, path, Format{.version = 3});

  const FileIndex index = scan(path);
  ASSERT_TRUE(index.ok) << index.error;
  EXPECT_EQ(index.version, 3);
  ASSERT_EQ(index.levels.size(), 4u);
  for (const LevelLocation& location : index.levels) {
    EXPECT_EQ(location.block_positions, kDefaultBlockPositions);
    EXPECT_EQ(location.block_count(),
              static_cast<int>((location.size + kDefaultBlockPositions - 1) /
                               kDefaultBlockPositions));
    EXPECT_LE(location.payload_bytes, location.decoded_bytes());
  }
  // The mix of schemes actually happened.
  EXPECT_EQ(index.levels[1].blocks[0].scheme, BlockScheme::kRle);
  EXPECT_EQ(index.levels[2].blocks[0].scheme, BlockScheme::kFreq);
  EXPECT_EQ(index.levels[3].blocks[0].scheme, BlockScheme::kRaw);
  EXPECT_LT(index.total_payload_bytes(), index.total_decoded_bytes());

  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, CompressedMixedBlocksWithinOneLevel) {
  // Small blocks so one level spans several, each compressing its own
  // way: a constant stretch, a skewed stretch, and a noisy stretch.
  Database database;
  std::vector<Value> values;
  values.insert(values.end(), 200, 1);  // block 0: constant
  for (int i = 0; i < 200; ++i) {
    values.push_back(i % 13 == 0 ? 4 : 0);  // block 1: skewed
  }
  for (int i = 0; i < 200; ++i) {
    values.push_back(static_cast<Value>((i * 31) % 15));  // block 2: noisy
  }
  database.push_level(0, values);

  const std::string path = temp_path("retra_mixed_blocks.db");
  save(database, path, Format{.version = 3, .block_positions = 200});

  const FileIndex index = scan(path);
  ASSERT_TRUE(index.ok) << index.error;
  ASSERT_EQ(index.levels.size(), 1u);
  const LevelLocation& location = index.levels[0];
  EXPECT_EQ(location.block_positions, 200u);
  ASSERT_EQ(location.block_count(), 3);
  EXPECT_EQ(location.blocks[0].scheme, BlockScheme::kRle);
  EXPECT_EQ(location.blocks[1].scheme, BlockScheme::kFreq);
  EXPECT_EQ(location.blocks[2].scheme, BlockScheme::kRaw);

  // read_block hands back each block indexed from its first position.
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  for (int b = 0; b < 3; ++b) {
    const LevelReadResult read = read_block(file, location, b);
    ASSERT_TRUE(read.ok) << read.error;
    const std::uint64_t begin = location.block_begin(b);
    for (std::uint64_t i = 0; i < 200; ++i) {
      ASSERT_EQ(read.level.get(i), values[static_cast<std::size_t>(begin + i)])
          << "block " << b << " position " << i;
    }
  }
  std::fclose(file);

  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, CompressedDetectsPerBlockCorruption) {
  Database database;
  std::vector<Value> values;
  for (int i = 0; i < 600; ++i) values.push_back(i % 13 == 0 ? 4 : 0);
  database.push_level(0, values);
  const std::string path = temp_path("retra_compressed_corrupt.db");
  save(database, path, Format{.version = 3, .block_positions = 200});
  const FileIndex index = scan(path);
  ASSERT_TRUE(index.ok) << index.error;
  const LevelLocation& location = index.levels[0];
  ASSERT_EQ(location.block_count(), 3);
  {
    // Flip a byte inside block 1's stored bytes.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    const auto at =
        static_cast<std::streamoff>(location.blocks[1].offset + 1);
    char byte;
    file.seekg(at);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(at);
    file.write(&byte, 1);
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  // The corrupt block is diagnosed with its block number...
  const LevelReadResult bad = read_block(file, location, 1);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("block 1"), std::string::npos) << bad.error;
  // ...while its neighbours still decode: corruption is block-local.
  EXPECT_TRUE(read_block(file, location, 0).ok);
  EXPECT_TRUE(read_block(file, location, 2).ok);
  std::fclose(file);
  const LoadResult loaded = load(path);
  EXPECT_FALSE(loaded.ok);
  std::remove(path.c_str());
}

TEST(DbIo, CompressedRejectsDirectoryCorruption) {
  Database database;
  database.push_level(0, std::vector<Value>(500, 2));
  const std::string path = temp_path("retra_dir_corrupt.db");
  save(database, path, Format{.version = 3});
  {
    // The directory starts right after the fixed level header:
    // magic(8) + count(4) + size(8) + bits(1) + offset(2) +
    // block_positions(4) + block_count(4) + payload_bytes(8) = 39.
    // Flip the scheme tag of entry 0.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    char byte;
    file.seekg(39);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(39);
    file.write(&byte, 1);
  }
  const FileIndex index = scan(path);
  EXPECT_FALSE(index.ok);
  EXPECT_NE(index.error.find("directory checksum"), std::string::npos)
      << index.error;
  std::remove(path.c_str());
}

TEST(DbIo, CompressedRejectsTruncation) {
  Database database;
  std::vector<Value> values;
  for (int i = 0; i < 900; ++i) values.push_back(i % 7 == 0 ? 3 : -1);
  database.push_level(0, values);
  const std::string path = temp_path("retra_compressed_trunc.db");
  save(database, path, Format{.version = 3, .block_positions = 300});
  // Cut into the last block's stored bytes: the payload no longer fits.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 2);
  const FileIndex index = scan(path);
  EXPECT_FALSE(index.ok);
  EXPECT_NE(index.error.find("truncated"), std::string::npos) << index.error;
  std::remove(path.c_str());
}

TEST(DbIo, CompressedRejectsBadGeometry) {
  Database database;
  database.push_level(0, std::vector<Value>(100, 1));
  const std::string path = temp_path("retra_bad_geometry.db");
  save(database, path, Format{.version = 3});
  {
    // block_positions lives at offset 8+4+8+1+2 = 23; make it odd.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(23);
    const char odd = 0x01;
    file.write(&odd, 1);
  }
  const FileIndex index = scan(path);
  EXPECT_FALSE(index.ok);
  EXPECT_NE(index.error.find("geometry"), std::string::npos) << index.error;
  std::remove(path.c_str());
}

TEST(DbIo, CompressedStrictlySmallerOnAwari) {
  // The acceptance check: the real database compresses, end to end.
  const auto database = ra::build_database(game::AwariFamily{}, 5);
  const std::string packed_path = temp_path("retra_awari_packed_cmp.db");
  const std::string compressed_path = temp_path("retra_awari_compressed.db");
  save(database, packed_path, Format{.version = 2});
  save(database, compressed_path, Format{.version = 3});
  EXPECT_LT(std::filesystem::file_size(compressed_path),
            std::filesystem::file_size(packed_path));
  const LoadResult loaded = load(compressed_path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(packed_path.c_str());
  std::remove(compressed_path.c_str());
}

TEST(DbIo, AwariDatabaseSurvivesPackedRoundTrip) {
  const auto database = ra::build_database(game::AwariFamily{}, 4);
  const std::string path = temp_path("retra_awari_packed.db");
  save(database, path, Format{.version = 2});
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

TEST(DbIo, AwariDatabaseSurvivesRoundTrip) {
  const auto database = ra::build_database(game::AwariFamily{}, 4);
  const std::string path = temp_path("retra_awari.db");
  save(database, path);
  const LoadResult loaded = load(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.database, database);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace retra::db
